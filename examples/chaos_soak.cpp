// Chaos soak driver: runs one SpotCheck evaluation cell under an injected
// fault schedule and prints the fault plan, the chaos.* injection totals,
// and the headline results next to a fault-free baseline of the same
// workload.
//
//   ./chaos_soak [--chaos-level=2] [--chaos-seed=1337] [--seed=1]
//                [--days=30] [--vms=40] [--print-plan]

#include <cstdio>
#include <string>

#include "src/chaos/fault_plan.h"
#include "src/common/flags.h"
#include "src/core/evaluation.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const int level = static_cast<int>(flags.GetInt("chaos-level", 2));
  const uint64_t chaos_seed =
      static_cast<uint64_t>(flags.GetInt("chaos-seed", 1337));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const double days = static_cast<double>(flags.GetInt("days", 30));
  const int vms = static_cast<int>(flags.GetInt("vms", 40));
  const bool print_plan = flags.GetBool("print-plan", false);
  flags.ExitIfUnknownFlags(
      "--chaos-level=L, --chaos-seed=S, --seed=N, --days=N, --vms=N, "
      "--print-plan");

  EvaluationConfig config;
  config.num_vms = vms;
  config.horizon = SimDuration::Days(days);
  config.seed = seed;
  config.hot_spares = 1;

  EvaluationConfig chaotic = config;
  chaotic.chaos = ChaosConfigForLevel(level, chaos_seed);

  const FaultPlan plan = FaultPlan::Compile(
      chaotic.chaos, SimTime(), SimTime() + chaotic.horizon);
  std::printf("chaos level %d, seed %llu: %zu faults over %.0f days\n", level,
              static_cast<unsigned long long>(chaos_seed), plan.events().size(),
              days);
  for (FaultKind kind :
       {FaultKind::kInstanceFailure, FaultKind::kZoneOutage,
        FaultKind::kPriceShock, FaultKind::kCapacityFault,
        FaultKind::kBackupDegradation}) {
    std::printf("  %-20s %lld scheduled\n",
                std::string(FaultKindName(kind)).c_str(),
                static_cast<long long>(plan.CountOf(kind)));
  }
  if (print_plan) {
    std::printf("%s", plan.ToString().c_str());
  }

  std::printf("\nrunning baseline (no injection)...\n");
  const EvaluationResult baseline = RunPolicyEvaluation(config);
  std::printf("running soak (level %d)...\n\n", level);
  const EvaluationResult soaked = RunPolicyEvaluation(chaotic);

  std::printf("%-28s %14s %14s\n", "", "baseline", "soaked");
  const auto row = [](const char* name, double base, double chaos) {
    std::printf("%-28s %14.6f %14.6f\n", name, base, chaos);
  };
  row("cost $/VM-hour", baseline.avg_cost_per_vm_hour,
      soaked.avg_cost_per_vm_hour);
  row("unavailability %", baseline.unavailability_pct,
      soaked.unavailability_pct);
  row("degradation %", baseline.degradation_pct, soaked.degradation_pct);
  row("revocation events", static_cast<double>(baseline.revocation_events),
      static_cast<double>(soaked.revocation_events));
  row("evacuations", static_cast<double>(baseline.evacuations),
      static_cast<double>(soaked.evacuations));
  row("repatriations", static_cast<double>(baseline.repatriations),
      static_cast<double>(soaked.repatriations));
  std::printf("%-28s %14s %14lld\n", "faults injected", "0",
              static_cast<long long>(soaked.chaos_faults_injected));

  // The soaked run's chaos.* metrics land in its run report alongside the
  // controller's reactions; surface the counters here too.
  if (soaked.report != nullptr && soaked.report->metrics != nullptr) {
    std::printf("\nchaos.* counters:\n");
    for (const char* name :
         {"chaos.instance_failures", "chaos.instance_failures_victimless",
          "chaos.zone_outages", "chaos.price_shocks", "chaos.capacity_faults",
          "chaos.spot_launch_faults", "chaos.backup_degradations"}) {
      const MetricCounter* c = soaked.report->metrics->FindCounter(name);
      if (c != nullptr) {
        std::printf("  %-36s %lld\n", name, static_cast<long long>(c->value()));
      }
    }
  }
  return 0;
}

// spotcheck_cli: command-line driver for the evaluation harness.
//
// Runs one SpotCheck deployment end to end and prints the full report --
// cost, availability, degradation, storm probabilities, operations counters,
// and optionally the controller's state dump. All of Section 6's knobs are
// flags:
//
//   $ ./examples/spotcheck_cli --policy=4P-ED --mechanism=lazy --days=180
//         --vms=40 --seed=2 --staging --predictive --zones=2 --dump --events=timeline.csv
//
// Policies:   1P-M 2P-ML 4P-ED 4P-COST 4P-ST GREEDY STABLE
//             or a strategy spec, e.g. --policy="bid=adaptive:2,map=index-track"
//             (names via the policy registry; see DESIGN.md section 15)
// Mechanisms: live yank-full full lazy-unopt lazy

#include <cstdio>
#include <cstring>
#include <optional>

#include "src/common/flags.h"
#include "src/core/controller.h"
#include "src/core/evaluation.h"
#include "src/market/trace_catalog.h"
#include "src/policy/policy_spec.h"
#include "src/sim/simulator.h"

using namespace spotcheck;

namespace {

std::optional<MappingPolicyKind> ParsePolicy(const std::string& name) {
  for (MappingPolicyKind kind :
       {MappingPolicyKind::k1PM, MappingPolicyKind::k2PML, MappingPolicyKind::k4PED,
        MappingPolicyKind::k4PCost, MappingPolicyKind::k4PStability,
        MappingPolicyKind::kGreedyCheapest, MappingPolicyKind::kStabilityFirst}) {
    if (name == MappingPolicyName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<MigrationMechanism> ParseMechanism(const std::string& name) {
  if (name == "live") {
    return MigrationMechanism::kXenLiveMigration;
  }
  if (name == "yank-full") {
    return MigrationMechanism::kYankFullRestore;
  }
  if (name == "full") {
    return MigrationMechanism::kSpotCheckFullRestore;
  }
  if (name == "lazy-unopt") {
    return MigrationMechanism::kUnoptimizedLazyRestore;
  }
  if (name == "lazy") {
    return MigrationMechanism::kSpotCheckLazyRestore;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);

  const std::string policy_name = flags.GetString("policy", "1P-M");
  const std::string mechanism_name = flags.GetString("mechanism", "lazy");
  const auto policy = ParsePolicy(policy_name);
  // Anything that is not a legacy policy name is treated as a strategy spec
  // ("bid=...,map=..."): registry-validated, bad specs exit 2 with the list
  // of registered names.
  std::optional<PolicySpec> policy_spec;
  if (!policy.has_value()) {
    policy_spec = ParsePolicySpecOrExit(policy_name);
  }
  const auto mechanism = ParseMechanism(mechanism_name);
  if (!mechanism.has_value()) {
    std::fprintf(stderr,
                 "unknown --mechanism=%s\n"
                 "mechanisms: live yank-full full lazy-unopt lazy\n",
                 mechanism_name.c_str());
    return 2;
  }

  Simulator sim;
  MarketPlace markets(&sim);
  const std::string trace_dir = flags.GetString("traces", "");
  if (!trace_dir.empty()) {
    const TraceLoadReport report = LoadTraceDirectory(markets, trace_dir);
    std::printf("loaded %zu trace(s) from %s", report.loaded.size(),
                trace_dir.c_str());
    for (const auto& skipped : report.skipped) {
      std::printf("  [skipped %s]", skipped.c_str());
    }
    std::printf("\n");
  }

  const SimDuration horizon = SimDuration::Days(flags.GetDouble("days", 180.0));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2));

  NativeCloudConfig cloud_config;
  cloud_config.market_horizon = horizon + SimDuration::Days(1);
  cloud_config.market_seed = seed;
  cloud_config.latency_seed = seed ^ 0xfeed;
  cloud_config.on_demand_unavailable_probability =
      flags.GetDouble("od-failure-prob", 0.0);
  NativeCloud cloud(&sim, &markets, cloud_config);

  ControllerConfig config;
  config.mapping = policy.value_or(MappingPolicyKind::k1PM);
  config.policy_spec = policy_spec;
  config.mechanism = *mechanism;
  const double bid_multiple = flags.GetDouble("bid-multiple", 1.0);
  config.bidding = bid_multiple > 1.0 ? BiddingPolicy::Multiple(bid_multiple)
                                      : BiddingPolicy::OnDemand();
  config.enable_proactive = flags.GetBool("proactive", false);
  config.enable_predictive = flags.GetBool("predictive", false);
  config.use_staging = flags.GetBool("staging", false);
  config.hot_spares = static_cast<int>(flags.GetInt("hot-spares", 0));
  config.num_zones = static_cast<int>(flags.GetInt("zones", 1));
  config.resale_fraction_of_on_demand = flags.GetDouble("resale", 0.6);
  config.seed = seed;
  SpotCheckController controller(&sim, &cloud, &markets, config);

  const int vms = static_cast<int>(flags.GetInt("vms", 40));
  const double stateless_fraction = flags.GetDouble("stateless", 0.0);
  const bool dump = flags.GetBool("dump", false);
  const std::string events_path = flags.GetString("events", "");

  flags.ExitIfUnknownFlags();

  const CustomerId customer = controller.RegisterCustomer("cli");
  sim.RunUntil(SimTime() + SimDuration::Days(7));  // price history warm-up
  for (int i = 0; i < vms; ++i) {
    controller.RequestServer(customer,
                             i < static_cast<int>(stateless_fraction * vms));
  }
  sim.RunUntil(SimTime() + horizon);

  const auto cost = controller.ComputeCostReport();
  const ActivityLog& log = controller.activity_log();
  const double unavail =
      log.MeanFraction(ActivityKind::kDowntime, SimTime(), sim.Now()) * 100.0;
  const double degraded =
      log.MeanFraction(ActivityKind::kDegraded, SimTime(), sim.Now()) * 100.0;
  const auto storms = controller.storms().Probabilities(vms, SimDuration::Minutes(6),
                                                        horizon);
  const auto books = controller.ComputeBusinessReport();

  std::printf("policy=%s mechanism=%s vms=%d days=%.0f seed=%llu %s\n",
              policy_name.c_str(), mechanism_name.c_str(), vms, horizon.days(),
              static_cast<unsigned long long>(seed),
              policy_spec.has_value() ? controller.policy_spec().bid.ToString().c_str()
                                      : config.bidding.ToString().c_str());
  std::printf("cost:          $%.4f per VM-hour (on-demand $%.3f -> %.1fx"
              " cheaper)\n",
              cost.avg_cost_per_vm_hour, OnDemandPrice(config.nested_type),
              OnDemandPrice(config.nested_type) / cost.avg_cost_per_vm_hour);
  std::printf("availability:  %.5f%%   degraded %.4f%% of the time\n",
              100.0 - unavail, degraded);
  std::printf("storms:        P(N/4)=%.2e P(N/2)=%.2e P(3N/4)=%.2e P(N)=%.2e\n",
              storms.quarter, storms.half, storms.three_quarters, storms.all);
  std::printf("operations:    %lld revocations, %lld evacuations, %lld"
              " repatriations, %lld proactive, %lld stagings, %lld respawns,"
              " %lld lost\n",
              static_cast<long long>(controller.revocation_events()),
              static_cast<long long>(controller.engine().evacuations()),
              static_cast<long long>(controller.repatriations()),
              static_cast<long long>(controller.proactive_migrations()),
              static_cast<long long>(controller.stagings()),
              static_cast<long long>(controller.stateless_respawns()),
              static_cast<long long>(controller.vms_lost()));
  std::printf("books:         revenue $%.2f, spend $%.2f, margin %.0f%%\n",
              books.revenue, books.platform_cost, 100.0 * books.margin_fraction);
  if (dump) {
    std::printf("\n%s", controller.DumpState().c_str());
  }
  if (!events_path.empty()) {
    std::FILE* f = std::fopen(events_path.c_str(), "w");
    if (f != nullptr) {
      const std::string csv = controller.event_log().ToCsv();
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::printf("event timeline (%zu events) written to %s\n",
                  controller.event_log().events().size(), events_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", events_path.c_str());
    }
  }
  return 0;
}

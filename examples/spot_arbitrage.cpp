// Scenario: slicing arbitrage (Section 4.2).
//
// Spot prices are not proportional to instance size: a large instance is
// often cheaper *per nested-VM slot* than the small instance customers ask
// for. SpotCheck exploits this by buying the large server, slicing it into
// nested VMs with the nested hypervisor, and resting the slices to multiple
// customers. This example sets up such a market, lets the greedy
// cheapest-first policy shop across the four m3 pools, and shows the host
// mix and the per-VM bill it achieves.
//
//   $ ./examples/spot_arbitrage

#include <cstdio>
#include <map>

#include "src/core/controller.h"
#include "src/sim/simulator.h"
#include "src/common/flags.h"

using namespace spotcheck;

namespace {

PriceTrace Flat(double price) {
  PriceTrace trace;
  trace.Append(SimTime(), price);
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  Simulator sim;
  MarketPlace markets(&sim);
  const AvailabilityZone zone{0};
  // The m3.large market is in low demand: $0.011 buys TWO m3.medium slots
  // ($0.0055/slot), while the m3.medium market itself asks $0.009.
  markets.AddWithTrace(MarketKey{InstanceType::kM3Medium, zone}, Flat(0.0090));
  markets.AddWithTrace(MarketKey{InstanceType::kM3Large, zone}, Flat(0.0110));
  markets.AddWithTrace(MarketKey{InstanceType::kM3Xlarge, zone}, Flat(0.0480));
  markets.AddWithTrace(MarketKey{InstanceType::kM32xlarge, zone}, Flat(0.0990));

  std::printf("per-slot spot prices for an m3.medium-sized nested VM:\n");
  for (InstanceType type : {InstanceType::kM3Medium, InstanceType::kM3Large,
                            InstanceType::kM3Xlarge, InstanceType::kM32xlarge}) {
    const SpotMarket* market = markets.Find(MarketKey{type, zone});
    std::printf("  %-12s $%.4f/hr / %d slots = $%.4f per slot\n",
                std::string(InstanceTypeName(type)).c_str(), market->CurrentPrice(),
                NestedSlotsPerHost(type, InstanceType::kM3Medium),
                MappingPolicy::PerSlotPrice(*market, InstanceType::kM3Medium,
                                            SimTime()));
  }

  NativeCloudConfig cloud_config;
  cloud_config.sample_latencies = false;
  NativeCloud cloud(&sim, &markets, cloud_config);
  ControllerConfig config;
  config.mapping = MappingPolicyKind::kGreedyCheapest;
  SpotCheckController controller(&sim, &cloud, &markets, config);

  const CustomerId customer = controller.RegisterCustomer("arbitrageur");
  for (int i = 0; i < 8; ++i) {
    controller.RequestServer(customer);
  }
  sim.RunUntil(SimTime() + SimDuration::Days(7));

  std::map<std::string, int> host_mix;
  int hosted_vms = 0;
  int spot_hosts = 0;
  for (const HostVm* host : controller.Hosts()) {
    if (host->is_spot()) {
      ++host_mix[std::string(InstanceTypeName(host->type()))];
      hosted_vms += host->num_vms();
      ++spot_hosts;
    }
  }
  std::printf("\ngreedy cheapest-first placed 8 requested m3.medium servers"
              " on:\n");
  for (const auto& [type, count] : host_mix) {
    std::printf("  %d x %s\n", count, type.c_str());
  }

  const auto report = controller.ComputeCostReport();
  const double direct = 0.0090 + 0.28 / 8.0;  // medium spot + backup share
  std::printf("\nper-VM cost with slicing:   $%.4f/hr\n",
              report.avg_cost_per_vm_hour);
  std::printf("per-VM cost buying mediums: $%.4f/hr\n", direct);
  std::printf("hosted VMs: %d on %d spot hosts -- the nested hypervisor turns"
              " the cheap large instances into two sellable slots each\n",
              hosted_vms, spot_hosts);
  return 0;
}

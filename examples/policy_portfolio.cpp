// Scenario: choosing a pool-management policy like a financial portfolio.
//
// Section 4.2 frames pool selection as portfolio diversification: spreading a
// customer's VMs across uncorrelated spot markets trades a little cost and
// availability for immunity against "revocation storms". This example runs
// the five Table 2 policies side by side over two simulated months and
// prints the portfolio view: cost, availability, degradation, migration
// volume, and the worst storm each policy suffered.
//
//   $ ./examples/policy_portfolio

#include <cstdio>

#include "src/core/evaluation.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  std::printf("portfolio comparison: 40 VMs, two simulated months, bid ="
              " on-demand price\n\n");
  std::printf("%-9s %12s %14s %12s %12s %14s\n", "policy", "cost($/hr)",
              "availability", "degraded(%)", "migrations", "worst storm");

  for (MappingPolicyKind policy :
       {MappingPolicyKind::k1PM, MappingPolicyKind::k2PML, MappingPolicyKind::k4PED,
        MappingPolicyKind::k4PCost, MappingPolicyKind::k4PStability}) {
    EvaluationConfig config;
    config.policy = policy;
    config.num_vms = 40;
    config.horizon = SimDuration::Days(60);
    config.seed = 2;
    const EvaluationResult result = RunPolicyEvaluation(config);

    // Worst storm: largest fraction-of-fleet bucket this policy ever hit.
    const char* storm = "none";
    if (result.storms.all > 0.0) {
      storm = "ALL VMs";
    } else if (result.storms.three_quarters > 0.0) {
      storm = "3/4 fleet";
    } else if (result.storms.half > 0.0) {
      storm = "1/2 fleet";
    } else if (result.storms.quarter > 0.0) {
      storm = "1/4 fleet";
    }
    std::printf("%-9s %12.4f %13.4f%% %12.4f %12lld %14s\n",
                std::string(MappingPolicyName(policy)).c_str(),
                result.avg_cost_per_vm_hour, 100.0 - result.unavailability_pct,
                result.degradation_pct, static_cast<long long>(result.evacuations),
                storm);
  }

  std::printf("\nreading the table: the single m3.medium pool (1P-M) is cheapest"
              " and most available, but when it does storm it takes the\n"
              "whole fleet with it; the four-pool policies migrate more often"
              " yet never lose more than a quarter of the fleet at once.\n");
  return 0;
}

// Scenario: choosing a pool-management policy like a financial portfolio.
//
// Section 4.2 frames pool selection as portfolio diversification: spreading a
// customer's VMs across uncorrelated spot markets trades a little cost and
// availability for immunity against "revocation storms". This example runs
// the five Table 2 policies side by side over two simulated months and
// prints the portfolio view: cost, availability, degradation, migration
// volume, and the worst storm each policy suffered.
//
// The strategy layer adds two rows beyond Table 2 -- the index-tracking
// allocator and the adaptive rebidder -- and `--policy=SPEC` appends any
// registered strategy combination to the table:
//
//   $ ./examples/policy_portfolio
//   $ ./examples/policy_portfolio --policy="bid=multiple:2,map=index-track"

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/evaluation.h"
#include "src/common/flags.h"
#include "src/policy/policy_spec.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const std::string policy_flag = flags.GetString("policy", "");
  flags.ExitIfUnknownFlags("--policy=SPEC");

  std::printf("portfolio comparison: 40 VMs, two simulated months, bid ="
              " on-demand price\n\n");
  std::printf("%-12s %12s %14s %12s %12s %14s\n", "policy", "cost($/hr)",
              "availability", "degraded(%)", "migrations", "worst storm");

  // The five Table 2 policies, then the strategy-layer families.
  struct Row {
    std::string name;
    MappingPolicyKind policy = MappingPolicyKind::k1PM;
    std::string spec;  // overrides `policy` when non-empty
  };
  std::vector<Row> rows = {
      {"1P-M", MappingPolicyKind::k1PM, ""},
      {"2P-ML", MappingPolicyKind::k2PML, ""},
      {"4P-ED", MappingPolicyKind::k4PED, ""},
      {"4P-COST", MappingPolicyKind::k4PCost, ""},
      {"4P-ST", MappingPolicyKind::k4PStability, ""},
      {"INDEX", MappingPolicyKind::k1PM, "bid=on-demand,map=index-track"},
      {"ADAPTIVE", MappingPolicyKind::k1PM, "bid=adaptive:2,map=4p-ed"},
  };
  if (!policy_flag.empty()) {
    rows.push_back({"CUSTOM", MappingPolicyKind::k1PM, policy_flag});
  }

  for (const Row& row : rows) {
    EvaluationConfig config;
    config.policy = row.policy;
    if (!row.spec.empty()) {
      config.policy_spec = ParsePolicySpecOrExit(row.spec);
    }
    config.num_vms = 40;
    config.horizon = SimDuration::Days(60);
    config.seed = 2;
    const EvaluationResult result = RunPolicyEvaluation(config);

    // Worst storm: largest fraction-of-fleet bucket this policy ever hit.
    const char* storm = "none";
    if (result.storms.all > 0.0) {
      storm = "ALL VMs";
    } else if (result.storms.three_quarters > 0.0) {
      storm = "3/4 fleet";
    } else if (result.storms.half > 0.0) {
      storm = "1/2 fleet";
    } else if (result.storms.quarter > 0.0) {
      storm = "1/4 fleet";
    }
    std::printf("%-12s %12.4f %13.4f%% %12.4f %12lld %14s\n", row.name.c_str(),
                result.avg_cost_per_vm_hour, 100.0 - result.unavailability_pct,
                result.degradation_pct, static_cast<long long>(result.evacuations),
                storm);
  }

  std::printf("\nreading the table: the single m3.medium pool (1P-M) is cheapest"
              " and most available, but when it does storm it takes the\n"
              "whole fleet with it; the four-pool policies migrate more often"
              " yet never lose more than a quarter of the fleet at once.\n"
              "INDEX chases the portfolio's per-slot price index and sits out"
              " spiking markets; ADAPTIVE starts at a 2x bid and\n"
              "rebids from the crossing rate it observes.\n");
  return 0;
}

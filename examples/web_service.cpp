// Scenario: an interactive web service (TPC-W-like) on SpotCheck.
//
// Conventional wisdom says revocable spot servers are only for batch jobs.
// This example runs a latency-sensitive web service through a spot price
// spike three ways and prints what the customer experiences:
//   1. directly on a spot server  -> the service is DOWN for the whole spike,
//   2. on an on-demand server     -> always up, full price,
//   3. on SpotCheck               -> a ~23 s blip and a short window of
//                                    elevated response time, near-spot price.
//
//   $ ./examples/web_service

#include <cstdio>

#include "src/core/controller.h"
#include "src/market/market_analytics.h"
#include "src/sim/simulator.h"
#include "src/workload/workload_model.h"
#include "src/common/flags.h"

using namespace spotcheck;

namespace {

const MarketKey kPool{InstanceType::kM3Medium, AvailabilityZone{0}};

PriceTrace MonthWithSpikes() {
  // A 30-day m3.medium trace with four price spikes above on-demand ($0.07).
  PriceTrace trace;
  trace.Append(SimTime(), 0.0081);
  for (double day : {4.0, 11.0, 19.0, 26.0}) {
    trace.Append(SimTime() + SimDuration::Days(day), 0.42);
    trace.Append(SimTime() + SimDuration::Days(day) + SimDuration::Hours(2), 0.0081);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  const SimDuration horizon = SimDuration::Days(30);
  const double od_price = OnDemandPrice(kPool.type);
  const PriceTrace trace = MonthWithSpikes();

  // --- Option 1: directly on spot --------------------------------------------
  // The service dies with every revocation and cannot come back until the
  // price drops (plus the ~227 s spot startup).
  const SimTime end = SimTime() + horizon;
  const double above = 1.0 - trace.FractionAtOrBelow(od_price, SimTime(), end);
  const int spikes = CountBidCrossings(trace, od_price, SimTime(), end);
  const double spot_downtime_s =
      above * horizon.seconds() + spikes * 227.0;  // spike + relaunch
  const double spot_cost = trace.MeanPrice(SimTime(), end);

  // --- Option 2: on-demand -----------------------------------------------------
  const double od_downtime_s = 0.0;

  // --- Option 3: SpotCheck ------------------------------------------------------
  Simulator sim;
  MarketPlace markets(&sim);
  markets.AddWithTrace(kPool, trace);
  NativeCloudConfig cloud_config;
  cloud_config.sample_latencies = false;
  NativeCloud cloud(&sim, &markets, cloud_config);
  ControllerConfig config;
  config.workload = TpcwProfile();
  SpotCheckController controller(&sim, &cloud, &markets, config);
  const CustomerId customer = controller.RegisterCustomer("webshop");
  const NestedVmId server = controller.RequestServer(customer);
  for (int i = 1; i < 40; ++i) {  // fleet mates amortizing the backup server
    controller.RequestServer(customer);
  }
  sim.RunUntil(end);

  const ActivityLog& log = controller.activity_log();
  const double sc_down =
      log.Total(server, ActivityKind::kDowntime, SimTime(), end).seconds();
  const double sc_degraded =
      log.Total(server, ActivityKind::kDegraded, SimTime(), end).seconds();
  const double sc_cost = controller.ComputeCostReport().avg_cost_per_vm_hour;

  const TpcwModel tpcw;
  RunConditions normal;
  normal.checkpointing = true;
  RunConditions restoring = normal;
  restoring.lazily_restoring = true;

  std::printf("interactive web service, 30 days, %d spot price spikes\n\n", spikes);
  std::printf("%-16s %14s %16s %14s\n", "deployment", "downtime", "degraded",
              "cost($/hr)");
  std::printf("%-16s %13.0fs %15.0fs %14.4f\n", "raw spot", spot_downtime_s, 0.0,
              spot_cost);
  std::printf("%-16s %13.0fs %15.0fs %14.4f\n", "on-demand", od_downtime_s, 0.0,
              od_price);
  std::printf("%-16s %13.1fs %15.0fs %14.4f\n", "SpotCheck", sc_down, sc_degraded,
              sc_cost);

  std::printf("\nresponse time on SpotCheck: %.1f ms normally, %.1f ms during a"
              " lazy restore\n",
              tpcw.ResponseTimeMs(normal), tpcw.ResponseTimeMs(restoring));
  std::printf("availability: raw spot %.3f%%  |  SpotCheck %.4f%%\n",
              100.0 * (1.0 - spot_downtime_s / horizon.seconds()),
              100.0 * (1.0 - sc_down / horizon.seconds()));
  std::printf("SpotCheck keeps the service interactive through every revocation"
              " at %.1fx below the on-demand price\n",
              od_price / sc_cost);
  return 0;
}

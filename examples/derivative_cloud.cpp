// Scenario: running SpotCheck as a business.
//
// A derivative cloud resells repackaged spot capacity with an availability
// SLA. This example operates one for a simulated month with three customers
// (one of them a stateless web tier), predictive migration enabled, and a
// two-hour availability-zone outage in the middle -- then opens the books:
// per-customer bills and availability, and the operator's margin.
//
//   $ ./examples/derivative_cloud

#include <cstdio>

#include "src/core/controller.h"
#include "src/sim/simulator.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  Simulator sim;
  MarketPlace markets(&sim);
  NativeCloudConfig cloud_config;
  cloud_config.market_seed = 5;
  cloud_config.market_horizon = SimDuration::Days(35);
  NativeCloud cloud(&sim, &markets, cloud_config);

  ControllerConfig config;
  config.mapping = MappingPolicyKind::k4PED;
  config.num_zones = 2;            // outage insurance
  config.enable_predictive = true; // leave before the spike when possible
  config.use_staging = true;
  config.resale_fraction_of_on_demand = 0.6;  // customers pay $0.042/hr
  SpotCheckController spotcheck_cloud(&sim, &cloud, &markets, config);

  struct Tenant {
    CustomerId id;
    const char* name;
    int servers;
    bool stateless;
  };
  Tenant tenants[] = {
      {spotcheck_cloud.RegisterCustomer("shoponline"), "shoponline", 16, false},
      {spotcheck_cloud.RegisterCustomer("analytics-co"), "analytics-co", 16, false},
      {spotcheck_cloud.RegisterCustomer("cdn-tier"), "cdn-tier", 8, true},
  };
  for (const Tenant& tenant : tenants) {
    for (int i = 0; i < tenant.servers; ++i) {
      spotcheck_cloud.RequestServer(tenant.id, tenant.stateless);
    }
  }

  // Day 15: zone 0 goes dark for two hours. SpotCheck recovers every
  // checkpointed VM into zone 1 from its backups.
  cloud.ScheduleZoneOutage(AvailabilityZone{0}, SimTime() + SimDuration::Days(15),
                           SimTime() + SimDuration::Days(15) + SimDuration::Hours(2));

  sim.RunUntil(SimTime() + SimDuration::Days(30));

  std::printf("one simulated month, 40 nested VMs, zone-0 outage on day 15\n\n");
  std::printf("%-14s %5s %10s %14s %12s %10s\n", "customer", "VMs", "VM-hours",
              "availability", "downtime", "bill($)");
  for (const Tenant& tenant : tenants) {
    const auto report = spotcheck_cloud.ComputeCustomerReport(tenant.id);
    std::printf("%-14s %5lld %10.0f %13.4f%% %11.0fs %10.2f\n", tenant.name,
                static_cast<long long>(report.vms), report.vm_hours,
                report.availability_pct, report.downtime.seconds(),
                report.revenue);
  }

  const auto books = spotcheck_cloud.ComputeBusinessReport();
  std::printf("\noperator's books:  revenue $%.2f | platform spend $%.2f |"
              " margin $%.2f (%.0f%%)\n",
              books.revenue, books.platform_cost, books.margin,
              100.0 * books.margin_fraction);
  std::printf("operations:        %lld revocation warnings, %lld predictive"
              " drains, %lld stagings, %lld crash recoveries, %lld respawns,"
              " %lld VMs lost\n",
              static_cast<long long>(spotcheck_cloud.revocation_events()),
              static_cast<long long>(spotcheck_cloud.proactive_migrations()),
              static_cast<long long>(spotcheck_cloud.stagings()),
              static_cast<long long>(spotcheck_cloud.engine().crash_recoveries()),
              static_cast<long long>(spotcheck_cloud.stateless_respawns()),
              static_cast<long long>(spotcheck_cloud.vms_lost()));
  std::printf("\ncustomers pay %.0f%% of the on-demand price for ~four-nines"
              " servers; the operator still clears a healthy margin on\n"
              "capacity sourced from the spot market -- the arbitrage the"
              " paper identifies.\n",
              100.0 * config.resale_fraction_of_on_demand);
  return 0;
}

// Quickstart: rent one "always-available" server from SpotCheck.
//
// Builds the full stack -- spot markets, native cloud, SpotCheck controller --
// requests a single nested VM, and fast-forwards one simulated week. The
// console shows every revocation the VM survives and ends with the cost and
// availability the customer actually experienced, next to what a raw
// on-demand server would have cost.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "src/core/controller.h"
#include "src/core/evaluation.h"
#include "src/market/spot_market.h"
#include "src/sim/simulator.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  Simulator sim;
  MarketPlace markets(&sim);

  // A deliberately stormy m3.medium market so the week shows some action:
  // three price spikes above the $0.07 on-demand price.
  PriceTrace trace;
  trace.Append(SimTime(), 0.0077);
  const double kSpikes[][2] = {{20.0, 0.35}, {72.0, 1.20}, {130.0, 0.50}};
  for (const auto& spike : kSpikes) {
    trace.Append(SimTime() + SimDuration::Hours(spike[0]), spike[1]);
    trace.Append(SimTime() + SimDuration::Hours(spike[0] + 1.5), 0.0077);
  }
  const MarketKey pool{InstanceType::kM3Medium, AvailabilityZone{0}};
  markets.AddWithTrace(pool, trace);

  NativeCloudConfig cloud_config;
  cloud_config.sample_latencies = false;  // deterministic walkthrough
  NativeCloud cloud(&sim, &markets, cloud_config);

  SpotCheckController controller(&sim, &cloud, &markets, ControllerConfig{});

  // A fleet of 40 servers -- one backup server's worth -- so the amortized
  // backup cost matches the paper's deployment; the walkthrough narrates the
  // first one.
  const CustomerId customer = controller.RegisterCustomer("quickstart");
  const NestedVmId server = controller.RequestServer(customer);
  for (int i = 1; i < 40; ++i) {
    controller.RequestServer(customer);
  }
  std::printf("requested 40 %s-equivalent servers; following %s\n",
              std::string(InstanceTypeName(InstanceType::kM3Medium)).c_str(),
              server.ToString().c_str());

  // Narrate revocations as they happen.
  SpotMarket* market = markets.Find(pool);
  market->Subscribe([&](const SpotMarket& m, double price) {
    if (price > m.on_demand_price()) {
      std::printf("[%7.1f h] spot price spiked to $%.3f/hr -> revocation warning;"
                  " SpotCheck migrates to on-demand\n",
                  sim.Now().hours(), price);
    } else {
      std::printf("[%7.1f h] spot price back to $%.4f/hr -> SpotCheck returns"
                  " the VM to the spot pool\n",
                  sim.Now().hours(), price);
    }
  });

  sim.RunUntil(SimTime() + SimDuration::Days(7));

  const NestedVm* vm = controller.GetVm(server);
  const auto report = controller.ComputeCostReport();
  const ActivityLog& log = controller.activity_log();
  const double down_s =
      log.Total(server, ActivityKind::kDowntime, SimTime(), sim.Now()).seconds();
  const double degraded_s =
      log.Total(server, ActivityKind::kDegraded, SimTime(), sim.Now()).seconds();
  const double life_h = log.Lifetime(server, SimTime(), sim.Now()).hours();

  std::printf("\n--- after one simulated week ---\n");
  std::printf("server state:          %s\n",
              std::string(NestedVmStateName(vm->state())).c_str());
  std::printf("migrations survived:   %lld (%lld revocation events, %lld"
              " evacuations, %lld repatriations)\n",
              static_cast<long long>(vm->migrations()),
              static_cast<long long>(controller.revocation_events()),
              static_cast<long long>(controller.engine().evacuations()),
              static_cast<long long>(controller.repatriations()));
  std::printf("total downtime:        %.1f s over %.1f h  (availability %.4f%%)\n",
              down_s, life_h, 100.0 * (1.0 - down_s / (life_h * 3600.0)));
  std::printf("degraded-perf time:    %.1f s\n", degraded_s);
  std::printf("cost:                  $%.4f/hr (incl. backup) vs $%.3f/hr"
              " on-demand -> %.1fx cheaper\n",
              report.avg_cost_per_vm_hour, OnDemandPrice(InstanceType::kM3Medium),
              OnDemandPrice(InstanceType::kM3Medium) / report.avg_cost_per_vm_hour);
  return 0;
}

// Figure 7: effect on application performance as the number of nested VMs
// checkpointing to a single backup server grows.
//
// Columns match the paper: "0" = no checkpointing, "1" = checkpointing with a
// dedicated backup server, then 10..50 VMs multiplexed on one server.
// SPECjbb reports throughput (bops), TPC-W reports response time (ms).

#include <cstdio>

#include "bench/csv_out.h"
#include "src/backup/backup_server.h"
#include "src/workload/workload_model.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  std::printf("=== Figure 7: VMs per backup server vs application performance ===\n");
  std::printf("%-6s  %-22s  %-22s\n", "VMs", "SPECjbb tput (bops)",
              "TPC-W resp. time (ms)");

  const TpcwModel tpcw;
  const SpecJbbModel specjbb;
  std::vector<std::vector<std::string>> csv_rows;
  for (int vms : {0, 1, 10, 20, 30, 35, 40, 45, 50}) {
    RunConditions tpcw_conditions;
    RunConditions jbb_conditions;
    if (vms > 0) {
      BackupServer server(BackupServerId(1), InstanceType::kM3Xlarge,
                          BackupServerPerf{}, /*max_vms=*/64);
      // Figure 7 runs the same benchmark in every VM; model the two columns
      // with their respective per-VM checkpoint demands.
      BackupServer jbb_server = server;
      for (int i = 1; i <= vms; ++i) {
        server.AddStream(NestedVmId(i), TpcwProfile().checkpoint_demand_mbps);
        jbb_server.AddStream(NestedVmId(i), SpecJbbProfile().checkpoint_demand_mbps);
      }
      tpcw_conditions.checkpointing = true;
      tpcw_conditions.backup_load_factor = server.CheckpointLoadFactor();
      jbb_conditions.checkpointing = true;
      jbb_conditions.backup_load_factor = jbb_server.CheckpointLoadFactor();
    }
    const double bops = specjbb.ThroughputBops(jbb_conditions);
    const double rt = tpcw.ResponseTimeMs(tpcw_conditions);
    std::printf("%-6d  %-22.0f  %-22.1f\n", vms, bops, rt);
    csv_rows.push_back(
        {std::to_string(vms), FormatCell(bops), FormatCell(rt)});
  }
  ExportSeriesCsv("fig7_backup_scaling",
                  {"vms_per_backup", "specjbb_bops", "tpcw_response_ms"}, csv_rows);
  std::printf("\npaper: TPC-W +15%% when checkpointing turns on; both workloads"
              " degrade ~30%% beyond ~35-40 VMs -> SpotCheck caps a backup\n"
              "server at 35-40 VMs (amortized cost $0.28/40 = $0.007 per"
              " VM-hour)\n");
  return 0;
}

// Figure 6: price dynamics across spot markets over six months.
//   (a) availability CDF vs. spot-price/on-demand-price bid ratio (m3.*),
//   (b) CDF of hourly percentage price jumps (log-scale magnitudes),
//   (c) price correlation across 18 availability zones,
//   (d) price correlation across 15 instance types.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/csv_out.h"
#include "src/market/market_analytics.h"
#include "src/market/spot_price_process.h"
#include "src/common/flags.h"

using namespace spotcheck;

namespace {

constexpr uint64_t kSeed = 2;
const SimDuration kHorizon = SimDuration::Days(180);

void PrintFig6a() {
  std::printf("--- Figure 6(a): availability CDF vs bid ratio (m3.*) ---\n");
  std::printf("%-8s", "ratio");
  const std::vector<InstanceType> types = {
      InstanceType::kM3Medium, InstanceType::kM3Large, InstanceType::kM3Xlarge,
      InstanceType::kM32xlarge};
  std::vector<PriceTrace> traces;
  for (InstanceType type : types) {
    std::printf("  %-11s", std::string(InstanceTypeName(type)).c_str());
    traces.push_back(
        GenerateMarketTrace(MarketKey{type, AvailabilityZone{0}}, kHorizon, kSeed));
  }
  std::printf("\n");
  const SimTime end = SimTime() + kHorizon;
  std::vector<std::vector<std::string>> rows;
  for (double ratio = 0.0; ratio <= 1.0001; ratio += 0.1) {
    std::printf("%-8.1f", ratio);
    std::vector<std::string> row = {FormatCell(ratio)};
    for (size_t i = 0; i < types.size(); ++i) {
      const double bid = ratio * OnDemandPrice(types[i]);
      const double availability = traces[i].FractionAtOrBelow(bid, SimTime(), end);
      std::printf("  %-11.4f", availability);
      row.push_back(FormatCell(availability));
    }
    rows.push_back(std::move(row));
    std::printf("\n");
  }
  ExportSeriesCsv("fig6a_availability_cdf",
                  {"bid_ratio", "m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge"},
                  rows);
  for (size_t i = 0; i < types.size(); ++i) {
    std::printf("knee of the %s availability-bid curve: ratio %.2f\n",
                std::string(InstanceTypeName(types[i])).c_str(),
                FindKneeRatio(traces[i], OnDemandPrice(types[i]), SimTime(), end,
                              0.01));
  }
  std::printf("(paper: long-tailed; availability at ratio 1.0 between ~0.90 and"
              " ~0.99; knee slightly below the on-demand price)\n\n");
}

void PrintFig6b() {
  std::printf("--- Figure 6(b): CDF of hourly %% price jumps (m3.*, pooled) ---\n");
  JumpDistributions pooled;
  for (InstanceType type : {InstanceType::kM3Medium, InstanceType::kM3Large,
                            InstanceType::kM3Xlarge, InstanceType::kM32xlarge}) {
    const PriceTrace trace =
        GenerateMarketTrace(MarketKey{type, AvailabilityZone{0}}, kHorizon, kSeed);
    const auto dists =
        ComputeJumpDistributions(trace, SimTime(), SimTime() + kHorizon);
    pooled.increasing.AddAll(dists.increasing.samples());
    pooled.decreasing.AddAll(dists.decreasing.samples());
  }
  std::printf("%-8s  %-16s  %-16s\n", "CDF", "increasing(%)", "decreasing(%)");
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    std::printf("%-8.2f  %-16.1f  %-16.1f\n", q, pooled.increasing.Quantile(q),
                pooled.decreasing.Quantile(q));
  }
  std::printf("(paper: jumps span 10^0..10^6 %%; large changes are the norm)\n\n");
}

void PrintCorrelationSummary(const char* label,
                             const std::vector<PriceTrace>& traces) {
  std::vector<const PriceTrace*> ptrs;
  for (const auto& trace : traces) {
    ptrs.push_back(&trace);
  }
  const auto matrix = PriceCorrelationMatrix(ptrs, SimTime(), SimTime() + kHorizon,
                                             SimDuration::Hours(1));
  double max_abs = 0.0;
  for (size_t i = 0; i < matrix.size(); ++i) {
    for (size_t j = 0; j < matrix.size(); ++j) {
      if (i != j) {
        max_abs = std::max(max_abs, std::abs(matrix[i][j]));
      }
    }
  }
  std::printf("%s: %zux%zu matrix, mean |off-diagonal| = %.4f, max = %.4f\n",
              label, matrix.size(), matrix.size(), MeanAbsOffDiagonal(matrix),
              max_abs);
  // A compact view of the first 6x6 corner.
  const size_t n = std::min<size_t>(6, matrix.size());
  for (size_t i = 0; i < n; ++i) {
    std::printf("  ");
    for (size_t j = 0; j < n; ++j) {
      std::printf("%6.2f", matrix[i][j]);
    }
    std::printf("\n");
  }
}

void PrintFig6c() {
  std::printf("--- Figure 6(c): price correlation across 18 zones (m3.large) ---\n");
  std::vector<PriceTrace> traces;
  for (int zone = 0; zone < 18; ++zone) {
    traces.push_back(GenerateMarketTrace(
        MarketKey{InstanceType::kM3Large, AvailabilityZone{zone}}, kHorizon, kSeed));
  }
  PrintCorrelationSummary("zones", traces);
  std::printf("(paper: uncorrelated across availability zones)\n\n");
}

void PrintFig6d() {
  std::printf("--- Figure 6(d): price correlation across 15 instance types ---\n");
  std::vector<PriceTrace> traces;
  for (const InstanceTypeInfo& info : InstanceCatalog()) {
    traces.push_back(GenerateMarketTrace(MarketKey{info.type, AvailabilityZone{0}},
                                         kHorizon, kSeed));
  }
  PrintCorrelationSummary("types", traces);
  std::printf("(paper: uncorrelated across instance types)\n");
}

}  // namespace

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  std::printf("=== Figure 6: spot market price dynamics (six months) ===\n\n");
  PrintFig6a();
  PrintFig6b();
  PrintFig6c();
  PrintFig6d();
  return 0;
}

// Figure 12: percentage of time a nested VM runs with degraded performance
// (checkpoint-frequency ramps during warnings, lazy-restore demand paging)
// over six months, per policy and mechanism.

#include <cstdio>

#include "bench/grid_util.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const GridBenchArgs args = ParseGridBenchArgs(argc, argv);
  std::printf("=== Figure 12: performance degradation during migration ===\n");
  PrintGrid("degraded time", "percent of VM lifetime", "fig12_degradation",
            [](const EvaluationResult& r) { return r.degradation_pct; }, args);
  std::printf("\npaper: lazy restore is the most available but most degraded"
              " variant; 1P-M degrades only ~0.02%% of the time (2.85 min\n"
              "over six months) and the worst policy (4P-ED) stays near"
              " ~0.25%%\n");
  return 0;
}

// Shared helpers for the policy x mechanism evaluation grid behind
// Figures 10, 11, 12 and Table 3.

#ifndef BENCH_GRID_UTIL_H_
#define BENCH_GRID_UTIL_H_

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/csv_out.h"
#include "src/chaos/chaos_config.h"
#include "src/common/flags.h"
#include "src/core/parallel_evaluation.h"
#include "src/obs/grid_summary.h"
#include "src/obs/trace.h"

namespace spotcheck {

// The five placement policies of Table 2, in the paper's plot order.
inline constexpr std::array<MappingPolicyKind, 5> kGridPolicies = {
    MappingPolicyKind::k1PM, MappingPolicyKind::k2PML, MappingPolicyKind::k4PED,
    MappingPolicyKind::k4PCost, MappingPolicyKind::k4PStability};

// The four mechanism variants plotted in Figures 10-12.
inline constexpr std::array<MigrationMechanism, 4> kGridMechanisms = {
    MigrationMechanism::kXenLiveMigration, MigrationMechanism::kYankFullRestore,
    MigrationMechanism::kSpotCheckFullRestore,
    MigrationMechanism::kSpotCheckLazyRestore};

inline EvaluationConfig GridConfig(MappingPolicyKind policy,
                                   MigrationMechanism mechanism) {
  EvaluationConfig config;
  config.policy = policy;
  config.mechanism = mechanism;
  config.num_vms = 40;                        // one backup server's worth
  config.horizon = SimDuration::Days(180);    // April-October 2014
  config.seed = 2;                            // m3.medium sees ~7 revocations
  return config;
}

// Shared grid-bench flags.
struct GridBenchArgs {
  // Worker count for RunPolicyEvaluationGrid (0 = SPOTCHECK_JOBS env, then
  // hardware concurrency).
  int jobs = 0;
  // When non-empty, each evaluation cell writes
  // <dir>/<bench>/<cell>/run_report.json (metrics, controller events,
  // summary).
  std::string run_report_dir;
  // When non-empty, span tracing is enabled for every cell and each writes
  // <dir>/<bench>/<cell>/trace.json (Chrome/Perfetto trace-event format).
  std::string trace_dir;
  // When non-empty, the flight recorder is enabled for every cell: sim-time
  // telemetry sampling plus the event-cost profiler. Each cell writes
  // <dir>/<bench>/<cell>/timeseries.json (full columnar series), its
  // run_report.json gains "profile"/"timeseries" sections, and
  // grid_summary.json gains the merged "hotspots" roll-up.
  std::string timeseries_dir;
  // Fault-injection intensity (0 = off, 1-3 = ChaosConfigForLevel presets)
  // and the schedule seed. Level 0 leaves every cell bit-identical to a
  // chaos-free run regardless of the seed.
  int chaos_level = 0;
  uint64_t chaos_seed = 1337;
};

// Parses --jobs=N, --run-report-dir=PATH, --trace-dir=PATH,
// --timeseries-dir=PATH, --chaos-level=L, --chaos-seed=S; any unknown flag
// is a typo and exits 2.
inline GridBenchArgs ParseGridBenchArgs(int argc, const char* const* argv) {
  const FlagParser flags(argc, argv);
  GridBenchArgs args;
  args.jobs = static_cast<int>(flags.GetInt("jobs", 0));
  args.run_report_dir = flags.GetString("run-report-dir", "");
  args.trace_dir = flags.GetString("trace-dir", "");
  args.timeseries_dir = flags.GetString("timeseries-dir", "");
  args.chaos_level = static_cast<int>(flags.GetInt("chaos-level", 0));
  args.chaos_seed = static_cast<uint64_t>(flags.GetInt("chaos-seed", 1337));
  flags.ExitIfUnknownFlags(
      "--jobs=N, --run-report-dir=PATH, --trace-dir=PATH, "
      "--timeseries-dir=PATH, --chaos-level=L, --chaos-seed=S");
  return args;
}

// Writes one cell's run report to <dir>/<bench>/<cell>/run_report.json.
// No-op when reports are disabled; I/O failures warn but never abort the
// bench.
inline void WriteCellRunReport(const std::string& dir, const std::string& bench,
                               const std::string& cell,
                               const EvaluationResult& result) {
  if (dir.empty() || result.report == nullptr) {
    return;
  }
  const std::string path = dir + "/" + bench + "/" + cell + "/run_report.json";
  if (!result.report->WriteTo(path)) {
    std::fprintf(stderr, "warning: could not write run report %s\n",
                 path.c_str());
  }
}

// Per-cell + grid-level artifacts: run reports (--run-report-dir), Chrome
// traces (--trace-dir), one merged grid_summary.json next to the cell
// directories of whichever artifact dir is active (including the
// per-worker "contention" breakdown when the runner produced one), and --
// when the pool profiled itself -- <trace-dir>/<bench>/grid_workers.json
// with one wall-clock track per grid worker.
inline void WriteGridArtifacts(const GridBenchArgs& args,
                               const std::string& bench,
                               const std::vector<std::string>& cells,
                               const std::vector<EvaluationResult>& results,
                               const SpanTracer* worker_tracer = nullptr,
                               const GridContentionReport* contention = nullptr) {
  if (args.run_report_dir.empty() && args.trace_dir.empty() &&
      args.timeseries_dir.empty()) {
    return;
  }
  if (worker_tracer != nullptr && !args.trace_dir.empty()) {
    const std::string path =
        args.trace_dir + "/" + bench + "/grid_workers.json";
    if (!worker_tracer->WriteTo(path)) {
      std::fprintf(stderr, "warning: could not write worker trace %s\n",
                   path.c_str());
    }
  }
  std::vector<std::shared_ptr<const RunReport>> reports;
  for (size_t i = 0; i < results.size(); ++i) {
    WriteCellRunReport(args.run_report_dir, bench, cells[i], results[i]);
    if (!args.trace_dir.empty() && results[i].trace != nullptr) {
      const std::string path =
          args.trace_dir + "/" + bench + "/" + cells[i] + "/trace.json";
      if (!results[i].trace->WriteTo(path)) {
        std::fprintf(stderr, "warning: could not write trace %s\n",
                     path.c_str());
      }
    }
    if (!args.timeseries_dir.empty() && results[i].timeseries != nullptr) {
      const std::string path = args.timeseries_dir + "/" + bench + "/" +
                               cells[i] + "/timeseries.json";
      if (!results[i].timeseries->WriteTo(path)) {
        std::fprintf(stderr, "warning: could not write timeseries %s\n",
                     path.c_str());
      }
    }
    if (results[i].report != nullptr) {
      reports.push_back(results[i].report);
    }
  }
  const std::string& summary_root =
      !args.run_report_dir.empty()
          ? args.run_report_dir
          : (!args.trace_dir.empty() ? args.trace_dir : args.timeseries_dir);
  const std::string summary_path =
      summary_root + "/" + bench + "/grid_summary.json";
  if (!WriteGridSummary(summary_path, reports, /*max_slowest=*/10, contention)) {
    std::fprintf(stderr, "warning: could not write grid summary %s\n",
                 summary_path.c_str());
  }
}

// Prints one figure's grid and exports it to bench_out/<csv_name>.csv;
// `metric` extracts the plotted value. All 20 cells run up front on the
// parallel grid runner (`jobs` workers; 0 = auto), then print in plot order.
template <typename MetricFn>
void PrintGrid(const char* header, const char* unit, const char* csv_name,
               MetricFn metric, const GridBenchArgs& args = {}) {
  std::vector<EvaluationConfig> configs;
  std::vector<std::string> cells;
  configs.reserve(kGridPolicies.size() * kGridMechanisms.size());
  cells.reserve(configs.capacity());
  for (MappingPolicyKind policy : kGridPolicies) {
    for (MigrationMechanism mechanism : kGridMechanisms) {
      EvaluationConfig config = GridConfig(policy, mechanism);
      config.chaos = ChaosConfigForLevel(args.chaos_level, args.chaos_seed);
      config.collect_trace = !args.trace_dir.empty();
      // --timeseries-dir turns on the whole flight recorder: telemetry
      // sampling plus event-cost profiling (both behavior-free).
      config.collect_timeseries = !args.timeseries_dir.empty();
      config.collect_profile = !args.timeseries_dir.empty();
      cells.push_back(std::string(MappingPolicyName(policy)) + "_" +
                      std::string(MigrationMechanismName(mechanism)));
      config.report_label = cells.back();
      configs.push_back(config);
    }
  }
  // With --trace-dir the pool also profiles itself (one wall-clock track
  // per worker), so grid-scaling regressions show up in the artifacts.
  std::unique_ptr<SpanTracer> worker_tracer;
  if (!args.trace_dir.empty()) {
    worker_tracer = std::make_unique<SpanTracer>();
  }
  GridRunOptions grid_options;
  grid_options.jobs = args.jobs;
  grid_options.worker_tracer = worker_tracer.get();
  GridContentionReport contention;
  grid_options.contention = &contention;
  const std::vector<EvaluationResult> results =
      RunPolicyEvaluationGrid(configs, grid_options);
  WriteGridArtifacts(args, csv_name, cells, results, worker_tracer.get(),
                     &contention);

  std::vector<std::string> csv_header = {"policy"};
  std::printf("%-10s", "policy");
  for (MigrationMechanism mechanism : kGridMechanisms) {
    std::printf("  %24s", std::string(MigrationMechanismName(mechanism)).c_str());
    csv_header.emplace_back(MigrationMechanismName(mechanism));
  }
  std::printf("\n");
  std::vector<std::vector<std::string>> csv_rows;
  size_t cell = 0;
  for (MappingPolicyKind policy : kGridPolicies) {
    std::printf("%-10s", std::string(MappingPolicyName(policy)).c_str());
    std::vector<std::string> csv_row = {std::string(MappingPolicyName(policy))};
    for (size_t m = 0; m < kGridMechanisms.size(); ++m) {
      const EvaluationResult& result = results[cell++];
      std::printf("  %24.6f", metric(result));
      csv_row.push_back(FormatCell(metric(result)));
    }
    csv_rows.push_back(std::move(csv_row));
    std::printf("\n");
  }
  std::printf("(%s: %s)\n", header, unit);
  ExportSeriesCsv(csv_name, csv_header, csv_rows);
}

}  // namespace spotcheck

#endif  // BENCH_GRID_UTIL_H_

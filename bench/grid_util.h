// Shared helpers for the policy x mechanism evaluation grid behind
// Figures 10, 11, 12 and Table 3.

#ifndef BENCH_GRID_UTIL_H_
#define BENCH_GRID_UTIL_H_

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/csv_out.h"
#include "src/core/evaluation.h"

namespace spotcheck {

// The five placement policies of Table 2, in the paper's plot order.
inline constexpr std::array<MappingPolicyKind, 5> kGridPolicies = {
    MappingPolicyKind::k1PM, MappingPolicyKind::k2PML, MappingPolicyKind::k4PED,
    MappingPolicyKind::k4PCost, MappingPolicyKind::k4PStability};

// The four mechanism variants plotted in Figures 10-12.
inline constexpr std::array<MigrationMechanism, 4> kGridMechanisms = {
    MigrationMechanism::kXenLiveMigration, MigrationMechanism::kYankFullRestore,
    MigrationMechanism::kSpotCheckFullRestore,
    MigrationMechanism::kSpotCheckLazyRestore};

inline EvaluationConfig GridConfig(MappingPolicyKind policy,
                                   MigrationMechanism mechanism) {
  EvaluationConfig config;
  config.policy = policy;
  config.mechanism = mechanism;
  config.num_vms = 40;                        // one backup server's worth
  config.horizon = SimDuration::Days(180);    // April-October 2014
  config.seed = 2;                            // m3.medium sees ~7 revocations
  return config;
}

// Prints one figure's grid and exports it to bench_out/<csv_name>.csv;
// `metric` extracts the plotted value.
template <typename MetricFn>
void PrintGrid(const char* header, const char* unit, const char* csv_name,
               MetricFn metric) {
  std::vector<std::string> csv_header = {"policy"};
  std::printf("%-10s", "policy");
  for (MigrationMechanism mechanism : kGridMechanisms) {
    std::printf("  %24s", std::string(MigrationMechanismName(mechanism)).c_str());
    csv_header.emplace_back(MigrationMechanismName(mechanism));
  }
  std::printf("\n");
  std::vector<std::vector<std::string>> csv_rows;
  for (MappingPolicyKind policy : kGridPolicies) {
    std::printf("%-10s", std::string(MappingPolicyName(policy)).c_str());
    std::vector<std::string> csv_row = {std::string(MappingPolicyName(policy))};
    for (MigrationMechanism mechanism : kGridMechanisms) {
      const EvaluationResult result =
          RunPolicyEvaluation(GridConfig(policy, mechanism));
      std::printf("  %24.6f", metric(result));
      csv_row.push_back(FormatCell(metric(result)));
    }
    csv_rows.push_back(std::move(csv_row));
    std::printf("\n");
  }
  std::printf("(%s: %s)\n", header, unit);
  ExportSeriesCsv(csv_name, csv_header, csv_rows);
}

}  // namespace spotcheck

#endif  // BENCH_GRID_UTIL_H_

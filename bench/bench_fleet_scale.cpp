// Fleet-scale storage benchmark: how far the simulator + layered controller
// stretch in concurrent nested VMs, and what each VM costs in memory.
//
// For each tier (1k / 10k / 100k / 1M VMs, capped by --max-vms) the bench
// builds a fresh deployment, requests every VM up front, runs the simulator
// until the placement burst settles, and reports:
//
//   * events/s   -- simulator events executed per wall-clock second over the
//                   request + settle window (the kernel + controller path),
//   * bytes/VM   -- resident-set growth of the whole tier divided by its VM
//                   count (arena tables, host records, native instance
//                   records, attachment chains, network bindings, backups).
//
// The structured event log is disabled (config.collect_event_log = false) so
// a million placements do not accumulate an unbounded observational vector;
// everything else runs the production code path, and ValidateInvariants is
// checked at full fleet size after every tier (outside the timed window).
//
// Emits BENCH_fleet_scale.json (override with --out=PATH) for the CI gate in
// scripts/check_fleet_scale.py, which enforces a bytes/VM ceiling and an
// events/s floor, and that bytes/VM stays flat from 10k to 100k. A tier at
// or above 10k whose bytes/VM exceeds --max-bytes-per-vm fails the run.
//
// Every tier runs with an EventCostProfiler attached (behavior-free, 1-in-N
// sampled), so each tiers/<N> entry carries a "profile" section; diffing the
// tiers with scripts/profile_fleet.py names the super-linear subsystem
// behind the events/s cliff.
//
// Flags:
//   --max-vms=N           largest tier to run (default 1000000)
//   --settle-hours=H      simulated hours after the request burst (default 2)
//   --max-bytes-per-vm=B  per-VM memory budget, 0 disables (default 8192)
//   --out=PATH            JSON output path (default BENCH_fleet_scale.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/memory_probe.h"
#include "src/core/controller.h"
#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/sim/simulator.h"
#include "src/virt/host_vm.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct TierResult {
  int num_vms = 0;
  int running_vms = 0;
  int64_t events_executed = 0;
  double wall_s = 0.0;
  double events_per_second = 0.0;
  int64_t rss_delta_bytes = 0;
  double bytes_per_vm = 0.0;
  int64_t peak_rss_bytes = 0;
  size_t num_hosts = 0;
  bool invariants_ok = false;
  // Event-cost profile of the tier (kernel dispatch, calendar maintenance,
  // pool index churn). Always attached: the profiler is behavior-free and
  // its overhead is bounded by the 1-in-N sampling.
  std::shared_ptr<EventCostProfiler> profile;
};

TierResult RunTier(int num_vms, double settle_hours) {
  TierResult result;
  result.num_vms = num_vms;

  const int64_t rss_before = CurrentRssBytes();

  ProfilerConfig profiler_config;
  profiler_config.seed = 2;  // match the controller seed: reproducible subset
  result.profile = std::make_shared<EventCostProfiler>(profiler_config);

  Simulator sim;
  sim.set_profiler(result.profile.get());
  MarketPlace markets(&sim);
  NativeCloudConfig cloud_config;
  // Synthetic price history long enough to outlive the settle window.
  cloud_config.market_horizon = SimDuration::Days(1);
  cloud_config.market_seed = 2;
  cloud_config.latency_seed = 2 ^ 0xfeed;
  NativeCloud cloud(&sim, &markets, cloud_config);

  ControllerConfig config;
  config.seed = 2;
  config.collect_event_log = false;
  config.profiler = result.profile.get();
  SpotCheckController controller(&sim, &cloud, &markets, config);
  // The fleet is many customers, not one giant tenant: each customer gets a
  // /24 in the VPC (254 usable addresses), so a million-VM fleet needs
  // thousands of subnets -- exactly the multi-tenant shape the north star
  // ("millions of users") implies. 200 VMs/customer leaves address headroom.
  constexpr int kVmsPerCustomer = 200;
  std::vector<CustomerId> customers;
  customers.reserve(static_cast<size_t>(num_vms / kVmsPerCustomer) + 1);

  const auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < num_vms; ++i) {
    if (i % kVmsPerCustomer == 0) {
      customers.push_back(controller.RegisterCustomer(
          "fleet-" + std::to_string(customers.size())));
    }
    controller.RequestServer(customers.back());
  }
  sim.RunUntil(SimTime() + SimDuration::Hours(settle_hours));
  result.wall_s = SecondsSince(started);

  result.events_executed = sim.events_executed();
  result.events_per_second =
      result.wall_s > 0.0
          ? static_cast<double>(result.events_executed) / result.wall_s
          : 0.0;
  result.running_vms = controller.RunningVmCount();
  result.num_hosts = controller.Hosts().size();
  result.rss_delta_bytes = CurrentRssBytes() - rss_before;
  result.bytes_per_vm =
      static_cast<double>(result.rss_delta_bytes) / num_vms;
  result.peak_rss_bytes = PeakRssBytes();

  std::string error;
  result.invariants_ok = controller.ValidateInvariants(&error);
  if (!result.invariants_ok) {
    std::fprintf(stderr, "invariant violation at %d VMs: %s\n", num_vms,
                 error.c_str());
  }
  return result;
}

int Run(int argc, const char* const* argv) {
  const FlagParser flags(argc, argv);
  const int64_t max_vms = flags.GetInt("max-vms", 1000000);
  const double settle_hours = flags.GetDouble("settle-hours", 2.0);
  const int64_t max_bytes_per_vm = flags.GetInt("max-bytes-per-vm", 8192);
  const std::string out_path = flags.GetString("out", "BENCH_fleet_scale.json");
  flags.ExitIfUnknownFlags(
      "--max-vms=N, --settle-hours=H, --max-bytes-per-vm=B, --out=PATH");

  std::vector<int> tiers;
  for (int tier : {1000, 10000, 100000, 1000000}) {
    if (tier <= max_vms) {
      tiers.push_back(tier);
    }
  }
  if (tiers.empty()) {
    std::fprintf(stderr, "error: --max-vms=%lld admits no tier (min 1000)\n",
                 static_cast<long long>(max_vms));
    return 2;
  }

  std::printf("fleet scale bench: tiers up to %d VMs, %.1fh settle window\n",
              tiers.back(), settle_hours);
  std::printf("%10s  %10s  %12s  %12s  %10s  %8s\n", "vms", "running",
              "events/s", "bytes/vm", "hosts", "wall_s");

  bool ok = true;
  std::vector<TierResult> results;
  for (int tier : tiers) {
    TierResult result = RunTier(tier, settle_hours);
    std::printf("%10d  %10d  %12.0f  %12.1f  %10zu  %8.2f\n", result.num_vms,
                result.running_vms, result.events_per_second,
                result.bytes_per_vm, result.num_hosts, result.wall_s);
    ok = ok && result.invariants_ok;
    // The 1k tier is too small for a stable RSS reading; budget-check the
    // rest (allocator reuse across ascending tiers only shrinks the delta,
    // so a breach here is a real breach).
    if (max_bytes_per_vm > 0 && tier >= 10000 &&
        result.bytes_per_vm > static_cast<double>(max_bytes_per_vm)) {
      std::fprintf(stderr,
                   "FAIL: %d-VM tier uses %.1f bytes/VM, over the %lld budget\n",
                   tier, result.bytes_per_vm,
                   static_cast<long long>(max_bytes_per_vm));
      ok = false;
    }
    results.push_back(result);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("_context");
  json.BeginObject();
  json.Key("hardware_concurrency");
  json.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Key("max_vms");
  json.Int(max_vms);
  json.Key("settle_hours");
  json.Double(settle_hours);
  json.Key("max_bytes_per_vm");
  json.Int(max_bytes_per_vm);
  json.Key("sizeof_nested_vm");
  json.Int(static_cast<int64_t>(sizeof(NestedVm)));
  json.Key("sizeof_host_vm");
  json.Int(static_cast<int64_t>(sizeof(HostVm)));
  json.EndObject();
  for (const TierResult& result : results) {
    json.Key("tiers/" + std::to_string(result.num_vms));
    json.BeginObject();
    json.Key("num_vms");
    json.Int(result.num_vms);
    json.Key("running_vms");
    json.Int(result.running_vms);
    json.Key("num_hosts");
    json.Int(static_cast<int64_t>(result.num_hosts));
    json.Key("events_executed");
    json.Int(result.events_executed);
    json.Key("wall_s");
    json.Double(result.wall_s);
    json.Key("events_per_second");
    json.Double(result.events_per_second);
    json.Key("rss_delta_bytes");
    json.Int(result.rss_delta_bytes);
    json.Key("bytes_per_vm");
    json.Double(result.bytes_per_vm);
    json.Key("peak_rss_bytes");
    json.Int(result.peak_rss_bytes);
    json.Key("invariants_ok");
    json.Bool(result.invariants_ok);
    json.Key("profile");
    if (result.profile != nullptr) {
      result.profile->WriteJson(json);
    } else {
      json.Null();
    }
    json.EndObject();
  }
  json.EndObject();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = json.str();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "[fleet scale json written to %s]\n", out_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace spotcheck

int main(int argc, char** argv) { return spotcheck::Run(argc, argv); }

// Ablation (Section 4.3): what absorbs a revocation storm?
//   * nothing: every evacuated VM waits for a fresh on-demand launch,
//   * hot spares: idle on-demand hosts standing by (cost while idle),
//   * staging servers: under-utilized hosts in other stable spot pools take
//     the VMs temporarily (no idle cost, double migrations),
// plus the stateless-service discount: replicas that need no backup server
// and no migration at all.

#include <cstdio>
#include <optional>
#include <string>

#include "bench/grid_util.h"
#include "src/common/flags.h"
#include "src/policy/policy_spec.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  // Optional strategy-layer override: --policy="bid=multiple:2,map=4p-cost"
  // runs every variant under that spec instead of 4P-ED.
  const std::string policy_flag = flags.GetString("policy", "");
  flags.ExitIfUnknownFlags("--policy=SPEC");
  std::optional<PolicySpec> policy_spec;
  if (!policy_flag.empty()) {
    policy_spec = ParsePolicySpecOrExit(policy_flag);
  }

  std::printf("=== Ablation: storm absorption & stateless mode (%s, six"
              " months) ===\n",
              policy_spec.has_value() ? policy_spec->ToString().c_str()
                                      : "4P-ED");
  std::printf("%-22s %12s %12s %10s %10s %10s %10s\n", "variant", "cost($/hr)",
              "unavail(%)", "evacs", "stagings", "respawns", "backups");

  struct Variant {
    const char* name;
    int hot_spares;
    bool staging;
    double stateless;
  };
  const Variant kVariants[] = {
      {"baseline", 0, false, 0.0},
      {"4 hot spares", 4, false, 0.0},
      {"staging servers", 0, true, 0.0},
      {"half stateless", 0, false, 0.5},
      {"all stateless", 0, false, 1.0},
  };
  for (const Variant& variant : kVariants) {
    EvaluationConfig config = GridConfig(MappingPolicyKind::k4PED,
                                         MigrationMechanism::kSpotCheckLazyRestore);
    config.policy_spec = policy_spec;
    config.hot_spares = variant.hot_spares;
    config.use_staging = variant.staging;
    config.stateless_fraction = variant.stateless;
    const EvaluationResult result = RunPolicyEvaluation(config);
    std::printf("%-22s %12.4f %12.5f %10lld %10lld %10lld %10d\n", variant.name,
                result.avg_cost_per_vm_hour, result.unavailability_pct,
                static_cast<long long>(result.evacuations),
                static_cast<long long>(result.stagings),
                static_cast<long long>(result.stateless_respawns),
                result.num_backup_servers);
  }
  std::printf("\nexpected: hot spares buy nothing here (on-demand launches"
              " already beat the warning) but cost idle dollars; staging\n"
              "absorbs storms at zero idle cost; stateless replicas shed the"
              " backup overhead and migrate for free\n");
  return 0;
}

// Machine-readable microbenchmark output.
//
// JsonEmitReporter wraps the normal console reporter and additionally
// records every benchmark run as {name -> {ns_per_op, items_per_second,
// iterations}} in a JSON file (default BENCH_micro.json in the working
// directory, overridable via the SPOTCHECK_BENCH_JSON environment
// variable). Future PRs diff this file to track the perf trajectory.

#ifndef BENCH_EMIT_BENCH_JSON_H_
#define BENCH_EMIT_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace spotcheck {

class JsonEmitReporter : public benchmark::ConsoleReporter {
 public:
  JsonEmitReporter() {
    const char* env = std::getenv("SPOTCHECK_BENCH_JSON");
    path_ = (env != nullptr && env[0] != '\0') ? env : "BENCH_micro.json";
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      Entry entry;
      entry.name = run.benchmark_name();
      entry.ns_per_op = run.iterations > 0
                            ? run.real_accumulated_time /
                                  static_cast<double>(run.iterations) * 1e9
                            : 0.0;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        entry.has_items_per_second = true;
        entry.items_per_second = static_cast<double>(items->second.value);
      }
      entry.iterations = static_cast<int64_t>(run.iterations);
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    ConsoleReporter::Finalize();
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "[could not write %s]\n", path_.c_str());
      return;
    }
    std::fprintf(out, "{\n");
    // Machine context first: perf gates that consume this file (the grid
    // scaling check) must judge ratios against the cores of the machine
    // that MEASURED them, not whatever machine later runs the gate.
    std::fprintf(out,
                 "  \"_context\": {\"hardware_concurrency\": %u}%s\n",
                 std::thread::hardware_concurrency(),
                 entries_.empty() ? "" : ",");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      // items_per_second is only meaningful for benchmarks that set an item
      // count; omit the field (rather than a misleading 0.000) otherwise.
      if (e.has_items_per_second) {
        std::fprintf(out,
                     "  \"%s\": {\"ns_per_op\": %.3f, \"items_per_second\": "
                     "%.3f, \"iterations\": %lld}%s\n",
                     e.name.c_str(), e.ns_per_op, e.items_per_second,
                     static_cast<long long>(e.iterations),
                     i + 1 < entries_.size() ? "," : "");
      } else {
        std::fprintf(out,
                     "  \"%s\": {\"ns_per_op\": %.3f, \"iterations\": %lld}%s\n",
                     e.name.c_str(), e.ns_per_op,
                     static_cast<long long>(e.iterations),
                     i + 1 < entries_.size() ? "," : "");
      }
    }
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::fprintf(stderr, "[benchmark json written to %s]\n", path_.c_str());
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op = 0.0;
    bool has_items_per_second = false;
    double items_per_second = 0.0;
    int64_t iterations = 0;
  };

  std::string path_;
  std::vector<Entry> entries_;
};

}  // namespace spotcheck

#endif  // BENCH_EMIT_BENCH_JSON_H_

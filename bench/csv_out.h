// CSV export for benchmark series: every figure bench also drops its data
// under bench_out/ so the series can be re-plotted without re-running.

#ifndef BENCH_CSV_OUT_H_
#define BENCH_CSV_OUT_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/csv.h"

namespace spotcheck {

// Writes header + rows to bench_out/<name>.csv (creating the directory);
// prints where the data went. Failures are reported, not fatal -- the
// console output remains the primary artifact.
inline void ExportSeriesCsv(const std::string& name,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  CsvWriter writer;
  writer.AddRow(header);
  for (const auto& row : rows) {
    writer.AddRow(row);
  }
  const std::string path = "bench_out/" + name + ".csv";
  if (writer.WriteFile(path)) {
    std::printf("[series written to %s]\n", path.c_str());
  } else {
    std::printf("[could not write %s]\n", path.c_str());
  }
}

inline std::string FormatCell(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace spotcheck

#endif  // BENCH_CSV_OUT_H_

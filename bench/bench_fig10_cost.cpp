// Figure 10: average cost per nested VM ($/hr) under the five
// customer-to-pool mapping policies of Table 2, for each migration-mechanism
// variant. Six simulated months, 40 VMs, on-demand-price bids.

#include <cstdio>

#include "bench/grid_util.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const GridBenchArgs args = ParseGridBenchArgs(argc, argv);
  std::printf("=== Figure 10: average cost per VM under various policies ===\n");
  PrintGrid("average cost per VM", "$ per hour", "fig10_cost", [](const EvaluationResult& r) {
    return r.avg_cost_per_vm_hour;
  }, args);
  std::printf("\npaper: ~$0.015/hr for 1P-M (vs $0.07 on-demand -> ~5x saving);"
              " multi-pool policies cost marginally more; the Xen-live\n"
              "baseline is cheapest because it needs no backup servers"
              " (but risks losing VM state)\n");
  return 0;
}

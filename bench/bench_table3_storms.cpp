// Table 3: probability of the maximum number of concurrent revocations for
// 1-, 2-, and 4-pool policies (N = number of VMs backed by one server).
// Diversifying across pools eliminates full-fleet revocation storms at the
// price of more frequent, smaller migrations.

#include <cstdio>
#include <iterator>

#include "bench/grid_util.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const GridBenchArgs args = ParseGridBenchArgs(argc, argv);
  const struct {
    const char* label;
    MappingPolicyKind policy;
  } kRows[] = {{"1-Pool", MappingPolicyKind::k1PM},
               {"2-Pool", MappingPolicyKind::k2PML},
               {"4-Pool", MappingPolicyKind::k4PED}};

  // Both table variants (independent and regionally-coupled markets) are one
  // batch for the parallel grid runner: six independent six-month cells.
  std::vector<EvaluationConfig> configs;
  std::vector<std::string> cells;
  for (const bool coupled : {false, true}) {
    for (const auto& row : kRows) {
      EvaluationConfig config =
          GridConfig(row.policy, MigrationMechanism::kSpotCheckLazyRestore);
      if (coupled) {
        config.market_coupling = 0.5;
        config.shared_events_per_day = 0.1;
      }
      config.chaos = ChaosConfigForLevel(args.chaos_level, args.chaos_seed);
      config.collect_trace = !args.trace_dir.empty();
      config.collect_timeseries = !args.timeseries_dir.empty();
      config.collect_profile = !args.timeseries_dir.empty();
      cells.push_back(std::string(row.label) +
                      (coupled ? "_coupled" : "_independent"));
      config.report_label = cells.back();
      configs.push_back(config);
    }
  }
  // Like PrintGrid: with --trace-dir the pool profiles itself, and the
  // contention report lands in grid_summary.json's "contention" section.
  std::unique_ptr<SpanTracer> worker_tracer;
  if (!args.trace_dir.empty()) {
    worker_tracer = std::make_unique<SpanTracer>();
  }
  GridRunOptions grid_options;
  grid_options.jobs = args.jobs;
  grid_options.worker_tracer = worker_tracer.get();
  GridContentionReport contention;
  grid_options.contention = &contention;
  const std::vector<EvaluationResult> results =
      RunPolicyEvaluationGrid(configs, grid_options);
  WriteGridArtifacts(args, "table3_storms", cells, results, worker_tracer.get(),
                     &contention);

  std::printf("=== Table 3: probability of concurrent revocations (N=40 VMs) ===\n");
  std::printf("%-8s  %12s  %12s  %12s  %12s\n", "pools", "N/4", "N/2", "3N/4", "N");
  for (size_t i = 0; i < std::size(kRows); ++i) {
    const EvaluationResult& result = results[i];
    std::printf("%-8s  %12.2e  %12.2e  %12.2e  %12.2e\n", kRows[i].label,
                result.storms.quarter, result.storms.half,
                result.storms.three_quarters, result.storms.all);
  }
  std::printf("\npaper (Table 3): 1-Pool only ever loses all N at once"
              " (1.74e-4); 2-Pool concentrates at N/2 (3.75e-3) with a\n"
              "near-zero chance of N (2.25e-5); 4-Pool concentrates at N/4"
              " (7.4e-3) and never loses everything\n");

  // With fully independent markets the coincidence buckets (the paper's
  // 2.25e-5-class entries) are empty; regionally-coupled spikes populate
  // them, showing what diversification can and cannot absorb.
  std::printf("\n=== variant: regionally-coupled markets (coupling 0.5,"
              " 0.1 shared events/day) ===\n");
  std::printf("%-8s  %12s  %12s  %12s  %12s\n", "pools", "N/4", "N/2", "3N/4", "N");
  for (size_t i = 0; i < std::size(kRows); ++i) {
    const EvaluationResult& result = results[std::size(kRows) + i];
    std::printf("%-8s  %12.2e  %12.2e  %12.2e  %12.2e\n", kRows[i].label,
                result.storms.quarter, result.storms.half,
                result.storms.three_quarters, result.storms.all);
  }
  std::printf("(coupled spikes can defeat diversification: even multi-pool"
              " policies occasionally lose large fleet fractions at once)\n");
  return 0;
}

// Policy frontier: the five Table 2 policies vs the strategy-layer families
// (index-tracking allocator, adaptive rebidder), all under SpotCheck lazy
// restore, scored on the three axes that matter for a derivative cloud --
// cost ($/VM-hour), availability (%), and migration churn (evacuations +
// repatriations + stagings). Emits BENCH_policy_frontier.json (override with
// --out=PATH) so the frontier is machine-diffable across PRs; CI runs it as
// a smoke test and uploads the artifact.
//
// Flags:
//   --jobs=N       grid workers (0 = SPOTCHECK_JOBS env, then hardware)
//   --days=N       horizon in days (default 180, the paper's window)
//   --vms=N        fleet size per cell (default 40)
//   --seed=N       market seed (default 2, as the figure benches)
//   --policy=SPEC  append one extra row with the given strategy spec
//   --out=PATH     JSON output path (default BENCH_policy_frontier.json)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/core/parallel_evaluation.h"
#include "src/obs/json.h"
#include "src/policy/policy_spec.h"

namespace spotcheck {
namespace {

struct FrontierRow {
  std::string name;
  std::string spec;
};

int Run(int argc, const char* const* argv) {
  const FlagParser flags(argc, argv);
  const int jobs = static_cast<int>(flags.GetInt("jobs", 0));
  const int days = static_cast<int>(flags.GetInt("days", 180));
  const int vms = static_cast<int>(flags.GetInt("vms", 40));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2));
  const std::string extra_policy = flags.GetString("policy", "");
  const std::string out_path =
      flags.GetString("out", "BENCH_policy_frontier.json");
  flags.ExitIfUnknownFlags(
      "--jobs=N, --days=N, --vms=N, --seed=N, --policy=SPEC, --out=PATH");

  // Every row goes through the strategy layer -- the Table 2 policies by
  // their registry names, so the whole frontier exercises one code path.
  std::vector<FrontierRow> rows = {
      {"1P-M", "bid=on-demand,map=1p-m"},
      {"2P-ML", "bid=on-demand,map=2p-ml"},
      {"4P-ED", "bid=on-demand,map=4p-ed"},
      {"4P-COST", "bid=on-demand,map=4p-cost"},
      {"4P-ST", "bid=on-demand,map=4p-st"},
      {"INDEX", "bid=on-demand,map=index-track"},
      {"ADAPT-ED", "bid=adaptive:2,map=4p-ed"},
      {"ADAPT-IDX", "bid=adaptive:2,map=index-track"},
  };
  if (!extra_policy.empty()) {
    rows.push_back({"CUSTOM", extra_policy});
  }

  std::vector<EvaluationConfig> configs;
  configs.reserve(rows.size());
  for (const FrontierRow& row : rows) {
    EvaluationConfig config;
    config.policy_spec = ParsePolicySpecOrExit(row.spec);
    // Proactive migration on for every row: a no-op for bids without
    // proactive support, so the paper policies stay at their Table 2
    // numbers while the adaptive bidders get to use their headroom.
    config.proactive = true;
    config.num_vms = vms;
    config.horizon = SimDuration::Days(days);
    config.seed = seed;
    config.report_label = row.name;
    configs.push_back(config);
  }

  GridRunOptions options;
  options.jobs = jobs;
  const std::vector<EvaluationResult> results =
      RunPolicyEvaluationGrid(configs, options);

  std::printf("=== Policy frontier: %d VMs, %d days, seed %llu ===\n", vms,
              days, static_cast<unsigned long long>(seed));
  std::printf("%-10s %-34s %12s %14s %8s %8s\n", "policy", "spec",
              "cost($/hr)", "availability", "churn", "revocs");

  JsonWriter json;
  json.BeginObject();
  json.Key("_context");
  json.BeginObject();
  json.Key("hardware_concurrency");
  json.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Key("vms");
  json.Int(vms);
  json.Key("days");
  json.Int(days);
  json.Key("seed");
  json.Int(static_cast<int64_t>(seed));
  json.EndObject();
  for (size_t i = 0; i < rows.size(); ++i) {
    const EvaluationResult& result = results[i];
    const int64_t churn =
        result.evacuations + result.repatriations + result.stagings;
    const double availability = 100.0 - result.unavailability_pct;
    std::printf("%-10s %-34s %12.4f %13.5f%% %8lld %8lld\n",
                rows[i].name.c_str(), rows[i].spec.c_str(),
                result.avg_cost_per_vm_hour, availability,
                static_cast<long long>(churn),
                static_cast<long long>(result.revocation_events));
    json.Key(rows[i].name);
    json.BeginObject();
    json.Key("policy_spec");
    json.String(rows[i].spec);
    json.Key("cost_per_vm_hour");
    json.Double(result.avg_cost_per_vm_hour);
    json.Key("availability_pct");
    json.Double(availability);
    json.Key("unavailability_pct");
    json.Double(result.unavailability_pct);
    json.Key("degradation_pct");
    json.Double(result.degradation_pct);
    json.Key("migration_churn");
    json.Int(churn);
    json.Key("evacuations");
    json.Int(result.evacuations);
    json.Key("repatriations");
    json.Int(result.repatriations);
    json.Key("stagings");
    json.Int(result.stagings);
    json.Key("revocation_events");
    json.Int(result.revocation_events);
    json.Key("backup_servers");
    json.Int(result.num_backup_servers);
    json.EndObject();
  }
  json.EndObject();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = json.str();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "[frontier json written to %s]\n", out_path.c_str());
  std::printf("\nreading the frontier: INDEX trades a little cost for fewer"
              " revocations by sitting out spiking markets; the adaptive\n"
              "bidders start at 2x and converge on the crossing rate each"
              " market actually shows\n");
  return 0;
}

}  // namespace
}  // namespace spotcheck

int main(int argc, char** argv) { return spotcheck::Run(argc, argv); }

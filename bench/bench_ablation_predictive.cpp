// Ablation (Section 3.2): predictive migration. A price-tracking predictor
// drains pools with live migrations when a spike looks imminent, avoiding
// the bounded-time downtime for every correctly predicted revocation. First
// the predictor itself is scored offline per market, then the end-to-end
// effect is measured.

#include <cstdio>
#include <optional>
#include <string>

#include "bench/grid_util.h"
#include "src/market/revocation_predictor.h"
#include "src/market/spot_price_process.h"
#include "src/common/flags.h"
#include "src/policy/policy_spec.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  // Optional strategy-layer override for the end-to-end comparison:
  // --policy="bid=on-demand,map=index-track" runs both the reactive and
  // predictive variants under that spec instead of 4P-ED.
  const std::string policy_flag = flags.GetString("policy", "");
  flags.ExitIfUnknownFlags("--policy=SPEC");
  std::optional<PolicySpec> policy_spec;
  if (!policy_flag.empty()) {
    policy_spec = ParsePolicySpecOrExit(policy_flag);
  }

  std::printf("=== Predictor quality per market (six months, bid = on-demand)"
              " ===\n");
  std::printf("%-12s %10s %10s %10s %14s\n", "market", "crossings", "predicted",
              "recall", "alarm-up time");
  for (InstanceType type : {InstanceType::kM3Medium, InstanceType::kM3Large,
                            InstanceType::kM3Xlarge, InstanceType::kM32xlarge}) {
    const PriceTrace trace = GenerateMarketTrace(
        MarketKey{type, AvailabilityZone{0}}, SimDuration::Days(180), 2);
    const double od = OnDemandPrice(type);
    const PredictorScore score = EvaluatePredictor(
        PredictorConfig{}, trace, od, od, SimTime(), SimTime() + SimDuration::Days(180));
    std::printf("%-12s %10d %10d %9.0f%% %13.2f%%\n",
                std::string(InstanceTypeName(type)).c_str(), score.crossings,
                score.predicted, 100.0 * score.recall,
                100.0 * score.signal_up_fraction);
  }

  std::printf("\n=== End-to-end effect (%s, SpotCheck lazy restore) ===\n",
              policy_spec.has_value() ? policy_spec->ToString().c_str()
                                      : "4P-ED");
  std::printf("%-12s %10s %10s %12s %12s %12s\n", "variant", "revocs", "drains",
              "cost($/hr)", "unavail(%)", "degr(%)");
  for (bool predictive : {false, true}) {
    EvaluationConfig config = GridConfig(MappingPolicyKind::k4PED,
                                         MigrationMechanism::kSpotCheckLazyRestore);
    config.policy_spec = policy_spec;
    EvaluationResult result;
    if (predictive) {
      // Run through the controller directly to flip the predictive knob.
      Simulator sim;
      MarketPlace markets(&sim);
      NativeCloudConfig cloud_config;
      cloud_config.market_horizon = config.horizon + SimDuration::Days(1);
      cloud_config.market_seed = config.seed;
      cloud_config.latency_seed = config.seed ^ 0xfeed;
      NativeCloud cloud(&sim, &markets, cloud_config);
      ControllerConfig controller_config;
      controller_config.mapping = config.policy;
      controller_config.mechanism = config.mechanism;
      controller_config.policy_spec = policy_spec;
      controller_config.enable_predictive = true;
      controller_config.seed = config.seed;
      SpotCheckController controller(&sim, &cloud, &markets, controller_config);
      const CustomerId customer = controller.RegisterCustomer("pred");
      sim.RunUntil(SimTime() + SimDuration::Days(7));
      for (int i = 0; i < config.num_vms; ++i) {
        controller.RequestServer(customer);
      }
      sim.RunUntil(SimTime() + config.horizon);
      result.revocation_events = controller.revocation_events();
      result.repatriations = controller.proactive_migrations();
      result.avg_cost_per_vm_hour =
          controller.ComputeCostReport().avg_cost_per_vm_hour;
      result.unavailability_pct = controller.activity_log().MeanFraction(
                                      ActivityKind::kDowntime, SimTime(), sim.Now()) *
                                  100.0;
      result.degradation_pct = controller.activity_log().MeanFraction(
                                   ActivityKind::kDegraded, SimTime(), sim.Now()) *
                               100.0;
    } else {
      result = RunPolicyEvaluation(config);
      result.repatriations = 0;  // repurposed column: proactive drains
    }
    std::printf("%-12s %10lld %10lld %12.4f %12.5f %12.4f\n",
                predictive ? "predictive" : "reactive",
                static_cast<long long>(result.revocation_events),
                static_cast<long long>(result.repatriations),
                result.avg_cost_per_vm_hour, result.unavailability_pct,
                result.degradation_pct);
  }
  std::printf("\nexpected: about half the spikes are announced by an escalation"
              " ramp; predicting them converts their evacuations into\n"
              "zero-downtime live migrations, cutting revocation warnings and"
              " unavailability roughly in half at near-equal cost\n");
  return 0;
}

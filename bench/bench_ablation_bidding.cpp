// Ablation (Section 4.3): bidding policies. Bidding k times the on-demand
// price lowers the revocation frequency at a higher worst-case cost, and
// (for k > 1) enables proactive live migration -- evacuating when the price
// crosses the on-demand level but is still below the bid.

#include <cstdio>
#include <string>

#include "bench/grid_util.h"
#include "src/common/flags.h"
#include "src/policy/policy_spec.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  // Optional strategy-layer row: --policy="bid=adaptive:2,map=4p-ed" appends
  // one run of the given spec (registry-validated; bad specs exit 2).
  const std::string policy_flag = flags.GetString("policy", "");
  flags.ExitIfUnknownFlags("--policy=SPEC");

  std::printf("=== Ablation: bidding policy (1P-M over the four m3 pools) ===\n");
  std::printf("%-22s %-10s %10s %10s %12s %12s %12s\n", "bid", "proactive",
              "revocs", "proact", "cost($/hr)", "unavail(%)", "degr(%)");

  // Spike prices start at ~2x the on-demand price (the Fig. 6(a) knee), so
  // bids between 1x and 2x change nothing -- exactly the paper's point that
  // bidding the on-demand price approximates the optimum. Higher bids ride
  // out the cheaper spikes.
  const struct {
    double k;
    bool proactive;
  } kRows[] = {{1.0, false}, {2.0, false}, {3.0, false},
               {5.0, false}, {3.0, true},  {5.0, true}};
  for (const auto& row : kRows) {
    EvaluationConfig config =
        GridConfig(MappingPolicyKind::k4PED, MigrationMechanism::kSpotCheckLazyRestore);
    config.bidding = row.k == 1.0 ? BiddingPolicy::OnDemand()
                                  : BiddingPolicy::Multiple(row.k);
    config.proactive = row.proactive;
    const EvaluationResult result = RunPolicyEvaluation(config);
    std::printf("%-22s %-10s %10lld %10lld %12.4f %12.5f %12.4f\n",
                config.bidding.ToString().c_str(), row.proactive ? "yes" : "no",
                static_cast<long long>(result.revocation_events),
                static_cast<long long>(result.repatriations),
                result.avg_cost_per_vm_hour, result.unavailability_pct,
                result.degradation_pct);
  }
  if (!policy_flag.empty()) {
    EvaluationConfig config = GridConfig(
        MappingPolicyKind::k4PED, MigrationMechanism::kSpotCheckLazyRestore);
    config.policy_spec = ParsePolicySpecOrExit(policy_flag);
    config.proactive = true;  // no-op for bids without proactive support
    const EvaluationResult result = RunPolicyEvaluation(config);
    std::printf("%-22s %-10s %10lld %10lld %12.4f %12.5f %12.4f\n",
                config.policy_spec->ToString().c_str(), "yes",
                static_cast<long long>(result.revocation_events),
                static_cast<long long>(result.repatriations),
                result.avg_cost_per_vm_hour, result.unavailability_pct,
                result.degradation_pct);
  }
  std::printf("\nexpected: higher bids cut revocations (the availability-bid"
              " curve flattens past the on-demand price, Fig. 6(a));\n"
              "proactive migration converts the remaining evacuations into"
              " zero-downtime live migrations\n");
  return 0;
}

// Figure 11: nested VM unavailability (%) over six months for each mapping
// policy and migration mechanism, counting the downtime of every evacuation
// (checkpoint commit + EBS/ENI operations + restore).

#include <cstdio>

#include "bench/grid_util.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const GridBenchArgs args = ParseGridBenchArgs(argc, argv);
  std::printf("=== Figure 11: unavailability under various policies ===\n");
  PrintGrid("unavailability", "percent of VM lifetime", "fig11_unavailability",
            [](const EvaluationResult& r) { return r.unavailability_pct; }, args);
  std::printf("\npaper: 1P-M with lazy restore reaches 99.9989%% availability"
              " (~10x better than native spot's 90-99%%); unoptimized full\n"
              "restore stays below 0.25%% unavailability; live migration is"
              " lowest but risks VM loss\n");
  return 0;
}

// Microbenchmarks (google-benchmark) for the building blocks: event-queue
// throughput, price-trace generation and lookup, trace-catalog caching,
// migration planning, and end-to-end policy evaluations (single-cell and
// parallel grid). Results are also emitted as BENCH_micro.json (see
// emit_bench_json.h) so the perf trajectory is machine-diffable across PRs.

#include <benchmark/benchmark.h>

#include "bench/emit_bench_json.h"
#include "src/core/evaluation.h"
#include "src/core/parallel_evaluation.h"
#include "src/market/spot_price_process.h"
#include "src/market/trace_catalog.h"
#include "src/sim/simulator.h"
#include "src/virt/migration_models.h"

namespace spotcheck {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    Simulator sim;
    for (int64_t i = 0; i < events; ++i) {
      sim.ScheduleAt(SimTime::FromMicros(i * 7919 % 1'000'000), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_PriceTraceGeneration(benchmark::State& state) {
  const SimDuration horizon = SimDuration::Days(state.range(0));
  int zone = 0;
  for (auto _ : state) {
    const PriceTrace trace = GenerateMarketTrace(
        MarketKey{InstanceType::kM3Large, AvailabilityZone{zone++ % 18}}, horizon,
        42);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_PriceTraceGeneration)->Arg(30)->Arg(180);

void BM_PriceLookup(benchmark::State& state) {
  const PriceTrace trace = GenerateMarketTrace(
      MarketKey{InstanceType::kM3Large, AvailabilityZone{0}}, SimDuration::Days(180),
      42);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace.PriceAt(SimTime::FromSeconds(static_cast<double>(t++ * 6841 % 15'000'000))));
  }
}
BENCHMARK(BM_PriceLookup);

// The simulator's access pattern: prices queried at (mostly) non-decreasing
// times through a PriceTrace::Cursor instead of per-call binary search.
void BM_PriceLookupMonotone(benchmark::State& state) {
  const PriceTrace trace = GenerateMarketTrace(
      MarketKey{InstanceType::kM3Large, AvailabilityZone{0}}, SimDuration::Days(180),
      42);
  const int64_t end_seconds = 15'000'000;
  PriceTrace::Cursor cursor(&trace);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cursor.PriceAt(SimTime::FromSeconds(static_cast<double>(t))));
    t += 37;  // ~1000 queries per change point: the simulator's regime
    if (t >= end_seconds) {
      t = 0;  // wraps: one amortized re-seek per sweep
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriceLookupMonotone);

void BM_CachedTraceLookup(benchmark::State& state) {
  TraceCatalog& catalog = TraceCatalog::Global();
  catalog.Clear();
  const MarketKey key{InstanceType::kM3Large, AvailabilityZone{7}};
  // Prime the entry; the loop then measures the steady-state hit path the
  // 20 grid cells (and repeated figure benches) ride on.
  catalog.GetOrGenerate(key, SimDuration::Days(180), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        catalog.GetOrGenerate(key, SimDuration::Days(180), 42));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedTraceLookup);

void BM_PreCopyPlanning(benchmark::State& state) {
  PreCopyParams params;
  params.memory_mb = static_cast<double>(state.range(0));
  params.dirty_rate_mbps = 40.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanPreCopy(params));
  }
}
BENCHMARK(BM_PreCopyPlanning)->Arg(3072)->Arg(30720);

void BM_SixMonthPolicyEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    EvaluationConfig config;
    config.policy = MappingPolicyKind::k4PED;
    config.mechanism = MigrationMechanism::kSpotCheckLazyRestore;
    config.num_vms = 40;
    config.horizon = SimDuration::Days(180);
    config.seed = 2;
    benchmark::DoNotOptimize(RunPolicyEvaluation(config));
  }
}
BENCHMARK(BM_SixMonthPolicyEvaluation)->Unit(benchmark::kMillisecond);

// A small policy x mechanism grid (4 cells, one simulated month each) on the
// parallel runner. Arg = worker count; compare Arg(1) vs Arg(4) to see the
// parallel scaling on this machine (cells share cached traces either way).
void BM_ParallelEvaluationGrid(benchmark::State& state) {
  std::vector<EvaluationConfig> configs;
  for (MappingPolicyKind policy :
       {MappingPolicyKind::k1PM, MappingPolicyKind::k4PED}) {
    for (MigrationMechanism mechanism :
         {MigrationMechanism::kSpotCheckFullRestore,
          MigrationMechanism::kSpotCheckLazyRestore}) {
      EvaluationConfig config;
      config.policy = policy;
      config.mechanism = mechanism;
      config.num_vms = 16;
      config.horizon = SimDuration::Days(30);
      config.seed = 2;
      configs.push_back(config);
    }
  }
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPolicyEvaluationGrid(configs, jobs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(configs.size()));
}
BENCHMARK(BM_ParallelEvaluationGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // workers burn CPU off the main thread; report wall clock

}  // namespace
}  // namespace spotcheck

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  spotcheck::JsonEmitReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

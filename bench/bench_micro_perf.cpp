// Microbenchmarks (google-benchmark) for the building blocks: event-queue
// throughput, price-trace generation, migration planning, and a full
// six-month end-to-end policy evaluation.

#include <benchmark/benchmark.h>

#include "src/core/evaluation.h"
#include "src/market/spot_price_process.h"
#include "src/sim/simulator.h"
#include "src/virt/migration_models.h"

namespace spotcheck {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    Simulator sim;
    for (int64_t i = 0; i < events; ++i) {
      sim.ScheduleAt(SimTime::FromMicros(i * 7919 % 1'000'000), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_PriceTraceGeneration(benchmark::State& state) {
  const SimDuration horizon = SimDuration::Days(state.range(0));
  int zone = 0;
  for (auto _ : state) {
    const PriceTrace trace = GenerateMarketTrace(
        MarketKey{InstanceType::kM3Large, AvailabilityZone{zone++ % 18}}, horizon,
        42);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_PriceTraceGeneration)->Arg(30)->Arg(180);

void BM_PriceLookup(benchmark::State& state) {
  const PriceTrace trace = GenerateMarketTrace(
      MarketKey{InstanceType::kM3Large, AvailabilityZone{0}}, SimDuration::Days(180),
      42);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace.PriceAt(SimTime::FromSeconds(static_cast<double>(t++ * 6841 % 15'000'000))));
  }
}
BENCHMARK(BM_PriceLookup);

void BM_PreCopyPlanning(benchmark::State& state) {
  PreCopyParams params;
  params.memory_mb = static_cast<double>(state.range(0));
  params.dirty_rate_mbps = 40.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanPreCopy(params));
  }
}
BENCHMARK(BM_PreCopyPlanning)->Arg(3072)->Arg(30720);

void BM_SixMonthPolicyEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    EvaluationConfig config;
    config.policy = MappingPolicyKind::k4PED;
    config.mechanism = MigrationMechanism::kSpotCheckLazyRestore;
    config.num_vms = 40;
    config.horizon = SimDuration::Days(180);
    config.seed = 2;
    benchmark::DoNotOptimize(RunPolicyEvaluation(config));
  }
}
BENCHMARK(BM_SixMonthPolicyEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spotcheck

BENCHMARK_MAIN();

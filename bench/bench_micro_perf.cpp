// Microbenchmarks (google-benchmark) for the building blocks: event-queue
// throughput, price-trace generation and lookup, trace-catalog caching,
// migration planning, and end-to-end policy evaluations (single-cell and
// parallel grid). Results are also emitted as BENCH_micro.json (see
// emit_bench_json.h) so the perf trajectory is machine-diffable across PRs.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench/emit_bench_json.h"
#include "src/backup/backup_pool.h"
#include "src/cloud/native_cloud.h"
#include "src/core/controller_config.h"
#include "src/core/controller_context.h"
#include "src/core/evacuation.h"
#include "src/core/evaluation.h"
#include "src/core/event_log.h"
#include "src/core/host_pool.h"
#include "src/core/parallel_evaluation.h"
#include "src/core/placement.h"
#include "src/core/repatriation.h"
#include "src/core/storm_tracker.h"
#include "src/market/spot_price_process.h"
#include "src/market/trace_catalog.h"
#include "src/net/connection_tracker.h"
#include "src/net/nat_table.h"
#include "src/net/vpc.h"
#include "src/sim/simulator.h"
#include "src/virt/migration_engine.h"
#include "src/virt/migration_models.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    Simulator sim;
    for (int64_t i = 0; i < events; ++i) {
      sim.ScheduleAt(SimTime::FromMicros(i * 7919 % 1'000'000), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_PriceTraceGeneration(benchmark::State& state) {
  const SimDuration horizon = SimDuration::Days(state.range(0));
  int zone = 0;
  for (auto _ : state) {
    const PriceTrace trace = GenerateMarketTrace(
        MarketKey{InstanceType::kM3Large, AvailabilityZone{zone++ % 18}}, horizon,
        42);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_PriceTraceGeneration)->Arg(30)->Arg(180);

void BM_PriceLookup(benchmark::State& state) {
  const PriceTrace trace = GenerateMarketTrace(
      MarketKey{InstanceType::kM3Large, AvailabilityZone{0}}, SimDuration::Days(180),
      42);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace.PriceAt(SimTime::FromSeconds(static_cast<double>(t++ * 6841 % 15'000'000))));
  }
}
BENCHMARK(BM_PriceLookup);

// The simulator's access pattern: prices queried at (mostly) non-decreasing
// times through a PriceTrace::Cursor instead of per-call binary search.
void BM_PriceLookupMonotone(benchmark::State& state) {
  const PriceTrace trace = GenerateMarketTrace(
      MarketKey{InstanceType::kM3Large, AvailabilityZone{0}}, SimDuration::Days(180),
      42);
  const int64_t end_seconds = 15'000'000;
  PriceTrace::Cursor cursor(&trace);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cursor.PriceAt(SimTime::FromSeconds(static_cast<double>(t))));
    t += 37;  // ~1000 queries per change point: the simulator's regime
    if (t >= end_seconds) {
      t = 0;  // wraps: one amortized re-seek per sweep
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriceLookupMonotone);

void BM_CachedTraceLookup(benchmark::State& state) {
  TraceCatalog& catalog = TraceCatalog::Global();
  catalog.Clear();
  const MarketKey key{InstanceType::kM3Large, AvailabilityZone{7}};
  // Prime the entry; the loop then measures the steady-state hit path the
  // 20 grid cells (and repeated figure benches) ride on.
  catalog.GetOrGenerate(key, SimDuration::Days(180), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        catalog.GetOrGenerate(key, SimDuration::Days(180), 42));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedTraceLookup);

void BM_PreCopyPlanning(benchmark::State& state) {
  PreCopyParams params;
  params.memory_mb = static_cast<double>(state.range(0));
  params.dirty_rate_mbps = 40.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanPreCopy(params));
  }
}
BENCHMARK(BM_PreCopyPlanning)->Arg(3072)->Arg(30720);

// The placement hot path: FindHostWithCapacity against a ~1k-host fleet
// spread over four markets, most hosts full, hot spares in the pool. The
// pre-refactor controller scanned the whole host map per lookup (and
// std::find-ed the hot-spare list per host); the pool's per-market capacity
// indexes confine the walk to the probed market. Probing the last market is
// the old code's worst case: every other market's hosts sat ahead of it in
// the scan.
void BM_PlacementFindHostAt1kHosts(benchmark::State& state) {
  Simulator sim;
  MarketPlace markets(&sim);
  NativeCloudConfig cloud_config;
  cloud_config.sample_latencies = false;
  NativeCloud cloud(&sim, &markets, cloud_config);
  ControllerConfig config;
  config.hot_spares = 8;
  ActivityLog activity_log;
  ControllerEventLog event_log;
  MigrationEngine engine(&sim, &activity_log);
  BackupPool backup_pool;
  RevocationStormTracker storms;
  VirtualPrivateCloud vpc;
  HostNetworkPlane network;
  ConnectionTracker connections;
  FleetTable<NestedVmTag, NestedVm> vms;
  ControllerContext ctx;
  ctx.sim = &sim;
  ctx.cloud = &cloud;
  ctx.markets = &markets;
  ctx.config = &config;
  ctx.activity_log = &activity_log;
  ctx.event_log = &event_log;
  ctx.engine = &engine;
  ctx.backup_pool = &backup_pool;
  ctx.storms = &storms;
  ctx.vpc = &vpc;
  ctx.network = &network;
  ctx.connections = &connections;
  ctx.vms = &vms;
  HostPoolManager pool(&ctx);
  ctx.pool = &pool;
  PlacementEngine placement(&ctx);
  ctx.placement = &placement;
  EvacuationCoordinator evacuation(&ctx);
  ctx.evacuation = &evacuation;
  MarketWatcher watcher(&ctx);
  ctx.market_watcher = &watcher;
  RepatriationScheduler repatriation(&ctx);
  ctx.repatriation = &repatriation;

  IdGenerator<NestedVmTag> vm_ids;
  IdGenerator<CustomerTag> customer_ids;
  const CustomerId customer = customer_ids.Next();
  auto new_vm = [&]() -> NestedVm& {
    const NestedVmId id = vm_ids.Next();
    return vms.Emplace(id, id, customer,
                       MakeVmSpec(config.nested_type, config.workload));
  };

  constexpr int kMarkets = 4;
  const int hosts_per_market = static_cast<int>(state.range(0)) / kMarkets;
  std::vector<MarketKey> keys;
  for (int zone = 0; zone < kMarkets; ++zone) {
    const MarketKey key{InstanceType::kM3Large, AvailabilityZone{zone}};
    PriceTrace trace;
    trace.Append(SimTime(), 0.008);
    markets.AddWithTrace(key, std::move(trace));
    keys.push_back(key);
  }
  {
    PriceTrace trace;  // the hot spares' fallback on-demand market
    trace.Append(SimTime(), 0.008);
    markets.AddWithTrace(ctx.FallbackOnDemandMarket(), std::move(trace));
  }
  pool.ReplenishHotSpares();
  for (const MarketKey& key : keys) {
    for (int i = 0; i < hosts_per_market; ++i) {
      NestedVm& vm = new_vm();
      pool.AcquireHost(key, /*is_spot=*/true,
                       Waiter{vm.id(), WaitIntent::kInitialPlacement});
    }
  }
  sim.RunUntil(sim.Now() + SimDuration::Seconds(3600));
  // Each m3.large holds two nested VMs and came up with one; fill every host
  // but the last two per market so the lookup has to walk a long prefix.
  for (const MarketKey& key : keys) {
    const std::vector<InstanceId> spot_hosts = pool.SpotHostsIn(key);
    for (size_t i = 0; i + 2 < spot_hosts.size(); ++i) {
      HostVm* host = pool.GetMutableHost(spot_hosts[i]);
      NestedVm& filler = new_vm();
      if (host != nullptr && host->AddVm(filler.id(), filler.spec())) {
        filler.set_host(host->instance());
        filler.set_state(NestedVmState::kRunning);
      }
    }
  }

  const NestedVmSpec spec = MakeVmSpec(config.nested_type, config.workload);
  const MarketKey probe = keys[kMarkets - 1];
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.FindHostWithCapacity(probe, /*spot=*/true,
                                                       spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementFindHostAt1kHosts)->Arg(1'000);

void BM_SixMonthPolicyEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    EvaluationConfig config;
    config.policy = MappingPolicyKind::k4PED;
    config.mechanism = MigrationMechanism::kSpotCheckLazyRestore;
    config.num_vms = 40;
    config.horizon = SimDuration::Days(180);
    config.seed = 2;
    benchmark::DoNotOptimize(RunPolicyEvaluation(config));
  }
}
BENCHMARK(BM_SixMonthPolicyEvaluation)->Unit(benchmark::kMillisecond);

// A small policy x mechanism grid (4 cells, one simulated month each) on the
// parallel runner. Arg = worker count; compare Arg(1) vs Arg(4) to see the
// parallel scaling on this machine (cells share cached traces either way).
void BM_ParallelEvaluationGrid(benchmark::State& state) {
  std::vector<EvaluationConfig> configs;
  for (MappingPolicyKind policy :
       {MappingPolicyKind::k1PM, MappingPolicyKind::k4PED}) {
    for (MigrationMechanism mechanism :
         {MigrationMechanism::kSpotCheckFullRestore,
          MigrationMechanism::kSpotCheckLazyRestore}) {
      EvaluationConfig config;
      config.policy = policy;
      config.mechanism = mechanism;
      config.num_vms = 16;
      config.horizon = SimDuration::Days(30);
      config.seed = 2;
      configs.push_back(config);
    }
  }
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPolicyEvaluationGrid(configs, jobs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(configs.size()));
}
BENCHMARK(BM_ParallelEvaluationGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // workers burn CPU off the main thread; report wall clock

}  // namespace
}  // namespace spotcheck

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  spotcheck::JsonEmitReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

// Worker-scaling sweep for the parallel evaluation grid.
//
// Runs the same policy x mechanism grid at 1/2/4/8 workers and reports
// cells/s plus the speedup ratio over the 1-worker baseline -- the number
// the CI perf gate enforces (scripts/check_grid_scaling.py). The catalog is
// warmed once up front so every configuration measures steady-state cell
// throughput, not one-time trace generation. Emits BENCH_grid_scaling.json
// (override with --out=PATH) with per-jobs cells/s, speedup, and the
// per-worker contention breakdown of the widest run.
//
// Flags:
//   --horizon-days=N   cell length (default 30)
//   --num-vms=N        VMs per cell (default 16)
//   --repeats=N        timed grid passes per jobs value, best-of (default 3)
//   --max-jobs=N       sweep 1,2,4,...,N (default 8)
//   --out=PATH         JSON output path (default BENCH_grid_scaling.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/core/parallel_evaluation.h"
#include "src/obs/grid_summary.h"
#include "src/obs/json.h"

namespace spotcheck {
namespace {

std::vector<EvaluationConfig> SweepGrid(int horizon_days, int num_vms) {
  std::vector<EvaluationConfig> configs;
  for (MappingPolicyKind policy :
       {MappingPolicyKind::k1PM, MappingPolicyKind::k2PML,
        MappingPolicyKind::k4PED, MappingPolicyKind::k4PCost}) {
    for (MigrationMechanism mechanism :
         {MigrationMechanism::kSpotCheckFullRestore,
          MigrationMechanism::kSpotCheckLazyRestore}) {
      EvaluationConfig config;
      config.policy = policy;
      config.mechanism = mechanism;
      config.num_vms = num_vms;
      config.horizon = SimDuration::Days(horizon_days);
      config.seed = 2;
      configs.push_back(config);
    }
  }
  return configs;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SweepPoint {
  int jobs = 0;
  double cells_per_second = 0.0;
  double speedup = 0.0;
  GridContentionReport contention;
};

int Run(int argc, const char* const* argv) {
  const FlagParser flags(argc, argv);
  const int horizon_days = static_cast<int>(flags.GetInt("horizon-days", 30));
  const int num_vms = static_cast<int>(flags.GetInt("num-vms", 16));
  const int repeats = std::max(1, static_cast<int>(flags.GetInt("repeats", 3)));
  const int max_jobs = std::max(1, static_cast<int>(flags.GetInt("max-jobs", 8)));
  const std::string out_path =
      flags.GetString("out", "BENCH_grid_scaling.json");
  flags.ExitIfUnknownFlags(
      "--horizon-days=N, --num-vms=N, --repeats=N, --max-jobs=N, --out=PATH");

  const std::vector<EvaluationConfig> configs =
      SweepGrid(horizon_days, num_vms);

  // Warm the catalog (and fault in every lazy singleton) before timing.
  RunPolicyEvaluationGrid(configs, /*jobs=*/1);

  std::vector<SweepPoint> points;
  for (int jobs = 1; jobs <= max_jobs; jobs *= 2) {
    SweepPoint point;
    point.jobs = jobs;
    double best_s = 0.0;
    for (int r = 0; r < repeats; ++r) {
      GridRunOptions options;
      options.jobs = jobs;
      GridContentionReport contention;
      options.contention = &contention;
      const auto started = std::chrono::steady_clock::now();
      RunPolicyEvaluationGrid(configs, options);
      const double elapsed_s = SecondsSince(started);
      if (r == 0 || elapsed_s < best_s) {
        best_s = elapsed_s;
        point.contention = contention;
      }
    }
    point.cells_per_second =
        best_s > 0.0 ? static_cast<double>(configs.size()) / best_s : 0.0;
    points.push_back(point);
  }

  const double base = points.front().cells_per_second;
  for (SweepPoint& point : points) {
    point.speedup = base > 0.0 ? point.cells_per_second / base : 0.0;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  // A machine with fewer cores than the widest sweep point cannot measure a
  // meaningful speedup; mark the artifact so nobody reads a 0.29x "regression"
  // off a 1-core box (and so check_grid_scaling.py can call it out).
  const bool unreliable = cores < static_cast<unsigned>(max_jobs);
  std::printf("grid scaling sweep: %zu cells, %d-day horizon, %u cores\n",
              configs.size(), horizon_days, cores);
  if (unreliable) {
    std::fprintf(stderr,
                 "WARNING: only %u hardware threads for a --max-jobs=%d sweep; "
                 "speedups below are NOT meaningful (marking the JSON "
                 "_context.unreliable)\n",
                 cores, max_jobs);
  }
  std::printf("%8s  %12s  %8s\n", "jobs", "cells/s", "speedup");
  for (const SweepPoint& point : points) {
    std::printf("%8d  %12.1f  %7.2fx\n", point.jobs, point.cells_per_second,
                point.speedup);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("_context");
  json.BeginObject();
  json.Key("hardware_concurrency");
  json.Int(static_cast<int64_t>(cores));
  json.Key("max_jobs");
  json.Int(max_jobs);
  if (unreliable) {
    json.Key("unreliable");
    json.Bool(true);
  }
  json.Key("cells");
  json.Int(static_cast<int64_t>(configs.size()));
  json.Key("horizon_days");
  json.Int(horizon_days);
  json.EndObject();
  for (const SweepPoint& point : points) {
    json.Key("jobs/" + std::to_string(point.jobs));
    json.BeginObject();
    json.Key("cells_per_second");
    json.Double(point.cells_per_second);
    json.Key("speedup_vs_1");
    json.Double(point.speedup);
    json.Key("workers");
    json.BeginArray();
    for (const GridWorkerProfile& w : point.contention.workers) {
      json.BeginObject();
      json.Key("cells");
      json.Int(w.cells);
      json.Key("busy_ms");
      json.Double(static_cast<double>(w.busy_ns) / 1e6);
      json.Key("catalog_lock_wait_ms");
      json.Double(static_cast<double>(w.catalog_lock_wait_ns) / 1e6);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = json.str();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "[scaling json written to %s]\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace spotcheck

int main(int argc, char** argv) { return spotcheck::Run(argc, argv); }

// Figure 9: TPC-W average response time as a function of the number of
// nested VMs being concurrently lazily restored from one backup server
// (0 = normal operation). Per-VM bandwidth partitioning keeps the penalty
// nearly flat across concurrency.

#include <cstdio>

#include "bench/csv_out.h"
#include "src/backup/backup_server.h"
#include "src/workload/workload_model.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  std::printf("=== Figure 9: TPC-W response time during lazy restoration ===\n");
  std::printf("%-12s  %-24s\n", "concurrent", "TPC-W resp. time (ms)");

  const BackupServer server(BackupServerId(1), InstanceType::kM3Xlarge,
                            BackupServerPerf{}, 40);
  const TpcwModel tpcw;
  std::vector<std::vector<std::string>> csv_rows;
  for (int n : {0, 1, 5, 10}) {
    RunConditions conditions;
    conditions.checkpointing = n > 0;
    if (n > 0) {
      conditions.lazily_restoring = true;
      conditions.restore_bandwidth_mbps =
          server.PerVmRestoreBandwidth(RestoreKind::kLazy, true, n);
    }
    const double rt = tpcw.ResponseTimeMs(conditions);
    std::printf("%-12d  %-24.1f\n", n, rt);
    csv_rows.push_back({std::to_string(n), FormatCell(rt)});
  }
  ExportSeriesCsv("fig9_lazy_latency", {"concurrent", "tpcw_response_ms"},
                  csv_rows);
  std::printf("\npaper: 29 ms at rest -> ~60 ms while restoring one VM;"
              " additional concurrent restorations do not significantly\n"
              "degrade response time because bandwidth is partitioned per VM\n");
  return 0;
}

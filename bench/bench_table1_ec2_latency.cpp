// Table 1: latency of the native-cloud operations SpotCheck depends on, for
// the m3.medium type -- median/mean/max/min over 20 measurements, as in the
// paper's one-week measurement campaign.

#include <cstdio>

#include "src/cloud/latency_model.h"
#include "src/common/stats.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  std::printf("=== Table 1: operation latency on the native cloud (m3.medium) ===\n");
  std::printf("%-26s %10s %10s %10s %10s   %s\n", "operation", "median(s)",
              "mean(s)", "max(s)", "min(s)", "paper median/mean");

  OperationLatencyModel model{Rng(20140421)};
  for (int op = 0; op <= static_cast<int>(CloudOperation::kDetachInterface); ++op) {
    const auto operation = static_cast<CloudOperation>(op);
    EmpiricalDistribution dist;
    StreamingStats stats;
    for (int i = 0; i < 20; ++i) {
      const double s = model.Sample(operation).seconds();
      dist.Add(s);
      stats.Add(s);
    }
    const LatencySpec& paper = PaperLatencySpec(operation);
    std::printf("%-26s %10.1f %10.1f %10.1f %10.1f   %.1f/%.1f\n",
                std::string(CloudOperationName(operation)).c_str(), dist.Median(),
                stats.mean(), stats.max(), stats.min(), paper.median, paper.mean);
  }
  std::printf("\nper-migration EC2-operation downtime (EBS+ENI means): %.2f s"
              " (paper: 22.65 s)\n",
              MigrationEc2OperationDowntime().seconds());
  return 0;
}

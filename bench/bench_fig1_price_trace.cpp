// Figure 1: spot price of the m1.small server type over ~2.5 days, with
// spikes rising far above the $0.06/hr on-demand price.
//
// Prints an hourly (time, spot price) series plus the spike summary the
// figure conveys: most of the time the price sits near the floor, and spikes
// jump to multiples of the on-demand price.

#include <cstdio>

#include "bench/csv_out.h"
#include "src/market/market_analytics.h"
#include "src/market/spot_price_process.h"
#include "src/common/flags.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  std::printf("=== Figure 1: m1.small spot price trace (2.5 days) ===\n");
  const MarketKey market{InstanceType::kM1Small, AvailabilityZone{0}};
  const double od = OnDemandPrice(market.type);
  const PriceTrace trace = GenerateMarketTrace(market, SimDuration::Days(2.5), 7);

  std::printf("%-10s  %-12s\n", "hour", "price($/hr)");
  std::vector<std::vector<std::string>> rows;
  for (double hour = 0.0; hour <= 60.0; hour += 1.0) {
    const double price = trace.PriceAt(SimTime() + SimDuration::Hours(hour));
    std::printf("%-10.1f  %-12.4f\n", hour, price);
    rows.push_back({FormatCell(hour), FormatCell(price)});
  }
  ExportSeriesCsv("fig1_price_trace", {"hour", "price_per_hour"}, rows);

  double max_price = 0.0;
  for (double price : trace.prices()) {
    max_price = std::max(max_price, price);
  }
  const SimTime end = SimTime() + SimDuration::Days(2.5);
  std::printf("\non-demand price:        $%.3f/hr\n", od);
  std::printf("mean spot price:        $%.4f/hr (%.2fx below on-demand)\n",
              trace.MeanPrice(SimTime(), end),
              od / trace.MeanPrice(SimTime(), end));
  std::printf("peak spot price:        $%.3f/hr (%.1fx the on-demand price)\n",
              max_price, max_price / od);
  std::printf("spikes above on-demand: %d\n",
              CountBidCrossings(trace, od, SimTime(), end));
  std::printf("paper: price floors well below $0.06, spikes reach dollars/hr\n");
  return 0;
}

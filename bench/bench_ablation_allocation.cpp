// Ablation (Section 4.2): allocation strategy. Greedy cheapest-first
// exploits the slicing arbitrage (a large host is often cheaper per nested
// slot than a small host); stability-first instead picks the market with the
// fewest past revocations. Compared against the evaluated pool policies.

#include <cstdio>
#include <string>

#include "bench/grid_util.h"
#include "src/common/flags.h"
#include "src/policy/policy_spec.h"

using namespace spotcheck;

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  // Optional strategy-layer row: --policy="bid=on-demand,map=index-track"
  // appends one run of the given spec (registry-validated; bad specs exit 2).
  const std::string policy_flag = flags.GetString("policy", "");
  flags.ExitIfUnknownFlags("--policy=SPEC");

  std::printf("=== Ablation: allocation strategy (40 VMs, six months) ===\n");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "policy", "cost($/hr)",
              "unavail(%)", "degr(%)", "revocs", "backups");

  const MappingPolicyKind kPolicies[] = {
      MappingPolicyKind::k1PM,          MappingPolicyKind::k4PED,
      MappingPolicyKind::k4PCost,       MappingPolicyKind::k4PStability,
      MappingPolicyKind::kGreedyCheapest, MappingPolicyKind::kStabilityFirst};
  for (MappingPolicyKind policy : kPolicies) {
    const EvaluationResult result = RunPolicyEvaluation(
        GridConfig(policy, MigrationMechanism::kSpotCheckLazyRestore));
    std::printf("%-10s %12.4f %12.5f %12.4f %10lld %10d\n",
                std::string(MappingPolicyName(policy)).c_str(),
                result.avg_cost_per_vm_hour, result.unavailability_pct,
                result.degradation_pct,
                static_cast<long long>(result.revocation_events),
                result.num_backup_servers);
  }
  if (!policy_flag.empty()) {
    EvaluationConfig config = GridConfig(
        MappingPolicyKind::k1PM, MigrationMechanism::kSpotCheckLazyRestore);
    config.policy_spec = ParsePolicySpecOrExit(policy_flag);
    const EvaluationResult result = RunPolicyEvaluation(config);
    std::printf("%-10s %12.4f %12.5f %12.4f %10lld %10d\n",
                config.policy_spec->map.ToString().c_str(),
                result.avg_cost_per_vm_hour, result.unavailability_pct,
                result.degradation_pct,
                static_cast<long long>(result.revocation_events),
                result.num_backup_servers);
  }
  std::printf("\nexpected: greedy tracks the cheapest per-slot market;"
              " stability-first concentrates on the calm m3.medium market\n"
              "(lowest migrations), echoing 1P-M\n");
  return 0;
}

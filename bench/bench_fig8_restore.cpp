// Figure 8: cost of restoring nested VMs from a backup server during a
// revocation, with and without SpotCheck's fadvise-based optimizations.
//   (a) downtime of a traditional (stop-and-copy) full restore,
//   (b) degraded-performance duration of a lazy restore,
// each for 1, 5, and 10 VMs restored concurrently from one backup server.

#include <cstdio>

#include "bench/csv_out.h"
#include "src/backup/backup_server.h"
#include "src/virt/migration_models.h"
#include "src/common/flags.h"

using namespace spotcheck;

namespace {

constexpr double kVmMemoryMb = 3072.0;  // m3.medium-sized nested VM

RestoreOutcome Restore(const BackupServer& server, RestoreKind kind,
                       bool optimized, int concurrent) {
  RestoreParams params;
  params.kind = kind;
  params.memory_mb = kVmMemoryMb;
  params.bandwidth_mbps = server.PerVmRestoreBandwidth(kind, optimized, concurrent);
  return ComputeRestore(params);
}

}  // namespace

int main(int argc, char** argv) {
  // This binary takes no flags; reject typos instead of ignoring them.
  FlagParser(argc, argv).ExitIfUnknownFlags();

  const BackupServer server(BackupServerId(1), InstanceType::kM3Xlarge,
                            BackupServerPerf{}, 40);

  std::printf("=== Figure 8(a): downtime of Full restore (seconds) ===\n");
  std::printf("%-12s  %-24s  %-24s\n", "concurrent", "Unoptimized Full restore",
              "SpotCheck Full restore");
  std::vector<std::vector<std::string>> csv_rows;
  for (int n : {1, 5, 10}) {
    const double unopt_full =
        Restore(server, RestoreKind::kFull, false, n).downtime.seconds();
    const double opt_full =
        Restore(server, RestoreKind::kFull, true, n).downtime.seconds();
    std::printf("%-12d  %-24.1f  %-24.1f\n", n, unopt_full, opt_full);
    csv_rows.push_back({std::to_string(n), FormatCell(unopt_full),
                        FormatCell(opt_full), "", ""});
  }

  std::printf("\n=== Figure 8(b): degraded-performance duration of Lazy restore"
              " (seconds) ===\n");
  std::printf("%-12s  %-24s  %-24s\n", "concurrent", "Unoptimized Lazy restore",
              "SpotCheck Lazy restore");
  {
    int row = 0;
    for (int n : {1, 5, 10}) {
      const RestoreOutcome unopt = Restore(server, RestoreKind::kLazy, false, n);
      const RestoreOutcome opt = Restore(server, RestoreKind::kLazy, true, n);
      std::printf("%-12d  %-24.1f  %-24.1f\n", n, unopt.degraded.seconds(),
                  opt.degraded.seconds());
      csv_rows[row][3] = FormatCell(unopt.degraded.seconds());
      csv_rows[row][4] = FormatCell(opt.degraded.seconds());
      ++row;
    }
  }
  ExportSeriesCsv("fig8_restore",
                  {"concurrent", "full_unopt_downtime_s", "full_opt_downtime_s",
                   "lazy_unopt_degraded_s", "lazy_opt_degraded_s"},
                  csv_rows);

  std::printf("\n=== lazy-restore resume downtime (skeleton read) ===\n");
  for (int n : {1, 5, 10}) {
    std::printf("concurrent=%-3d downtime=%.3f s\n", n,
                Restore(server, RestoreKind::kLazy, true, n).downtime.seconds());
  }
  std::printf("\npaper: at 1 and 5 concurrent restores, lazy and stop-and-copy"
              " windows are comparable; at 10, unoptimized lazy (random reads)\n"
              "blows up and the fadvise optimization recovers most of it."
              " Lazy resume stays < 0.1 s at low concurrency.\n");
  return 0;
}

# Empty compiler generated dependencies file for spotcheck_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_cli.dir/spotcheck_cli.cpp.o"
  "CMakeFiles/spotcheck_cli.dir/spotcheck_cli.cpp.o.d"
  "spotcheck_cli"
  "spotcheck_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/spot_arbitrage.dir/spot_arbitrage.cpp.o"
  "CMakeFiles/spot_arbitrage.dir/spot_arbitrage.cpp.o.d"
  "spot_arbitrage"
  "spot_arbitrage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_arbitrage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

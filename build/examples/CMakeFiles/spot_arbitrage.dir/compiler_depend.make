# Empty compiler generated dependencies file for spot_arbitrage.
# This may be replaced when dependencies are built.

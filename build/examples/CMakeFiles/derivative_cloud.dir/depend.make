# Empty dependencies file for derivative_cloud.
# This may be replaced when dependencies are built.

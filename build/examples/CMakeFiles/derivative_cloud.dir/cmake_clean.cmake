file(REMOVE_RECURSE
  "CMakeFiles/derivative_cloud.dir/derivative_cloud.cpp.o"
  "CMakeFiles/derivative_cloud.dir/derivative_cloud.cpp.o.d"
  "derivative_cloud"
  "derivative_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivative_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for policy_portfolio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/policy_portfolio.dir/policy_portfolio.cpp.o"
  "CMakeFiles/policy_portfolio.dir/policy_portfolio.cpp.o.d"
  "policy_portfolio"
  "policy_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_mapping_policy_test.
# This may be replaced when dependencies are built.

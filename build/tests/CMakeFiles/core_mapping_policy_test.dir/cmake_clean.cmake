file(REMOVE_RECURSE
  "CMakeFiles/core_mapping_policy_test.dir/core_mapping_policy_test.cc.o"
  "CMakeFiles/core_mapping_policy_test.dir/core_mapping_policy_test.cc.o.d"
  "core_mapping_policy_test"
  "core_mapping_policy_test.pdb"
  "core_mapping_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mapping_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/property_market_test.dir/property_market_test.cc.o"
  "CMakeFiles/property_market_test.dir/property_market_test.cc.o.d"
  "property_market_test"
  "property_market_test.pdb"
  "property_market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

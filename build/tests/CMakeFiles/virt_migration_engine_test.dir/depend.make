# Empty dependencies file for virt_migration_engine_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/virt_migration_engine_test.dir/virt_migration_engine_test.cc.o"
  "CMakeFiles/virt_migration_engine_test.dir/virt_migration_engine_test.cc.o.d"
  "virt_migration_engine_test"
  "virt_migration_engine_test.pdb"
  "virt_migration_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_migration_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

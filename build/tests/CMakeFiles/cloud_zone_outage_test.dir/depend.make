# Empty dependencies file for cloud_zone_outage_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cloud_zone_outage_test.dir/cloud_zone_outage_test.cc.o"
  "CMakeFiles/cloud_zone_outage_test.dir/cloud_zone_outage_test.cc.o.d"
  "cloud_zone_outage_test"
  "cloud_zone_outage_test.pdb"
  "cloud_zone_outage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_zone_outage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for property_backup_test.
# This may be replaced when dependencies are built.

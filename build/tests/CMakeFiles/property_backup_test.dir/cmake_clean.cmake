file(REMOVE_RECURSE
  "CMakeFiles/property_backup_test.dir/property_backup_test.cc.o"
  "CMakeFiles/property_backup_test.dir/property_backup_test.cc.o.d"
  "property_backup_test"
  "property_backup_test.pdb"
  "property_backup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_backup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

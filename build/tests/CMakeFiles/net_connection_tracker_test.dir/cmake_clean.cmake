file(REMOVE_RECURSE
  "CMakeFiles/net_connection_tracker_test.dir/net_connection_tracker_test.cc.o"
  "CMakeFiles/net_connection_tracker_test.dir/net_connection_tracker_test.cc.o.d"
  "net_connection_tracker_test"
  "net_connection_tracker_test.pdb"
  "net_connection_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_connection_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for net_connection_tracker_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_pool_dynamics_test.dir/core_pool_dynamics_test.cc.o"
  "CMakeFiles/core_pool_dynamics_test.dir/core_pool_dynamics_test.cc.o.d"
  "core_pool_dynamics_test"
  "core_pool_dynamics_test.pdb"
  "core_pool_dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pool_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

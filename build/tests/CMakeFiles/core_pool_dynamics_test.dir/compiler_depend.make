# Empty compiler generated dependencies file for core_pool_dynamics_test.
# This may be replaced when dependencies are built.

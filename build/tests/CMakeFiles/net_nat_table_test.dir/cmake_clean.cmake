file(REMOVE_RECURSE
  "CMakeFiles/net_nat_table_test.dir/net_nat_table_test.cc.o"
  "CMakeFiles/net_nat_table_test.dir/net_nat_table_test.cc.o.d"
  "net_nat_table_test"
  "net_nat_table_test.pdb"
  "net_nat_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_nat_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for net_nat_table_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/property_features_test.dir/property_features_test.cc.o"
  "CMakeFiles/property_features_test.dir/property_features_test.cc.o.d"
  "property_features_test"
  "property_features_test.pdb"
  "property_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

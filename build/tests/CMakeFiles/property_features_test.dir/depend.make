# Empty dependencies file for property_features_test.
# This may be replaced when dependencies are built.

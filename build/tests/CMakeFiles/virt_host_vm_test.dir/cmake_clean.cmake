file(REMOVE_RECURSE
  "CMakeFiles/virt_host_vm_test.dir/virt_host_vm_test.cc.o"
  "CMakeFiles/virt_host_vm_test.dir/virt_host_vm_test.cc.o.d"
  "virt_host_vm_test"
  "virt_host_vm_test.pdb"
  "virt_host_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_host_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for virt_host_vm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/market_correlated_traces_test.dir/market_correlated_traces_test.cc.o"
  "CMakeFiles/market_correlated_traces_test.dir/market_correlated_traces_test.cc.o.d"
  "market_correlated_traces_test"
  "market_correlated_traces_test.pdb"
  "market_correlated_traces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_correlated_traces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for market_correlated_traces_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for property_endtoend_test.
# This may be replaced when dependencies are built.

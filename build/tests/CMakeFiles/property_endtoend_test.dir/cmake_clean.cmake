file(REMOVE_RECURSE
  "CMakeFiles/property_endtoend_test.dir/property_endtoend_test.cc.o"
  "CMakeFiles/property_endtoend_test.dir/property_endtoend_test.cc.o.d"
  "property_endtoend_test"
  "property_endtoend_test.pdb"
  "property_endtoend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_endtoend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

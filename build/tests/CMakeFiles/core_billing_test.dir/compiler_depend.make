# Empty compiler generated dependencies file for core_billing_test.
# This may be replaced when dependencies are built.

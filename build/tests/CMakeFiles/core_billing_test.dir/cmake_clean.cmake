file(REMOVE_RECURSE
  "CMakeFiles/core_billing_test.dir/core_billing_test.cc.o"
  "CMakeFiles/core_billing_test.dir/core_billing_test.cc.o.d"
  "core_billing_test"
  "core_billing_test.pdb"
  "core_billing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_billing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

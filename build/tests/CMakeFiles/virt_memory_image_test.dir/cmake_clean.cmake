file(REMOVE_RECURSE
  "CMakeFiles/virt_memory_image_test.dir/virt_memory_image_test.cc.o"
  "CMakeFiles/virt_memory_image_test.dir/virt_memory_image_test.cc.o.d"
  "virt_memory_image_test"
  "virt_memory_image_test.pdb"
  "virt_memory_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_memory_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

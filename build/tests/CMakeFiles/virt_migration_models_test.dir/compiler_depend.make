# Empty compiler generated dependencies file for virt_migration_models_test.
# This may be replaced when dependencies are built.

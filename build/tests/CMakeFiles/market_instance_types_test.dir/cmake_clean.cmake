file(REMOVE_RECURSE
  "CMakeFiles/market_instance_types_test.dir/market_instance_types_test.cc.o"
  "CMakeFiles/market_instance_types_test.dir/market_instance_types_test.cc.o.d"
  "market_instance_types_test"
  "market_instance_types_test.pdb"
  "market_instance_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_instance_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for market_instance_types_test.
# This may be replaced when dependencies are built.

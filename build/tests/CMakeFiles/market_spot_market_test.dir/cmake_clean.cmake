file(REMOVE_RECURSE
  "CMakeFiles/market_spot_market_test.dir/market_spot_market_test.cc.o"
  "CMakeFiles/market_spot_market_test.dir/market_spot_market_test.cc.o.d"
  "market_spot_market_test"
  "market_spot_market_test.pdb"
  "market_spot_market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_spot_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

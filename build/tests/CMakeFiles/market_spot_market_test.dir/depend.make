# Empty dependencies file for market_spot_market_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for market_price_trace_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/market_price_trace_test.dir/market_price_trace_test.cc.o"
  "CMakeFiles/market_price_trace_test.dir/market_price_trace_test.cc.o.d"
  "market_price_trace_test"
  "market_price_trace_test.pdb"
  "market_price_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_price_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

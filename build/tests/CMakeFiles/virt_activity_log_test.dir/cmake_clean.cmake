file(REMOVE_RECURSE
  "CMakeFiles/virt_activity_log_test.dir/virt_activity_log_test.cc.o"
  "CMakeFiles/virt_activity_log_test.dir/virt_activity_log_test.cc.o.d"
  "virt_activity_log_test"
  "virt_activity_log_test.pdb"
  "virt_activity_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_activity_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for virt_activity_log_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for backup_server_test.
# This may be replaced when dependencies are built.

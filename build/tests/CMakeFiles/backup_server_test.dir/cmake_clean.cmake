file(REMOVE_RECURSE
  "CMakeFiles/backup_server_test.dir/backup_server_test.cc.o"
  "CMakeFiles/backup_server_test.dir/backup_server_test.cc.o.d"
  "backup_server_test"
  "backup_server_test.pdb"
  "backup_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for market_price_process_test.
# This may be replaced when dependencies are built.

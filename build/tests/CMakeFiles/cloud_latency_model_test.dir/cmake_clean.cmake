file(REMOVE_RECURSE
  "CMakeFiles/cloud_latency_model_test.dir/cloud_latency_model_test.cc.o"
  "CMakeFiles/cloud_latency_model_test.dir/cloud_latency_model_test.cc.o.d"
  "cloud_latency_model_test"
  "cloud_latency_model_test.pdb"
  "cloud_latency_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_latency_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

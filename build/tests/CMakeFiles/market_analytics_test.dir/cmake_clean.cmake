file(REMOVE_RECURSE
  "CMakeFiles/market_analytics_test.dir/market_analytics_test.cc.o"
  "CMakeFiles/market_analytics_test.dir/market_analytics_test.cc.o.d"
  "market_analytics_test"
  "market_analytics_test.pdb"
  "market_analytics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_analytics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/virt_checkpoint_stream_test.dir/virt_checkpoint_stream_test.cc.o"
  "CMakeFiles/virt_checkpoint_stream_test.dir/virt_checkpoint_stream_test.cc.o.d"
  "virt_checkpoint_stream_test"
  "virt_checkpoint_stream_test.pdb"
  "virt_checkpoint_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virt_checkpoint_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

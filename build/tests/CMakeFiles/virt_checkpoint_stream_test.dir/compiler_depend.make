# Empty compiler generated dependencies file for virt_checkpoint_stream_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for virt_checkpoint_stream_test.

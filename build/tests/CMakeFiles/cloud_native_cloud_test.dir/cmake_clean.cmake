file(REMOVE_RECURSE
  "CMakeFiles/cloud_native_cloud_test.dir/cloud_native_cloud_test.cc.o"
  "CMakeFiles/cloud_native_cloud_test.dir/cloud_native_cloud_test.cc.o.d"
  "cloud_native_cloud_test"
  "cloud_native_cloud_test.pdb"
  "cloud_native_cloud_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_native_cloud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

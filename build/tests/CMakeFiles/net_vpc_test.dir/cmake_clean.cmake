file(REMOVE_RECURSE
  "CMakeFiles/net_vpc_test.dir/net_vpc_test.cc.o"
  "CMakeFiles/net_vpc_test.dir/net_vpc_test.cc.o.d"
  "net_vpc_test"
  "net_vpc_test.pdb"
  "net_vpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_vpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

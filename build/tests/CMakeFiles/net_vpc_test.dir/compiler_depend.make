# Empty compiler generated dependencies file for net_vpc_test.
# This may be replaced when dependencies are built.

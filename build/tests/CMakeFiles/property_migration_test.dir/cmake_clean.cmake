file(REMOVE_RECURSE
  "CMakeFiles/property_migration_test.dir/property_migration_test.cc.o"
  "CMakeFiles/property_migration_test.dir/property_migration_test.cc.o.d"
  "property_migration_test"
  "property_migration_test.pdb"
  "property_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

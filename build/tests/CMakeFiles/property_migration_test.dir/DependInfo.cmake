
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_migration_test.cc" "tests/CMakeFiles/property_migration_test.dir/property_migration_test.cc.o" "gcc" "tests/CMakeFiles/property_migration_test.dir/property_migration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spotcheck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/spotcheck_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spotcheck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/spotcheck_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spotcheck_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spotcheck_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/spotcheck_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/spotcheck_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spotcheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

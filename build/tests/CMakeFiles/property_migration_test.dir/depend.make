# Empty dependencies file for property_migration_test.
# This may be replaced when dependencies are built.

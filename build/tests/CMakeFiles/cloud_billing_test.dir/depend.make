# Empty dependencies file for cloud_billing_test.
# This may be replaced when dependencies are built.

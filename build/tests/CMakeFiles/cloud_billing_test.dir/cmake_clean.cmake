file(REMOVE_RECURSE
  "CMakeFiles/cloud_billing_test.dir/cloud_billing_test.cc.o"
  "CMakeFiles/cloud_billing_test.dir/cloud_billing_test.cc.o.d"
  "cloud_billing_test"
  "cloud_billing_test.pdb"
  "cloud_billing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_billing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for market_predictor_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/market_predictor_test.dir/market_predictor_test.cc.o"
  "CMakeFiles/market_predictor_test.dir/market_predictor_test.cc.o.d"
  "market_predictor_test"
  "market_predictor_test.pdb"
  "market_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

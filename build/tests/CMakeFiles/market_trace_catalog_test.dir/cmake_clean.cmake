file(REMOVE_RECURSE
  "CMakeFiles/market_trace_catalog_test.dir/market_trace_catalog_test.cc.o"
  "CMakeFiles/market_trace_catalog_test.dir/market_trace_catalog_test.cc.o.d"
  "market_trace_catalog_test"
  "market_trace_catalog_test.pdb"
  "market_trace_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_trace_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

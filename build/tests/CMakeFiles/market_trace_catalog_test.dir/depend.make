# Empty dependencies file for market_trace_catalog_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_restore.dir/bench_fig8_restore.cpp.o"
  "CMakeFiles/bench_fig8_restore.dir/bench_fig8_restore.cpp.o.d"
  "bench_fig8_restore"
  "bench_fig8_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

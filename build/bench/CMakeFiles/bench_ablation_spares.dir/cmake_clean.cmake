file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spares.dir/bench_ablation_spares.cpp.o"
  "CMakeFiles/bench_ablation_spares.dir/bench_ablation_spares.cpp.o.d"
  "bench_ablation_spares"
  "bench_ablation_spares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

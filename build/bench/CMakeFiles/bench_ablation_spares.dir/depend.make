# Empty dependencies file for bench_ablation_spares.
# This may be replaced when dependencies are built.

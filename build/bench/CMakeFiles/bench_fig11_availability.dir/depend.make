# Empty dependencies file for bench_fig11_availability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_predictive.dir/bench_ablation_predictive.cpp.o"
  "CMakeFiles/bench_ablation_predictive.dir/bench_ablation_predictive.cpp.o.d"
  "bench_ablation_predictive"
  "bench_ablation_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_predictive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bidding.dir/bench_ablation_bidding.cpp.o"
  "CMakeFiles/bench_ablation_bidding.dir/bench_ablation_bidding.cpp.o.d"
  "bench_ablation_bidding"
  "bench_ablation_bidding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

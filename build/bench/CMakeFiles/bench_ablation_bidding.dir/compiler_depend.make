# Empty compiler generated dependencies file for bench_ablation_bidding.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig6_market_stats.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table3_storms.
# This may be replaced when dependencies are built.

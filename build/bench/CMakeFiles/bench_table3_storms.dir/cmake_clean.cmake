file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_storms.dir/bench_table3_storms.cpp.o"
  "CMakeFiles/bench_table3_storms.dir/bench_table3_storms.cpp.o.d"
  "bench_table3_storms"
  "bench_table3_storms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_storms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libspotcheck_storage.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_mirror.cc" "src/storage/CMakeFiles/spotcheck_storage.dir/disk_mirror.cc.o" "gcc" "src/storage/CMakeFiles/spotcheck_storage.dir/disk_mirror.cc.o.d"
  "/root/repo/src/storage/volume_image.cc" "src/storage/CMakeFiles/spotcheck_storage.dir/volume_image.cc.o" "gcc" "src/storage/CMakeFiles/spotcheck_storage.dir/volume_image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for spotcheck_storage.
# This may be replaced when dependencies are built.

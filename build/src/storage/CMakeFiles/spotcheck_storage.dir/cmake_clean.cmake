file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_storage.dir/disk_mirror.cc.o"
  "CMakeFiles/spotcheck_storage.dir/disk_mirror.cc.o.d"
  "CMakeFiles/spotcheck_storage.dir/volume_image.cc.o"
  "CMakeFiles/spotcheck_storage.dir/volume_image.cc.o.d"
  "libspotcheck_storage.a"
  "libspotcheck_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/connection_tracker.cc" "src/net/CMakeFiles/spotcheck_net.dir/connection_tracker.cc.o" "gcc" "src/net/CMakeFiles/spotcheck_net.dir/connection_tracker.cc.o.d"
  "/root/repo/src/net/nat_table.cc" "src/net/CMakeFiles/spotcheck_net.dir/nat_table.cc.o" "gcc" "src/net/CMakeFiles/spotcheck_net.dir/nat_table.cc.o.d"
  "/root/repo/src/net/vpc.cc" "src/net/CMakeFiles/spotcheck_net.dir/vpc.cc.o" "gcc" "src/net/CMakeFiles/spotcheck_net.dir/vpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

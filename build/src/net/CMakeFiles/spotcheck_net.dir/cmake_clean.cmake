file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_net.dir/connection_tracker.cc.o"
  "CMakeFiles/spotcheck_net.dir/connection_tracker.cc.o.d"
  "CMakeFiles/spotcheck_net.dir/nat_table.cc.o"
  "CMakeFiles/spotcheck_net.dir/nat_table.cc.o.d"
  "CMakeFiles/spotcheck_net.dir/vpc.cc.o"
  "CMakeFiles/spotcheck_net.dir/vpc.cc.o.d"
  "libspotcheck_net.a"
  "libspotcheck_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spotcheck_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libspotcheck_net.a"
)

file(REMOVE_RECURSE
  "libspotcheck_common.a"
)

# Empty dependencies file for spotcheck_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_common.dir/csv.cc.o"
  "CMakeFiles/spotcheck_common.dir/csv.cc.o.d"
  "CMakeFiles/spotcheck_common.dir/flags.cc.o"
  "CMakeFiles/spotcheck_common.dir/flags.cc.o.d"
  "CMakeFiles/spotcheck_common.dir/log.cc.o"
  "CMakeFiles/spotcheck_common.dir/log.cc.o.d"
  "CMakeFiles/spotcheck_common.dir/rng.cc.o"
  "CMakeFiles/spotcheck_common.dir/rng.cc.o.d"
  "CMakeFiles/spotcheck_common.dir/stats.cc.o"
  "CMakeFiles/spotcheck_common.dir/stats.cc.o.d"
  "libspotcheck_common.a"
  "libspotcheck_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libspotcheck_virt.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_virt.dir/activity_log.cc.o"
  "CMakeFiles/spotcheck_virt.dir/activity_log.cc.o.d"
  "CMakeFiles/spotcheck_virt.dir/checkpoint_stream.cc.o"
  "CMakeFiles/spotcheck_virt.dir/checkpoint_stream.cc.o.d"
  "CMakeFiles/spotcheck_virt.dir/memory_image.cc.o"
  "CMakeFiles/spotcheck_virt.dir/memory_image.cc.o.d"
  "CMakeFiles/spotcheck_virt.dir/migration_engine.cc.o"
  "CMakeFiles/spotcheck_virt.dir/migration_engine.cc.o.d"
  "CMakeFiles/spotcheck_virt.dir/migration_models.cc.o"
  "CMakeFiles/spotcheck_virt.dir/migration_models.cc.o.d"
  "CMakeFiles/spotcheck_virt.dir/nested_vm.cc.o"
  "CMakeFiles/spotcheck_virt.dir/nested_vm.cc.o.d"
  "libspotcheck_virt.a"
  "libspotcheck_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spotcheck_virt.
# This may be replaced when dependencies are built.

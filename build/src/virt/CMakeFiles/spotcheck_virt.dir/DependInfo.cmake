
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/activity_log.cc" "src/virt/CMakeFiles/spotcheck_virt.dir/activity_log.cc.o" "gcc" "src/virt/CMakeFiles/spotcheck_virt.dir/activity_log.cc.o.d"
  "/root/repo/src/virt/checkpoint_stream.cc" "src/virt/CMakeFiles/spotcheck_virt.dir/checkpoint_stream.cc.o" "gcc" "src/virt/CMakeFiles/spotcheck_virt.dir/checkpoint_stream.cc.o.d"
  "/root/repo/src/virt/memory_image.cc" "src/virt/CMakeFiles/spotcheck_virt.dir/memory_image.cc.o" "gcc" "src/virt/CMakeFiles/spotcheck_virt.dir/memory_image.cc.o.d"
  "/root/repo/src/virt/migration_engine.cc" "src/virt/CMakeFiles/spotcheck_virt.dir/migration_engine.cc.o" "gcc" "src/virt/CMakeFiles/spotcheck_virt.dir/migration_engine.cc.o.d"
  "/root/repo/src/virt/migration_models.cc" "src/virt/CMakeFiles/spotcheck_virt.dir/migration_models.cc.o" "gcc" "src/virt/CMakeFiles/spotcheck_virt.dir/migration_models.cc.o.d"
  "/root/repo/src/virt/nested_vm.cc" "src/virt/CMakeFiles/spotcheck_virt.dir/nested_vm.cc.o" "gcc" "src/virt/CMakeFiles/spotcheck_virt.dir/nested_vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spotcheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/spotcheck_market.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for spotcheck_backup.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libspotcheck_backup.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_backup.dir/backup_pool.cc.o"
  "CMakeFiles/spotcheck_backup.dir/backup_pool.cc.o.d"
  "CMakeFiles/spotcheck_backup.dir/backup_server.cc.o"
  "CMakeFiles/spotcheck_backup.dir/backup_server.cc.o.d"
  "libspotcheck_backup.a"
  "libspotcheck_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libspotcheck_sim.a"
)

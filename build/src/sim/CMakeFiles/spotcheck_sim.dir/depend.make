# Empty dependencies file for spotcheck_sim.
# This may be replaced when dependencies are built.

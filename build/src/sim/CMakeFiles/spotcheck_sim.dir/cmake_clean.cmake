file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_sim.dir/simulator.cc.o"
  "CMakeFiles/spotcheck_sim.dir/simulator.cc.o.d"
  "libspotcheck_sim.a"
  "libspotcheck_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

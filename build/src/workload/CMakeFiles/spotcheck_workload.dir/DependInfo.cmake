
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/workload_model.cc" "src/workload/CMakeFiles/spotcheck_workload.dir/workload_model.cc.o" "gcc" "src/workload/CMakeFiles/spotcheck_workload.dir/workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/spotcheck_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/spotcheck_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spotcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libspotcheck_workload.a"
)

# Empty dependencies file for spotcheck_workload.
# This may be replaced when dependencies are built.

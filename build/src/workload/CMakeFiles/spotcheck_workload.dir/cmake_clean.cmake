file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_workload.dir/workload_model.cc.o"
  "CMakeFiles/spotcheck_workload.dir/workload_model.cc.o.d"
  "libspotcheck_workload.a"
  "libspotcheck_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

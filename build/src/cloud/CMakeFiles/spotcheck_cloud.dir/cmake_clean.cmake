file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_cloud.dir/billing.cc.o"
  "CMakeFiles/spotcheck_cloud.dir/billing.cc.o.d"
  "CMakeFiles/spotcheck_cloud.dir/latency_model.cc.o"
  "CMakeFiles/spotcheck_cloud.dir/latency_model.cc.o.d"
  "CMakeFiles/spotcheck_cloud.dir/native_cloud.cc.o"
  "CMakeFiles/spotcheck_cloud.dir/native_cloud.cc.o.d"
  "libspotcheck_cloud.a"
  "libspotcheck_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

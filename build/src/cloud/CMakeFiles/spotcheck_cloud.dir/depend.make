# Empty dependencies file for spotcheck_cloud.
# This may be replaced when dependencies are built.

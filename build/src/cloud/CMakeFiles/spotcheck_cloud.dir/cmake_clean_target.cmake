file(REMOVE_RECURSE
  "libspotcheck_cloud.a"
)

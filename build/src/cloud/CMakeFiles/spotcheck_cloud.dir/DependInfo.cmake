
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cc" "src/cloud/CMakeFiles/spotcheck_cloud.dir/billing.cc.o" "gcc" "src/cloud/CMakeFiles/spotcheck_cloud.dir/billing.cc.o.d"
  "/root/repo/src/cloud/latency_model.cc" "src/cloud/CMakeFiles/spotcheck_cloud.dir/latency_model.cc.o" "gcc" "src/cloud/CMakeFiles/spotcheck_cloud.dir/latency_model.cc.o.d"
  "/root/repo/src/cloud/native_cloud.cc" "src/cloud/CMakeFiles/spotcheck_cloud.dir/native_cloud.cc.o" "gcc" "src/cloud/CMakeFiles/spotcheck_cloud.dir/native_cloud.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/spotcheck_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spotcheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_core.dir/bidding_policy.cc.o"
  "CMakeFiles/spotcheck_core.dir/bidding_policy.cc.o.d"
  "CMakeFiles/spotcheck_core.dir/controller.cc.o"
  "CMakeFiles/spotcheck_core.dir/controller.cc.o.d"
  "CMakeFiles/spotcheck_core.dir/cost_model.cc.o"
  "CMakeFiles/spotcheck_core.dir/cost_model.cc.o.d"
  "CMakeFiles/spotcheck_core.dir/evaluation.cc.o"
  "CMakeFiles/spotcheck_core.dir/evaluation.cc.o.d"
  "CMakeFiles/spotcheck_core.dir/event_log.cc.o"
  "CMakeFiles/spotcheck_core.dir/event_log.cc.o.d"
  "CMakeFiles/spotcheck_core.dir/mapping_policy.cc.o"
  "CMakeFiles/spotcheck_core.dir/mapping_policy.cc.o.d"
  "CMakeFiles/spotcheck_core.dir/storm_tracker.cc.o"
  "CMakeFiles/spotcheck_core.dir/storm_tracker.cc.o.d"
  "libspotcheck_core.a"
  "libspotcheck_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libspotcheck_core.a"
)

# Empty dependencies file for spotcheck_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bidding_policy.cc" "src/core/CMakeFiles/spotcheck_core.dir/bidding_policy.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/bidding_policy.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/spotcheck_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/controller.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/spotcheck_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/spotcheck_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/event_log.cc" "src/core/CMakeFiles/spotcheck_core.dir/event_log.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/event_log.cc.o.d"
  "/root/repo/src/core/mapping_policy.cc" "src/core/CMakeFiles/spotcheck_core.dir/mapping_policy.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/mapping_policy.cc.o.d"
  "/root/repo/src/core/storm_tracker.cc" "src/core/CMakeFiles/spotcheck_core.dir/storm_tracker.cc.o" "gcc" "src/core/CMakeFiles/spotcheck_core.dir/storm_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backup/CMakeFiles/spotcheck_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/spotcheck_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spotcheck_net.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/spotcheck_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spotcheck_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/spotcheck_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spotcheck_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

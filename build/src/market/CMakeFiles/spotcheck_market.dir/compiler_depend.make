# Empty compiler generated dependencies file for spotcheck_market.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libspotcheck_market.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/instance_types.cc" "src/market/CMakeFiles/spotcheck_market.dir/instance_types.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/instance_types.cc.o.d"
  "/root/repo/src/market/market_analytics.cc" "src/market/CMakeFiles/spotcheck_market.dir/market_analytics.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/market_analytics.cc.o.d"
  "/root/repo/src/market/price_trace.cc" "src/market/CMakeFiles/spotcheck_market.dir/price_trace.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/price_trace.cc.o.d"
  "/root/repo/src/market/revocation_predictor.cc" "src/market/CMakeFiles/spotcheck_market.dir/revocation_predictor.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/revocation_predictor.cc.o.d"
  "/root/repo/src/market/spot_market.cc" "src/market/CMakeFiles/spotcheck_market.dir/spot_market.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/spot_market.cc.o.d"
  "/root/repo/src/market/spot_price_process.cc" "src/market/CMakeFiles/spotcheck_market.dir/spot_price_process.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/spot_price_process.cc.o.d"
  "/root/repo/src/market/trace_catalog.cc" "src/market/CMakeFiles/spotcheck_market.dir/trace_catalog.cc.o" "gcc" "src/market/CMakeFiles/spotcheck_market.dir/trace_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spotcheck_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spotcheck_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/spotcheck_market.dir/instance_types.cc.o"
  "CMakeFiles/spotcheck_market.dir/instance_types.cc.o.d"
  "CMakeFiles/spotcheck_market.dir/market_analytics.cc.o"
  "CMakeFiles/spotcheck_market.dir/market_analytics.cc.o.d"
  "CMakeFiles/spotcheck_market.dir/price_trace.cc.o"
  "CMakeFiles/spotcheck_market.dir/price_trace.cc.o.d"
  "CMakeFiles/spotcheck_market.dir/revocation_predictor.cc.o"
  "CMakeFiles/spotcheck_market.dir/revocation_predictor.cc.o.d"
  "CMakeFiles/spotcheck_market.dir/spot_market.cc.o"
  "CMakeFiles/spotcheck_market.dir/spot_market.cc.o.d"
  "CMakeFiles/spotcheck_market.dir/spot_price_process.cc.o"
  "CMakeFiles/spotcheck_market.dir/spot_price_process.cc.o.d"
  "CMakeFiles/spotcheck_market.dir/trace_catalog.cc.o"
  "CMakeFiles/spotcheck_market.dir/trace_catalog.cc.o.d"
  "libspotcheck_market.a"
  "libspotcheck_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotcheck_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

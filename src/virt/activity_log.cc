#include "src/virt/activity_log.h"

#include <algorithm>

namespace spotcheck {
namespace {

SimDuration Clip(SimTime start, SimTime end, SimTime from, SimTime to) {
  const SimTime s = std::max(start, from);
  const SimTime e = std::min(end, to);
  return e > s ? e - s : SimDuration::Zero();
}

}  // namespace

void ActivityLog::Record(NestedVmId vm, SimTime start, SimTime end,
                         ActivityKind kind) {
  if (end <= start) {
    return;
  }
  VmRecord& record = vms_[vm];
  if (record.intervals.empty() && record.birth == SimTime() && start > SimTime()) {
    // Auto-birth at the first recorded interval if MarkBirth was never called.
    record.birth = start;
  }
  record.intervals.push_back({start, end, kind});
}

void ActivityLog::MarkBirth(NestedVmId vm, SimTime at) { vms_[vm].birth = at; }

void ActivityLog::MarkDeath(NestedVmId vm, SimTime at) { vms_[vm].death = at; }

SimDuration ActivityLog::Total(NestedVmId vm, ActivityKind kind, SimTime from,
                               SimTime to) const {
  const auto it = vms_.find(vm);
  if (it == vms_.end()) {
    return SimDuration::Zero();
  }
  SimDuration total = SimDuration::Zero();
  for (const ActivityInterval& interval : it->second.intervals) {
    if (interval.kind == kind) {
      total += Clip(interval.start, interval.end, from, to);
    }
  }
  return total;
}

SimDuration ActivityLog::Lifetime(NestedVmId vm, SimTime from, SimTime to) const {
  const auto it = vms_.find(vm);
  if (it == vms_.end()) {
    return SimDuration::Zero();
  }
  return Clip(it->second.birth, it->second.death, from, to);
}

double ActivityLog::MeanFraction(ActivityKind kind, SimTime from, SimTime to) const {
  double sum = 0.0;
  int64_t n = 0;
  for (const auto& [vm, record] : vms_) {
    const SimDuration life = Lifetime(vm, from, to);
    if (life <= SimDuration::Zero()) {
      continue;
    }
    sum += Total(vm, kind, from, to) / life;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

int64_t ActivityLog::CountIntervals(ActivityKind kind, SimTime from,
                                    SimTime to) const {
  int64_t count = 0;
  for (const auto& [vm, record] : vms_) {
    for (const ActivityInterval& interval : record.intervals) {
      if (interval.kind == kind && interval.start < to && interval.end > from) {
        ++count;
      }
    }
  }
  return count;
}

const std::vector<ActivityInterval>* ActivityLog::IntervalsFor(NestedVmId vm) const {
  const auto it = vms_.find(vm);
  return it == vms_.end() ? nullptr : &it->second.intervals;
}

std::vector<NestedVmId> ActivityLog::KnownVms() const {
  std::vector<NestedVmId> ids;
  ids.reserve(vms_.size());
  for (const auto& [vm, record] : vms_) {
    ids.push_back(vm);
  }
  return ids;
}

}  // namespace spotcheck

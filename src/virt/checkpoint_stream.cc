#include "src/virt/checkpoint_stream.h"

#include <algorithm>

namespace spotcheck {

CheckpointStream::CheckpointStream(Simulator* sim, CheckpointStreamConfig config)
    : sim_(sim), config_(config), interval_(config.base_interval) {}

CheckpointStream::CheckpointStream(Simulator* sim, CheckpointStreamConfig config,
                                   MemoryImage* image)
    : sim_(sim), config_(config), image_(image), interval_(config.base_interval) {}

void CheckpointStream::AccrueDirt(SimDuration dt) {
  if (image_ != nullptr) {
    image_->Run(dt, config_.dirty_rate_mbps);
    const std::vector<int64_t> pages = image_->CollectDirty();
    stale_mb_ += static_cast<double>(pages.size()) *
                 MemoryImage::kPageSizeKb / 1024.0;
  } else {
    stale_mb_ += config_.dirty_rate_mbps * dt.seconds();
  }
}

void CheckpointStream::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  last_tick_ = sim_->Now();
  Arm();
}

void CheckpointStream::Stop() {
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = EventHandle();
}

void CheckpointStream::EnterRampMode() { ramping_ = true; }

void CheckpointStream::Arm() {
  pending_ = sim_->ScheduleAfter(interval_, [this]() { Tick(); });
}

void CheckpointStream::Tick() {
  if (!running_) {
    return;
  }
  const SimDuration dt = sim_->Now() - last_tick_;
  last_tick_ = sim_->Now();
  ++epochs_;

  // Dirt accrues while the previous epoch shipped; the flush drains at link
  // bandwidth for the whole epoch (background process, VM keeps running).
  AccrueDirt(dt);
  max_stale_mb_ = std::max(max_stale_mb_, stale_mb_);
  const double drained = std::min(stale_mb_, config_.bandwidth_mbps * dt.seconds());
  stale_mb_ -= drained;
  shipped_mb_ += drained;

  if (ramping_) {
    interval_ = std::max(config_.min_interval, interval_ / 2.0);
  }
  Arm();
}

SimDuration CheckpointStream::FinalCommit() {
  // Account the dirt accrued since the last epoch, then pause and drain.
  const SimDuration dt = sim_->Now() - last_tick_;
  AccrueDirt(dt);
  max_stale_mb_ = std::max(max_stale_mb_, stale_mb_);
  const SimDuration pause =
      SimDuration::Seconds(stale_mb_ / config_.bandwidth_mbps);
  shipped_mb_ += stale_mb_;
  stale_mb_ = 0.0;
  Stop();
  return pause;
}

}  // namespace spotcheck

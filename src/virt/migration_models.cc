#include "src/virt/migration_models.h"

#include <algorithm>

namespace spotcheck {

PreCopyPlan PlanPreCopy(const PreCopyParams& params) {
  PreCopyPlan plan;
  if (params.bandwidth_mbps <= 0.0 || params.memory_mb <= 0.0) {
    return plan;
  }
  double to_send_mb = params.memory_mb;
  double total_s = 0.0;
  int rounds = 0;
  while (to_send_mb > params.stop_threshold_mb && rounds < params.max_rounds) {
    const double round_s = to_send_mb / params.bandwidth_mbps;
    total_s += round_s;
    ++rounds;
    // Pages dirtied during this round must be resent; a dirty rate at or
    // above the link bandwidth never converges, so the residual saturates at
    // the full memory size.
    to_send_mb = std::min(params.memory_mb, params.dirty_rate_mbps * round_s);
    if (params.dirty_rate_mbps >= params.bandwidth_mbps) {
      break;
    }
  }
  plan.rounds = rounds;
  plan.converged = to_send_mb <= params.stop_threshold_mb ||
                   params.dirty_rate_mbps < params.bandwidth_mbps;
  plan.downtime = SimDuration::Seconds(to_send_mb / params.bandwidth_mbps);
  plan.total = SimDuration::Seconds(total_s) + plan.downtime;
  return plan;
}

BoundedTimePlan PlanBoundedTime(const BoundedTimeParams& params) {
  BoundedTimePlan plan;
  if (params.backup_bandwidth_mbps <= 0.0) {
    return plan;
  }
  // The checkpointer keeps stale state small enough to commit within the
  // bound at the available backup bandwidth.
  plan.stale_threshold_mb = params.bound.seconds() * params.backup_bandwidth_mbps;
  plan.unoptimized_commit_downtime =
      SimDuration::Seconds(plan.stale_threshold_mb / params.backup_bandwidth_mbps);
  // The frequency ramp drains the stale set while the VM keeps running; only
  // pages dirtied during the final (short) interval are committed paused.
  const double residual_mb =
      params.dirty_rate_mbps * params.ramp_final_interval.seconds();
  plan.optimized_commit_downtime =
      SimDuration::Seconds(residual_mb / params.backup_bandwidth_mbps) +
      params.ramp_final_interval;
  // Draining stale_threshold_mb at backup bandwidth bounds the ramp length;
  // the VM is degraded (not down) while it runs, capped by the warning.
  const SimDuration drain = SimDuration::Seconds(
      plan.stale_threshold_mb /
      std::max(params.backup_bandwidth_mbps - params.dirty_rate_mbps, 1.0));
  plan.ramp_degraded = std::min(drain, params.warning);
  plan.feasible = plan.unoptimized_commit_downtime <= params.warning;
  return plan;
}

RestoreOutcome ComputeRestore(const RestoreParams& params) {
  RestoreOutcome outcome;
  if (params.bandwidth_mbps <= 0.0) {
    return outcome;
  }
  if (params.kind == RestoreKind::kFull) {
    outcome.downtime = SimDuration::Seconds(params.memory_mb / params.bandwidth_mbps);
  } else {
    outcome.downtime =
        SimDuration::Seconds(params.skeleton_mb / params.bandwidth_mbps);
    // Demand paging plus the background prefetcher touch every page once.
    outcome.degraded =
        SimDuration::Seconds((params.memory_mb - params.skeleton_mb) /
                             params.bandwidth_mbps);
  }
  return outcome;
}

bool FitsWithinWarning(const PreCopyPlan& plan, SimDuration warning) {
  return plan.converged && plan.total <= warning;
}

}  // namespace spotcheck

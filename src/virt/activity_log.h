// Per-VM availability accounting.
//
// The evaluation (Figures 11 and 12) reports the fraction of time a nested VM
// was down (unavailable) and the fraction of time it ran with degraded
// performance (during checkpoint-frequency ramps and lazy restores). The
// ActivityLog records labelled intervals per VM and answers aggregate
// queries over an observation window.

#ifndef SRC_VIRT_ACTIVITY_LOG_H_
#define SRC_VIRT_ACTIVITY_LOG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace spotcheck {

enum class ActivityKind : uint8_t { kDowntime, kDegraded };

struct ActivityInterval {
  SimTime start;
  SimTime end;
  ActivityKind kind;
};

class ActivityLog {
 public:
  // Records a closed interval [start, end); zero/negative lengths ignored.
  void Record(NestedVmId vm, SimTime start, SimTime end, ActivityKind kind);

  // Marks the VM as observed from `start` (its allocation time). Needed so
  // fractions are relative to the VM's lifetime inside the window.
  void MarkBirth(NestedVmId vm, SimTime at);
  void MarkDeath(NestedVmId vm, SimTime at);

  // Total time of `kind` for one VM clipped to [from, to).
  SimDuration Total(NestedVmId vm, ActivityKind kind, SimTime from, SimTime to) const;

  // Observed lifetime of the VM clipped to [from, to).
  SimDuration Lifetime(NestedVmId vm, SimTime from, SimTime to) const;

  // Mean over all VMs of (time of `kind` / lifetime), in [0, 1].
  double MeanFraction(ActivityKind kind, SimTime from, SimTime to) const;

  // Number of recorded intervals of `kind` across all VMs in the window.
  int64_t CountIntervals(ActivityKind kind, SimTime from, SimTime to) const;

  const std::vector<ActivityInterval>* IntervalsFor(NestedVmId vm) const;
  std::vector<NestedVmId> KnownVms() const;

 private:
  struct VmRecord {
    SimTime birth;
    SimTime death = SimTime::Max();
    std::vector<ActivityInterval> intervals;
  };
  std::map<NestedVmId, VmRecord> vms_;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_ACTIVITY_LOG_H_

#include "src/virt/migration_engine.h"

#include <algorithm>

#include "src/common/log.h"

namespace spotcheck {

std::string_view MigrationMechanismName(MigrationMechanism mechanism) {
  switch (mechanism) {
    case MigrationMechanism::kXenLiveMigration:
      return "xen-live-migration";
    case MigrationMechanism::kYankFullRestore:
      return "unoptimized-full-restore";
    case MigrationMechanism::kSpotCheckFullRestore:
      return "spotcheck-full-restore";
    case MigrationMechanism::kUnoptimizedLazyRestore:
      return "unoptimized-lazy-restore";
    case MigrationMechanism::kSpotCheckLazyRestore:
      return "spotcheck-lazy-restore";
  }
  return "unknown";
}

bool MechanismUsesLazyRestore(MigrationMechanism mechanism) {
  return mechanism == MigrationMechanism::kUnoptimizedLazyRestore ||
         mechanism == MigrationMechanism::kSpotCheckLazyRestore;
}

bool MechanismIsOptimized(MigrationMechanism mechanism) {
  return mechanism == MigrationMechanism::kSpotCheckFullRestore ||
         mechanism == MigrationMechanism::kSpotCheckLazyRestore;
}

bool MechanismNeedsBackup(MigrationMechanism mechanism) {
  return mechanism != MigrationMechanism::kXenLiveMigration;
}

MigrationEngine::MigrationEngine(Simulator* sim, ActivityLog* log,
                                 MigrationEngineConfig config,
                                 MetricsRegistry* metrics, SpanTracer* tracer)
    : sim_(sim), log_(log), config_(config), tracer_(tracer) {
  if (metrics != nullptr) {
    live_migrations_metric_ = &metrics->Counter("virt.live_migrations");
    evacuations_metric_ = &metrics->Counter("virt.evacuations");
    failed_migrations_metric_ = &metrics->Counter("virt.failed_migrations");
    crash_recoveries_metric_ = &metrics->Counter("virt.crash_recoveries");
    restore_bytes_mb_metric_ = &metrics->Counter("virt.restore_bytes_mb");
    // Restores span milliseconds (optimized lazy) to minutes (thrashing
    // full restores of large VMs).
    restore_duration_metric_ =
        &metrics->Histogram("virt.restore_duration_s", 0.0, 300.0, 60);
    downtime_metric_ =
        &metrics->Histogram("virt.evacuation_downtime_s", 0.0, 300.0, 60);
  }
}

TraceTrackId MigrationEngine::VmTrack(const NestedVm& vm) {
  return tracer_ != nullptr ? tracer_->Track("vm/" + vm.id().ToString()) : 0;
}

void MigrationEngine::LiveMigrate(NestedVm& vm, MigrationDoneCallback done) {
  PreCopyParams params;
  params.memory_mb = vm.spec().memory_mb;
  params.dirty_rate_mbps = vm.spec().dirty_rate_mbps;
  params.bandwidth_mbps = config_.link_mbps;
  const PreCopyPlan plan = PlanPreCopy(params);

  vm.set_state(NestedVmState::kMigrating);
  const SimTime start = sim_->Now();
  const SimTime pause_start = start + plan.total - plan.downtime;
  const SimTime resume_at = start + plan.total;
  log_->Record(vm.id(), pause_start, resume_at, ActivityKind::kDowntime);
  if (tracer_ != nullptr) {
    // The whole pre-copy timeline is known up front; record it eagerly.
    const TraceTrackId track = VmTrack(vm);
    const SpanId live =
        tracer_->AddSpan(start, resume_at, "migrate.live", "virt", track);
    tracer_->AttrNum(live, "rounds", static_cast<double>(plan.rounds));
    tracer_->AddSpan(start, pause_start, "migrate.precopy", "virt", track,
                     live);
    tracer_->AddSpan(pause_start, resume_at, "migrate.stop_and_copy", "virt",
                     track, live);
  }

  sim_->ScheduleAt(resume_at, [this, &vm, plan, resume_at, done = std::move(done)]() {
    vm.set_state(NestedVmState::kRunning);
    vm.count_migration();
    ++live_migrations_;
    MetricInc(live_migrations_metric_);
    if (done) {
      done(MigrationOutcome{true, plan.downtime, SimDuration::Zero(), resume_at});
    }
  });
}

void MigrationEngine::LiveEvacuate(NestedVm& vm, SimTime deadline,
                                   MigrationDoneCallback done) {
  // Race the pre-copy against the termination. Large or write-heavy VMs lose
  // this race and their memory state with it (Section 3.2).
  const SimTime now = sim_->Now();
  PreCopyParams params;
  params.memory_mb = vm.spec().memory_mb;
  params.dirty_rate_mbps = vm.spec().dirty_rate_mbps;
  params.bandwidth_mbps = config_.link_mbps;
  const PreCopyPlan plan = PlanPreCopy(params);
  if (!FitsWithinWarning(plan, deadline - now)) {
    vm.set_state(NestedVmState::kFailed);
    ++failed_migrations_;
    MetricInc(failed_migrations_metric_);
    log_->MarkDeath(vm.id(), deadline);
    if (tracer_ != nullptr) {
      const SpanId mark = tracer_->Instant(now, "evac.live_race_lost", "virt",
                                           VmTrack(vm));
      tracer_->AttrNum(mark, "precopy_s", plan.total.seconds());
      tracer_->AttrNum(mark, "warning_s", (deadline - now).seconds());
    }
    SPOTCHECK_LOG(kWarning) << "nested VM " << vm.id().ToString()
                            << " lost: live migration (" << plan.total.seconds()
                            << "s) cannot beat the termination deadline";
    if (done) {
      sim_->ScheduleAt(deadline, [done = std::move(done), deadline]() {
        done(MigrationOutcome{false, SimDuration::Zero(), SimDuration::Zero(),
                              deadline});
      });
    }
    return;
  }
  LiveMigrate(vm, std::move(done));
}

void MigrationEngine::BeginEvacuation(NestedVm& vm, MigrationMechanism mechanism,
                                      SimTime deadline,
                                      std::function<void()> on_committed) {
  const SimTime now = sim_->Now();
  BoundedTimeParams bt;
  bt.dirty_rate_mbps = vm.spec().dirty_rate_mbps;
  bt.backup_bandwidth_mbps = config_.link_mbps;
  bt.bound = config_.bound;
  bt.warning = deadline - now;
  const BoundedTimePlan plan = PlanBoundedTime(bt);

  vm.set_state(NestedVmState::kMigrating);
  ++evacuations_;
  MetricInc(evacuations_metric_);

  SimTime pause_start;
  SimDuration commit;
  if (MechanismIsOptimized(mechanism)) {
    // Ramp the checkpoint frequency while the VM keeps running (degraded
    // through the warning period), pausing only for a millisecond-scale
    // final commit just before the deadline.
    commit = plan.optimized_commit_downtime;
    pause_start = std::max(now, deadline - commit);
    if (pause_start > now) {
      log_->Record(vm.id(), now, pause_start, ActivityKind::kDegraded);
    }
  } else {
    // Yank: pause immediately on the warning and commit the full stale set.
    commit = plan.unoptimized_commit_downtime;
    pause_start = now;
  }
  pause_start_[vm.id()] = pause_start;

  const SimTime commit_done = std::min(pause_start + commit, deadline);
  if (tracer_ != nullptr) {
    const TraceTrackId track = VmTrack(vm);
    if (pause_start > now) {
      const SpanId ramp =
          tracer_->AddSpan(now, pause_start, "evac.commit_ramp", "virt", track);
      tracer_->AttrNum(ramp, "stale_threshold_mb", plan.stale_threshold_mb);
    }
    tracer_->AddSpan(pause_start, commit_done, "evac.commit", "virt", track);
  }
  sim_->ScheduleAt(commit_done, [on_committed = std::move(on_committed)]() {
    if (on_committed) {
      on_committed();
    }
  });
}

void MigrationEngine::BeginCrashRecovery(NestedVm& vm, SimTime failed_at) {
  vm.set_state(NestedVmState::kMigrating);
  pause_start_[vm.id()] = failed_at;
  ++crash_recoveries_;
  MetricInc(crash_recoveries_metric_);
  if (tracer_ != nullptr) {
    tracer_->Instant(failed_at, "evac.crash_detected", "virt", VmTrack(vm));
  }
}

void MigrationEngine::CompleteEvacuation(NestedVm& vm,
                                         MigrationMechanism mechanism,
                                         const RestoreBandwidthSource* backup_bw,
                                         int concurrent,
                                         MigrationDoneCallback done) {
  concurrent = std::max(concurrent, 1);
  const auto pause_it = pause_start_.find(vm.id());
  const SimTime pause_start =
      pause_it != pause_start_.end() ? pause_it->second : sim_->Now();
  if (pause_it != pause_start_.end()) {
    pause_start_.erase(pause_it);
  }

  const RestoreKind kind = MechanismUsesLazyRestore(mechanism) ? RestoreKind::kLazy
                                                               : RestoreKind::kFull;
  const bool optimized = MechanismIsOptimized(mechanism);
  RestoreParams restore;
  restore.kind = kind;
  restore.memory_mb = vm.spec().memory_mb;
  restore.skeleton_mb = config_.skeleton_mb;
  restore.bandwidth_mbps = backup_bw != nullptr
                               ? backup_bw->PerVmRestoreBandwidth(kind, optimized,
                                                                  concurrent)
                               : config_.link_mbps;
  const RestoreOutcome outcome = ComputeRestore(restore);

  const SimTime resume_at =
      sim_->Now() + config_.ec2_ops_downtime + outcome.downtime;
  const SimDuration lazy_degraded = outcome.degraded;
  if (tracer_ != nullptr) {
    // Phase 2's timeline is computed synchronously: EC2 EBS/ENI moves, then
    // the restore, then (lazy only) the demand-paging window.
    const TraceTrackId track = VmTrack(vm);
    const SimTime ec2_done = sim_->Now() + config_.ec2_ops_downtime;
    tracer_->AddSpan(sim_->Now(), ec2_done, "evac.ec2_ops", "virt", track);
    const SpanId restore_span = tracer_->AddSpan(
        ec2_done, resume_at,
        kind == RestoreKind::kLazy ? "evac.restore_lazy" : "evac.restore_full",
        "virt", track);
    tracer_->AttrNum(restore_span, "concurrent", concurrent);
    tracer_->AttrNum(restore_span, "bandwidth_mbps", restore.bandwidth_mbps);
    if (lazy_degraded > SimDuration::Zero()) {
      tracer_->AddSpan(resume_at, resume_at + lazy_degraded,
                       "evac.lazy_paging", "virt", track);
    }
  }
  log_->Record(vm.id(), pause_start, resume_at, ActivityKind::kDowntime);
  if (lazy_degraded > SimDuration::Zero()) {
    log_->Record(vm.id(), resume_at, resume_at + lazy_degraded,
                 ActivityKind::kDegraded);
  }
  const SimDuration downtime = resume_at - pause_start;
  // Full restores pull the whole image up front; lazy restores page the same
  // total in over the degraded window, so either way the backup server moves
  // the full memory image (plus the skeleton for lazy).
  MetricInc(restore_bytes_mb_metric_,
            static_cast<int64_t>(vm.spec().memory_mb +
                                 (kind == RestoreKind::kLazy ? config_.skeleton_mb
                                                             : 0.0)));
  MetricObserve(restore_duration_metric_,
                (config_.ec2_ops_downtime + outcome.downtime).seconds());
  MetricObserve(downtime_metric_, downtime.seconds());
  sim_->ScheduleAt(
      resume_at,
      [this, &vm, downtime, lazy_degraded, resume_at, done = std::move(done)]() {
        vm.count_migration();
        if (lazy_degraded > SimDuration::Zero()) {
          vm.set_state(NestedVmState::kDegraded);
          sim_->ScheduleAfter(lazy_degraded, [&vm]() {
            if (vm.state() == NestedVmState::kDegraded) {
              vm.set_state(NestedVmState::kRunning);
            }
          });
        } else {
          vm.set_state(NestedVmState::kRunning);
        }
        if (done) {
          done(MigrationOutcome{true, downtime, lazy_degraded, resume_at});
        }
      });
}

}  // namespace spotcheck

#include "src/virt/nested_vm.h"

namespace spotcheck {

std::string_view NestedVmStateName(NestedVmState state) {
  switch (state) {
    case NestedVmState::kProvisioning:
      return "provisioning";
    case NestedVmState::kRunning:
      return "running";
    case NestedVmState::kDegraded:
      return "degraded";
    case NestedVmState::kMigrating:
      return "migrating";
    case NestedVmState::kTerminated:
      return "terminated";
    case NestedVmState::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace spotcheck

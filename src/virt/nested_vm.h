// Nested VM state.
//
// A NestedVm is the customer-visible server: it lives inside a host VM's
// nested hypervisor, carries a stable private IP address and a
// network-attached root volume, and (when hosted on a spot server) streams
// checkpoints to a backup server. The migration engine and the controller
// move it between hosts; this class is the bookkeeping record.

#ifndef SRC_VIRT_NESTED_VM_H_
#define SRC_VIRT_NESTED_VM_H_

#include <cstdint>
#include <string_view>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/virt/vm_spec.h"

namespace spotcheck {

enum class NestedVmState : uint8_t {
  kProvisioning,  // waiting for a host
  kRunning,
  kDegraded,   // running with degraded performance (ramp / lazy restore)
  kMigrating,  // paused or mid-evacuation
  kTerminated, // customer-released
  kFailed,     // state lost (live migration beaten by the termination)
};
inline constexpr int kNumNestedVmStates = 6;

std::string_view NestedVmStateName(NestedVmState state);

class NestedVm {
 public:
  NestedVm(NestedVmId id, CustomerId customer, NestedVmSpec spec)
      : id_(id), customer_(customer), spec_(spec) {}

  NestedVmId id() const { return id_; }
  CustomerId customer() const { return customer_; }
  const NestedVmSpec& spec() const { return spec_; }

  NestedVmState state() const { return state_; }
  void set_state(NestedVmState state) {
    if (state_counters_ != nullptr) {
      --state_counters_[static_cast<int>(state_)];
      ++state_counters_[static_cast<int>(state)];
    }
    state_ = state;
  }
  bool alive() const {
    return state_ != NestedVmState::kTerminated && state_ != NestedVmState::kFailed;
  }

  // Points this VM at a per-state population counter array (indexed by
  // NestedVmState, kNumNestedVmStates entries) that every set_state updates
  // in place. This is how the controller answers RunningVmCount() for a
  // million-VM fleet in O(1) instead of scanning every record. The array
  // must outlive the VM; binding counts the current state immediately.
  void BindStateCounters(int64_t* counters) {
    state_counters_ = counters;
    if (counters != nullptr) {
      ++counters[static_cast<int>(state_)];
    }
  }

  // Current placement; invalid ids mean "none".
  InstanceId host() const { return host_; }
  void set_host(InstanceId host) { host_ = host; }
  BackupServerId backup() const { return backup_; }
  void set_backup(BackupServerId backup) { backup_ = backup; }
  VolumeId root_volume() const { return root_volume_; }
  void set_root_volume(VolumeId volume) { root_volume_ = volume; }
  AddressId address() const { return address_; }
  void set_address(AddressId address) { address_ = address; }

  int64_t migrations() const { return migrations_; }
  void count_migration() { ++migrations_; }

 private:
  NestedVmId id_;
  CustomerId customer_;
  NestedVmSpec spec_;
  NestedVmState state_ = NestedVmState::kProvisioning;
  int64_t* state_counters_ = nullptr;  // nullable; see BindStateCounters
  InstanceId host_;
  BackupServerId backup_;
  VolumeId root_volume_;
  AddressId address_;
  int64_t migrations_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_NESTED_VM_H_

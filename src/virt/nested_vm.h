// Nested VM state.
//
// A NestedVm is the customer-visible server: it lives inside a host VM's
// nested hypervisor, carries a stable private IP address and a
// network-attached root volume, and (when hosted on a spot server) streams
// checkpoints to a backup server. The migration engine and the controller
// move it between hosts; this class is the bookkeeping record.

#ifndef SRC_VIRT_NESTED_VM_H_
#define SRC_VIRT_NESTED_VM_H_

#include <cstdint>
#include <string_view>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/virt/vm_spec.h"

namespace spotcheck {

enum class NestedVmState : uint8_t {
  kProvisioning,  // waiting for a host
  kRunning,
  kDegraded,   // running with degraded performance (ramp / lazy restore)
  kMigrating,  // paused or mid-evacuation
  kTerminated, // customer-released
  kFailed,     // state lost (live migration beaten by the termination)
};

std::string_view NestedVmStateName(NestedVmState state);

class NestedVm {
 public:
  NestedVm(NestedVmId id, CustomerId customer, NestedVmSpec spec)
      : id_(id), customer_(customer), spec_(spec) {}

  NestedVmId id() const { return id_; }
  CustomerId customer() const { return customer_; }
  const NestedVmSpec& spec() const { return spec_; }

  NestedVmState state() const { return state_; }
  void set_state(NestedVmState state) { state_ = state; }
  bool alive() const {
    return state_ != NestedVmState::kTerminated && state_ != NestedVmState::kFailed;
  }

  // Current placement; invalid ids mean "none".
  InstanceId host() const { return host_; }
  void set_host(InstanceId host) { host_ = host; }
  BackupServerId backup() const { return backup_; }
  void set_backup(BackupServerId backup) { backup_ = backup; }
  VolumeId root_volume() const { return root_volume_; }
  void set_root_volume(VolumeId volume) { root_volume_ = volume; }
  AddressId address() const { return address_; }
  void set_address(AddressId address) { address_ = address; }

  int64_t migrations() const { return migrations_; }
  void count_migration() { ++migrations_; }

 private:
  NestedVmId id_;
  CustomerId customer_;
  NestedVmSpec spec_;
  NestedVmState state_ = NestedVmState::kProvisioning;
  InstanceId host_;
  BackupServerId backup_;
  VolumeId root_volume_;
  AddressId address_;
  int64_t migrations_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_NESTED_VM_H_

#include "src/virt/memory_image.h"

#include <algorithm>
#include <cmath>

namespace spotcheck {

MemoryImage::MemoryImage(double memory_mb, double wss_mb, Rng rng)
    : pages_(static_cast<size_t>(
          std::max(1.0, memory_mb * 1024.0 / static_cast<double>(kPageSizeKb)))),
      dirty_(pages_.size(), false),
      wss_pages_(std::clamp<int64_t>(
          static_cast<int64_t>(wss_mb * 1024.0 / static_cast<double>(kPageSizeKb)), 1,
          static_cast<int64_t>(pages_.size()))),
      rng_(rng) {}

int64_t MemoryImage::ClampPage(int64_t page) const {
  return std::clamp<int64_t>(page, 0, num_pages() - 1);
}

void MemoryImage::DirtyPage(int64_t page) {
  page = ClampPage(page);
  pages_[page] = pages_[page] * 6364136223846793005ULL + 1442695040888963407ULL;
  if (!dirty_[page]) {
    dirty_[page] = true;
    ++dirty_count_;
  }
  ++total_writes_;
}

int64_t MemoryImage::Run(SimDuration dt, double dirty_rate_mbps) {
  const double mb = dirty_rate_mbps * dt.seconds();
  const int64_t writes =
      static_cast<int64_t>(mb * 1024.0 / static_cast<double>(kPageSizeKb));
  for (int64_t i = 0; i < writes; ++i) {
    // 90% of writes hit the hot working set at the front of the image; the
    // rest scatter (guest page cache, allocator churn).
    if (rng_.Bernoulli(0.9)) {
      DirtyPage(rng_.UniformInt(0, wss_pages_ - 1));
    } else {
      DirtyPage(rng_.UniformInt(0, num_pages() - 1));
    }
  }
  return writes;
}

std::vector<int64_t> MemoryImage::CollectDirty() {
  std::vector<int64_t> collected;
  collected.reserve(static_cast<size_t>(dirty_count_));
  for (int64_t page = 0; page < num_pages(); ++page) {
    if (dirty_[page]) {
      collected.push_back(page);
      dirty_[page] = false;
    }
  }
  dirty_count_ = 0;
  return collected;
}

uint64_t MemoryImage::Digest() const {
  uint64_t digest = 0x9e3779b97f4a7c15ULL;
  for (size_t page = 0; page < pages_.size(); ++page) {
    uint64_t x = static_cast<uint64_t>(page + 1) * 0xbf58476d1ce4e5b9ULL ^
                 pages_[page];
    x ^= x >> 31;
    digest ^= x * 0x94d049bb133111ebULL;
  }
  return digest;
}

RestoreSequencer::RestoreSequencer(int64_t total_pages, int64_t skeleton_pages,
                                   double fault_share, Rng rng)
    : resident_(static_cast<size_t>(std::max<int64_t>(total_pages, 1)), false),
      remaining_(std::max<int64_t>(total_pages, 1)),
      fault_share_(std::clamp(fault_share, 0.0, 1.0)),
      rng_(rng) {
  skeleton_pages = std::clamp<int64_t>(skeleton_pages, 0, remaining_);
  skeleton_.reserve(static_cast<size_t>(skeleton_pages));
  // Page tables and vCPU state live at the front of the image.
  for (int64_t page = 0; page < skeleton_pages; ++page) {
    skeleton_.push_back(page);
    resident_[page] = true;
    --remaining_;
  }
}

int64_t RestoreSequencer::Next() {
  if (remaining_ == 0) {
    return -1;
  }
  const int64_t total = static_cast<int64_t>(resident_.size());
  if (rng_.Bernoulli(fault_share_)) {
    // Demand fault: the guest touches a random non-resident page. Probe a
    // few times, then fall back to the prefetcher (the fault was for an
    // already-resident page -- a hit, nothing to fetch).
    for (int probe = 0; probe < 8; ++probe) {
      const int64_t page = rng_.UniformInt(0, total - 1);
      if (!resident_[page]) {
        resident_[page] = true;
        --remaining_;
        ++faults_served_;
        return page;
      }
    }
  }
  // Background prefetcher: next non-resident page in sequential order.
  while (cursor_ < total && resident_[cursor_]) {
    ++cursor_;
  }
  if (cursor_ >= total) {
    // Wrap once: stragglers behind the cursor (faults filled gaps unevenly).
    cursor_ = 0;
    while (cursor_ < total && resident_[cursor_]) {
      ++cursor_;
    }
    if (cursor_ >= total) {
      return -1;
    }
  }
  resident_[cursor_] = true;
  --remaining_;
  ++prefetched_;
  return cursor_;
}

}  // namespace spotcheck

// Nested VM specification.
//
// A nested VM is the unit SpotCheck sells: a XenBlanket guest running inside
// a native cloud instance. For migration modelling the interesting
// characteristics are the memory footprint and the rate at which the resident
// workload dirties memory pages (which governs live-migration convergence and
// bounded-time checkpoint traffic).

#ifndef SRC_VIRT_VM_SPEC_H_
#define SRC_VIRT_VM_SPEC_H_

#include <string>

#include "src/market/instance_types.h"

namespace spotcheck {

struct NestedVmSpec {
  // The instance type whose shape this nested VM mimics; memory defaults to
  // the type's allotment minus nested-hypervisor overhead.
  InstanceType type = InstanceType::kM3Medium;
  double memory_mb = 3072.0;
  int vcpus = 1;

  // Workload memory behaviour.
  double dirty_rate_mbps = 10.0;       // sustained page-dirtying rate
  double checkpoint_demand_mbps = 3.0; // average dirty traffic shipped to backup

  // Stateless services (e.g. one web server of a replicated tier) tolerate
  // losing an instance: they need no backup server, and on a revocation a
  // fresh replica is booted instead of migrating state (Section 4.2).
  bool stateless = false;

  static NestedVmSpec ForType(InstanceType type);
};

inline NestedVmSpec NestedVmSpec::ForType(InstanceType t) {
  const InstanceTypeInfo& info = GetInstanceTypeInfo(t);
  NestedVmSpec spec;
  spec.type = t;
  // Reserve ~20% of host memory for the nested hypervisor + dom0.
  spec.memory_mb = info.memory_gb * 1024.0 * 0.8;
  spec.vcpus = info.vcpus;
  return spec;
}

}  // namespace spotcheck

#endif  // SRC_VIRT_VM_SPEC_H_

// Analytic models of the migration mechanisms in Section 3.
//
// Each model turns (memory size, dirty rate, link bandwidth) into migration
// latency, downtime, and degraded-performance windows:
//
//   * Pre-copy live migration [Clark et al., NSDI'05]: iterative rounds; each
//     round retransmits the pages dirtied during the previous round; downtime
//     is the final stop-and-copy of the residual dirty set. Latency grows
//     with memory size, so large VMs cannot finish within a spot warning.
//   * Bounded-time migration [Yank, NSDI'13]: a background process
//     continuously checkpoints dirty pages to a backup server, keeping the
//     stale (un-checkpointed) state below a threshold chosen so it can be
//     committed within the time bound. On a warning, Yank pauses the VM and
//     commits the stale state (downtime up to the bound); SpotCheck instead
//     ramps the checkpoint frequency during the warning period, shrinking
//     the final pause to milliseconds at the cost of degraded performance
//     while the ramp runs.
//   * Restoration: "full" reads the entire memory image before resuming
//     (downtime = image / bandwidth); "lazy" resumes after reading only the
//     ~5 MB skeleton state, then demand-pages the rest (sub-100 ms downtime,
//     followed by a degraded window until all pages are resident).

#ifndef SRC_VIRT_MIGRATION_MODELS_H_
#define SRC_VIRT_MIGRATION_MODELS_H_

#include "src/common/time.h"

namespace spotcheck {

// --- Pre-copy live migration ------------------------------------------------

struct PreCopyParams {
  double memory_mb = 3072.0;
  double dirty_rate_mbps = 10.0;
  double bandwidth_mbps = 125.0;  // link between source and destination hosts
  int max_rounds = 30;
  // Stop iterating when the residual dirty set falls below this.
  double stop_threshold_mb = 64.0;
};

struct PreCopyPlan {
  SimDuration total;     // end-to-end migration latency (incl. downtime)
  SimDuration downtime;  // final stop-and-copy pause
  int rounds = 0;
  bool converged = false;  // false when the dirty rate outruns the link
};

PreCopyPlan PlanPreCopy(const PreCopyParams& params);

// --- Bounded-time migration ---------------------------------------------------

struct BoundedTimeParams {
  double dirty_rate_mbps = 10.0;
  double backup_bandwidth_mbps = 125.0;  // VM -> backup server link
  // SpotCheck uses a 30 s bound, well under EC2's 120 s warning.
  SimDuration bound = SimDuration::Seconds(30);
  SimDuration warning = SimDuration::Seconds(120);
  // With the checkpoint-frequency ramp, the final checkpoint interval; the
  // residual committed during the last pause is dirty_rate * this.
  SimDuration ramp_final_interval = SimDuration::Millis(100);
};

struct BoundedTimePlan {
  // Maximum stale state the background checkpointer tolerates (MB); chosen
  // so a commit fits within the bound.
  double stale_threshold_mb = 0.0;
  // Pause to commit stale state on a warning, without the ramp (Yank).
  SimDuration unoptimized_commit_downtime;
  // Pause with SpotCheck's frequency ramp (millisecond scale).
  SimDuration optimized_commit_downtime;
  // Degraded window while the ramp runs (bounded by the warning period).
  SimDuration ramp_degraded;
  // True if even the unoptimized commit fits the warning period.
  bool feasible = false;
};

BoundedTimePlan PlanBoundedTime(const BoundedTimeParams& params);

// --- Restoration -------------------------------------------------------------

enum class RestoreKind { kFull, kLazy };

struct RestoreParams {
  RestoreKind kind = RestoreKind::kLazy;
  double memory_mb = 3072.0;
  double skeleton_mb = 5.0;  // vCPU + page tables + hypervisor state
  // Effective per-VM read bandwidth from the backup server (already accounts
  // for concurrency and prefetch optimizations; see BackupServer).
  double bandwidth_mbps = 125.0;
};

struct RestoreOutcome {
  SimDuration downtime;  // VM not executing
  SimDuration degraded;  // executing but demand-paging (lazy only)
};

RestoreOutcome ComputeRestore(const RestoreParams& params);

// Whether a VM with this live-migration plan can evacuate within a warning
// period. Section 3.2: only "small" nested VMs can rely on live migration
// when a spot server is revoked.
bool FitsWithinWarning(const PreCopyPlan& plan, SimDuration warning);

}  // namespace spotcheck

#endif  // SRC_VIRT_MIGRATION_MODELS_H_

// Interface through which the migration engine learns the effective restore
// bandwidth a backup server can deliver. Defined here (rather than in the
// backup module) so that the virtualization layer does not depend on the
// backup layer; BackupServer implements it.

#ifndef SRC_VIRT_RESTORE_BANDWIDTH_H_
#define SRC_VIRT_RESTORE_BANDWIDTH_H_

#include "src/virt/migration_models.h"

namespace spotcheck {

class RestoreBandwidthSource {
 public:
  virtual ~RestoreBandwidthSource() = default;

  // Effective per-VM read bandwidth (MB/s) when `concurrent` restorations of
  // `kind` run together, with or without the fadvise optimizations.
  virtual double PerVmRestoreBandwidth(RestoreKind kind, bool optimized,
                                       int concurrent) const = 0;
};

// Fixed-bandwidth source for tests and host-to-host live migrations.
class FixedBandwidthSource final : public RestoreBandwidthSource {
 public:
  explicit FixedBandwidthSource(double mbps) : mbps_(mbps) {}
  double PerVmRestoreBandwidth(RestoreKind, bool, int) const override {
    return mbps_;
  }

 private:
  double mbps_;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_RESTORE_BANDWIDTH_H_

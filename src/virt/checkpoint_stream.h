// Continuous memory checkpointing (Sections 3.2 and 5).
//
// Bounded-time migration rests on a background process that continually
// flushes a nested VM's dirty memory pages to its backup server, keeping the
// stale (un-checkpointed) state below a threshold chosen so a final commit
// fits within the time bound. SpotCheck's improvement over Yank is the
// checkpoint-frequency ramp: after a revocation warning, the flush interval
// shrinks geometrically, so by the deadline only milliseconds of dirty state
// remain to commit while the VM is paused.
//
// CheckpointStream is the event-driven counterpart of PlanBoundedTime(): it
// runs real flush epochs on the simulation clock. Tests use it to validate
// the analytic plan (the stale high-water mark never exceeds the threshold;
// the ramp shrinks the final commit by orders of magnitude).

#ifndef SRC_VIRT_CHECKPOINT_STREAM_H_
#define SRC_VIRT_CHECKPOINT_STREAM_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/sim/simulator.h"
#include "src/virt/memory_image.h"

namespace spotcheck {

struct CheckpointStreamConfig {
  double dirty_rate_mbps = 10.0;
  double bandwidth_mbps = 125.0;  // VM -> backup server
  // Migration time bound; defines the stale-state threshold.
  SimDuration bound = SimDuration::Seconds(30);
  // Flush epoch during normal operation.
  SimDuration base_interval = SimDuration::Seconds(5);
  // Floor of the warning-time ramp.
  SimDuration min_interval = SimDuration::Millis(100);
};

class CheckpointStream {
 public:
  CheckpointStream(Simulator* sim, CheckpointStreamConfig config);

  // Page-level variant: epochs drive `image` (which must outlive the
  // stream) and ship the pages its dirty tracking collects, so writes that
  // re-dirty the same hot page within an epoch ship once -- the fluid model
  // above is an upper bound on this.
  CheckpointStream(Simulator* sim, CheckpointStreamConfig config,
                   MemoryImage* image);

  // Begins periodic flush epochs (idempotent).
  void Start();
  void Stop();

  // Revocation warning received: each subsequent epoch halves the flush
  // interval down to min_interval.
  void EnterRampMode();

  // Pauses the VM and commits everything still stale; returns the pause
  // duration (stale / bandwidth). Stops the stream.
  SimDuration FinalCommit();

  // Maximum stale state the bound tolerates.
  double threshold_mb() const {
    return config_.bound.seconds() * config_.bandwidth_mbps;
  }

  double stale_mb() const { return stale_mb_; }
  double max_stale_mb() const { return max_stale_mb_; }
  int64_t epochs() const { return epochs_; }
  double shipped_mb() const { return shipped_mb_; }
  bool running() const { return running_; }
  SimDuration current_interval() const { return interval_; }

 private:
  void Tick();
  void Arm();

  // Accrues `dt` of guest dirtying into the stale set.
  void AccrueDirt(SimDuration dt);

  Simulator* sim_;
  CheckpointStreamConfig config_;
  MemoryImage* image_ = nullptr;  // optional page-level backing
  SimDuration interval_;
  SimTime last_tick_;
  bool running_ = false;
  bool ramping_ = false;
  EventHandle pending_;
  double stale_mb_ = 0.0;
  double max_stale_mb_ = 0.0;
  double shipped_mb_ = 0.0;
  int64_t epochs_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_CHECKPOINT_STREAM_H_

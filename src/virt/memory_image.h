// Page-level memory image of a nested VM.
//
// The analytic migration models (migration_models.h) treat memory as a fluid
// with a dirty rate; this module is the discrete substrate underneath them:
// an image of 4 KB pages with a working-set-localized dirtying process, the
// dirty-page tracking that continuous checkpointing marks and cleans, and
// the page-in sequence a lazy restore performs (skeleton first, then faults
// and background prefetch). Tests use it to validate the fluid models:
// dirty-set growth matches the configured rate until the working set
// saturates, checkpoint epochs bound the stale set, and a lazy restore
// touches every page exactly once.

#ifndef SRC_VIRT_MEMORY_IMAGE_H_
#define SRC_VIRT_MEMORY_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace spotcheck {

class MemoryImage {
 public:
  static constexpr int64_t kPageSizeKb = 4;

  // An image of `memory_mb` with a hot working set of `wss_mb` that receives
  // ~90% of writes (the rest scatter over the whole image, as real guests
  // do). Page contents are deterministic in `rng`.
  MemoryImage(double memory_mb, double wss_mb, Rng rng);

  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  int64_t wss_pages() const { return wss_pages_; }
  double memory_mb() const {
    return static_cast<double>(num_pages()) * kPageSizeKb / 1024.0;
  }

  // Applies `dt` of guest execution at `dirty_rate_mbps`: dirties the
  // corresponding number of (mostly working-set) pages and bumps their
  // contents. Returns the number of page-dirtying writes applied.
  int64_t Run(SimDuration dt, double dirty_rate_mbps);

  // Dirty-page tracking (what the nested hypervisor's log-dirty mode gives
  // the checkpointer).
  int64_t dirty_pages() const { return dirty_count_; }
  double dirty_mb() const {
    return static_cast<double>(dirty_count_) * kPageSizeKb / 1024.0;
  }

  // Checkpoint epoch: atomically collects and clears the dirty set,
  // returning the page indices shipped to the backup server.
  std::vector<int64_t> CollectDirty();

  // Page content access (for integrity checks across a migration).
  uint64_t PageContent(int64_t page) const { return pages_[ClampPage(page)]; }
  // Order-independent digest over all pages.
  uint64_t Digest() const;

  int64_t total_writes() const { return total_writes_; }

 private:
  int64_t ClampPage(int64_t page) const;
  void DirtyPage(int64_t page);

  std::vector<uint64_t> pages_;
  std::vector<bool> dirty_;
  int64_t dirty_count_ = 0;
  int64_t wss_pages_;
  int64_t total_writes_ = 0;
  Rng rng_;
};

// Replays the page-in order of a restore for an image of `total_pages`:
// `skeleton_pages` first (synchronously, before the VM resumes), then a
// deterministic interleaving of demand faults (random access, `fault_share`
// of the stream) and the sequential background prefetcher. Guarantees every
// page is fetched exactly once.
class RestoreSequencer {
 public:
  RestoreSequencer(int64_t total_pages, int64_t skeleton_pages, double fault_share,
                   Rng rng);

  // Pages fetched before the VM can resume.
  const std::vector<int64_t>& skeleton() const { return skeleton_; }
  // Next page to fetch after resume; -1 once the image is fully resident.
  int64_t Next();
  int64_t remaining() const { return remaining_; }
  bool done() const { return remaining_ == 0; }
  int64_t faults_served() const { return faults_served_; }
  int64_t prefetched() const { return prefetched_; }

 private:
  std::vector<int64_t> skeleton_;
  std::vector<bool> resident_;
  int64_t remaining_;
  int64_t cursor_ = 0;  // background prefetcher position
  double fault_share_;
  int64_t faults_served_ = 0;
  int64_t prefetched_ = 0;
  Rng rng_;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_MEMORY_IMAGE_H_

// Migration engine: executes Section 3's migration strategies on the
// simulation clock and charges the resulting downtime / degradation to the
// ActivityLog.
//
// Two entry points:
//   * LiveMigrate: planned pre-copy live migration (e.g. moving a nested VM
//     from an on-demand host back to a cheaper spot host). No deadline.
//   * EvacuateOnWarning: a spot host received its termination notice; the
//     resident nested VM must reach a destination before the deadline, using
//     one of the mechanism variants the evaluation compares.
//
// Timing model for an evacuation (bounded-time mechanisms):
//
//   warning ----[ramp: degraded]----> pause --[commit]--> EC2 ops --[restore]--> resume
//                                      |<------------- downtime ------------->|
//                                                              (+ lazy-restore degraded window)
//
// EC2 ops are the EBS detach/attach + ENI detach/attach SpotCheck must issue
// around the pause (Table 1; 22.65 s on average). Following the paper's
// accounting, the idealized Xen-live baseline is charged only its
// stop-and-copy downtime.

#ifndef SRC_VIRT_MIGRATION_ENGINE_H_
#define SRC_VIRT_MIGRATION_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>

#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/virt/activity_log.h"
#include "src/virt/migration_models.h"
#include "src/virt/nested_vm.h"
#include "src/virt/restore_bandwidth.h"

namespace spotcheck {

// The five mechanism variants compared in Section 6.
enum class MigrationMechanism : uint8_t {
  kXenLiveMigration,        // pre-copy only; loses the VM if it cannot finish
  kYankFullRestore,         // unoptimized bounded-time + full restore
  kSpotCheckFullRestore,    // ramped commit + optimized full restore
  kUnoptimizedLazyRestore,  // unoptimized bounded-time + unoptimized lazy
  kSpotCheckLazyRestore,    // ramped commit + optimized lazy (the default)
};

std::string_view MigrationMechanismName(MigrationMechanism mechanism);
bool MechanismUsesLazyRestore(MigrationMechanism mechanism);
bool MechanismIsOptimized(MigrationMechanism mechanism);
// All bounded-time variants need a backup server; Xen-live does not.
bool MechanismNeedsBackup(MigrationMechanism mechanism);

struct MigrationEngineConfig {
  SimDuration warning = SimDuration::Seconds(120);
  SimDuration bound = SimDuration::Seconds(30);
  // Host-to-host / host-to-backup link (1 Gbps typical within a zone).
  double link_mbps = 125.0;
  double skeleton_mb = 5.0;
  // EBS + ENI operation downtime per migration (Table 1 means: 22.65 s).
  SimDuration ec2_ops_downtime = SimDuration::Seconds(22.65);
};

struct MigrationOutcome {
  bool success = false;
  SimDuration downtime;
  SimDuration degraded;
  SimTime completed_at;
};

using MigrationDoneCallback = std::function<void(const MigrationOutcome&)>;

class MigrationEngine {
 public:
  // `metrics` (optional) registers the virt.* counters and the
  // restore-duration / downtime histograms; `tracer` (optional) records the
  // per-phase spans (pre-copy, stop-and-copy, commit ramp, EC2 ops, restore,
  // lazy paging) on each VM's track. Both must outlive the engine.
  MigrationEngine(Simulator* sim, ActivityLog* log, MigrationEngineConfig config = {},
                  MetricsRegistry* metrics = nullptr,
                  SpanTracer* tracer = nullptr);

  const MigrationEngineConfig& config() const { return config_; }

  // Planned pre-copy live migration; completes after the pre-copy rounds and
  // charges only the stop-and-copy downtime. The VM must be alive and the
  // destination host already running.
  void LiveMigrate(NestedVm& vm, MigrationDoneCallback done = {});

  // Live migration racing a termination deadline (the Xen-live baseline's
  // only option on a warning). Call when the destination host is up; fails
  // -- losing the VM -- when the pre-copy cannot finish before `deadline`.
  void LiveEvacuate(NestedVm& vm, SimTime deadline, MigrationDoneCallback done = {});

  // Bounded-time evacuation, phase 1: checkpoint the VM's state so it is
  // fully committed to the backup server before `deadline`.
  //   * optimized mechanisms ramp the checkpoint frequency (degraded
  //     performance from now on) and pause milliseconds before the deadline;
  //   * unoptimized (Yank) pauses immediately and commits up to the full
  //     stale threshold.
  // `on_committed` fires when the state is safe; the VM is paused from
  // pause_start onwards and stays paused until phase 2 resumes it.
  void BeginEvacuation(NestedVm& vm, MigrationMechanism mechanism,
                       SimTime deadline, std::function<void()> on_committed);

  // Phase 2: run once the state is committed AND the destination host is
  // running -- performs the EBS/ENI moves and the (full or lazy) restore.
  // `backup_bw` supplies restore bandwidth; `concurrent` is the number of
  // sibling VMs restoring from the same backup server (>= 1). Downtime is
  // charged from phase 1's pause to the restore's resume.
  void CompleteEvacuation(NestedVm& vm, MigrationMechanism mechanism,
                          const RestoreBandwidthSource* backup_bw, int concurrent,
                          MigrationDoneCallback done = {});

  // Crash recovery: the VM's host died with NO warning (platform failure).
  // The backup server still holds its state as of the last checkpoint (at
  // most the stale threshold behind -- the only case where execution rolls
  // back). Marks the VM down from `failed_at`; CompleteEvacuation resumes it
  // once a destination is up.
  void BeginCrashRecovery(NestedVm& vm, SimTime failed_at);
  int64_t crash_recoveries() const { return crash_recoveries_; }

  int64_t live_migrations() const { return live_migrations_; }
  int64_t evacuations() const { return evacuations_; }
  int64_t failed_migrations() const { return failed_migrations_; }

 private:
  // Interns the VM's "vm/<id>" track; 0 when tracing is off.
  TraceTrackId VmTrack(const NestedVm& vm);

  Simulator* sim_;
  ActivityLog* log_;
  MigrationEngineConfig config_;
  SpanTracer* tracer_ = nullptr;
  // Pause instants of evacuations between phase 1 and phase 2.
  std::map<NestedVmId, SimTime> pause_start_;
  int64_t live_migrations_ = 0;
  int64_t evacuations_ = 0;
  int64_t failed_migrations_ = 0;
  int64_t crash_recoveries_ = 0;

  // Observability instruments; all null without a registry.
  MetricCounter* live_migrations_metric_ = nullptr;
  MetricCounter* evacuations_metric_ = nullptr;
  MetricCounter* failed_migrations_metric_ = nullptr;
  MetricCounter* crash_recoveries_metric_ = nullptr;
  MetricCounter* restore_bytes_mb_metric_ = nullptr;
  MetricHistogram* restore_duration_metric_ = nullptr;
  MetricHistogram* downtime_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_MIGRATION_ENGINE_H_

// Host VM: a native cloud instance running the nested hypervisor
// (XenBlanket). Hosts are sliced by memory: a host of type T can run
// NestedSlotsPerHost(T, nested_type) nested VMs, which is how SpotCheck
// arbitrages cheap large spot instances (Section 4.2).

#ifndef SRC_VIRT_HOST_VM_H_
#define SRC_VIRT_HOST_VM_H_

#include <algorithm>
#include <vector>

#include "src/common/ids.h"
#include "src/market/instance_types.h"
#include "src/virt/vm_spec.h"

namespace spotcheck {

class HostVm;

// Notified after a host's memory occupancy changes (a nested VM added or
// removed). The host pool implements this to keep its placeable sub-index
// and aggregate accounting incremental instead of rescanning the fleet.
// Declared here (not in core/) because HostVm is the natural notification
// source and virt/ must not depend on core/.
class HostOccupancyListener {
 public:
  virtual ~HostOccupancyListener() = default;
  // `used_delta_mb` is the signed change in used_mb this mutation caused.
  virtual void OnHostOccupancyChanged(HostVm& host, double used_delta_mb) = 0;
};

class HostVm {
 public:
  HostVm(InstanceId instance, MarketKey market, bool is_spot)
      : instance_(instance), market_(market), is_spot_(is_spot) {
    // The nested hypervisor + dom0 reserve ~20% of host memory.
    capacity_mb_ = GetInstanceTypeInfo(market.type).memory_gb * 1024.0 * 0.8;
  }

  InstanceId instance() const { return instance_; }
  const MarketKey& market() const { return market_; }
  InstanceType type() const { return market_.type; }
  bool is_spot() const { return is_spot_; }

  double capacity_mb() const { return capacity_mb_; }
  double used_mb() const { return used_mb_; }
  double free_mb() const { return capacity_mb_ - used_mb_; }
  bool CanHost(const NestedVmSpec& spec) const { return spec.memory_mb <= free_mb(); }
  bool empty() const { return vms_.empty(); }
  int num_vms() const { return static_cast<int>(vms_.size()); }
  const std::vector<NestedVmId>& vms() const { return vms_; }

  // Returns false (and changes nothing) when the VM does not fit.
  bool AddVm(NestedVmId vm, const NestedVmSpec& spec) {
    if (!CanHost(spec)) {
      return false;
    }
    vms_.push_back(vm);
    used_mb_ += spec.memory_mb;
    if (occupancy_listener_ != nullptr) {
      occupancy_listener_->OnHostOccupancyChanged(*this, spec.memory_mb);
    }
    return true;
  }

  void RemoveVm(NestedVmId vm, const NestedVmSpec& spec) {
    const auto it = std::find(vms_.begin(), vms_.end(), vm);
    if (it == vms_.end()) {
      return;
    }
    vms_.erase(it);
    const double before = used_mb_;
    used_mb_ = std::max(0.0, used_mb_ - spec.memory_mb);
    if (occupancy_listener_ != nullptr) {
      occupancy_listener_->OnHostOccupancyChanged(*this, used_mb_ - before);
    }
  }

  // The listener (nullable) must outlive this host record.
  void set_occupancy_listener(HostOccupancyListener* listener) {
    occupancy_listener_ = listener;
  }

 private:
  InstanceId instance_;
  MarketKey market_;
  bool is_spot_;
  double capacity_mb_ = 0.0;
  double used_mb_ = 0.0;
  std::vector<NestedVmId> vms_;
  HostOccupancyListener* occupancy_listener_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_VIRT_HOST_VM_H_

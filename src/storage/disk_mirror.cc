#include "src/storage/disk_mirror.h"

namespace spotcheck {

double DiskMirror::Advance(SimDuration dt, double write_mbps) {
  const double seconds = dt.seconds();
  if (seconds <= 0.0) {
    return 0.0;
  }
  double requested_mb = write_mbps * seconds;
  const double drain_mb = config_.replication_bandwidth_mbps * seconds;

  // Lag grows by writes and shrinks by replication; throttle writes so the
  // lag never exceeds the ceiling.
  double accepted_mb = requested_mb;
  const double headroom = config_.max_lag_mb - lag_mb_ + drain_mb;
  if (accepted_mb > headroom) {
    accepted_mb = std::max(0.0, headroom);
  }
  lag_mb_ = std::max(0.0, lag_mb_ + accepted_mb - drain_mb);
  total_written_mb_ += accepted_mb;
  total_replicated_mb_ = total_written_mb_ - lag_mb_;
  if (requested_mb <= 0.0) {
    return 0.0;
  }
  return (requested_mb - accepted_mb) / requested_mb;
}

}  // namespace spotcheck

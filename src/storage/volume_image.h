// Block-level content model for network-attached volumes.
//
// SpotCheck requires nested VMs to keep their root disk and persistent state
// on network-attached volumes (EBS), which survive migrations by detaching
// from the source host and reattaching at the destination. VolumeImage
// models the volume's contents at block granularity so tests can assert the
// property the paper sells: no disk state is ever lost across a migration --
// the image generation observed after the move equals the one before it.

#ifndef SRC_STORAGE_VOLUME_IMAGE_H_
#define SRC_STORAGE_VOLUME_IMAGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace spotcheck {

class VolumeImage {
 public:
  static constexpr int64_t kBlockSizeKb = 4096;  // 4 MB blocks

  // Capacity in GB; contents start as all-zero generation 0.
  explicit VolumeImage(VolumeId id, double size_gb);

  VolumeId id() const { return id_; }
  double size_gb() const { return size_gb_; }
  int64_t num_blocks() const { return num_blocks_; }

  // Writes `value` to block `index` (clamped to the device); every write
  // bumps the image generation.
  void WriteBlock(int64_t index, uint64_t value);
  uint64_t ReadBlock(int64_t index) const;

  // Monotonic content version: equal generations imply equal contents.
  int64_t generation() const { return generation_; }

  // A cheap whole-image digest for integrity checks across migrations.
  uint64_t Digest() const;

  int64_t blocks_written() const { return static_cast<int64_t>(blocks_.size()); }

 private:
  VolumeId id_;
  double size_gb_;
  int64_t num_blocks_;
  int64_t generation_ = 0;
  // Sparse contents: unwritten blocks read as zero.
  std::unordered_map<int64_t, uint64_t> blocks_;
};

}  // namespace spotcheck

#endif  // SRC_STORAGE_VOLUME_IMAGE_H_

#include "src/storage/volume_image.h"

#include <algorithm>
#include <cmath>

namespace spotcheck {

VolumeImage::VolumeImage(VolumeId id, double size_gb)
    : id_(id),
      size_gb_(size_gb),
      num_blocks_(std::max<int64_t>(
          1, static_cast<int64_t>(std::ceil(size_gb * 1024.0 * 1024.0 /
                                            static_cast<double>(kBlockSizeKb))))) {}

void VolumeImage::WriteBlock(int64_t index, uint64_t value) {
  index = std::clamp<int64_t>(index, 0, num_blocks_ - 1);
  blocks_[index] = value;
  ++generation_;
}

uint64_t VolumeImage::ReadBlock(int64_t index) const {
  index = std::clamp<int64_t>(index, 0, num_blocks_ - 1);
  const auto it = blocks_.find(index);
  return it == blocks_.end() ? 0 : it->second;
}

uint64_t VolumeImage::Digest() const {
  // Order-independent mix of (index, value) pairs.
  uint64_t digest = 0x9e3779b97f4a7c15ULL;
  for (const auto& [index, value] : blocks_) {
    uint64_t x = static_cast<uint64_t>(index) * 0xbf58476d1ce4e5b9ULL ^ value;
    x ^= x >> 31;
    digest ^= x * 0x94d049bb133111ebULL;
  }
  return digest;
}

}  // namespace spotcheck

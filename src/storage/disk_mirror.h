// Asynchronous local-disk mirroring (Section 5).
//
// SpotCheck's prototype requires persistent state on network-attached
// volumes, but the paper notes that local disk could also be protected:
// "since the speed of the local disk and a backup server's disk are similar
// in magnitude, EC2's warning period permits asynchronous mirroring of local
// disk state to the backup server, e.g., using DRBD, without significant
// performance degradation." DiskMirror models exactly that: writes land on
// the local disk immediately and replicate to the backup server in the
// background; the replication lag must be drainable within the warning
// period for the mirror to be crash-consistent at termination.

#ifndef SRC_STORAGE_DISK_MIRROR_H_
#define SRC_STORAGE_DISK_MIRROR_H_

#include <algorithm>

#include "src/common/time.h"

namespace spotcheck {

struct DiskMirrorConfig {
  double replication_bandwidth_mbps = 100.0;  // link to the backup server
  // Lag ceiling: above this the mirror throttles writes (DRBD's congestion
  // policy) instead of falling further behind.
  double max_lag_mb = 4096.0;
};

class DiskMirror {
 public:
  explicit DiskMirror(DiskMirrorConfig config = {}) : config_(config) {}

  // Advances simulated time by `dt` during which the VM wrote at
  // `write_mbps`. Replication drains concurrently; lag accumulates when the
  // write rate exceeds the replication bandwidth and is capped at
  // max_lag_mb by write throttling. Returns the throttled fraction of the
  // requested writes in [0, 1] (0 = no throttling).
  double Advance(SimDuration dt, double write_mbps);

  // Un-replicated bytes.
  double lag_mb() const { return lag_mb_; }

  // Time a final synchronous drain would take at the replication bandwidth.
  SimDuration FinalSyncDuration() const {
    return SimDuration::Seconds(lag_mb_ / config_.replication_bandwidth_mbps);
  }

  // Whether the mirror can reach consistency before a termination `warning`
  // from now (the property the paper's claim rests on).
  bool CanSyncWithin(SimDuration warning) const {
    return FinalSyncDuration() <= warning;
  }

  double total_written_mb() const { return total_written_mb_; }
  double total_replicated_mb() const { return total_replicated_mb_; }

 private:
  DiskMirrorConfig config_;
  double lag_mb_ = 0.0;
  double total_written_mb_ = 0.0;
  double total_replicated_mb_ = 0.0;
};

}  // namespace spotcheck

#endif  // SRC_STORAGE_DISK_MIRROR_H_

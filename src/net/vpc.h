// Virtual Private Cloud address management (Section 3.4).
//
// SpotCheck places all of its native servers in one VPC so it can assign
// private IP addresses to nested VMs directly and move them between hosts on
// migration. Each customer gets a subnet within the shared data plane, and
// one public IP attached to a designated "head" nested VM for Internet
// access. This module models the address space: subnet allocation, private
// address assignment, and the public head address per customer.

#ifndef SRC_NET_VPC_H_
#define SRC_NET_VPC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/ids.h"

namespace spotcheck {

// A private IPv4 address within the VPC, e.g. "10.0.3.17". The subnet
// number spans the second and third octets (a 10.0.0.0/8 data plane), so a
// fleet-scale deployment can hold tens of thousands of customer subnets;
// subnets below 256 render exactly as the old 10.0.<subnet>.<host> form.
struct PrivateIp {
  uint16_t subnet = 0;  // second+third octets = customer subnet
  uint8_t host = 0;

  auto operator<=>(const PrivateIp&) const = default;
  std::string ToString() const;
};

class VirtualPrivateCloud {
 public:
  // The VPC spans 10.<subnet/256>.<subnet%256>.0/24 per customer: up to
  // 65535 subnets of 254 usable addresses each (~16.6M addresses), sized
  // for million-VM fleets. Each customer still gets exactly one /24.
  static constexpr int kMaxSubnets = 65535;
  static constexpr int kHostsPerSubnet = 254;

  // Allocates (or returns the existing) subnet for a customer.
  // Returns nullopt when the VPC is out of subnets.
  std::optional<uint16_t> SubnetFor(CustomerId customer);

  // Allocates a free private address in the customer's subnet for a nested
  // VM; nullopt when the subnet (or VPC) is exhausted. Idempotent per VM.
  std::optional<PrivateIp> AssignPrivateIp(CustomerId customer, NestedVmId vm);

  // Releases the VM's address back to its subnet.
  void ReleasePrivateIp(NestedVmId vm);

  std::optional<PrivateIp> IpOf(NestedVmId vm) const;
  // Reverse lookup within the data plane.
  std::optional<NestedVmId> VmAt(PrivateIp ip) const;

  // Designates `vm` as the customer's public head (detaching any previous
  // head); the head carries the customer's single public IP.
  void SetPublicHead(CustomerId customer, NestedVmId vm);
  std::optional<NestedVmId> PublicHead(CustomerId customer) const;

  int num_assigned() const { return static_cast<int>(vm_ips_.size()); }

 private:
  std::map<CustomerId, uint16_t> subnets_;
  std::map<NestedVmId, PrivateIp> vm_ips_;
  std::map<PrivateIp, NestedVmId> ip_vms_;
  // Next host octet to probe per subnet (simple bump allocator with reuse
  // through the free list semantics of ip_vms_).
  std::map<uint16_t, int> next_host_;
  std::map<CustomerId, NestedVmId> public_heads_;
  uint16_t next_subnet_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_NET_VPC_H_

// TCP connection survival across migrations (Section 5).
//
// Because the nested VM's IP address moves with it, a migration does not
// reset connections -- they merely stall for the downtime window. The paper
// observes that the ~23 s EC2-operation downtime "is not long enough to
// break TCP connections, which generally requires a timeout of greater than
// one minute". ConnectionTracker models a population of client connections
// per VM and applies outages: connections break only when the outage exceeds
// their timeout.

#ifndef SRC_NET_CONNECTION_TRACKER_H_
#define SRC_NET_CONNECTION_TRACKER_H_

#include <cstdint>
#include <map>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace spotcheck {

class ConnectionTracker {
 public:
  // Conventional TCP keepalive / client timeout floor.
  static constexpr SimDuration kDefaultTimeout = SimDuration::Seconds(60);

  explicit ConnectionTracker(SimDuration timeout = kDefaultTimeout)
      : timeout_(timeout) {}

  // Opens `count` client connections to `vm`.
  void Open(NestedVmId vm, int64_t count);
  void Close(NestedVmId vm, int64_t count);

  // Applies a service outage of `length` to the VM: every open connection
  // breaks if the outage exceeds the timeout, otherwise they all stall and
  // survive. Returns the number of broken connections.
  int64_t ApplyOutage(NestedVmId vm, SimDuration length);

  int64_t OpenConnections(NestedVmId vm) const;
  int64_t total_broken() const { return total_broken_; }
  int64_t total_survived_outages() const { return total_survived_outages_; }

 private:
  SimDuration timeout_;
  std::map<NestedVmId, int64_t> open_;
  int64_t total_broken_ = 0;
  int64_t total_survived_outages_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_NET_CONNECTION_TRACKER_H_

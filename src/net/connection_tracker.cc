#include "src/net/connection_tracker.h"

#include <algorithm>

namespace spotcheck {

void ConnectionTracker::Open(NestedVmId vm, int64_t count) {
  if (count > 0) {
    open_[vm] += count;
  }
}

void ConnectionTracker::Close(NestedVmId vm, int64_t count) {
  const auto it = open_.find(vm);
  if (it == open_.end()) {
    return;
  }
  it->second = std::max<int64_t>(0, it->second - count);
}

int64_t ConnectionTracker::ApplyOutage(NestedVmId vm, SimDuration length) {
  const auto it = open_.find(vm);
  if (it == open_.end() || it->second == 0) {
    return 0;
  }
  if (length > timeout_) {
    const int64_t broken = it->second;
    it->second = 0;
    total_broken_ += broken;
    return broken;
  }
  ++total_survived_outages_;
  return 0;
}

int64_t ConnectionTracker::OpenConnections(NestedVmId vm) const {
  const auto it = open_.find(vm);
  return it == open_.end() ? 0 : it->second;
}

}  // namespace spotcheck

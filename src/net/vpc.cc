#include "src/net/vpc.h"

namespace spotcheck {

std::string PrivateIp::ToString() const {
  return "10." + std::to_string(subnet >> 8) + "." +
         std::to_string(subnet & 0xff) + "." + std::to_string(host);
}

std::optional<uint16_t> VirtualPrivateCloud::SubnetFor(CustomerId customer) {
  const auto it = subnets_.find(customer);
  if (it != subnets_.end()) {
    return it->second;
  }
  if (static_cast<int>(subnets_.size()) >= kMaxSubnets) {
    return std::nullopt;
  }
  const uint16_t subnet = next_subnet_++;
  subnets_[customer] = subnet;
  next_host_[subnet] = 1;  // .0 is the network address
  return subnet;
}

std::optional<PrivateIp> VirtualPrivateCloud::AssignPrivateIp(CustomerId customer,
                                                              NestedVmId vm) {
  const auto existing = vm_ips_.find(vm);
  if (existing != vm_ips_.end()) {
    return existing->second;
  }
  const auto subnet = SubnetFor(customer);
  if (!subnet.has_value()) {
    return std::nullopt;
  }
  // Probe the subnet from the bump cursor, wrapping once to reuse freed
  // addresses.
  int& cursor = next_host_[*subnet];
  for (int probes = 0; probes < kHostsPerSubnet; ++probes) {
    const int host = ((cursor - 1 + probes) % kHostsPerSubnet) + 1;
    const PrivateIp candidate{*subnet, static_cast<uint8_t>(host)};
    if (!ip_vms_.contains(candidate)) {
      cursor = (host % kHostsPerSubnet) + 1;
      vm_ips_[vm] = candidate;
      ip_vms_[candidate] = vm;
      return candidate;
    }
  }
  return std::nullopt;  // subnet exhausted
}

void VirtualPrivateCloud::ReleasePrivateIp(NestedVmId vm) {
  const auto it = vm_ips_.find(vm);
  if (it == vm_ips_.end()) {
    return;
  }
  ip_vms_.erase(it->second);
  vm_ips_.erase(it);
}

std::optional<PrivateIp> VirtualPrivateCloud::IpOf(NestedVmId vm) const {
  const auto it = vm_ips_.find(vm);
  if (it == vm_ips_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<NestedVmId> VirtualPrivateCloud::VmAt(PrivateIp ip) const {
  const auto it = ip_vms_.find(ip);
  if (it == ip_vms_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void VirtualPrivateCloud::SetPublicHead(CustomerId customer, NestedVmId vm) {
  public_heads_[customer] = vm;
}

std::optional<NestedVmId> VirtualPrivateCloud::PublicHead(CustomerId customer) const {
  const auto it = public_heads_.find(customer);
  if (it == public_heads_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace spotcheck

// Per-host NAT / packet forwarding (Section 3.4, Figure 4).
//
// The native platform is unaware of nested VMs, so the nested hypervisor on
// each host VM forwards packets arriving at a host interface's IP address to
// the resident nested VM. SpotCheck attaches one extra interface per nested
// VM (beyond the host's default interface) and configures NAT from that
// interface's address to the nested VM. On migration, the address is
// detached from the source host's interface and reattached to a fresh
// interface on the destination -- the nested VM's address never changes.
//
// NatTable models the data plane of one nested hypervisor; HostNetworkPlane
// tracks every host's table and routes a packet addressed to a private IP to
// the nested VM currently behind it (or reports the drop).

#ifndef SRC_NET_NAT_TABLE_H_
#define SRC_NET_NAT_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/ids.h"
#include "src/net/vpc.h"

namespace spotcheck {

class NatTable {
 public:
  // Installs forwarding from `ip` (bound to host interface `iface`) to `vm`.
  // Fails when the ip is already forwarded on this host.
  bool Install(PrivateIp ip, InterfaceId iface, NestedVmId vm);

  // Removes the forwarding rule for `ip` (detaches the interface binding).
  void Remove(PrivateIp ip);
  // Removes every rule pointing at `vm` (e.g. the VM left this host).
  void RemoveVm(NestedVmId vm);

  std::optional<NestedVmId> Lookup(PrivateIp ip) const;
  std::optional<InterfaceId> InterfaceFor(PrivateIp ip) const;
  int num_rules() const { return static_cast<int>(rules_.size()); }

 private:
  struct Rule {
    InterfaceId iface;
    NestedVmId vm;
  };
  std::map<PrivateIp, Rule> rules_;
};

// The fleet-wide view: which host's NAT currently answers for each address.
class HostNetworkPlane {
 public:
  // Binds `ip` -> `vm` on `host` (allocating a fresh interface id), removing
  // any previous binding of the ip on another host first -- exactly the
  // detach-then-reattach flow of Figure 4.
  InterfaceId MoveAddress(PrivateIp ip, InstanceId host, NestedVmId vm);

  // Drops the binding entirely (VM terminated).
  void ReleaseAddress(PrivateIp ip);

  // Delivers a packet: the nested VM behind `ip`, or nullopt (dropped) when
  // no host currently forwards it (i.e. mid-migration).
  std::optional<NestedVmId> Route(PrivateIp ip) const;
  // Host currently answering for the address.
  std::optional<InstanceId> HostFor(PrivateIp ip) const;

  const NatTable* TableOf(InstanceId host) const;
  int64_t moves() const { return moves_; }

 private:
  std::map<InstanceId, NatTable> tables_;
  std::map<PrivateIp, InstanceId> address_hosts_;
  IdGenerator<InterfaceTag> interface_ids_;
  int64_t moves_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_NET_NAT_TABLE_H_

#include "src/net/nat_table.h"

namespace spotcheck {

bool NatTable::Install(PrivateIp ip, InterfaceId iface, NestedVmId vm) {
  if (rules_.contains(ip)) {
    return false;
  }
  rules_[ip] = Rule{iface, vm};
  return true;
}

void NatTable::Remove(PrivateIp ip) { rules_.erase(ip); }

void NatTable::RemoveVm(NestedVmId vm) {
  for (auto it = rules_.begin(); it != rules_.end();) {
    if (it->second.vm == vm) {
      it = rules_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<NestedVmId> NatTable::Lookup(PrivateIp ip) const {
  const auto it = rules_.find(ip);
  if (it == rules_.end()) {
    return std::nullopt;
  }
  return it->second.vm;
}

std::optional<InterfaceId> NatTable::InterfaceFor(PrivateIp ip) const {
  const auto it = rules_.find(ip);
  if (it == rules_.end()) {
    return std::nullopt;
  }
  return it->second.iface;
}

InterfaceId HostNetworkPlane::MoveAddress(PrivateIp ip, InstanceId host,
                                          NestedVmId vm) {
  // Detach from the previous host's interface first (Figure 4, left side).
  const auto prev = address_hosts_.find(ip);
  if (prev != address_hosts_.end()) {
    tables_[prev->second].Remove(ip);
  }
  // Reattach to a fresh (unused) interface on the destination.
  const InterfaceId iface = interface_ids_.Next();
  tables_[host].Install(ip, iface, vm);
  address_hosts_[ip] = host;
  ++moves_;
  return iface;
}

void HostNetworkPlane::ReleaseAddress(PrivateIp ip) {
  const auto it = address_hosts_.find(ip);
  if (it == address_hosts_.end()) {
    return;
  }
  tables_[it->second].Remove(ip);
  address_hosts_.erase(it);
}

std::optional<NestedVmId> HostNetworkPlane::Route(PrivateIp ip) const {
  const auto it = address_hosts_.find(ip);
  if (it == address_hosts_.end()) {
    return std::nullopt;
  }
  const auto table = tables_.find(it->second);
  if (table == tables_.end()) {
    return std::nullopt;
  }
  return table->second.Lookup(ip);
}

std::optional<InstanceId> HostNetworkPlane::HostFor(PrivateIp ip) const {
  const auto it = address_hosts_.find(ip);
  if (it == address_hosts_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const NatTable* HostNetworkPlane::TableOf(InstanceId host) const {
  const auto it = tables_.find(host);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace spotcheck

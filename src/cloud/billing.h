// Usage metering for native-cloud instances.
//
// Spot instances are billed at the time-varying market price, on-demand
// instances at their fixed catalog price. Unlike real EC2 (hourly billing
// quanta), metering here is continuous: the paper's evaluation reports
// average $/hr, for which continuous integration of the price trace is the
// faithful comparison.

#ifndef SRC_CLOUD_BILLING_H_
#define SRC_CLOUD_BILLING_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace spotcheck {

class PriceTrace;

class BillingMeter {
 public:
  // EC2 (2014) billed whole instance-hours: a stream stopped mid-hour is
  // charged to the end of that hour. Off by default (continuous metering);
  // flip on to reproduce quantized billing.
  void set_hourly_quantum(bool enabled) { hourly_quantum_ = enabled; }

  // Registers a fixed-rate (on-demand) charge stream for `id` at $`rate`/hr.
  void StartFixed(InstanceId id, SimTime now, double rate_per_hour);

  // Registers a metered (spot) charge stream for `id`; cost accrues as the
  // integral of `trace` over running time. The trace must outlive the meter.
  void StartMetered(InstanceId id, SimTime now, const PriceTrace* trace);

  // Finalizes the stream for `id`, adding its cost to the closed total.
  void Stop(InstanceId id, SimTime now);

  // Cost accrued by `id` up to `now` (0 if unknown/closed).
  double AccruedCost(InstanceId id, SimTime now) const;

  // Total cost across all streams, open ones evaluated at `now`.
  double TotalCost(SimTime now) const;

  // Total instance-hours across all streams, open ones evaluated at `now`.
  double TotalInstanceHours(SimTime now) const;

  // Current MeanPrice-memo population (tests: the memo must stay bounded
  // and must not grow across repeated identical queries).
  size_t mean_price_memo_size() const { return mean_price_memo_.size(); }

  // The memo clears itself rather than admit more distinct windows than
  // this. High enough that a 180-day cell's recurring windows (storm-batch
  // stops, batched acquisitions) all stay resident; low enough that
  // per-probe one-off windows can't grow the meter for its whole life.
  static constexpr size_t kMeanPriceMemoCap = 4096;

 private:
  struct Stream {
    SimTime started;
    double fixed_rate = 0.0;            // $/hr; used when trace == nullptr
    const PriceTrace* trace = nullptr;  // metered when non-null
  };

  double StreamCost(const Stream& stream, SimTime until) const;
  // Rounds the stop time up to the next whole billed hour when quantized.
  SimTime BilledUntil(const Stream& stream, SimTime until) const;

  // MeanPrice over an identical (trace, started, until) window recurs
  // constantly: a revocation storm stops every same-market stream at the
  // same instant, and pool acquisitions start them in batches. Caching the
  // exact computed double turns the duplicate O(window) trace walks into
  // hash hits; evictions only ever force an exact recomputation, so results
  // stay bitwise identical. Bounded by kMeanPriceMemoCap (clear-on-cap).
  struct Window {
    const PriceTrace* trace;
    int64_t started_us;
    int64_t until_us;
    bool operator==(const Window&) const = default;
  };
  struct WindowHash {
    size_t operator()(const Window& w) const {
      uint64_t h = reinterpret_cast<uintptr_t>(w.trace);
      h = (h ^ static_cast<uint64_t>(w.started_us) * 0x9e3779b97f4a7c15ull);
      h ^= h >> 30;
      h = (h ^ static_cast<uint64_t>(w.until_us) * 0xbf58476d1ce4e5b9ull);
      h ^= h >> 27;
      return static_cast<size_t>(h * 0x94d049bb133111ebull);
    }
  };

  std::unordered_map<InstanceId, Stream> open_;
  mutable std::unordered_map<Window, double, WindowHash> mean_price_memo_;
  double closed_cost_ = 0.0;
  double closed_hours_ = 0.0;
  bool hourly_quantum_ = false;
};

}  // namespace spotcheck

#endif  // SRC_CLOUD_BILLING_H_

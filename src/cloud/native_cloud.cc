#include "src/cloud/native_cloud.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/log.h"

namespace spotcheck {

NativeCloud::NativeCloud(Simulator* sim, MarketPlace* markets,
                         NativeCloudConfig config)
    : sim_(sim),
      markets_(markets),
      config_(config),
      latency_(Rng(config.latency_seed)),
      rng_(Rng(config.latency_seed).Split(0x10ad)) {
  billing_.set_hourly_quantum(config.hourly_billing);
  if (config_.metrics != nullptr) {
    MetricsRegistry& metrics = *config_.metrics;
    launch_requests_metric_ = &metrics.Counter("cloud.launch_requests");
    launches_metric_ = &metrics.Counter("cloud.launches");
    launch_failures_metric_ = &metrics.Counter("cloud.launch_failures");
    terminations_metric_ = &metrics.Counter("cloud.terminations");
    revocation_warnings_metric_ = &metrics.Counter("cloud.revocation_warnings");
    bid_crossings_metric_ = &metrics.Counter("market.bid_crossings");
    instance_failures_metric_ = &metrics.Counter("cloud.instance_failures");
    // Table 1 latencies: spot launches dominate at up to ~10 minutes.
    op_latency_metric_ =
        &metrics.Histogram("cloud.op_latency_s", 0.0, 600.0, 60);
  }
}

SimDuration NativeCloud::OperationDelay(CloudOperation op) {
  const SimDuration delay = config_.sample_latencies
                                ? latency_.Sample(op)
                                : OperationLatencyModel::Typical(op);
  MetricObserve(op_latency_metric_, delay.seconds());
  return delay;
}

SpanId NativeCloud::TraceOp(std::string_view name, InstanceId instance,
                            SimDuration delay) {
  SpanTracer* tracer = config_.tracer;
  if (tracer == nullptr) {
    return 0;
  }
  const TraceTrackId track = tracer->Track("host/" + instance.ToString());
  return tracer->AddSpan(sim_->Now(), sim_->Now() + delay, name, "cloud",
                         track);
}

SpotMarket& NativeCloud::MarketFor(MarketKey key) {
  return markets_->GetOrCreate(key, config_.market_horizon, config_.market_seed);
}

InstanceId NativeCloud::RequestSpotInstance(MarketKey market, double bid,
                                            InstanceReadyCallback ready) {
  const InstanceId id = instance_ids_.Next();
  Instance& instance = instances_.Emplace(id);
  instance.id = id;
  instance.market = market;
  instance.mode = BillingMode::kSpot;
  instance.bid = bid;
  instance.requested_at = sim_->Now();
  MetricInc(launch_requests_metric_);
  MarketFor(market);  // Materialize the market (and its replay) now.
  const SimDuration delay = OperationDelay(CloudOperation::kStartSpotInstance);
  TraceAttrStr(config_.tracer, TraceOp("cloud.launch_spot", id, delay),
               "market", market.ToString());
  sim_->ScheduleAfter(delay, [this, id, ready = std::move(ready)]() mutable {
    OnInstanceStarted(id, std::move(ready));
  });
  return id;
}

InstanceId NativeCloud::RequestOnDemandInstance(MarketKey market,
                                                InstanceReadyCallback ready) {
  const InstanceId id = instance_ids_.Next();
  Instance& instance = instances_.Emplace(id);
  instance.id = id;
  instance.market = market;
  instance.mode = BillingMode::kOnDemand;
  instance.requested_at = sim_->Now();
  MetricInc(launch_requests_metric_);
  if (rng_.Bernoulli(config_.on_demand_unavailable_probability)) {
    // Out of capacity: fail after the request latency.
    const SimDuration delay =
        OperationDelay(CloudOperation::kStartOnDemandInstance);
    TraceAttrStr(config_.tracer, TraceOp("cloud.launch_ondemand", id, delay),
                 "market", market.ToString());
    sim_->ScheduleAfter(delay, [this, id, ready = std::move(ready)]() {
      Instance& failed = instances_.At(id);
      failed.state = InstanceState::kTerminated;
      failed.terminated_at = sim_->Now();
      MetricInc(launch_failures_metric_);
      if (ready) {
        ready(id, false);
      }
    });
    return id;
  }
  const SimDuration delay =
      OperationDelay(CloudOperation::kStartOnDemandInstance);
  TraceAttrStr(config_.tracer, TraceOp("cloud.launch_ondemand", id, delay),
               "market", market.ToString());
  sim_->ScheduleAfter(delay, [this, id, ready = std::move(ready)]() mutable {
    OnInstanceStarted(id, std::move(ready));
  });
  return id;
}

void NativeCloud::OnInstanceStarted(InstanceId id, InstanceReadyCallback ready) {
  Instance& instance = instances_.At(id);
  if (instance.state == InstanceState::kTerminated || !ZoneAvailable(instance.market.zone)) {
    // Terminated while still pending, or the zone went down.
    instance.state = InstanceState::kTerminated;
    instance.terminated_at = sim_->Now();
    MetricInc(launch_failures_metric_);
    if (ready) {
      ready(id, false);
    }
    return;
  }
  SpotMarket& market = MarketFor(instance.market);
  if (instance.mode == BillingMode::kSpot) {
    if (market.CurrentPrice() > instance.bid ||
        (spot_launch_fault_hook_ && spot_launch_fault_hook_(instance))) {
      // Bid is already out of the money (or an injected capacity shortage
      // swallowed the request): the launch fails.
      instance.state = InstanceState::kTerminated;
      instance.terminated_at = sim_->Now();
      MetricInc(launch_failures_metric_);
      if (ready) {
        ready(id, false);
      }
      return;
    }
    // Monitor this market for revocations (one subscription per market).
    if (!subscribed_[instance.market]) {
      subscribed_[instance.market] = true;
      const MarketKey key = instance.market;
      market.Subscribe([this, key](const SpotMarket&, double price) {
        OnMarketPriceChange(key, price);
      });
    }
    billing_.StartMetered(id, sim_->Now(), &market.trace());
    SpotIndex& index = running_spot_[instance.market];
    index.ids.push_back(id);
    index.min_bid = std::min(index.min_bid, instance.bid);
  } else {
    billing_.StartFixed(id, sim_->Now(), market.on_demand_price());
  }
  instance.state = InstanceState::kRunning;
  instance.running_since = sim_->Now();
  ++launches_;
  MetricInc(launches_metric_);
  if (ready) {
    ready(id, true);
  }
}

void NativeCloud::OnMarketPriceChange(MarketKey key, double price) {
  auto bucket_it = running_spot_.find(key);
  if (bucket_it == running_spot_.end()) {
    return;
  }
  SpotIndex& bucket = bucket_it->second;
  // Price changes outnumber revocations by orders of magnitude; when the new
  // price does not cross the (conservative) cached minimum bid, nobody can be
  // warned and the sweep below would only perform lazy compaction early, so
  // skip it entirely.
  if (bucket.ids.empty() || price <= bucket.min_bid) {
    return;
  }
  // Compact terminated/warned ids in place, retighten the cached minimum over
  // the survivors, and collect those to warn; warning happens after the sweep
  // since it mutates instance state (and may re-enter through the handler).
  // Borrow the scratch buffer (moved, not referenced, so a handler that
  // re-enters this function gets its own empty buffer).
  std::vector<InstanceId> to_warn = std::move(to_warn_scratch_);
  to_warn.clear();
  double min_bid = std::numeric_limits<double>::infinity();
  size_t kept = 0;
  for (InstanceId id : bucket.ids) {
    const Instance& instance = instances_.At(id);
    if (instance.state != InstanceState::kRunning) {
      continue;  // warned or terminated: drop from the index
    }
    if (price > instance.bid) {
      to_warn.push_back(id);
    } else {
      min_bid = std::min(min_bid, instance.bid);
      bucket.ids[kept++] = id;
    }
  }
  bucket.ids.resize(kept);
  bucket.min_bid = min_bid;
  if (to_warn.empty()) {
    to_warn_scratch_ = std::move(to_warn);
    return;
  }
  const SimTime deadline = sim_->Now() + config_.revocation_warning;
  for (InstanceId id : to_warn) {
    WarnInstance(instances_.At(id), deadline);
  }
  // ONE terminator event for the whole warned cohort. A price spike that
  // revokes 100k hosts used to schedule 100k termination events; batching
  // preserves the replay order exactly -- ForceTerminate draws no RNG and
  // schedules no events, and the per-instance terminators all carried the
  // same timestamp and consecutive sequence numbers, so collapsing them
  // into one in-order loop leaves every other event's relative order
  // unchanged. The warned cohort's vector moves into the event; the scratch
  // buffer regrows on the next warning sweep (compaction-only sweeps, the
  // overwhelming majority, still reuse it via the empty-return above).
  sim_->ScheduleAt(deadline, [this, cohort = std::move(to_warn)]() {
    for (InstanceId id : cohort) {
      ForceTerminate(id);
    }
  });
}

void NativeCloud::WarnInstance(Instance& instance, SimTime deadline) {
  instance.state = InstanceState::kWarned;
  ++spot_revocations_;
  MetricInc(revocation_warnings_metric_);
  MetricInc(bid_crossings_metric_);
  const InstanceId id = instance.id;
  SPOTCHECK_LOG(kInfo) << "revocation warning for " << id.ToString() << " in "
                       << instance.market.ToString() << ", termination at t+"
                       << config_.revocation_warning.seconds() << "s";
  if (revocation_handler_) {
    revocation_handler_(id, deadline);
  }
}

void NativeCloud::ForceTerminate(InstanceId id) {
  Instance& instance = instances_.At(id);
  if (instance.state == InstanceState::kTerminated) {
    return;  // Customer already terminated it during the warning period.
  }
  instance.state = InstanceState::kTerminated;
  instance.terminated_at = sim_->Now();
  billing_.Stop(id, sim_->Now());
  ReleaseAttachments(id);
  MetricInc(terminations_metric_);
}

void NativeCloud::ScheduleZoneOutage(AvailabilityZone zone, SimTime at,
                                     SimTime until) {
  sim_->ScheduleAt(at, [this, zone, until]() {
    SimTime& down_until = zone_down_until_[zone.index];
    down_until = std::max(down_until, until);
    FailZoneInstances(zone);
  });
}

bool NativeCloud::ZoneAvailable(AvailabilityZone zone) const {
  const auto it = zone_down_until_.find(zone.index);
  return it == zone_down_until_.end() || sim_->Now() >= it->second;
}

void NativeCloud::FailZoneInstances(AvailabilityZone zone) {
  std::vector<InstanceId> victims;
  instances_.ForEach([&](InstanceId id, const Instance& instance) {
    if (instance.market.zone == zone &&
        (instance.state == InstanceState::kRunning ||
         instance.state == InstanceState::kWarned)) {
      victims.push_back(id);
    }
  });
  for (InstanceId id : victims) {
    FailInstance(instances_.At(id));
  }
}

void NativeCloud::FailInstance(Instance& instance) {
  const InstanceId id = instance.id;
  instance.state = InstanceState::kTerminated;
  instance.terminated_at = sim_->Now();
  billing_.Stop(id, sim_->Now());
  ReleaseAttachments(id);
  ++instance_failures_;
  MetricInc(instance_failures_metric_);
  MetricInc(terminations_metric_);
  SPOTCHECK_LOG(kWarning) << "platform failure killed " << id.ToString()
                          << " in " << instance.market.ToString();
  if (failure_handler_) {
    failure_handler_(id);
  }
}

bool NativeCloud::InjectInstanceFailure(InstanceId id) {
  Instance* instance = instances_.Find(id);
  if (instance == nullptr || (instance->state != InstanceState::kRunning &&
                              instance->state != InstanceState::kWarned)) {
    return false;
  }
  FailInstance(*instance);
  return true;
}

void NativeCloud::TerminateInstance(InstanceId id) {
  Instance* found = instances_.Find(id);
  if (found == nullptr || found->state == InstanceState::kTerminated) {
    return;
  }
  Instance& instance = *found;
  // Billing stops at the customer's terminate call; the instance object
  // lingers through the terminate-operation latency, matching how EC2
  // reports "shutting-down" instances, but attachment bookkeeping is
  // released immediately.
  billing_.Stop(id, sim_->Now());
  ReleaseAttachments(id);
  instance.state = InstanceState::kTerminated;
  MetricInc(terminations_metric_);
  const SimDuration delay = OperationDelay(CloudOperation::kTerminateInstance);
  TraceOp("cloud.terminate", id, delay);
  sim_->ScheduleAfter(delay, [this, id]() {
    instances_.At(id).terminated_at = sim_->Now();
  });
}

void NativeCloud::ReleaseAttachments(InstanceId id) {
  Instance& instance = instances_.At(id);
  for (VolumeId volume = instance.first_volume; volume.valid();) {
    VolumeRecord& record = volumes_.At(volume);
    const VolumeId next = record.next_on_instance;
    record.attached_to = InstanceId();
    record.next_on_instance = VolumeId();
    volume = next;
  }
  instance.first_volume = VolumeId();
  for (AddressId address = instance.first_address; address.valid();) {
    AddressRecord& record = addresses_.At(address);
    const AddressId next = record.next_on_instance;
    record.assigned_to = InstanceId();
    record.next_on_instance = AddressId();
    address = next;
  }
  instance.first_address = AddressId();
}

void NativeCloud::LinkVolume(VolumeId volume, VolumeRecord& record,
                             InstanceId instance) {
  Instance& target = instances_.At(instance);
  record.attached_to = instance;
  record.next_on_instance = target.first_volume;
  target.first_volume = volume;
}

void NativeCloud::UnlinkVolume(VolumeId volume, VolumeRecord& record) {
  const InstanceId owner = record.attached_to;
  record.attached_to = InstanceId();
  if (!owner.valid()) {
    return;  // already released (e.g. the instance died mid-detach)
  }
  Instance& instance = instances_.At(owner);
  if (instance.first_volume == volume) {
    instance.first_volume = record.next_on_instance;
  } else {
    for (VolumeId walk = instance.first_volume; walk.valid();) {
      VolumeRecord& prev = volumes_.At(walk);
      if (prev.next_on_instance == volume) {
        prev.next_on_instance = record.next_on_instance;
        break;
      }
      walk = prev.next_on_instance;
    }
  }
  record.next_on_instance = VolumeId();
}

void NativeCloud::LinkAddress(AddressId address, AddressRecord& record,
                              InstanceId instance) {
  Instance& target = instances_.At(instance);
  record.assigned_to = instance;
  record.next_on_instance = target.first_address;
  target.first_address = address;
}

void NativeCloud::UnlinkAddress(AddressId address, AddressRecord& record) {
  const InstanceId owner = record.assigned_to;
  record.assigned_to = InstanceId();
  if (!owner.valid()) {
    return;
  }
  Instance& instance = instances_.At(owner);
  if (instance.first_address == address) {
    instance.first_address = record.next_on_instance;
  } else {
    for (AddressId walk = instance.first_address; walk.valid();) {
      AddressRecord& prev = addresses_.At(walk);
      if (prev.next_on_instance == address) {
        prev.next_on_instance = record.next_on_instance;
        break;
      }
      walk = prev.next_on_instance;
    }
  }
  record.next_on_instance = AddressId();
}

const Instance* NativeCloud::GetInstance(InstanceId id) const {
  return instances_.Find(id);
}

std::vector<const Instance*> NativeCloud::Instances(InstanceState state) const {
  std::vector<const Instance*> result;
  instances_.ForEach([&](InstanceId, const Instance& instance) {
    if (instance.state == state) {
      result.push_back(&instance);
    }
  });
  return result;
}

VolumeId NativeCloud::CreateVolume(double size_gb) {
  const VolumeId id = volume_ids_.Next();
  volumes_.Emplace(id).size_gb = size_gb;
  return id;
}

void NativeCloud::AttachVolume(VolumeId volume, InstanceId instance,
                               std::function<void(bool)> done) {
  VolumeRecord* record = volumes_.Find(volume);
  const Instance* target = GetInstance(instance);
  const bool valid = record != nullptr && !record->busy &&
                     !record->attached_to.valid() && target != nullptr &&
                     (target->state == InstanceState::kRunning ||
                      target->state == InstanceState::kWarned);
  if (!valid) {
    if (done) {
      sim_->ScheduleAfter(SimDuration::Zero(), [done]() { done(false); });
    }
    return;
  }
  record->busy = true;
  const SimDuration delay = OperationDelay(CloudOperation::kAttachVolume);
  TraceOp("cloud.ebs_attach", instance, delay);
  sim_->ScheduleAfter(delay,
                      [this, volume, instance, done = std::move(done)]() {
                        VolumeRecord& record = volumes_.At(volume);
                        record.busy = false;
                        const Instance* target2 = GetInstance(instance);
                        const bool ok = target2 != nullptr &&
                                        target2->state != InstanceState::kTerminated;
                        if (ok) {
                          LinkVolume(volume, record, instance);
                        }
                        if (done) {
                          done(ok);
                        }
                      });
}

void NativeCloud::DetachVolume(VolumeId volume, std::function<void(bool)> done) {
  VolumeRecord* record = volumes_.Find(volume);
  const bool valid =
      record != nullptr && !record->busy && record->attached_to.valid();
  if (!valid) {
    if (done) {
      sim_->ScheduleAfter(SimDuration::Zero(), [done]() { done(false); });
    }
    return;
  }
  record->busy = true;
  const SimDuration delay = OperationDelay(CloudOperation::kDetachVolume);
  TraceOp("cloud.ebs_detach", record->attached_to, delay);
  sim_->ScheduleAfter(delay, [this, volume, done = std::move(done)]() {
                        VolumeRecord& record = volumes_.At(volume);
                        record.busy = false;
                        UnlinkVolume(volume, record);
                        if (done) {
                          done(true);
                        }
                      });
}

InstanceId NativeCloud::VolumeAttachment(VolumeId volume) const {
  const VolumeRecord* record = volumes_.Find(volume);
  return record == nullptr ? InstanceId() : record->attached_to;
}

AddressId NativeCloud::AllocateAddress() {
  const AddressId id = address_ids_.Next();
  addresses_.Emplace(id);
  return id;
}

void NativeCloud::AssignAddress(AddressId address, InstanceId instance,
                                std::function<void(bool)> done) {
  AddressRecord* record = addresses_.Find(address);
  const Instance* target = GetInstance(instance);
  const bool valid = record != nullptr && !record->busy &&
                     !record->assigned_to.valid() && target != nullptr &&
                     (target->state == InstanceState::kRunning ||
                      target->state == InstanceState::kWarned);
  if (!valid) {
    if (done) {
      sim_->ScheduleAfter(SimDuration::Zero(), [done]() { done(false); });
    }
    return;
  }
  record->busy = true;
  const SimDuration delay = OperationDelay(CloudOperation::kAttachInterface);
  TraceOp("cloud.eni_assign", instance, delay);
  sim_->ScheduleAfter(delay,
                      [this, address, instance, done = std::move(done)]() {
                        AddressRecord& record = addresses_.At(address);
                        record.busy = false;
                        const Instance* target2 = GetInstance(instance);
                        const bool ok = target2 != nullptr &&
                                        target2->state != InstanceState::kTerminated;
                        if (ok) {
                          LinkAddress(address, record, instance);
                        }
                        if (done) {
                          done(ok);
                        }
                      });
}

void NativeCloud::UnassignAddress(AddressId address, std::function<void(bool)> done) {
  AddressRecord* record = addresses_.Find(address);
  const bool valid =
      record != nullptr && !record->busy && record->assigned_to.valid();
  if (!valid) {
    if (done) {
      sim_->ScheduleAfter(SimDuration::Zero(), [done]() { done(false); });
    }
    return;
  }
  record->busy = true;
  const SimDuration delay = OperationDelay(CloudOperation::kDetachInterface);
  TraceOp("cloud.eni_unassign", record->assigned_to, delay);
  sim_->ScheduleAfter(delay, [this, address, done = std::move(done)]() {
                        AddressRecord& record = addresses_.At(address);
                        record.busy = false;
                        UnlinkAddress(address, record);
                        if (done) {
                          done(true);
                        }
                      });
}

InstanceId NativeCloud::AddressAssignment(AddressId address) const {
  const AddressRecord* record = addresses_.Find(address);
  return record == nullptr ? InstanceId() : record->assigned_to;
}

}  // namespace spotcheck

#include "src/cloud/latency_model.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace spotcheck {
namespace {

// Table 1 of the paper (seconds), m3.medium, 20 measurements over one week.
constexpr std::array<LatencySpec, 7> kSpecs = {{
    {227.0, 224.0, 409.0, 100.0},  // start spot
    {61.0, 62.0, 86.0, 47.0},      // start on-demand
    {135.0, 136.0, 147.0, 133.0},  // terminate
    {10.3, 10.3, 11.3, 9.6},       // unmount+detach EBS
    {5.0, 5.1, 9.3, 4.4},          // attach+mount EBS
    {3.0, 3.75, 14.0, 1.0},        // attach ENI
    {2.0, 3.5, 12.0, 1.0},         // detach ENI
}};

constexpr std::array<std::string_view, 7> kNames = {{
    "start-spot-instance",
    "start-on-demand-instance",
    "terminate-instance",
    "detach-volume",
    "attach-volume",
    "attach-interface",
    "detach-interface",
}};

}  // namespace

std::string_view CloudOperationName(CloudOperation op) {
  return kNames[static_cast<size_t>(op)];
}

const LatencySpec& PaperLatencySpec(CloudOperation op) {
  return kSpecs[static_cast<size_t>(op)];
}

SimDuration OperationLatencyModel::Sample(CloudOperation op) {
  const LatencySpec& spec = PaperLatencySpec(op);
  double seconds;
  if (spec.mean > spec.median * 1.05) {
    // Right-skewed: lognormal with the observed median; sigma chosen so that
    // E[X] = mean (mean/median = exp(sigma^2/2)).
    const double mu = std::log(spec.median);
    const double sigma = std::sqrt(2.0 * std::log(spec.mean / spec.median));
    seconds = rng_.LogNormal(mu, sigma);
  } else {
    // Near-symmetric: normal centred on the mean, with the observed range
    // covering ~6 sigma.
    const double sigma = std::max((spec.max - spec.min) / 6.0, 1e-3);
    seconds = rng_.Normal(spec.mean, sigma);
  }
  seconds = std::clamp(seconds, spec.min, spec.max);
  return SimDuration::Seconds(seconds);
}

SimDuration OperationLatencyModel::Typical(CloudOperation op) {
  return SimDuration::Seconds(PaperLatencySpec(op).median);
}

SimDuration MigrationEc2OperationDowntime() {
  const double seconds = PaperLatencySpec(CloudOperation::kDetachVolume).mean +
                         PaperLatencySpec(CloudOperation::kAttachVolume).mean +
                         PaperLatencySpec(CloudOperation::kAttachInterface).mean +
                         PaperLatencySpec(CloudOperation::kDetachInterface).mean;
  return SimDuration::Seconds(seconds);  // 22.65 s
}

}  // namespace spotcheck

// Native IaaS cloud simulator (the "EC2" SpotCheck rents from).
//
// Exposes the control-plane surface SpotCheck depends on:
//   * asynchronous spot and on-demand instance launches (latencies per
//     Table 1),
//   * spot revocation: when a market's price rises above an instance's bid,
//     the instance receives a revocation warning and is forcibly terminated
//     a fixed warning period later (120 s on EC2),
//   * network-attached volumes (EBS) with attach/detach latencies,
//   * VPC private addresses that can be moved between instances (the
//     mechanism SpotCheck uses to keep nested VM addresses stable, Fig. 4),
//   * usage-based billing (spot at market price, on-demand at list price).

#ifndef SRC_CLOUD_NATIVE_CLOUD_H_
#define SRC_CLOUD_NATIVE_CLOUD_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cloud/billing.h"
#include "src/cloud/latency_model.h"
#include "src/common/fleet_store.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"
#include "src/market/spot_market.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace spotcheck {

enum class BillingMode : uint8_t { kOnDemand, kSpot };
enum class InstanceState : uint8_t { kPending, kRunning, kWarned, kTerminated };

struct Instance {
  InstanceId id;
  MarketKey market;
  BillingMode mode = BillingMode::kSpot;
  double bid = 0.0;  // $/hr; meaningful for spot only
  InstanceState state = InstanceState::kPending;
  SimTime requested_at;
  SimTime running_since;
  SimTime terminated_at;
  // Intrusive attachment-list heads: the volumes/addresses attached to this
  // instance, linked through VolumeRecord/AddressRecord::next_on_instance.
  // Releasing an instance's attachments walks these short chains instead of
  // scanning every volume and address in the cloud.
  VolumeId first_volume;
  AddressId first_address;
};

struct NativeCloudConfig {
  // EC2 gives spot instances a two-minute termination notice.
  SimDuration revocation_warning = SimDuration::Seconds(120);
  // Horizon/seed used when lazily materializing markets in the MarketPlace.
  SimDuration market_horizon = SimDuration::Days(180);
  uint64_t market_seed = 1;
  uint64_t latency_seed = 42;
  // When false, every control-plane operation takes its median latency
  // (deterministic; used by unit tests).
  bool sample_latencies = true;
  // Probability that an on-demand request fails because the platform is out
  // of capacity (Section 4.3 discusses this rare case).
  double on_demand_unavailable_probability = 0.0;
  // Bill whole instance-hours (as 2014-era EC2 did) instead of continuous
  // metering. The paper's analysis uses average $/hr, so continuous is the
  // default.
  bool hourly_billing = false;
  // Optional observability registry (cloud.* counters, operation-latency
  // histogram, market.bid_crossings). Purely observational; must outlive the
  // cloud when set.
  MetricsRegistry* metrics = nullptr;
  // Optional span tracer: every control-plane operation records a span of
  // its Table-1 latency on the affected instance's "host/<id>" track.
  // Purely observational; must outlive the cloud when set.
  SpanTracer* tracer = nullptr;
};

// (instance, success). Launch failures happen when a spot request's bid is
// already below the market price when it would start, when on-demand
// capacity is exhausted, or when the zone is down.
using InstanceReadyCallback = std::function<void(InstanceId, bool)>;
// (instance, termination deadline). Fired once when a spot instance enters
// the warning period.
using RevocationWarningHandler = std::function<void(InstanceId, SimTime)>;
// Fired when an instance dies WITHOUT any warning (platform/zone failure).
using InstanceFailureHandler = std::function<void(InstanceId)>;

class NativeCloud {
 public:
  NativeCloud(Simulator* sim, MarketPlace* markets, NativeCloudConfig config = {});

  NativeCloud(const NativeCloud&) = delete;
  NativeCloud& operator=(const NativeCloud&) = delete;

  // --- Instances ---------------------------------------------------------

  InstanceId RequestSpotInstance(MarketKey market, double bid,
                                 InstanceReadyCallback ready = {});
  InstanceId RequestOnDemandInstance(MarketKey market,
                                     InstanceReadyCallback ready = {});
  // Graceful, customer-initiated termination. Billing stops immediately;
  // the instance disappears after the terminate-operation latency.
  void TerminateInstance(InstanceId id);

  const Instance* GetInstance(InstanceId id) const;
  std::vector<const Instance*> Instances(InstanceState state) const;
  // Invoked whenever any spot instance receives its termination warning.
  void set_revocation_handler(RevocationWarningHandler handler) {
    revocation_handler_ = std::move(handler);
  }
  void set_instance_failure_handler(InstanceFailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  // --- Platform failures ----------------------------------------------------

  // The native platform itself occasionally fails (the paper cites an EC2
  // region outage [17]); SpotCheck cannot exceed its availability, but it
  // CAN recover VMs whose checkpoints survive. Schedules every instance in
  // `zone` to die at `at` with no warning; launches into the zone fail until
  // `until`.
  void ScheduleZoneOutage(AvailabilityZone zone, SimTime at, SimTime until);
  bool ZoneAvailable(AvailabilityZone zone) const;
  int64_t instance_failures() const { return instance_failures_; }

  // Kills one running (or warned) instance immediately with NO warning, as a
  // single-host platform failure -- the per-instance analogue of a zone
  // outage, used by the fault-injection layer (src/chaos). Returns false
  // (and does nothing) when the instance is unknown or already terminated.
  bool InjectInstanceFailure(InstanceId id);

  // Fault-injection hook consulted when a spot launch would otherwise
  // succeed; returning true fails the launch (simulated spot-capacity
  // shortage). Never invoked when unset, so the default behavior -- and the
  // RNG stream -- is untouched without a chaos layer.
  using SpotLaunchFaultHook = std::function<bool(const Instance&)>;
  void set_spot_launch_fault_hook(SpotLaunchFaultHook hook) {
    spot_launch_fault_hook_ = std::move(hook);
  }

  // --- Volumes (network-attached storage) --------------------------------

  VolumeId CreateVolume(double size_gb);
  // Fails (callback false) if the volume is already attached or the target
  // instance is not running.
  void AttachVolume(VolumeId volume, InstanceId instance,
                    std::function<void(bool)> done = {});
  void DetachVolume(VolumeId volume, std::function<void(bool)> done = {});
  // Invalid id or detached volume -> invalid InstanceId.
  InstanceId VolumeAttachment(VolumeId volume) const;

  // --- VPC addresses ------------------------------------------------------

  AddressId AllocateAddress();
  void AssignAddress(AddressId address, InstanceId instance,
                     std::function<void(bool)> done = {});
  void UnassignAddress(AddressId address, std::function<void(bool)> done = {});
  InstanceId AddressAssignment(AddressId address) const;

  // --- Billing & stats ----------------------------------------------------

  double TotalCost() const { return billing_.TotalCost(sim_->Now()); }
  double AccruedCost(InstanceId id) const {
    return billing_.AccruedCost(id, sim_->Now());
  }
  const BillingMeter& billing() const { return billing_; }

  int64_t spot_revocations() const { return spot_revocations_; }
  int64_t launches() const { return launches_; }

  const NativeCloudConfig& config() const { return config_; }
  SpotMarket& MarketFor(MarketKey key);
  Simulator* simulator() { return sim_; }

 private:
  struct VolumeRecord {
    double size_gb = 0.0;
    InstanceId attached_to;
    VolumeId next_on_instance;  // intrusive list link (see Instance)
    bool busy = false;          // an attach/detach operation is in flight
  };
  struct AddressRecord {
    InstanceId assigned_to;
    AddressId next_on_instance;
    bool busy = false;
  };

  SimDuration OperationDelay(CloudOperation op);
  // Records an operation span [Now, Now + delay) on `instance`'s host track,
  // adopting the ambient trace parent; 0 when tracing is off.
  SpanId TraceOp(std::string_view name, InstanceId instance, SimDuration delay);
  void OnInstanceStarted(InstanceId id, InstanceReadyCallback ready);
  void OnMarketPriceChange(MarketKey key, double price);
  // Flips the instance to kWarned, counts the revocation, and fires the
  // revocation handler. Does NOT schedule the termination: the sweep in
  // OnMarketPriceChange schedules ONE terminator event for the whole warned
  // cohort instead of one per instance.
  void WarnInstance(Instance& instance, SimTime deadline);
  void ForceTerminate(InstanceId id);
  void FailZoneInstances(AvailabilityZone zone);
  // Shared no-warning kill: terminates, stops billing, releases attachments,
  // counts the failure, and fires the failure handler.
  void FailInstance(Instance& instance);
  void ReleaseAttachments(InstanceId id);
  // Intrusive attachment-list maintenance (O(attachments-per-instance)).
  void LinkVolume(VolumeId volume, VolumeRecord& record, InstanceId instance);
  void UnlinkVolume(VolumeId volume, VolumeRecord& record);
  void LinkAddress(AddressId address, AddressRecord& record,
                   InstanceId instance);
  void UnlinkAddress(AddressId address, AddressRecord& record);

  Simulator* sim_;
  MarketPlace* markets_;
  NativeCloudConfig config_;
  OperationLatencyModel latency_;
  Rng rng_;
  BillingMeter billing_;

  IdGenerator<InstanceTag> instance_ids_;
  IdGenerator<VolumeTag> volume_ids_;
  IdGenerator<AddressTag> address_ids_;

  // Arena storage (fleet-scale): O(1) id lookups, no per-record heap nodes,
  // id-order iteration. Instances, volumes, and addresses are never erased
  // within a simulation, matching the old map semantics.
  FleetTable<InstanceTag, Instance> instances_;
  // Running spot instances per market, so price changes only touch the
  // affected market's instances (terminated ids are compacted lazily).
  // `min_bid` is a conservative lower bound over the listed instances
  // (never above the true minimum of the still-running ones), letting the
  // millions of price changes that cross nobody's bid return after one
  // comparison; it is tightened on every full sweep.
  struct SpotIndex {
    std::vector<InstanceId> ids;
    double min_bid = std::numeric_limits<double>::infinity();
  };
  std::map<MarketKey, SpotIndex> running_spot_;
  std::vector<InstanceId> to_warn_scratch_;  // reused sweep buffer
  FleetTable<VolumeTag, VolumeRecord> volumes_;
  FleetTable<AddressTag, AddressRecord> addresses_;
  // Markets we already subscribed to for revocation monitoring.
  std::map<MarketKey, bool> subscribed_;

  RevocationWarningHandler revocation_handler_;
  InstanceFailureHandler failure_handler_;
  SpotLaunchFaultHook spot_launch_fault_hook_;
  std::map<int, SimTime> zone_down_until_;
  int64_t spot_revocations_ = 0;
  int64_t launches_ = 0;
  int64_t instance_failures_ = 0;

  // Observability instruments; all null when config_.metrics is null.
  MetricCounter* launch_requests_metric_ = nullptr;
  MetricCounter* launches_metric_ = nullptr;
  MetricCounter* launch_failures_metric_ = nullptr;
  MetricCounter* terminations_metric_ = nullptr;
  MetricCounter* revocation_warnings_metric_ = nullptr;
  MetricCounter* bid_crossings_metric_ = nullptr;
  MetricCounter* instance_failures_metric_ = nullptr;
  MetricHistogram* op_latency_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_CLOUD_NATIVE_CLOUD_H_

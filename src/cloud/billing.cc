#include "src/cloud/billing.h"

#include "src/market/price_trace.h"

namespace spotcheck {

void BillingMeter::StartFixed(InstanceId id, SimTime now, double rate_per_hour) {
  open_[id] = Stream{now, rate_per_hour, nullptr};
}

void BillingMeter::StartMetered(InstanceId id, SimTime now, const PriceTrace* trace) {
  open_[id] = Stream{now, 0.0, trace};
}

void BillingMeter::Stop(InstanceId id, SimTime now) {
  const auto it = open_.find(id);
  if (it == open_.end()) {
    return;
  }
  const SimTime billed_until = BilledUntil(it->second, now);
  closed_cost_ += StreamCost(it->second, billed_until);
  closed_hours_ += (billed_until - it->second.started).hours();
  open_.erase(it);
}

SimTime BillingMeter::BilledUntil(const Stream& stream, SimTime until) const {
  if (!hourly_quantum_ || until <= stream.started) {
    // Stopping at (or before) the launch instant bills zero.
    return until;
  }
  // Integer hour arithmetic on the microsecond clock: a stop exactly on an
  // hour boundary bills exactly that many hours, and any positive partial
  // hour rounds up to one whole quantum. The previous floating-point
  // ceil(hours - 1e-9) had a 3.6 us dead zone (1e-9 is in HOURS) in which a
  // short-lived stream billed zero instead of one hour.
  constexpr int64_t kHourUs = 3'600'000'000;
  const int64_t us = (until - stream.started).micros();
  const int64_t billed_hours = (us + kHourUs - 1) / kHourUs;
  return stream.started + SimDuration::Micros(billed_hours * kHourUs);
}

double BillingMeter::StreamCost(const Stream& stream, SimTime until) const {
  const double hours = (until - stream.started).hours();
  if (hours <= 0.0) {
    return 0.0;
  }
  if (stream.trace != nullptr) {
    const Window window{stream.trace, stream.started.micros(), until.micros()};
    // Admitting a new window past the cap clears the memo first: every
    // mid-run cost probe (TotalCost at a fresh `now`) inserts one-off
    // windows per open stream, so an unbounded memo grows for the life of
    // the meter. Dropping it is purely a cache eviction -- values are exact
    // recomputations, so costs stay bitwise identical.
    if (mean_price_memo_.size() >= kMeanPriceMemoCap &&
        mean_price_memo_.find(window) == mean_price_memo_.end()) {
      mean_price_memo_.clear();
    }
    const auto [it, inserted] = mean_price_memo_.try_emplace(window, 0.0);
    if (inserted) {
      it->second = stream.trace->MeanPrice(stream.started, until);
    }
    return it->second * hours;
  }
  return stream.fixed_rate * hours;
}

double BillingMeter::AccruedCost(InstanceId id, SimTime now) const {
  const auto it = open_.find(id);
  if (it == open_.end()) {
    return 0.0;
  }
  return StreamCost(it->second, now);
}

double BillingMeter::TotalCost(SimTime now) const {
  double total = closed_cost_;
  for (const auto& [id, stream] : open_) {
    total += StreamCost(stream, now);
  }
  return total;
}

double BillingMeter::TotalInstanceHours(SimTime now) const {
  double total = closed_hours_;
  for (const auto& [id, stream] : open_) {
    total += (now - stream.started).hours();
  }
  return total;
}

}  // namespace spotcheck

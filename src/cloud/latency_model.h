// Latency model for native-cloud control-plane operations.
//
// Table 1 of the paper reports the measured latency (median/mean/max/min over
// 20 runs) of the EC2 operations SpotCheck depends on: starting spot and
// on-demand instances, terminating instances, detaching/attaching EBS
// volumes, and detaching/attaching network interfaces. This module turns
// those measurements into samplable distributions: near-symmetric operations
// use a clamped normal, right-skewed ones (mean noticeably above median) use
// a clamped lognormal.

#ifndef SRC_CLOUD_LATENCY_MODEL_H_
#define SRC_CLOUD_LATENCY_MODEL_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace spotcheck {

enum class CloudOperation : uint8_t {
  kStartSpotInstance,
  kStartOnDemandInstance,
  kTerminateInstance,
  kDetachVolume,     // "Unmount and detach EBS"
  kAttachVolume,     // "Attach and mount EBS"
  kAttachInterface,  // "Attach network interface"
  kDetachInterface,  // "Detach network interface"
};

std::string_view CloudOperationName(CloudOperation op);

// One Table 1 row, in seconds.
struct LatencySpec {
  double median;
  double mean;
  double max;
  double min;
};

// The Table 1 measurements for the m3.medium server type.
const LatencySpec& PaperLatencySpec(CloudOperation op);

class OperationLatencyModel {
 public:
  explicit OperationLatencyModel(Rng rng) : rng_(rng) {}

  // Draws one latency for `op` from the fitted distribution.
  SimDuration Sample(CloudOperation op);

  // Deterministic central value (the median), used by analyses that want the
  // expected cost of an operation without sampling noise.
  static SimDuration Typical(CloudOperation op);

 private:
  Rng rng_;
};

// The fixed EC2-operation downtime SpotCheck's evaluation charges per
// migration: detach EBS + attach EBS + attach ENI + detach ENI mean latencies
// (Section 5 reports 22.65 s; Section 6.2 rounds to 23 s).
SimDuration MigrationEc2OperationDowntime();

}  // namespace spotcheck

#endif  // SRC_CLOUD_LATENCY_MODEL_H_

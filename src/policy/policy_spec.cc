#include "src/policy/policy_spec.h"

#include <cstdio>
#include <cstdlib>

#include "src/policy/registry.h"

namespace spotcheck {
namespace {

std::string FormatParam(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

// name[:param[:param...]] with params as strtod-parsable doubles.
bool ParseStrategy(std::string_view text, StrategySpec* out,
                   std::string* error) {
  out->params.clear();
  size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    const size_t colon = text.find(':', start);
    const std::string_view token =
        text.substr(start, colon == std::string_view::npos ? std::string_view::npos
                                                           : colon - start);
    if (first) {
      if (token.empty()) {
        return SetError(error, "empty strategy name");
      }
      out->name = std::string(token);
      first = false;
    } else {
      const std::string param_text(token);
      char* end = nullptr;
      const double value = std::strtod(param_text.c_str(), &end);
      if (param_text.empty() || end == nullptr || *end != '\0') {
        return SetError(error, "bad numeric parameter '" + param_text +
                                   "' in strategy '" + out->name + "'");
      }
      out->params.push_back(value);
    }
    if (colon == std::string_view::npos) {
      break;
    }
    start = colon + 1;
  }
  return true;
}

}  // namespace

std::string StrategySpec::ToString() const {
  std::string out = name;
  for (double param : params) {
    out += ':';
    out += FormatParam(param);
  }
  return out;
}

std::string PolicySpec::ToString() const {
  return "bid=" + bid.ToString() + ",map=" + map.ToString();
}

std::optional<PolicySpec> PolicySpec::Parse(std::string_view text,
                                            std::string* error) {
  PolicySpec spec;
  bool saw_bid = false;
  bool saw_map = false;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string_view part =
        text.substr(start, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - start);
    if (part.empty()) {
      SetError(error, "empty spec segment in '" + std::string(text) + "'");
      return std::nullopt;
    }
    const size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      SetError(error, "expected key=value, got '" + std::string(part) + "'");
      return std::nullopt;
    }
    const std::string_view key = part.substr(0, eq);
    const std::string_view value = part.substr(eq + 1);
    if (key == "bid") {
      if (saw_bid) {
        SetError(error, "duplicate key 'bid'");
        return std::nullopt;
      }
      saw_bid = true;
      if (!ParseStrategy(value, &spec.bid, error)) {
        return std::nullopt;
      }
    } else if (key == "map") {
      if (saw_map) {
        SetError(error, "duplicate key 'map'");
        return std::nullopt;
      }
      saw_map = true;
      if (!ParseStrategy(value, &spec.map, error)) {
        return std::nullopt;
      }
    } else {
      SetError(error, "unknown key '" + std::string(key) +
                          "' (expected bid or map)");
      return std::nullopt;
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  // A spec that parses must also instantiate: run the registry factories so
  // unknown names and out-of-range parameters fail here, loudly, not at
  // controller construction.
  const PolicyRegistry& registry = PolicyRegistry::Instance();
  if (registry.CreateBid(spec.bid, error) == nullptr) {
    return std::nullopt;
  }
  if (registry.CreatePool(spec.map, PoolStrategyInit{}, error) == nullptr) {
    return std::nullopt;
  }
  return spec;
}

PolicySpec ParsePolicySpecOrExit(const std::string& text) {
  std::string error;
  const std::optional<PolicySpec> spec = PolicySpec::Parse(text, &error);
  if (spec.has_value()) {
    return *spec;
  }
  std::fprintf(stderr, "invalid --policy spec '%s': %s\n", text.c_str(),
               error.c_str());
  const PolicyRegistry& registry = PolicyRegistry::Instance();
  std::fprintf(stderr, "bid strategies:");
  for (const std::string& name : registry.BidNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\npool strategies:");
  for (const std::string& name : registry.PoolNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace spotcheck

// Policy specification strings.
//
// A PolicySpec names one bidding strategy and one pool-selection strategy by
// registry key, with optional numeric parameters:
//
//   bid=on-demand,map=1p-m            (the paper's defaults)
//   bid=multiple:1.5,map=4p-cost      (k=1.5 bids over cost-weighted pools)
//   bid=adaptive:2,map=index-track    (both new families)
//
// Grammar: comma-separated `key=value` pairs, keys `bid` and `map` (each at
// most once), values `name[:param[:param...]]` with params parsed as
// doubles. Parse() validates names and parameters against the
// PolicyRegistry, so a spec that parses is a spec that instantiates. Specs
// round-trip: Parse(spec.ToString()) == spec.
//
// The spec layer is how benches/CLI/configs talk about strategies without
// the enum plumbing the old BidPolicyKind/MappingPolicyKind required; see
// DESIGN.md section 15.

#ifndef SRC_POLICY_POLICY_SPEC_H_
#define SRC_POLICY_POLICY_SPEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spotcheck {

// One strategy reference: a registry name plus numeric parameters.
struct StrategySpec {
  std::string name;
  std::vector<double> params;

  bool operator==(const StrategySpec& other) const = default;

  // "name" or "name:p1:p2" with params printed via %.12g.
  std::string ToString() const;
};

struct PolicySpec {
  StrategySpec bid{"on-demand", {}};
  StrategySpec map{"1p-m", {}};

  bool operator==(const PolicySpec& other) const = default;

  // "bid=<bid>,map=<map>"; Parse(ToString()) == *this.
  std::string ToString() const;

  // Parses and validates `text` against the registry. On failure returns
  // nullopt and, when `error` is non-null, a one-line description naming the
  // offending token. Omitted keys keep their defaults, so "map=4p-ed" alone
  // is a valid spec.
  static std::optional<PolicySpec> Parse(std::string_view text,
                                         std::string* error = nullptr);
};

// Flag-parsing helper for benches and the CLI: parses `text` or prints the
// error plus the registered strategy names to stderr and exits 2 (the same
// loud-failure contract as the strict FlagParser).
PolicySpec ParsePolicySpecOrExit(const std::string& text);

}  // namespace spotcheck

#endif  // SRC_POLICY_POLICY_SPEC_H_

// Built-in strategy families behind the policy registry.
//
// Bidding (Section 4.3 plus the adaptive family):
//   on-demand            bid exactly the on-demand price
//   multiple:k           bid k x on-demand (k >= 1; k > 1 enables proactive)
//   adaptive:k0[:step[:target]]
//                        start at k0 x on-demand and adjust from observed
//                        bid-crossing rates: more than `target` crossings per
//                        7-day window raises k by `step` (fewer revocations,
//                        higher worst case), a crossing-free window lowers it
//                        back toward 1. After Voorsluys et al.'s
//                        history-driven bid placement.
//
// Pool selection (Table 2 plus index tracking):
//   1p-m 2p-ml 4p-ed     round-robin over 1/2/4 family-ladder pools
//   4p-cost              weighted inversely to historical per-slot cost
//   4p-st                weighted inversely to historical bid crossings
//   greedy               lowest current per-slot price wins
//   stable               fewest historical bid crossings wins
//   index-track[:alpha]  rebalances placements across the 4-pool ladder to
//                        track the portfolio's per-slot price index: each
//                        pool's target share is proportional to the inverse
//                        of its EWMA per-slot price forecast (alpha = EWMA
//                        smoothing), pools in a spike regime are excluded,
//                        and each placement goes to the pool with the
//                        largest target-minus-actual deficit. After Shastri
//                        & Irwin's "Cloud Index Tracking". Deterministic: no
//                        Rng draws, ties break in ladder order.

#ifndef SRC_POLICY_BUILTIN_STRATEGIES_H_
#define SRC_POLICY_BUILTIN_STRATEGIES_H_

#include <map>
#include <vector>

#include "src/market/price_forecaster.h"
#include "src/policy/registry.h"
#include "src/policy/strategy.h"

namespace spotcheck {

// on-demand / multiple:k -- the paper's two fixed bids. Replicates the old
// BiddingPolicy arithmetic exactly.
class FixedBidStrategy : public BidStrategy {
 public:
  FixedBidStrategy(StrategySpec spec, bool multiple, double k)
      : spec_(std::move(spec)), multiple_(multiple), k_(k) {}

  double BidFor(InstanceType type) const override {
    const double od = OnDemandPrice(type);
    return multiple_ ? k_ * od : od;
  }
  bool SupportsProactiveMigration() const override {
    return multiple_ && k_ > 1.0;
  }
  StrategySpec spec() const override { return spec_; }

 private:
  StrategySpec spec_;
  bool multiple_;
  double k_;
};

// adaptive:k0[:step[:target]] -- crossing-rate-driven bid multiple.
class AdaptiveBidStrategy : public BidStrategy {
 public:
  AdaptiveBidStrategy(StrategySpec spec, double k0, double step,
                      double target_per_window)
      : spec_(std::move(spec)),
        k_(k0),
        step_(step),
        target_per_window_(target_per_window) {}

  double BidFor(InstanceType type) const override {
    return k_ * OnDemandPrice(type);
  }
  bool SupportsProactiveMigration() const override { return k_ > 1.0; }
  void OnPriceObservation(const MarketKey& key, SimTime now,
                          double price) override;
  StrategySpec spec() const override { return spec_; }

  double current_multiple() const { return k_; }
  int64_t crossings_observed() const { return total_crossings_; }

  static constexpr double kMinMultiple = 1.0;
  static constexpr double kMaxMultiple = 8.0;
  static constexpr SimDuration kWindow = SimDuration::Days(7);

 private:
  StrategySpec spec_;
  double k_;
  double step_;
  double target_per_window_;
  bool window_init_ = false;
  SimTime window_start_;
  int64_t crossings_in_window_ = 0;
  int64_t total_crossings_ = 0;
  // Last observed above-bid flag per market: a false->true flip is one
  // upward crossing (one revocation for pools bidding our bid).
  std::map<MarketKey, bool> above_;
};

// 1p-m / 2p-ml / 4p-ed -- equal distribution via strict rotation.
class RoundRobinPool : public PoolSelectionStrategy {
 public:
  RoundRobinPool(StrategySpec spec, const PoolStrategyInit& init,
                 size_t ladder_pools)
      : PoolSelectionStrategy(
            init.nested_type,
            PoolCandidates(ladder_pools, init.nested_type, init.zones),
            init.rng),
        spec_(std::move(spec)) {}
  StrategySpec spec() const override { return spec_; }

 protected:
  MarketKey Choose(const MarketView&, const BidStrategy&) override {
    return RoundRobin();
  }

 private:
  StrategySpec spec_;
};

// 4p-cost -- weighted inversely to historical per-slot cost.
class CostWeightedPool : public PoolSelectionStrategy {
 public:
  CostWeightedPool(StrategySpec spec, const PoolStrategyInit& init)
      : PoolSelectionStrategy(init.nested_type,
                              PoolCandidates(4, init.nested_type, init.zones),
                              init.rng),
        spec_(std::move(spec)) {}
  StrategySpec spec() const override { return spec_; }

 protected:
  MarketKey Choose(const MarketView& view, const BidStrategy& bid) override;

 private:
  StrategySpec spec_;
};

// 4p-st -- weighted inversely to historical bid crossings.
class StabilityWeightedPool : public PoolSelectionStrategy {
 public:
  StabilityWeightedPool(StrategySpec spec, const PoolStrategyInit& init)
      : PoolSelectionStrategy(init.nested_type,
                              PoolCandidates(4, init.nested_type, init.zones),
                              init.rng),
        spec_(std::move(spec)) {}
  StrategySpec spec() const override { return spec_; }

 protected:
  MarketKey Choose(const MarketView& view, const BidStrategy& bid) override;

 private:
  StrategySpec spec_;
};

// greedy -- lowest current per-slot price wins.
class GreedyCheapestPool : public PoolSelectionStrategy {
 public:
  GreedyCheapestPool(StrategySpec spec, const PoolStrategyInit& init)
      : PoolSelectionStrategy(init.nested_type,
                              PoolCandidates(4, init.nested_type, init.zones),
                              init.rng),
        spec_(std::move(spec)) {}
  StrategySpec spec() const override { return spec_; }

 protected:
  MarketKey Choose(const MarketView& view, const BidStrategy& bid) override;

 private:
  StrategySpec spec_;
};

// stable -- fewest historical bid crossings wins outright.
class StabilityFirstPool : public PoolSelectionStrategy {
 public:
  StabilityFirstPool(StrategySpec spec, const PoolStrategyInit& init)
      : PoolSelectionStrategy(init.nested_type,
                              PoolCandidates(4, init.nested_type, init.zones),
                              init.rng),
        spec_(std::move(spec)) {}
  StrategySpec spec() const override { return spec_; }

 protected:
  MarketKey Choose(const MarketView& view, const BidStrategy& bid) override;

 private:
  StrategySpec spec_;
};

// index-track[:alpha] -- deficit-driven rebalancing toward inverse-forecast
// target shares over the 4-pool ladder.
class IndexTrackingPool : public PoolSelectionStrategy {
 public:
  IndexTrackingPool(StrategySpec spec, const PoolStrategyInit& init,
                    double alpha);
  StrategySpec spec() const override { return spec_; }

  // Exposed for tests: placements recorded per candidate, in candidate
  // order.
  const std::vector<int64_t>& placements() const { return placements_; }

 protected:
  MarketKey Choose(const MarketView& view, const BidStrategy& bid) override;

 private:
  StrategySpec spec_;
  PriceForecasterConfig forecaster_config_;
  std::vector<PriceForecaster> forecasters_;  // one per candidate
  std::vector<size_t> next_point_;            // trace feed cursor per candidate
  std::vector<int64_t> placements_;
  int64_t total_placements_ = 0;
};

// Registers every family above; called once by PolicyRegistry's constructor.
void RegisterBuiltinStrategies(PolicyRegistry& registry);

}  // namespace spotcheck

#endif  // SRC_POLICY_BUILTIN_STRATEGIES_H_

#include "src/policy/registry.h"

#include <algorithm>
#include <utility>

#include "src/policy/builtin_strategies.h"

namespace spotcheck {
namespace {

// The nested type itself plus progressively larger same-family hvm types
// (slicing targets), in catalog (size) order. For m3.medium this is exactly
// {m3.medium, m3.large, m3.xlarge, m3.2xlarge} as in Table 2.
std::vector<InstanceType> FamilyLadder(InstanceType nested) {
  const std::string_view name = InstanceTypeName(nested);
  const std::string_view family = name.substr(0, name.find('.'));
  std::vector<InstanceType> ladder;
  for (const InstanceTypeInfo& info : InstanceCatalog()) {
    if (!info.hvm_capable) {
      continue;
    }
    const std::string_view candidate_family =
        info.name.substr(0, info.name.find('.'));
    if (candidate_family == family && NestedSlotsPerHost(info.type, nested) >= 1) {
      ladder.push_back(info.type);
    }
  }
  // The catalog lists each family smallest-first already; keep that order.
  if (ladder.empty()) {
    ladder.push_back(nested);
  }
  return ladder;
}

}  // namespace

std::vector<MarketKey> PoolCandidates(
    size_t pools, InstanceType nested,
    const std::vector<AvailabilityZone>& zones) {
  const std::vector<InstanceType> ladder = FamilyLadder(nested);
  pools = std::min(std::max<size_t>(pools, 1), ladder.size());
  std::vector<MarketKey> candidates;
  const std::vector<AvailabilityZone> effective_zones =
      zones.empty() ? std::vector<AvailabilityZone>{AvailabilityZone{0}} : zones;
  candidates.reserve(pools * effective_zones.size());
  for (const AvailabilityZone& zone : effective_zones) {
    for (size_t i = 0; i < pools; ++i) {
      candidates.push_back(MarketKey{ladder[i], zone});
    }
  }
  return candidates;
}

PolicyRegistry& PolicyRegistry::Instance() {
  static PolicyRegistry* instance = new PolicyRegistry();
  return *instance;
}

PolicyRegistry::PolicyRegistry() { RegisterBuiltinStrategies(*this); }

void PolicyRegistry::RegisterBid(const std::string& name, BidFactory factory) {
  const std::lock_guard<std::mutex> lock(mu_);
  bids_[name] = std::move(factory);
}

void PolicyRegistry::RegisterPool(const std::string& name, size_t ladder_pools,
                                  PoolFactory factory) {
  const std::lock_guard<std::mutex> lock(mu_);
  pools_[name] = PoolEntry{ladder_pools, std::move(factory)};
}

bool PolicyRegistry::HasBid(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bids_.contains(name);
}

bool PolicyRegistry::HasPool(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pools_.contains(name);
}

std::vector<std::string> PolicyRegistry::BidNames() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(bids_.size());
  for (const auto& [name, factory] : bids_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> PolicyRegistry::PoolNames() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, entry] : pools_) {
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<BidStrategy> PolicyRegistry::CreateBid(
    const StrategySpec& spec, std::string* error) const {
  BidFactory factory;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = bids_.find(spec.name);
    if (it == bids_.end()) {
      if (error != nullptr) {
        *error = "unknown bid strategy '" + spec.name + "'";
      }
      return nullptr;
    }
    factory = it->second;
  }
  return factory(spec, error);
}

std::unique_ptr<PoolSelectionStrategy> PolicyRegistry::CreatePool(
    const StrategySpec& spec, const PoolStrategyInit& init,
    std::string* error) const {
  PoolFactory factory;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = pools_.find(spec.name);
    if (it == pools_.end()) {
      if (error != nullptr) {
        *error = "unknown pool strategy '" + spec.name + "'";
      }
      return nullptr;
    }
    factory = it->second.factory;
  }
  return factory(spec, init, error);
}

std::vector<MarketKey> PolicyRegistry::CandidatesFor(
    const StrategySpec& map_spec, InstanceType nested,
    const std::vector<AvailabilityZone>& zones, std::string* error) const {
  size_t ladder_pools = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = pools_.find(map_spec.name);
    if (it == pools_.end()) {
      if (error != nullptr) {
        *error = "unknown pool strategy '" + map_spec.name + "'";
      }
      return {};
    }
    ladder_pools = it->second.ladder_pools;
  }
  return PoolCandidates(ladder_pools, nested, zones);
}

}  // namespace spotcheck

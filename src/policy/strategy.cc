#include "src/policy/strategy.h"

#include <limits>

namespace spotcheck {

double PoolSelectionStrategy::PerSlotPrice(const SpotMarket& market,
                                           InstanceType nested_type,
                                           SimTime now) {
  const int slots = NestedSlotsPerHost(market.key().type, nested_type);
  if (slots <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return market.PriceAt(now) / static_cast<double>(slots);
}

MarketKey PoolSelectionStrategy::ChooseWeighted(
    const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0.0) {
    return RoundRobin();
  }
  double draw = rng_.Uniform(0.0, total);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) {
      return candidates_[i];
    }
  }
  return candidates_.back();
}

}  // namespace spotcheck

// Strategy interfaces for the pluggable policy layer (DESIGN.md section 15).
//
// The controller used to thread two enums (BidPolicyKind, MappingPolicyKind)
// through five layers; every new policy meant another case in every switch.
// This module replaces the enums with two small interfaces:
//
//   * BidStrategy -- what to bid per instance type, when proactive migration
//     makes sense, and (for adaptive strategies) how to react to observed
//     prices. Stateless for the paper's fixed policies; the adaptive family
//     keeps per-market crossing statistics.
//   * PoolSelectionStrategy -- which (type, zone) market receives the next
//     nested VM, given a MarketView of price history. Owns the candidate
//     pool list, the round-robin counter, and the weighted-draw Rng; the
//     paper's Table-2 policies and the index-tracking allocator are
//     implementations.
//
// Determinism contract: strategies are deterministic functions of their
// construction seed and the observation sequence. The weighted draw
// (ChooseWeighted) reproduces the pre-refactor MappingPolicy sequence
// bit-for-bit -- same Rng stream, same fallback order -- which is what keeps
// the Table-2 golden CSVs identical across the refactor at any --jobs.

#ifndef SRC_POLICY_STRATEGY_H_
#define SRC_POLICY_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"
#include "src/market/spot_market.h"
#include "src/policy/policy_spec.h"

namespace spotcheck {

// Read-only window onto the marketplace at a decision instant: the price
// history every history-weighted strategy consults, bounded by `now`.
class MarketView {
 public:
  MarketView(const MarketPlace& markets, SimTime now)
      : markets_(&markets), now_(now) {}

  const SpotMarket* Find(const MarketKey& key) const {
    return markets_->Find(key);
  }
  SimTime now() const { return now_; }

 private:
  const MarketPlace* markets_;
  SimTime now_;
};

// Bidding strategy (Section 4.3 and beyond): the bid per instance type plus
// the proactive-migration window it implies.
class BidStrategy {
 public:
  virtual ~BidStrategy() = default;

  // The bid for servers of `type`, in $/hr.
  virtual double BidFor(InstanceType type) const = 0;

  // Whether there is a usable window between the proactive threshold and the
  // bid (the paper: only k>1 bids have one).
  virtual bool SupportsProactiveMigration() const = 0;

  // Price above which a proactive policy should evacuate. The default is the
  // on-demand price: staying on spot above it is never cost-effective.
  virtual double ProactiveThreshold(InstanceType type) const {
    return OnDemandPrice(type);
  }

  // Observation hook, called by the MarketWatcher on every price change of a
  // subscribed market. Fixed strategies ignore it (keeping the pre-refactor
  // behavior bit-identical); adaptive strategies update their bids here.
  virtual void OnPriceObservation(const MarketKey& key, SimTime now,
                                  double price) {
    (void)key;
    (void)now;
    (void)price;
  }

  // The spec this strategy was created from; round-trips through the
  // registry.
  virtual StrategySpec spec() const = 0;

  std::string ToString() const { return spec().ToString(); }
};

// Pool-selection strategy (Section 4.2 and beyond): picks the market for
// each newly placed nested VM from a fixed candidate list.
class PoolSelectionStrategy {
 public:
  virtual ~PoolSelectionStrategy() = default;

  const std::vector<MarketKey>& candidates() const { return candidates_; }
  InstanceType nested_type() const { return nested_type_; }
  virtual StrategySpec spec() const = 0;
  std::string ToString() const { return spec().ToString(); }

  // Picks the pool for the next VM. The single-candidate early return is
  // shared by every strategy and deliberately precedes any Rng draw or
  // counter bump -- the pre-refactor MappingPolicy did the same, and the
  // golden CSVs pin that order.
  MarketKey ChoosePool(const MarketView& view, const BidStrategy& bid) {
    if (candidates_.size() == 1) {
      return candidates_.front();
    }
    return Choose(view, bid);
  }

  // Per-slot price of hosting one `nested_type` VM in `market` at `now`
  // (host price divided by slots; the slicing arbitrage in Section 4.2).
  static double PerSlotPrice(const SpotMarket& market, InstanceType nested_type,
                             SimTime now);

 protected:
  PoolSelectionStrategy(InstanceType nested_type,
                        std::vector<MarketKey> candidates, Rng rng)
      : nested_type_(nested_type),
        candidates_(std::move(candidates)),
        rng_(rng) {}

  virtual MarketKey Choose(const MarketView& view, const BidStrategy& bid) = 0;

  // Next candidate in strict rotation.
  MarketKey RoundRobin() {
    return candidates_[round_robin_++ % candidates_.size()];
  }

  // Weighted draw over candidates_; an all-zero weight vector falls back to
  // round-robin. Bit-identical to the pre-refactor MappingPolicy draw.
  MarketKey ChooseWeighted(const std::vector<double>& weights);

  InstanceType nested_type_;
  std::vector<MarketKey> candidates_;
  Rng rng_;
  size_t round_robin_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_POLICY_STRATEGY_H_

#include "src/policy/builtin_strategies.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/market/market_analytics.h"

namespace spotcheck {

// --- AdaptiveBidStrategy -----------------------------------------------------

void AdaptiveBidStrategy::OnPriceObservation(const MarketKey& key, SimTime now,
                                             double price) {
  if (!window_init_) {
    window_start_ = now;
    window_init_ = true;
  }
  const bool now_above = price > BidFor(key.type);
  const auto [it, inserted] = above_.try_emplace(key, now_above);
  if (inserted) {
    if (now_above) {
      ++crossings_in_window_;
      ++total_crossings_;
    }
  } else {
    if (now_above && !it->second) {
      ++crossings_in_window_;
      ++total_crossings_;
    }
    it->second = now_above;
  }
  if (now - window_start_ >= kWindow) {
    if (static_cast<double>(crossings_in_window_) > target_per_window_) {
      k_ = std::min(k_ + step_, kMaxMultiple);
    } else if (crossings_in_window_ == 0) {
      k_ = std::max(k_ - step_, kMinMultiple);
    }
    // The bid moved: stale above-bid flags would mint phantom crossings, so
    // they are re-derived lazily from the next observation per market.
    for (auto& [market, above] : above_) {
      (void)market;
      above = false;
    }
    window_start_ = now;
    crossings_in_window_ = 0;
  }
}

// --- Table-2 pool strategies -------------------------------------------------

MarketKey CostWeightedPool::Choose(const MarketView& view, const BidStrategy&) {
  // Weight inversely to historical per-slot cost.
  std::vector<double> weights;
  for (const MarketKey& key : candidates_) {
    const SpotMarket* market = view.Find(key);
    const int slots = NestedSlotsPerHost(key.type, nested_type_);
    double weight = 0.0;
    if (market != nullptr && slots > 0 && view.now() > SimTime()) {
      const double mean = market->trace().MeanPrice(SimTime(), view.now()) /
                          static_cast<double>(slots);
      weight = mean > 0.0 ? 1.0 / mean : 0.0;
    }
    weights.push_back(weight);
  }
  return ChooseWeighted(weights);
}

MarketKey StabilityWeightedPool::Choose(const MarketView& view,
                                        const BidStrategy& bid) {
  // Weight inversely to the number of past revocations (bid crossings).
  std::vector<double> weights;
  for (const MarketKey& key : candidates_) {
    const SpotMarket* market = view.Find(key);
    double weight = 0.0;
    if (market != nullptr) {
      const int crossings = CountBidCrossings(
          market->trace(), bid.BidFor(key.type), SimTime(), view.now());
      weight = 1.0 / (1.0 + static_cast<double>(crossings));
    }
    weights.push_back(weight);
  }
  return ChooseWeighted(weights);
}

MarketKey GreedyCheapestPool::Choose(const MarketView& view,
                                     const BidStrategy&) {
  // Lowest current per-slot price wins (exploits the slicing arbitrage).
  MarketKey best = candidates_.front();
  double best_price = std::numeric_limits<double>::infinity();
  for (const MarketKey& key : candidates_) {
    const SpotMarket* market = view.Find(key);
    if (market == nullptr) {
      continue;
    }
    const double price = PerSlotPrice(*market, nested_type_, view.now());
    if (price < best_price) {
      best_price = price;
      best = key;
    }
  }
  return best;
}

MarketKey StabilityFirstPool::Choose(const MarketView& view,
                                     const BidStrategy& bid) {
  // Fewest past revocations wins outright.
  MarketKey best = candidates_.front();
  int best_crossings = std::numeric_limits<int>::max();
  for (const MarketKey& key : candidates_) {
    const SpotMarket* market = view.Find(key);
    if (market == nullptr) {
      continue;
    }
    const int crossings = CountBidCrossings(
        market->trace(), bid.BidFor(key.type), SimTime(), view.now());
    if (crossings < best_crossings) {
      best_crossings = crossings;
      best = key;
    }
  }
  return best;
}

// --- IndexTrackingPool -------------------------------------------------------

IndexTrackingPool::IndexTrackingPool(StrategySpec spec,
                                     const PoolStrategyInit& init, double alpha)
    : PoolSelectionStrategy(init.nested_type,
                            PoolCandidates(4, init.nested_type, init.zones),
                            init.rng),
      spec_(std::move(spec)) {
  forecaster_config_.mean_alpha = alpha;
  forecaster_config_.var_alpha = alpha;
  forecasters_.assign(candidates_.size(), PriceForecaster(forecaster_config_));
  next_point_.assign(candidates_.size(), 0);
  placements_.assign(candidates_.size(), 0);
}

MarketKey IndexTrackingPool::Choose(const MarketView& view,
                                    const BidStrategy&) {
  // Feed each candidate's forecaster the trace points since the last
  // decision (incremental: amortized O(new points) across the run).
  std::vector<double> weights(candidates_.size(), 0.0);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const MarketKey& key = candidates_[i];
    const SpotMarket* market = view.Find(key);
    if (market == nullptr) {
      continue;
    }
    next_point_[i] =
        forecasters_[i].ObserveTrace(market->trace(), next_point_[i], view.now());
    const int slots = NestedSlotsPerHost(key.type, nested_type_);
    if (!forecasters_[i].primed() || slots <= 0) {
      continue;
    }
    if (forecasters_[i].regime() == PriceRegime::kSpike) {
      continue;  // mid-spike pools are excluded from the index
    }
    const double per_slot_forecast =
        forecasters_[i].forecast() / static_cast<double>(slots);
    if (per_slot_forecast > 0.0) {
      weights[i] = 1.0 / per_slot_forecast;
    }
  }
  double total_weight = 0.0;
  for (double w : weights) {
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    // No usable forecast yet (or every pool mid-spike): fall back to the
    // equal-distribution rotation.
    const MarketKey choice = RoundRobin();
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (candidates_[i] == choice) {
        ++placements_[i];
        break;
      }
    }
    ++total_placements_;
    return choice;
  }
  // Place where the gap between target share (inverse-forecast weight) and
  // actual share is largest, counting the VM about to be placed.
  size_t best = 0;
  double best_deficit = -std::numeric_limits<double>::infinity();
  const double next_total = static_cast<double>(total_placements_ + 1);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const double target = weights[i] / total_weight;
    const double actual = static_cast<double>(placements_[i]) / next_total;
    const double deficit = target - actual;
    if (deficit > best_deficit) {
      best_deficit = deficit;
      best = i;
    }
  }
  ++placements_[best];
  ++total_placements_;
  return candidates_[best];
}

// --- Registration ------------------------------------------------------------

namespace {

bool ExpectParams(const StrategySpec& spec, size_t min_params,
                  size_t max_params, std::string* error) {
  if (spec.params.size() < min_params || spec.params.size() > max_params) {
    if (error != nullptr) {
      *error = "strategy '" + spec.name + "' takes " +
               (min_params == max_params
                    ? std::to_string(min_params)
                    : std::to_string(min_params) + ".." +
                          std::to_string(max_params)) +
               " parameter(s), got " + std::to_string(spec.params.size());
    }
    return false;
  }
  return true;
}

}  // namespace

void RegisterBuiltinStrategies(PolicyRegistry& registry) {
  registry.RegisterBid(
      "on-demand",
      [](const StrategySpec& spec,
         std::string* error) -> std::unique_ptr<BidStrategy> {
        if (!ExpectParams(spec, 0, 0, error)) {
          return nullptr;
        }
        return std::make_unique<FixedBidStrategy>(spec, /*multiple=*/false, 1.0);
      });
  registry.RegisterBid(
      "multiple",
      [](const StrategySpec& spec,
         std::string* error) -> std::unique_ptr<BidStrategy> {
        if (!ExpectParams(spec, 1, 1, error)) {
          return nullptr;
        }
        const double k = spec.params[0];
        if (!(k >= 1.0)) {
          if (error != nullptr) {
            *error = "multiple: k must be >= 1 (got " + std::to_string(k) + ")";
          }
          return nullptr;
        }
        return std::make_unique<FixedBidStrategy>(spec, /*multiple=*/true, k);
      });
  registry.RegisterBid(
      "adaptive",
      [](const StrategySpec& spec,
         std::string* error) -> std::unique_ptr<BidStrategy> {
        if (!ExpectParams(spec, 1, 3, error)) {
          return nullptr;
        }
        const double k0 = spec.params[0];
        const double step = spec.params.size() > 1 ? spec.params[1] : 0.5;
        const double target = spec.params.size() > 2 ? spec.params[2] : 1.0;
        if (!(k0 >= AdaptiveBidStrategy::kMinMultiple &&
              k0 <= AdaptiveBidStrategy::kMaxMultiple)) {
          if (error != nullptr) {
            *error = "adaptive: k0 must be in [1, 8] (got " +
                     std::to_string(k0) + ")";
          }
          return nullptr;
        }
        if (!(step > 0.0) || !(target >= 0.0)) {
          if (error != nullptr) {
            *error = "adaptive: step must be > 0 and target >= 0";
          }
          return nullptr;
        }
        return std::make_unique<AdaptiveBidStrategy>(spec, k0, step, target);
      });

  const auto register_round_robin = [&registry](const std::string& name,
                                                size_t pools) {
    registry.RegisterPool(
        name, pools,
        [pools](const StrategySpec& spec, const PoolStrategyInit& init,
                std::string* error) -> std::unique_ptr<PoolSelectionStrategy> {
          if (!ExpectParams(spec, 0, 0, error)) {
            return nullptr;
          }
          return std::make_unique<RoundRobinPool>(spec, init, pools);
        });
  };
  register_round_robin("1p-m", 1);
  register_round_robin("2p-ml", 2);
  register_round_robin("4p-ed", 4);

  registry.RegisterPool(
      "4p-cost", 4,
      [](const StrategySpec& spec, const PoolStrategyInit& init,
         std::string* error) -> std::unique_ptr<PoolSelectionStrategy> {
        if (!ExpectParams(spec, 0, 0, error)) {
          return nullptr;
        }
        return std::make_unique<CostWeightedPool>(spec, init);
      });
  registry.RegisterPool(
      "4p-st", 4,
      [](const StrategySpec& spec, const PoolStrategyInit& init,
         std::string* error) -> std::unique_ptr<PoolSelectionStrategy> {
        if (!ExpectParams(spec, 0, 0, error)) {
          return nullptr;
        }
        return std::make_unique<StabilityWeightedPool>(spec, init);
      });
  registry.RegisterPool(
      "greedy", 4,
      [](const StrategySpec& spec, const PoolStrategyInit& init,
         std::string* error) -> std::unique_ptr<PoolSelectionStrategy> {
        if (!ExpectParams(spec, 0, 0, error)) {
          return nullptr;
        }
        return std::make_unique<GreedyCheapestPool>(spec, init);
      });
  registry.RegisterPool(
      "stable", 4,
      [](const StrategySpec& spec, const PoolStrategyInit& init,
         std::string* error) -> std::unique_ptr<PoolSelectionStrategy> {
        if (!ExpectParams(spec, 0, 0, error)) {
          return nullptr;
        }
        return std::make_unique<StabilityFirstPool>(spec, init);
      });
  registry.RegisterPool(
      "index-track", 4,
      [](const StrategySpec& spec, const PoolStrategyInit& init,
         std::string* error) -> std::unique_ptr<PoolSelectionStrategy> {
        if (!ExpectParams(spec, 0, 1, error)) {
          return nullptr;
        }
        const double alpha = spec.params.empty() ? 0.2 : spec.params[0];
        if (!(alpha > 0.0 && alpha <= 1.0)) {
          if (error != nullptr) {
            *error = "index-track: alpha must be in (0, 1] (got " +
                     std::to_string(alpha) + ")";
          }
          return nullptr;
        }
        return std::make_unique<IndexTrackingPool>(spec, init, alpha);
      });
}

}  // namespace spotcheck

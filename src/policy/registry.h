// String-keyed registry of bidding and pool-selection strategies.
//
// Benches, the CLI, and the evaluation harness refer to strategies by spec
// string ("bid=multiple:1.5,map=4p-cost"); the registry turns validated
// specs into strategy instances. Built-in families (the paper's Table-2
// policies plus the adaptive-bid and index-tracking families) register
// themselves in the singleton's constructor; tests can register additional
// strategies at runtime.
//
// The singleton is shared across grid workers, so lookups are mutex-guarded;
// created strategies are per-cell and unsynchronized.

#ifndef SRC_POLICY_REGISTRY_H_
#define SRC_POLICY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/policy/policy_spec.h"
#include "src/policy/strategy.h"

namespace spotcheck {

// Everything a pool strategy factory needs besides its spec: the nested VM
// type whose family ladder defines the candidate pools, the zones the ladder
// is replicated into, and the seeded Rng stream for weighted draws.
struct PoolStrategyInit {
  InstanceType nested_type = InstanceType::kM3Medium;
  std::vector<AvailabilityZone> zones{AvailabilityZone{0}};
  Rng rng{0};
};

// Host-type pools that can carry a `nested` VM: the nested type itself plus
// progressively larger same-family types (slicing targets), in catalog
// (size) order, clamped to `pools` entries and replicated per zone. For
// m3.medium with pools=4 this is exactly Table 2's
// {m3.medium, m3.large, m3.xlarge, m3.2xlarge} ladder.
std::vector<MarketKey> PoolCandidates(size_t pools, InstanceType nested,
                                      const std::vector<AvailabilityZone>& zones);

class PolicyRegistry {
 public:
  using BidFactory = std::function<std::unique_ptr<BidStrategy>(
      const StrategySpec&, std::string* error)>;
  using PoolFactory = std::function<std::unique_ptr<PoolSelectionStrategy>(
      const StrategySpec&, const PoolStrategyInit&, std::string* error)>;

  static PolicyRegistry& Instance();

  void RegisterBid(const std::string& name, BidFactory factory);
  // `ladder_pools` is how many family-ladder types the strategy spans per
  // zone (1 for 1p-m, 2 for 2p-ml, 4 for the four-pool strategies); it
  // drives CandidatesFor so trace prewarm and market materialization agree
  // with the strategy's own candidate list.
  void RegisterPool(const std::string& name, size_t ladder_pools,
                    PoolFactory factory);

  bool HasBid(const std::string& name) const;
  bool HasPool(const std::string& name) const;
  std::vector<std::string> BidNames() const;
  std::vector<std::string> PoolNames() const;

  // Instantiate; null + `error` on unknown name or bad parameters.
  std::unique_ptr<BidStrategy> CreateBid(const StrategySpec& spec,
                                         std::string* error) const;
  std::unique_ptr<PoolSelectionStrategy> CreatePool(const StrategySpec& spec,
                                                    const PoolStrategyInit& init,
                                                    std::string* error) const;

  // The candidate markets CreatePool(spec, ...) would select from, without
  // instantiating the strategy: what the trace prewarm and the controller's
  // market materialization enumerate. Empty + `error` on unknown name.
  std::vector<MarketKey> CandidatesFor(const StrategySpec& map_spec,
                                       InstanceType nested,
                                       const std::vector<AvailabilityZone>& zones,
                                       std::string* error) const;

 private:
  PolicyRegistry();  // registers the built-in families

  struct PoolEntry {
    size_t ladder_pools = 1;
    PoolFactory factory;
  };

  mutable std::mutex mu_;
  std::map<std::string, BidFactory> bids_;
  std::map<std::string, PoolEntry> pools_;
};

}  // namespace spotcheck

#endif  // SRC_POLICY_REGISTRY_H_

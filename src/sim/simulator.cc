#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace spotcheck {

// Calendar-queue invariants (every method below preserves all of them):
//   I1  Every queued event lives either in its ring bucket
//       (abs = when.us >> width_log2_, bucket abs & kBucketMask, with
//       ring_base_abs_ <= abs < ring_base_abs_ + kNumBuckets) or in
//       overflow_.
//   I2  Every ring event orders strictly before every overflow event by
//       (when, seq). InsertEvent enforces this by diverting an in-window
//       event to overflow when it would not precede overflow_min_; Wrap()
//       re-establishes it by draining a prefix of the ladder.
//       Consequence: the global minimum is always in the ring whenever the
//       ring is non-empty, so pop never compares against the ladder.
//   I3  No queued ring event has abs < scan_abs_ (inserts move scan_abs_
//       backward; pops advance it over empty buckets).
//   I4  A bucket with bucket_sorted_ set is sorted descending by
//       (when, seq); the scan sorts a bucket on first contact and inserts
//       keep sorted buckets sorted, so the active bucket pops from back().
//   I5  overflow_[0 .. overflow_sorted_n_) is sorted descending; the tail
//       is unsorted appends. overflow_min_ is the ladder minimum whenever
//       the ladder is non-empty.
//   I6  seq is assigned in scheduling order (PushEvent), so ascending
//       (when, seq) pop order is exactly the old heap's order and results
//       are bit-identical.

Simulator::Simulator(MetricsRegistry* metrics, SpanTracer* tracer,
                     std::pmr::memory_resource* memory)
    : memory_(memory != nullptr ? memory : std::pmr::get_default_resource()),
      buckets_(static_cast<size_t>(kNumBuckets), memory_),
      bucket_sorted_(static_cast<size_t>(kNumBuckets), 1),
      overflow_(memory_),
      slots_(memory_),
      free_slots_(memory_),
      tracer_(tracer) {
  if (metrics != nullptr) {
    events_scheduled_metric_ = &metrics->Counter("sim.events_scheduled");
    events_fired_metric_ = &metrics->Counter("sim.events_fired");
    events_cancelled_metric_ = &metrics->Counter("sim.events_cancelled");
    calendar_wraps_metric_ = &metrics->Counter("sim.calendar.wraps");
    heap_depth_metric_ = &metrics->Gauge("sim.heap_depth");
  }
  if (tracer_ != nullptr) {
    sim_track_ = tracer_->Track("sim");
    dispatch_sample_interval_ = tracer_->config().sim_event_sample_interval;
  }
}

uint32_t Simulator::AllocSlot(EventCallback callback) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slots_.emplace_back();
    slot = static_cast<uint32_t>(slots_.size());
  }
  Slot& s = slots_[slot - 1];
  s.callback = std::move(callback);
  s.period = SimDuration::Zero();
  s.live = true;
  s.cancelled = false;
  s.periodic = false;
  return slot;
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot - 1];
  ++s.generation;  // Invalidate every handle issued under the old generation.
  s.callback = EventCallback();
  s.live = false;
  s.cancelled = false;
  s.periodic = false;
  free_slots_.push_back(slot);
}

void Simulator::OverflowAppend(const QueuedEvent& ev) {
  if (overflow_.empty() || Earlier(ev, overflow_min_)) {
    overflow_min_ = ev;
  }
  overflow_.push_back(ev);  // lands in the unsorted tail (I5)
  ProfileAdd(profiler_, ProfileStat::kOverflowSpills);
}

// Rare slow path: an insert targets a bucket below the window start (the
// window jumped forward during a Wrap(), then the clock was rolled back by
// a RunUntil deadline and something scheduled into the gap). Slide the
// window start back to `abs`; bucket positions (abs & mask) do not depend
// on ring_base_abs_, so surviving events stay put and only events now
// beyond the shortened window move to the ladder.
void Simulator::RebaseRingTo(int64_t abs) {
  const int64_t new_end = abs + kNumBuckets;
  if (ring_count_ > 0) {
    for (Bucket& bucket : buckets_) {
      if (bucket.empty()) {
        continue;
      }
      std::erase_if(bucket, [&](const QueuedEvent& ev) {
        if (BucketAbs(ev.when) >= new_end) {
          OverflowAppend(ev);
          --ring_count_;
          return true;
        }
        return false;
      });
    }
  }
  ring_base_abs_ = abs;
  scan_abs_ = abs;
  ProfileAdd(profiler_, ProfileStat::kRingRebases);
}

void Simulator::InsertEvent(const QueuedEvent& ev) {
  // I2: anything that would not run before the ladder minimum belongs in
  // the ladder, even if its bucket is inside the window.
  if (!overflow_.empty() && !Earlier(ev, overflow_min_)) {
    OverflowAppend(ev);
    return;
  }
  const int64_t abs = BucketAbs(ev.when);
  if (abs >= ring_base_abs_ + kNumBuckets) {
    OverflowAppend(ev);
    return;
  }
  if (abs < ring_base_abs_) {
    RebaseRingTo(abs);
  }
  const size_t index = static_cast<size_t>(abs & kBucketMask);
  Bucket& bucket = buckets_[index];
  if (bucket_sorted_[index]) {
    // Keep a sorted bucket sorted (I4) only while that is cheap: insertion
    // cost is the number of tail elements shifted, so bound it. Imminent
    // events (the cascade-at-now pattern) sit near the back and stay O(1);
    // anything deeper -- e.g. bulk pre-loading a crowded bucket, which
    // would otherwise go quadratic -- degrades the bucket to unsorted and
    // is re-sorted once when the scan reaches it.
    const auto pos = std::lower_bound(
        bucket.begin(), bucket.end(), ev,
        [](const QueuedEvent& a, const QueuedEvent& b) { return Earlier(b, a); });
    if (bucket.end() - pos <= 16) {
      bucket.insert(pos, ev);
    } else {
      bucket.push_back(ev);
      bucket_sorted_[index] = 0;
      ProfileAdd(profiler_, ProfileStat::kBucketDegrades);
    }
  } else {
    bucket.push_back(ev);
  }
  ++ring_count_;
  ProfileAdd(profiler_, ProfileStat::kRingInserts);
  if (abs < scan_abs_) {
    scan_abs_ = abs;  // I3
  }
}

// Sorts [first, last) descending by (when, seq). The dominant producer of a
// large unsorted tail is market attachment, which appends each price trace as
// one long time-ascending run, so the tail is typically a few dozen runs that
// introsort cannot exploit. Detect maximal runs, reverse the ascending ones,
// and merge pairwise -- O(n log k) for k runs -- falling back to plain sort
// when the tail is genuinely unordered. The comparator is a strict total
// order (seq is unique), so every correct sort yields the same permutation.
void Simulator::SortTail(OverflowIter first, OverflowIter last,
                         EventCostProfiler* profiler) {
  const auto desc = [](const QueuedEvent& a, const QueuedEvent& b) {
    return Earlier(b, a);
  };
  const size_t n = static_cast<size_t>(last - first);
  if (n < 256) {
    std::sort(first, last, desc);
    return;
  }
  // Run boundaries: bounds[i]..bounds[i+1] is sorted descending.
  std::vector<OverflowIter> bounds;
  bounds.push_back(first);
  for (OverflowIter it = first; it != last;) {
    OverflowIter run_end = it + 1;
    if (run_end != last) {
      const bool run_desc = desc(*it, *run_end);
      ++run_end;
      while (run_end != last && desc(*(run_end - 1), *run_end) == run_desc) {
        ++run_end;
      }
      if (!run_desc) {
        std::reverse(it, run_end);
      }
    }
    bounds.push_back(run_end);
    it = run_end;
    if (bounds.size() > 1 + n / 64) {
      // Too fragmented for merging to win (the reversals above are harmless
      // to re-sort).
      ProfileAdd(profiler, ProfileStat::kLadderFallbackSorts);
      std::sort(first, last, desc);
      return;
    }
  }
  // Merge adjacent run pairs until one remains.
  while (bounds.size() > 2) {
    std::vector<OverflowIter> next;
    next.push_back(bounds[0]);
    size_t i = 1;
    while (i + 1 < bounds.size()) {
      std::inplace_merge(next.back(), bounds[i], bounds[i + 1], desc);
      next.push_back(bounds[i + 1]);
      i += 2;
    }
    if (i < bounds.size()) {
      next.push_back(bounds[i]);
    }
    bounds = std::move(next);
  }
}

// The ring is empty and the ladder is not: advance the window to the
// ladder's minimum and drain the in-window prefix into buckets. Bucket
// width is retuned here -- and only here -- from the density of the
// upcoming chunk, so retuning never remaps a queued ring event.
void Simulator::Wrap() {
  ProfileScope wrap_scope(profiler_, ProfileCategory::kCalendarWrap);
  const int width_before = width_log2_;
  if (overflow_sorted_n_ < overflow_.size()) {
    const auto desc = [](const QueuedEvent& a, const QueuedEvent& b) {
      return Earlier(b, a);
    };
    const auto mid =
        overflow_.begin() + static_cast<int64_t>(overflow_sorted_n_);
    ProfileAdd(profiler_, ProfileStat::kLadderMergedEvents,
               static_cast<int64_t>(overflow_.size() - overflow_sorted_n_));
    // kLadderMerge nests inside kCalendarWrap: wrap time includes merge
    // time; the merge category isolates the sort-vs-drain split.
    ProfileScope merge_scope(profiler_, ProfileCategory::kLadderMerge);
    SortTail(mid, overflow_.end(), profiler_);
    std::inplace_merge(overflow_.begin(), mid, overflow_.end(), desc);
    overflow_sorted_n_ = overflow_.size();
  }

  // Width policy: spread the next ~2*kNumBuckets events over the ring
  // (target occupancy ~2 events/bucket). Clamped so degenerate spans
  // (everything at one instant / centuries apart) stay sane.
  const QueuedEvent min_ev = overflow_.back();
  const size_t lookahead =
      std::min(overflow_.size(), static_cast<size_t>(2 * kNumBuckets));
  const int64_t span =
      overflow_[overflow_.size() - lookahead].when.micros() -
      min_ev.when.micros();
  if (span > 0) {
    const uint64_t per_bucket =
        static_cast<uint64_t>(span) / static_cast<uint64_t>(kNumBuckets) + 1;
    width_log2_ = std::clamp(static_cast<int>(std::bit_width(per_bucket)),
                             kMinWidthLog2, kMaxWidthLog2);
  }
  if (width_log2_ != width_before) {
    ProfileAdd(profiler_, ProfileStat::kCalendarRetunes);
  }

  ring_base_abs_ = BucketAbs(min_ev.when);
  scan_abs_ = ring_base_abs_;
  const int64_t window_end = ring_base_abs_ + kNumBuckets;
  while (!overflow_.empty()) {
    const QueuedEvent& ev = overflow_.back();
    const int64_t abs = BucketAbs(ev.when);
    if (abs >= window_end) {
      break;
    }
    const size_t index = static_cast<size_t>(abs & kBucketMask);
    buckets_[index].push_back(ev);
    bucket_sorted_[index] = 0;  // drained ascending; sort lazily on contact
    ++ring_count_;
    overflow_.pop_back();
  }
  overflow_sorted_n_ = overflow_.size();
  if (!overflow_.empty()) {
    overflow_min_ = overflow_.back();
  }
  MetricInc(calendar_wraps_metric_);
}

const Simulator::QueuedEvent* Simulator::FindEarliest() {
  if (queued_count() == 0) {
    return nullptr;
  }
  if (ring_count_ == 0) {
    Wrap();  // ladder is non-empty; guarantees ring_count_ > 0
  }
  // I2+I3: the global minimum is in the first non-empty bucket at or above
  // scan_abs_; ring_count_ > 0 bounds the scan inside the window.
  size_t index = static_cast<size_t>(scan_abs_ & kBucketMask);
  while (buckets_[index].empty()) {
    ++scan_abs_;
    index = static_cast<size_t>(scan_abs_ & kBucketMask);
  }
  Bucket& bucket = buckets_[index];
  if (!bucket_sorted_[index]) {
    ProfileScope sort_scope(profiler_, ProfileCategory::kLazyBucketSort);
    ProfileAdd(profiler_, ProfileStat::kLazySortedEvents,
               static_cast<int64_t>(bucket.size()));
    std::sort(bucket.begin(), bucket.end(),
              [](const QueuedEvent& a, const QueuedEvent& b) {
                return Earlier(b, a);
              });
    bucket_sorted_[index] = 1;
  }
  return &bucket.back();
}

Simulator::QueuedEvent Simulator::PopEarliest() {
  Bucket& bucket = buckets_[static_cast<size_t>(scan_abs_ & kBucketMask)];
  const QueuedEvent ev = bucket.back();
  bucket.pop_back();
  --ring_count_;
  return ev;
}

void Simulator::PushEvent(SimTime when, uint32_t slot, uint32_t generation) {
  InsertEvent(QueuedEvent{when, next_seq_++, slot, generation});
  MetricInc(events_scheduled_metric_);
  MetricSet(heap_depth_metric_, static_cast<double>(queued_count()));
}

uint32_t Simulator::RegisterReplayStream(StreamFireFn fire, void* ctx) {
  streams_.push_back(ReplayStream{fire, ctx});
  return static_cast<uint32_t>(streams_.size() - 1);
}

void Simulator::ScheduleStreamEvent(SimTime when, uint32_t stream,
                                    uint32_t index) {
  if (when < now_) {
    when = now_;
  }
  PushEvent(when, kStreamBit | stream, index);
}

EventHandle Simulator::ScheduleAt(SimTime when, EventCallback callback) {
  if (when < now_) {
    when = now_;
  }
  const uint32_t slot = AllocSlot(std::move(callback));
  const uint32_t generation = slots_[slot - 1].generation;
  PushEvent(when, slot, generation);
  return EventHandle(slot, generation);
}

EventHandle Simulator::ScheduleAfter(SimDuration delay, EventCallback callback) {
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventHandle Simulator::SchedulePeriodic(SimDuration period, EventCallback callback) {
  // A periodic task keeps its slot (and callback) alive across pops; RunOne
  // re-arms the next tick under the same slot and generation, so the single
  // returned handle cancels all future ticks.
  const uint32_t slot = AllocSlot(std::move(callback));
  Slot& s = slots_[slot - 1];
  s.period = period;
  s.periodic = true;
  const uint32_t generation = s.generation;
  PushEvent(now_ + period, slot, generation);
  return EventHandle(slot, generation);
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ > slots_.size()) {
    return;
  }
  Slot& s = slots_[handle.slot_ - 1];
  // A stale handle (event already ran -> generation bumped) or a double
  // cancel is an exact no-op, so queued_count() - cancelled_pending_ stays
  // truthful.
  if (!s.live || s.generation != handle.generation_ || s.cancelled) {
    return;
  }
  s.cancelled = true;
  ++cancelled_pending_;
  MetricInc(events_cancelled_metric_);
}

void Simulator::RunOne() {
  FindEarliest();  // positions scan_abs_ (O(1) if RunUntil just peeked)
  const QueuedEvent ev = PopEarliest();
  if (ev.slot & kStreamBit) {
    // Stream events have no slot and cannot be cancelled; the fire is
    // derived from (stream, point index).
    now_ = ev.when;
    ++events_executed_;
    MetricInc(events_fired_metric_);
    if (tracer_ != nullptr && dispatch_sample_interval_ > 0 &&
        events_executed_ % dispatch_sample_interval_ == 0) {
      const SpanId mark =
          tracer_->Instant(now_, "sim.dispatch", "sim", sim_track_);
      tracer_->AttrNum(mark, "events_executed",
                       static_cast<double>(events_executed_));
    }
    {
      ProfileScope scope(profiler_, ProfileCategory::kDispatchStream);
      const ReplayStream& stream = streams_[ev.slot & ~kStreamBit];
      stream.fire(stream.ctx, ev.generation);
    }
    if (timeseries_ != nullptr) {
      timeseries_->SampleIfDue(now_);
    }
    return;
  }
  Slot& s = slots_[ev.slot - 1];
  if (s.cancelled) {
    --cancelled_pending_;
    ReleaseSlot(ev.slot);
    return;
  }
  now_ = ev.when;
  ++events_executed_;
  MetricInc(events_fired_metric_);
  if (tracer_ != nullptr && dispatch_sample_interval_ > 0 &&
      events_executed_ % dispatch_sample_interval_ == 0) {
    const SpanId mark =
        tracer_->Instant(now_, "sim.dispatch", "sim", sim_track_);
    tracer_->AttrNum(mark, "events_executed",
                     static_cast<double>(events_executed_));
  }
  // The callback is moved out before invocation: it may schedule new events
  // (growing or reusing the slot pool, which would invalidate in-place
  // storage) or Cancel() its own now-stale handle (a no-op).
  EventCallback callback = std::move(s.callback);
  if (s.periodic) {
    ProfileScope scope(profiler_, ProfileCategory::kDispatchPeriodic);
    PushEvent(ev.when + s.period, ev.slot, ev.generation);
    callback();
    // Re-lookup: the pool may have reallocated during the callback. The slot
    // is still this task's (its tick is queued), even if just cancelled.
    slots_[ev.slot - 1].callback = std::move(callback);
  } else {
    ProfileScope scope(profiler_, ProfileCategory::kDispatchCallback);
    ReleaseSlot(ev.slot);
    callback();
  }
  // Sampled AFTER the event fully executed (and outside the profile scope):
  // the recorder reads post-event state and never interacts with the queue,
  // so it cannot perturb seq assignment or same-timestamp interleaving.
  if (timeseries_ != nullptr) {
    timeseries_->SampleIfDue(now_);
  }
}

int64_t Simulator::Run() {
  int64_t ran = 0;
  while (queued_count() > 0) {
    const int64_t before = events_executed_;
    RunOne();
    ran += events_executed_ - before;
  }
  return ran;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t ran = 0;
  while (true) {
    const QueuedEvent* next = FindEarliest();
    if (next == nullptr || next->when > deadline) {
      break;
    }
    const int64_t before = events_executed_;
    RunOne();
    ran += events_executed_ - before;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return ran;
}

void Simulator::RegisterTelemetry(TimeSeriesRecorder& ts) {
  ts.AddSeries("sim.queue_depth",
               [this] { return static_cast<double>(pending_events()); });
  ts.AddSeries("sim.ring_events",
               [this] { return static_cast<double>(ring_count_); });
  ts.AddSeries("sim.ladder_events",
               [this] { return static_cast<double>(overflow_.size()); });
  ts.AddSeries("sim.events_executed",
               [this] { return static_cast<double>(events_executed_); });
}

bool Simulator::Step() {
  while (queued_count() > 0) {
    const int64_t before = events_executed_;
    RunOne();
    if (events_executed_ > before) {
      return true;
    }
  }
  return false;
}

}  // namespace spotcheck

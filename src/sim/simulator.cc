#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace spotcheck {

Simulator::Simulator(MetricsRegistry* metrics, SpanTracer* tracer)
    : tracer_(tracer) {
  if (metrics != nullptr) {
    events_scheduled_metric_ = &metrics->Counter("sim.events_scheduled");
    events_fired_metric_ = &metrics->Counter("sim.events_fired");
    events_cancelled_metric_ = &metrics->Counter("sim.events_cancelled");
    heap_depth_metric_ = &metrics->Gauge("sim.heap_depth");
  }
  if (tracer_ != nullptr) {
    sim_track_ = tracer_->Track("sim");
    dispatch_sample_interval_ = tracer_->config().sim_event_sample_interval;
  }
}

uint32_t Simulator::AllocSlot(EventCallback callback) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slots_.emplace_back();
    slot = static_cast<uint32_t>(slots_.size());
  }
  Slot& s = slots_[slot - 1];
  s.callback = std::move(callback);
  s.period = SimDuration::Zero();
  s.live = true;
  s.cancelled = false;
  s.periodic = false;
  return slot;
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot - 1];
  ++s.generation;  // Invalidate every handle issued under the old generation.
  s.callback = EventCallback();
  s.live = false;
  s.cancelled = false;
  s.periodic = false;
  free_slots_.push_back(slot);
}

// 4-ary layout: children of node i are 4i+1 .. 4i+4. Half the levels of a
// binary heap, and sibling groups sit in adjacent cache lines.
void Simulator::SiftUp(size_t i) {
  const QueuedEvent ev = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Earlier(ev, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

void Simulator::SiftDown(size_t i) {
  const QueuedEvent ev = heap_[i];
  const size_t n = heap_.size();
  while (true) {
    const size_t first_child = i * 4 + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], ev)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = ev;
}

void Simulator::PopHeapTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

void Simulator::PushEvent(SimTime when, uint32_t slot, uint32_t generation) {
  heap_.push_back(QueuedEvent{when, next_seq_++, slot, generation});
  SiftUp(heap_.size() - 1);
  MetricInc(events_scheduled_metric_);
  MetricSet(heap_depth_metric_, static_cast<double>(heap_.size()));
}

EventHandle Simulator::ScheduleAt(SimTime when, EventCallback callback) {
  if (when < now_) {
    when = now_;
  }
  const uint32_t slot = AllocSlot(std::move(callback));
  const uint32_t generation = slots_[slot - 1].generation;
  PushEvent(when, slot, generation);
  return EventHandle(slot, generation);
}

EventHandle Simulator::ScheduleAfter(SimDuration delay, EventCallback callback) {
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventHandle Simulator::SchedulePeriodic(SimDuration period, EventCallback callback) {
  // A periodic task keeps its slot (and callback) alive across pops; RunOne
  // re-arms the next tick under the same slot and generation, so the single
  // returned handle cancels all future ticks.
  const uint32_t slot = AllocSlot(std::move(callback));
  Slot& s = slots_[slot - 1];
  s.period = period;
  s.periodic = true;
  const uint32_t generation = s.generation;
  PushEvent(now_ + period, slot, generation);
  return EventHandle(slot, generation);
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ > slots_.size()) {
    return;
  }
  Slot& s = slots_[handle.slot_ - 1];
  // A stale handle (event already ran -> generation bumped) or a double
  // cancel is an exact no-op, so heap_.size() - cancelled_pending_ stays
  // truthful.
  if (!s.live || s.generation != handle.generation_ || s.cancelled) {
    return;
  }
  s.cancelled = true;
  ++cancelled_pending_;
  MetricInc(events_cancelled_metric_);
}

void Simulator::RunOne() {
  const QueuedEvent ev = heap_.front();
  PopHeapTop();
  Slot& s = slots_[ev.slot - 1];
  if (s.cancelled) {
    --cancelled_pending_;
    ReleaseSlot(ev.slot);
    return;
  }
  now_ = ev.when;
  ++events_executed_;
  MetricInc(events_fired_metric_);
  if (tracer_ != nullptr && dispatch_sample_interval_ > 0 &&
      events_executed_ % dispatch_sample_interval_ == 0) {
    const SpanId mark =
        tracer_->Instant(now_, "sim.dispatch", "sim", sim_track_);
    tracer_->AttrNum(mark, "events_executed",
                     static_cast<double>(events_executed_));
  }
  // The callback is moved out before invocation: it may schedule new events
  // (growing or reusing the slot pool, which would invalidate in-place
  // storage) or Cancel() its own now-stale handle (a no-op).
  EventCallback callback = std::move(s.callback);
  if (s.periodic) {
    PushEvent(ev.when + s.period, ev.slot, ev.generation);
    callback();
    // Re-lookup: the pool may have reallocated during the callback. The slot
    // is still this task's (its tick is queued), even if just cancelled.
    slots_[ev.slot - 1].callback = std::move(callback);
  } else {
    ReleaseSlot(ev.slot);
    callback();
  }
}

int64_t Simulator::Run() {
  int64_t ran = 0;
  while (!heap_.empty()) {
    const int64_t before = events_executed_;
    RunOne();
    ran += events_executed_ - before;
  }
  return ran;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t ran = 0;
  while (!heap_.empty() && heap_.front().when <= deadline) {
    const int64_t before = events_executed_;
    RunOne();
    ran += events_executed_ - before;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return ran;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    const int64_t before = events_executed_;
    RunOne();
    if (events_executed_ > before) {
      return true;
    }
  }
  return false;
}

}  // namespace spotcheck

#include "src/sim/simulator.h"

#include <memory>
#include <utility>

namespace spotcheck {

EventHandle Simulator::ScheduleAt(SimTime when, EventCallback callback) {
  if (when < now_) {
    when = now_;
  }
  const EventId id = event_ids_.Next();
  queue_.push(QueuedEvent{when, next_seq_++, id, std::move(callback)});
  return EventHandle(id);
}

EventHandle Simulator::ScheduleAfter(SimDuration delay, EventCallback callback) {
  return ScheduleAt(now_ + delay, std::move(callback));
}

EventHandle Simulator::SchedulePeriodic(SimDuration period, EventCallback callback) {
  // The periodic task re-arms itself under a stable EventId so a single
  // handle cancels all future ticks. State (including the recursive tick
  // closure) is shared between ticks via shared_ptr.
  struct PeriodicState {
    SimDuration period;
    EventCallback callback;
    EventId id;
    // Builds the closure for one tick; each queued tick holds a strong
    // reference to the state, and the state itself holds none (no cycle).
    static std::function<void()> MakeTick(Simulator* sim,
                                          std::shared_ptr<PeriodicState> self) {
      return [sim, self = std::move(self)]() {
        // Cancellation of the stable id is checked (and consumed) by RunOne()
        // before this closure runs, so reaching here means the task is live.
        self->callback();
        sim->queue_.push(QueuedEvent{sim->now_ + self->period, sim->next_seq_++,
                                     self->id, MakeTick(sim, self)});
      };
    }
  };
  auto state = std::make_shared<PeriodicState>();
  state->period = period;
  state->callback = std::move(callback);
  state->id = event_ids_.Next();
  const EventId id = state->id;
  queue_.push(QueuedEvent{now_ + period, next_seq_++, id,
                          PeriodicState::MakeTick(this, std::move(state))});
  return EventHandle(id);
}

void Simulator::Cancel(EventHandle handle) {
  if (handle.valid()) {
    cancelled_.insert(handle.id_);
  }
}

void Simulator::RunOne() {
  QueuedEvent ev = queue_.top();
  queue_.pop();
  if (cancelled_.contains(ev.id)) {
    cancelled_.erase(ev.id);
    return;
  }
  now_ = ev.when;
  ++events_executed_;
  ev.callback();
}

int64_t Simulator::Run() {
  int64_t ran = 0;
  while (!queue_.empty()) {
    const int64_t before = events_executed_;
    RunOne();
    ran += events_executed_ - before;
  }
  return ran;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    const int64_t before = events_executed_;
    RunOne();
    ran += events_executed_ - before;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return ran;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    const int64_t before = events_executed_;
    RunOne();
    if (events_executed_ > before) {
      return true;
    }
  }
  return false;
}

}  // namespace spotcheck

// Discrete-event simulation kernel.
//
// The Simulator owns a virtual clock and an event queue. Components schedule
// callbacks at absolute or relative simulated times; Run()/RunUntil()/RunFor()
// drain the queue in timestamp order (FIFO among equal timestamps). Events
// can be cancelled via the handle returned at scheduling time. Everything is
// single-threaded and deterministic.
//
// Hot-path design (this kernel executes tens of millions of events per
// six-month evaluation):
//   - Callbacks are UniqueCallback (move-only, 48-byte inline storage), so
//     typical simulation closures never touch the heap.
//   - Event records are pooled: the callback lives in a reusable slot, and
//     the priority queue -- an implicit 4-ary heap over a flat std::vector
//     -- holds only a 24-byte {time, seq, slot, generation} record, so heap
//     sifts move small PODs instead of closures and traverse half the
//     levels of a binary heap.
//   - Cancellation is O(1) via generation-tagged slots: a handle names a
//     slot index plus the generation it was issued under, and Cancel() just
//     flips a bit after validating the generation. No hash probe per pop,
//     and stale handles (event already ran, double cancel) are rejected
//     exactly, so pending_events() accounting can never drift.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/sim/callback.h"

namespace spotcheck {

class MetricCounter;
class MetricGauge;
class MetricsRegistry;
class SpanTracer;

using EventCallback = UniqueCallback;

// Identifies a scheduled event for cancellation. Default-constructed handles
// are invalid and safe to Cancel(). Handles are cheap value types; a handle
// outliving its event is harmless (the generation tag makes it a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return slot_ != 0; }

 private:
  friend class Simulator;
  EventHandle(uint32_t slot, uint32_t generation)
      : slot_(slot), generation_(generation) {}
  uint32_t slot_ = 0;  // 1-based slot index; 0 means invalid.
  uint32_t generation_ = 0;
};

class Simulator {
 public:
  // `metrics`, when non-null, receives the kernel's counters
  // (sim.events_scheduled / fired / cancelled) and the peak heap depth
  // (sim.heap_depth). `tracer`, when non-null, gets a sampled "sim.dispatch"
  // instant every TraceConfig::sim_event_sample_interval executed events (a
  // heartbeat track for orienting in Perfetto, not a per-event log). Both are
  // purely observational and must outlive the simulator.
  explicit Simulator(MetricsRegistry* metrics = nullptr,
                     SpanTracer* tracer = nullptr);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `callback` to run at absolute time `when`. Scheduling in the
  // past (before Now()) runs the callback at Now().
  EventHandle ScheduleAt(SimTime when, EventCallback callback);
  EventHandle ScheduleAfter(SimDuration delay, EventCallback callback);

  // Schedules `callback` every `period`, starting one period from now. The
  // returned handle cancels the whole periodic task. `callback` receives no
  // arguments; query Now() for the tick time.
  EventHandle SchedulePeriodic(SimDuration period, EventCallback callback);

  // Cancels a pending event; no-op if the event already ran, was already
  // cancelled, or the handle is invalid.
  void Cancel(EventHandle handle);

  // Runs until the queue is empty. Returns the number of events executed.
  int64_t Run();
  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` (even if the queue empties earlier).
  int64_t RunUntil(SimTime deadline);
  int64_t RunFor(SimDuration duration) { return RunUntil(now_ + duration); }
  // Executes exactly one event if available; returns false on empty queue.
  bool Step();

  bool empty() const { return heap_.size() == cancelled_pending_; }
  size_t pending_events() const { return heap_.size() - cancelled_pending_; }
  int64_t events_executed() const { return events_executed_; }

 private:
  // The heap element: deliberately tiny (24 bytes) so sift-up/down moves
  // cheap PODs. The callback itself stays in the slot pool.
  struct QueuedEvent {
    SimTime when;
    uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    uint32_t slot;
    uint32_t generation;
  };
  // True iff `a` must run before `b`: earlier time, FIFO among equals.
  static bool Earlier(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }
  // One pooled record per live event (plus a free list of reusable ones).
  // `generation` advances every time the slot is released, invalidating
  // handles issued under earlier generations.
  struct Slot {
    EventCallback callback;
    SimDuration period;      // re-arm interval; meaningful iff periodic
    uint32_t generation = 0;
    bool live = false;       // a queued event currently references this slot
    bool cancelled = false;  // the queued event should be skipped when popped
    bool periodic = false;   // slot survives pops (re-armed on execution)
  };

  // Allocates a slot (1-based index) holding `callback`.
  uint32_t AllocSlot(EventCallback callback);
  // Releases `slot` for reuse, invalidating outstanding handles.
  void ReleaseSlot(uint32_t slot);
  void PushEvent(SimTime when, uint32_t slot, uint32_t generation);
  // Implicit 4-ary min-heap primitives over heap_.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopHeapTop();
  // Pops and runs the earliest event, skipping it if cancelled.
  // Precondition: !heap_.empty().
  void RunOne();

  SimTime now_;
  uint64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  std::vector<QueuedEvent> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t cancelled_pending_ = 0;  // cancelled events still sitting in heap_

  // Observability instruments; all null when built without a registry.
  MetricCounter* events_scheduled_metric_ = nullptr;
  MetricCounter* events_fired_metric_ = nullptr;
  MetricCounter* events_cancelled_metric_ = nullptr;
  MetricGauge* heap_depth_metric_ = nullptr;

  // Sampled dispatch tracing; tracer_ null when built without one. The track
  // id is stored raw (TraceTrackId is an alias we cannot forward-declare).
  SpanTracer* tracer_ = nullptr;
  uint32_t sim_track_ = 0;
  int64_t dispatch_sample_interval_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_SIM_SIMULATOR_H_

// Discrete-event simulation kernel.
//
// The Simulator owns a virtual clock and an event queue. Components schedule
// callbacks at absolute or relative simulated times; Run()/RunUntil()/RunFor()
// drain the queue in timestamp order (FIFO among equal timestamps). Events
// can be cancelled via the handle returned at scheduling time. Everything is
// single-threaded and deterministic.
//
// Hot-path design (this kernel executes tens of millions of events per
// six-month evaluation):
//   - Callbacks are UniqueCallback (move-only, 48-byte inline storage), so
//     typical simulation closures never touch the heap.
//   - Event records are pooled: the callback lives in a reusable slot, and
//     the queue holds only a 24-byte {time, seq, slot, generation} record.
//   - The queue is a calendar queue (Brown 1988) with an overflow ladder
//     instead of a heap: a power-of-two ring of time buckets covers a
//     sliding window of simulated time, so the near-future churn that
//     dominates the workload (timers, control-loop ticks, re-arms) inserts
//     and pops in O(1) instead of O(log n). Events beyond the window land
//     in an overflow array that is sorted once and drained bucket-window by
//     bucket-window as the clock advances ("wraps"), so the bulk
//     pre-scheduled price-change points are touched O(1) times each after
//     one cache-friendly sort -- not sifted through a multi-million-entry
//     heap. Bucket width is retuned at each wrap from the density of the
//     upcoming overflow chunk; retuning happens only while the ring is
//     empty, so no event ever needs remapping.
//   - Pop order is exactly ascending (time, seq) -- identical to the
//     previous heap -- so results are bit-identical: the calendar layout
//     affects performance only, never ordering.
//   - Cancellation is O(1) via generation-tagged slots: a handle names a
//     slot index plus the generation it was issued under, and Cancel() just
//     flips a bit after validating the generation. No hash probe per pop,
//     and stale handles (event already ran, double cancel) are rejected
//     exactly, so pending_events() accounting can never drift.
//   - All queue storage allocates from an optional std::pmr resource, so a
//     grid worker can hand each cell a private arena and keep allocator
//     traffic off the process-wide malloc locks.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "src/common/time.h"
#include "src/sim/callback.h"

namespace spotcheck {

class EventCostProfiler;
class MetricCounter;
class MetricGauge;
class MetricsRegistry;
class SpanTracer;
class TimeSeriesRecorder;

using EventCallback = UniqueCallback;

// Identifies a scheduled event for cancellation. Default-constructed handles
// are invalid and safe to Cancel(). Handles are cheap value types; a handle
// outliving its event is harmless (the generation tag makes it a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return slot_ != 0; }

 private:
  friend class Simulator;
  EventHandle(uint32_t slot, uint32_t generation)
      : slot_(slot), generation_(generation) {}
  uint32_t slot_ = 0;  // 1-based slot index; 0 means invalid.
  uint32_t generation_ = 0;
};

class Simulator {
 public:
  // `metrics`, when non-null, receives the kernel's counters
  // (sim.events_scheduled / fired / cancelled, sim.calendar.wraps) and the
  // queue depth gauge (sim.heap_depth). `tracer`, when non-null, gets a
  // sampled "sim.dispatch" instant every
  // TraceConfig::sim_event_sample_interval executed events (a heartbeat
  // track for orienting in Perfetto, not a per-event log). Both are purely
  // observational and must outlive the simulator. `memory`, when non-null,
  // backs every queue/slot container (per-cell arena; must outlive the
  // simulator); null uses the default resource.
  explicit Simulator(MetricsRegistry* metrics = nullptr,
                     SpanTracer* tracer = nullptr,
                     std::pmr::memory_resource* memory = nullptr);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `callback` to run at absolute time `when`. Scheduling in the
  // past (before Now()) runs the callback at Now().
  EventHandle ScheduleAt(SimTime when, EventCallback callback);
  EventHandle ScheduleAfter(SimDuration delay, EventCallback callback);

  // Schedules `callback` every `period`, starting one period from now. The
  // returned handle cancels the whole periodic task. `callback` receives no
  // arguments; query Now() for the tick time.
  EventHandle SchedulePeriodic(SimDuration period, EventCallback callback);

  // Cancels a pending event; no-op if the event already ran, was already
  // cancelled, or the handle is invalid.
  void Cancel(EventHandle handle);

  // --- Replay streams ------------------------------------------------------
  // A replay stream is a pre-known schedule of fires (e.g. a price trace
  // replay) whose action is derived from (stream, index) at dispatch, so the
  // queue holds no per-event callback or slot. Stream events share the
  // sequence counter with regular events -- same-timestamp interleaving is
  // exactly as if each point had been ScheduleAt()ed in the same program
  // order -- but cannot be cancelled (no handle is issued). `ctx` must stay
  // valid while stream events are pending.
  using StreamFireFn = void (*)(void* ctx, uint32_t index);
  uint32_t RegisterReplayStream(StreamFireFn fire, void* ctx);
  // Schedules stream point `index` at `when` (clamped to Now(), like
  // ScheduleAt).
  void ScheduleStreamEvent(SimTime when, uint32_t stream, uint32_t index);

  // Runs until the queue is empty. Returns the number of events executed.
  int64_t Run();
  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` (even if the queue empties earlier).
  int64_t RunUntil(SimTime deadline);
  int64_t RunFor(SimDuration duration) { return RunUntil(now_ + duration); }
  // Executes exactly one event if available; returns false on empty queue.
  bool Step();

  bool empty() const { return queued_count() == cancelled_pending_; }
  size_t pending_events() const { return queued_count() - cancelled_pending_; }
  int64_t events_executed() const { return events_executed_; }

  // --- flight recorder (both purely observational, both nullable) ----------
  // Attaches a sampled event-cost profiler: dispatch cost per event kind
  // plus the calendar-queue maintenance episodes (ladder merges, wraps,
  // lazy bucket sorts). Must outlive the simulator; null detaches.
  void set_profiler(EventCostProfiler* profiler) { profiler_ = profiler; }
  // Attaches a sim-time telemetry recorder, driven from the dispatch loop
  // (one integer compare per executed event -- never via scheduled events,
  // which would consume seq numbers and shift same-timestamp interleaving).
  // Must outlive the simulator; null detaches.
  void set_timeseries(TimeSeriesRecorder* timeseries) {
    timeseries_ = timeseries;
  }
  // Registers the kernel's queue-shape gauges on `ts` (depth, ring vs
  // ladder split). The recorder must then be attached via set_timeseries to
  // actually sample.
  void RegisterTelemetry(TimeSeriesRecorder& ts);

 private:
  // Ring geometry: 4096 buckets, width 2^width_log2_ microseconds each.
  // The window is therefore kNumBuckets * 2^width_log2_ us of simulated
  // time starting at ring_base_abs_ * 2^width_log2_.
  static constexpr int kNumBucketsLog2 = 12;
  static constexpr int64_t kNumBuckets = int64_t{1} << kNumBucketsLog2;
  static constexpr int64_t kBucketMask = kNumBuckets - 1;
  static constexpr int kMinWidthLog2 = 10;  // 1.024 ms
  static constexpr int kMaxWidthLog2 = 36;  // ~19 h (window then ~9 years)
  static constexpr int kInitialWidthLog2 = 20;  // ~1.05 s (window ~72 min)

  // The queue element: deliberately tiny (24 bytes) so bucket sorts and
  // ladder moves touch cheap PODs. The callback itself stays in the slot
  // pool.
  struct QueuedEvent {
    SimTime when;
    uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    uint32_t slot;
    uint32_t generation;
  };
  // True iff `a` must run before `b`: earlier time, FIFO among equals.
  static bool Earlier(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }
  // One pooled record per live event (plus a free list of reusable ones).
  // `generation` advances every time the slot is released, invalidating
  // handles issued under earlier generations.
  struct Slot {
    EventCallback callback;
    SimDuration period;      // re-arm interval; meaningful iff periodic
    uint32_t generation = 0;
    bool live = false;       // a queued event currently references this slot
    bool cancelled = false;  // the queued event should be skipped when popped
    bool periodic = false;   // slot survives pops (re-armed on execution)
  };

  using Bucket = std::pmr::vector<QueuedEvent>;

  size_t queued_count() const { return ring_count_ + overflow_.size(); }
  int64_t BucketAbs(SimTime when) const {
    return when.micros() >> width_log2_;
  }

  // Allocates a slot (1-based index) holding `callback`.
  uint32_t AllocSlot(EventCallback callback);
  // Releases `slot` for reuse, invalidating outstanding handles.
  void ReleaseSlot(uint32_t slot);
  void PushEvent(SimTime when, uint32_t slot, uint32_t generation);

  // Calendar-queue primitives (see the .cc for the invariants).
  void InsertEvent(const QueuedEvent& ev);
  void OverflowAppend(const QueuedEvent& ev);
  using OverflowIter = std::pmr::vector<QueuedEvent>::iterator;
  // Sorts an unsorted ladder tail descending, exploiting pre-sorted runs.
  // `profiler` (nullable) records fragmented-tail fallbacks to std::sort.
  static void SortTail(OverflowIter first, OverflowIter last,
                       EventCostProfiler* profiler);
  void RebaseRingTo(int64_t abs);
  void Wrap();
  // Points scan_abs_ at the bucket holding the earliest queued event
  // (wrapping the window forward if the ring is empty) and returns that
  // event, or nullptr if nothing is queued. Includes cancelled events --
  // they are discarded at pop, exactly like the old heap's top.
  const QueuedEvent* FindEarliest();
  // Removes the event FindEarliest() just returned.
  QueuedEvent PopEarliest();

  // Pops and runs the earliest event, skipping it if cancelled.
  // Precondition: queued_count() > 0.
  void RunOne();

  SimTime now_;
  uint64_t next_seq_ = 0;
  int64_t events_executed_ = 0;

  std::pmr::memory_resource* memory_;

  // --- calendar ring ---
  std::pmr::vector<Bucket> buckets_;  // bucket for abs index a: a & kBucketMask
  // Per-bucket "sorted descending by (when, seq)" flag; buckets fill
  // unsorted and are sorted lazily when the scan reaches them, after which
  // inserts keep them sorted (pop is then back()).
  std::vector<uint8_t> bucket_sorted_;
  int width_log2_ = kInitialWidthLog2;
  int64_t ring_base_abs_ = 0;  // absolute bucket index of the window start
  int64_t scan_abs_ = 0;       // no queued ring event lives below this bucket
  size_t ring_count_ = 0;      // events in the ring (including cancelled)

  // --- overflow ladder ---
  // Events beyond the window. The first overflow_sorted_n_ entries are
  // sorted DESCENDING by (when, seq) (so the minimum is back()); the tail
  // is unsorted appends merged in at the next Wrap().
  std::pmr::vector<QueuedEvent> overflow_;
  size_t overflow_sorted_n_ = 0;
  QueuedEvent overflow_min_{};  // valid iff !overflow_.empty()

  std::pmr::vector<Slot> slots_;
  std::pmr::vector<uint32_t> free_slots_;
  size_t cancelled_pending_ = 0;  // cancelled events still queued

  // --- replay streams ---
  // A queued stream event is tagged by kStreamBit in its slot field (real
  // slot indices are small positive integers, so no collision) and carries
  // the point index in the generation field.
  static constexpr uint32_t kStreamBit = 0x8000'0000u;
  struct ReplayStream {
    StreamFireFn fire = nullptr;
    void* ctx = nullptr;
  };
  std::vector<ReplayStream> streams_;

  // Observability instruments; all null when built without a registry.
  MetricCounter* events_scheduled_metric_ = nullptr;
  MetricCounter* events_fired_metric_ = nullptr;
  MetricCounter* events_cancelled_metric_ = nullptr;
  MetricCounter* calendar_wraps_metric_ = nullptr;
  MetricGauge* heap_depth_metric_ = nullptr;

  // Sampled dispatch tracing; tracer_ null when built without one. The track
  // id is stored raw (TraceTrackId is an alias we cannot forward-declare).
  SpanTracer* tracer_ = nullptr;
  uint32_t sim_track_ = 0;
  int64_t dispatch_sample_interval_ = 0;

  // Flight recorder; both null unless attached. Observational only: the
  // profiler reads wall clocks, the recorder reads sim state -- neither
  // mutates it, so results stay bit-identical either way.
  EventCostProfiler* profiler_ = nullptr;
  TimeSeriesRecorder* timeseries_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_SIM_SIMULATOR_H_

// Discrete-event simulation kernel.
//
// The Simulator owns a virtual clock and an event queue. Components schedule
// callbacks at absolute or relative simulated times; Run()/RunUntil()/RunFor()
// drain the queue in timestamp order (FIFO among equal timestamps). Events
// can be cancelled via the handle returned at scheduling time. Everything is
// single-threaded and deterministic.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace spotcheck {

using EventCallback = std::function<void()>;

// Identifies a scheduled event for cancellation. Default-constructed handles
// are invalid and safe to Cancel().
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_.valid(); }

 private:
  friend class Simulator;
  explicit EventHandle(EventId id) : id_(id) {}
  EventId id_;
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `callback` to run at absolute time `when`. Scheduling in the
  // past (before Now()) runs the callback at Now().
  EventHandle ScheduleAt(SimTime when, EventCallback callback);
  EventHandle ScheduleAfter(SimDuration delay, EventCallback callback);

  // Schedules `callback` every `period`, starting one period from now. The
  // returned handle cancels the whole periodic task. `callback` receives no
  // arguments; query Now() for the tick time.
  EventHandle SchedulePeriodic(SimDuration period, EventCallback callback);

  // Cancels a pending event; no-op if the event already ran, was already
  // cancelled, or the handle is invalid.
  void Cancel(EventHandle handle);

  // Runs until the queue is empty. Returns the number of events executed.
  int64_t Run();
  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` (even if the queue empties earlier).
  int64_t RunUntil(SimTime deadline);
  int64_t RunFor(SimDuration duration) { return RunUntil(now_ + duration); }
  // Executes exactly one event if available; returns false on empty queue.
  bool Step();

  bool empty() const { return queue_.size() == cancelled_.size(); }
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  int64_t events_executed() const { return events_executed_; }

 private:
  struct QueuedEvent {
    SimTime when;
    uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    EventId id;
    EventCallback callback;
  };
  struct EventOrder {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.when != b.when) {
        return a.when > b.when;  // min-heap on time
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the earliest non-cancelled event. Precondition: !empty().
  void RunOne();

  SimTime now_;
  uint64_t next_seq_ = 0;
  int64_t events_executed_ = 0;
  IdGenerator<EventTag> event_ids_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace spotcheck

#endif  // SRC_SIM_SIMULATOR_H_

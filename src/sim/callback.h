// Move-only callable with small-buffer-optimized storage.
//
// The simulator schedules millions of short-lived callbacks per run;
// std::function's copyability requirement and small inline buffer (16 bytes
// in libstdc++) push most simulation closures -- which capture `this`
// pointers, prices, ids -- onto the heap. UniqueCallback is the minimal
// replacement the event queue actually needs: void(), move-only, with enough
// inline storage (32 bytes) that the common closures in the codebase are
// stored in-place inside their pooled event slot, and the whole slot fits a
// 64-byte cache line. Larger or non-nothrow-movable callables still work;
// they fall back to a heap allocation.

#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace spotcheck {

class UniqueCallback {
 public:
  // Inline capacity. 32 bytes holds a lambda capturing up to four pointers
  // (or a shared_ptr plus two words) without touching the heap.
  static constexpr size_t kInlineSize = 32;

  UniqueCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineSize &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(f));
      invoke_ = &InlineInvoke<Decayed>;
      manage_ = &InlineManage<Decayed>;
    } else {
      *reinterpret_cast<Decayed**>(storage_) = new Decayed(std::forward<F>(f));
      invoke_ = &HeapInvoke<Decayed>;
      manage_ = &HeapManage<Decayed>;
    }
  }

  UniqueCallback(UniqueCallback&& other) noexcept { MoveFrom(other); }

  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  ~UniqueCallback() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  enum class ManageOp { kMoveTo, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(ManageOp, void* self, void* dest);

  template <typename F>
  static void InlineInvoke(void* s) {
    (*std::launder(reinterpret_cast<F*>(s)))();
  }
  template <typename F>
  static void InlineManage(ManageOp op, void* self, void* dest) {
    F* f = std::launder(reinterpret_cast<F*>(self));
    if (op == ManageOp::kMoveTo) {
      ::new (dest) F(std::move(*f));
    }
    f->~F();
  }

  template <typename F>
  static void HeapInvoke(void* s) {
    (**reinterpret_cast<F**>(s))();
  }
  template <typename F>
  static void HeapManage(ManageOp op, void* self, void* dest) {
    F** p = reinterpret_cast<F**>(self);
    if (op == ManageOp::kMoveTo) {
      *reinterpret_cast<F**>(dest) = *p;
    } else {
      delete *p;
    }
  }

  void MoveFrom(UniqueCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(ManageOp::kMoveTo, other.storage_, storage_);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() {
    if (manage_ != nullptr) {
      manage_(ManageOp::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_SIM_CALLBACK_H_

// Live spot market replayed inside a simulation.
//
// SpotMarket wraps a PriceTrace and, when attached to a Simulator, fires a
// callback at every price change point. The cloud layer subscribes to decide
// spot revocations; SpotCheck's controller subscribes to drive proactive
// migrations and allocation dynamics.

#ifndef SRC_MARKET_SPOT_MARKET_H_
#define SRC_MARKET_SPOT_MARKET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/market/instance_types.h"
#include "src/market/price_trace.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace spotcheck {

class TimeSeriesRecorder;

class SpotMarket {
 public:
  // `on_price_change` is invoked as (market, new_price) at each change point.
  using PriceListener = std::function<void(const SpotMarket&, double)>;

  SpotMarket(MarketKey key, PriceTrace trace);
  // Shares an immutable trace (e.g. from the TraceCatalog) instead of owning
  // a private copy; `trace` must be non-null.
  SpotMarket(MarketKey key, std::shared_ptr<const PriceTrace> trace);

  const MarketKey& key() const { return key_; }
  const PriceTrace& trace() const { return *trace_; }
  double on_demand_price() const { return OnDemandPrice(key_.type); }

  // Current price according to the attached simulator's clock (or the trace
  // start price if not attached). Simulation time only moves forward, so
  // this is served by a monotone cursor in amortized O(1).
  double CurrentPrice() const;
  double PriceAt(SimTime t) const { return trace_->PriceAt(t); }

  // Fault-injection price override (src/chaos price shocks). While set,
  // CurrentPrice() returns `price`, listeners are notified of it, and trace
  // replay is suppressed (the trace cursor still advances silently, so
  // ClearPriceOverride resumes at the correct trace price). Billing meters
  // read the immutable trace directly and are NOT affected -- the shock
  // stresses SpotCheck's revocation/bidding control loop, not accounting.
  void SetPriceOverride(double price);
  void ClearPriceOverride();
  bool HasPriceOverride() const { return override_active_; }

  // Registers a listener; returns an id usable with Unsubscribe.
  int64_t Subscribe(PriceListener listener);
  void Unsubscribe(int64_t id);
  size_t num_listeners() const { return listeners_.size(); }

  // Schedules the replay of all future price change points on `sim`.
  // Call once; listeners registered later still receive subsequent changes.
  void Attach(Simulator* sim);

  // Registers this market's instruments (market.price_lookups,
  // market.price_changes_fired -- shared across all markets of one
  // simulation). Observational only; `metrics` must outlive the market.
  void set_metrics(MetricsRegistry* metrics);

 private:
  void FireListeners(double price);

  MarketKey key_;
  std::shared_ptr<const PriceTrace> trace_;
  Simulator* sim_ = nullptr;
  mutable PriceTrace::Cursor now_cursor_;
  bool override_active_ = false;
  double override_price_ = 0.0;
  int64_t next_listener_id_ = 0;
  std::map<int64_t, PriceListener> listeners_;
  std::vector<int64_t> dispatch_ids_;  // reused FireListeners scratch
  MetricCounter* price_lookups_metric_ = nullptr;
  MetricCounter* price_changes_metric_ = nullptr;
};

// Owns the set of markets for a simulation and builds them from calibrated
// synthetic traces (or caller-provided ones). Synthetic traces are fetched
// through the process-wide TraceCatalog, so concurrent simulations with the
// same (key, horizon, seed) share one immutable trace instead of each
// generating its own.
class MarketPlace {
 public:
  // `metrics` (optional) is handed to every market this place creates.
  explicit MarketPlace(Simulator* sim, MetricsRegistry* metrics = nullptr)
      : sim_(sim), metrics_(metrics) {}

  // Creates (or returns the existing) market for `key`, fetching the
  // calibrated trace over `horizon` with `seed` from the TraceCatalog (which
  // generates it on first use anywhere in the process).
  SpotMarket& GetOrCreate(MarketKey key, SimDuration horizon, uint64_t seed);

  // Registers a market with an explicit trace (e.g. loaded from CSV).
  SpotMarket& AddWithTrace(MarketKey key, PriceTrace trace);

  SpotMarket* Find(MarketKey key);
  const SpotMarket* Find(MarketKey key) const;
  std::vector<SpotMarket*> All();

  // How many GetOrCreate trace fetches were served from the TraceCatalog vs
  // freshly generated, for this MarketPlace only.
  int64_t trace_cache_hits() const { return trace_cache_hits_; }
  int64_t trace_cache_misses() const { return trace_cache_misses_; }
  // Wall time this MarketPlace's fetches spent blocked on the shared
  // catalog (shard mutexes + single-flight waits). Observational only.
  int64_t trace_cache_lock_wait_ns() const { return trace_cache_lock_wait_ns_; }

  // Registers market-shape gauges (market count, total price listeners) on
  // `ts`. Samplers only read; `ts` must outlive this place's last sample.
  void RegisterTelemetry(TimeSeriesRecorder& ts);

 private:
  Simulator* sim_;
  MetricsRegistry* metrics_ = nullptr;
  std::map<MarketKey, std::unique_ptr<SpotMarket>> markets_;
  int64_t trace_cache_hits_ = 0;
  int64_t trace_cache_misses_ = 0;
  int64_t trace_cache_lock_wait_ns_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_MARKET_SPOT_MARKET_H_

// Instance-type catalog and availability zones.
//
// Mirrors the 2014-era EC2 US-East catalog the paper evaluates on: the m3.*
// general-purpose family used for nested VMs and backup servers, plus the
// c3.*/r3.* families that round out the 15 instance types of Figure 6(d) and
// m1.small from Figure 1. Prices are the on-demand $/hr at the time.

#ifndef SRC_MARKET_INSTANCE_TYPES_H_
#define SRC_MARKET_INSTANCE_TYPES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace spotcheck {

enum class InstanceType : uint8_t {
  kM1Small,
  kM3Medium,
  kM3Large,
  kM3Xlarge,
  kM32xlarge,
  kC3Large,
  kC3Xlarge,
  kC32xlarge,
  kC34xlarge,
  kC38xlarge,
  kR3Large,
  kR3Xlarge,
  kR32xlarge,
  kR34xlarge,
  kR38xlarge,
};

struct InstanceTypeInfo {
  InstanceType type;
  std::string_view name;
  int vcpus;
  double memory_gb;
  double on_demand_price;  // $/hr, US-East 2014
  bool hvm_capable;        // XenBlanket requires HVM (m1.small is PV-only)
};

// The full catalog, in a stable order (index == static_cast<size_t>(type)).
std::span<const InstanceTypeInfo> InstanceCatalog();

const InstanceTypeInfo& GetInstanceTypeInfo(InstanceType type);
std::string_view InstanceTypeName(InstanceType type);
double OnDemandPrice(InstanceType type);
std::optional<InstanceType> ParseInstanceType(std::string_view name);

// All HVM-capable types (eligible to host nested VMs).
std::vector<InstanceType> HvmCapableTypes();

// How many nested VMs of `nested` fit on one host of `host`, by memory.
// Returns 0 if the host is smaller than the nested VM.
int NestedSlotsPerHost(InstanceType host, InstanceType nested);

// Availability zones are modelled as small integers; the paper's Figure 6(c)
// spans 18 zones.
struct AvailabilityZone {
  int index = 0;

  auto operator<=>(const AvailabilityZone&) const = default;
  std::string ToString() const { return "zone-" + std::to_string(index); }
};

// A spot market is identified by (instance type, availability zone); prices
// in distinct markets move independently (Figure 6(c)/(d)).
struct MarketKey {
  InstanceType type = InstanceType::kM3Medium;
  AvailabilityZone zone;

  auto operator<=>(const MarketKey&) const = default;
  std::string ToString() const {
    // Single allocation (report building stringifies markets in bulk).
    const std::string_view name = InstanceTypeName(type);
    std::string out;
    out.reserve(name.size() + 17);
    out.append(name);
    out.append("@zone-");
    out.append(std::to_string(zone.index));
    return out;
  }
};

}  // namespace spotcheck

#endif  // SRC_MARKET_INSTANCE_TYPES_H_

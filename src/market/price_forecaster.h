// EWMA price forecasting with regime detection.
//
// The index-tracking allocator (ROADMAP item 3, after Shastri & Irwin's
// "Cloud Index Tracking") needs a per-market estimate of the near-future
// price, not just the last observation: allocation weights computed from raw
// change points whipsaw on every spike. PriceForecaster keeps two EWMAs per
// market -- the smoothed price level and the smoothed squared deviation --
// and classifies the instantaneous price against the smoothed level into
// three regimes:
//
//   kCalm      price near or below the smoothed level: trust the forecast
//   kElevated  price noticeably above it: a spike may be starting
//   kSpike     price a multiple of the level: revocation territory
//
// This reuses the feature idiom of RevocationPredictor (EWMA level ratio +
// short-horizon signal) but forecasts the $/hr level itself rather than a
// binary risk bit, so allocators can rank markets by expected cost.
//
// Determinism: a forecaster is a pure function of its observation sequence;
// feeding it from a PriceTrace via ObserveTrace is replayable and
// incremental (the returned index makes repeated feeding O(new points)).

#ifndef SRC_MARKET_PRICE_FORECASTER_H_
#define SRC_MARKET_PRICE_FORECASTER_H_

#include <cstddef>
#include <string_view>

#include "src/common/time.h"
#include "src/market/price_trace.h"

namespace spotcheck {

enum class PriceRegime : int {
  kCalm = 0,
  kElevated = 1,
  kSpike = 2,
};

std::string_view PriceRegimeName(PriceRegime regime);

struct PriceForecasterConfig {
  // EWMA smoothing per observation for the level and the variance proxy.
  double mean_alpha = 0.2;
  double var_alpha = 0.2;
  // price / smoothed-level ratios that promote the regime.
  double elevated_ratio = 1.25;
  double spike_ratio = 2.0;
};

class PriceForecaster {
 public:
  explicit PriceForecaster(PriceForecasterConfig config = {})
      : config_(config) {}

  // Feeds one price observation (call on every market change point, in time
  // order).
  void Observe(SimTime t, double price);

  // Feeds every trace point in [from_index, ...) with time <= until and
  // returns the index of the first unconsumed point -- pass it back as
  // `from_index` next time for O(new points) incremental feeding.
  size_t ObserveTrace(const PriceTrace& trace, size_t from_index, SimTime until);

  bool primed() const { return primed_; }
  // The forecast price level ($/hr): the EWMA mean. 0 before any
  // observation.
  double forecast() const { return mean_; }
  // Smoothed standard deviation of observations around the mean.
  double volatility() const;
  // forecast + z * volatility: a conservative cost estimate for allocators
  // that want to penalize jittery markets.
  double Upper(double z) const;
  // Regime of the most recent observation relative to the smoothed level.
  PriceRegime regime() const;

 private:
  PriceForecasterConfig config_;
  bool primed_ = false;
  double mean_ = 0.0;
  double var_ = 0.0;
  double last_price_ = 0.0;
};

}  // namespace spotcheck

#endif  // SRC_MARKET_PRICE_FORECASTER_H_

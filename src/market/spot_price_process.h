// Synthetic spot-price generator.
//
// EC2 spot prices (Figures 1 and 6 of the paper) have three salient
// properties that SpotCheck's policies are sensitive to:
//   1. the price usually sits far below the on-demand price (long-tailed
//      ratio distribution, Fig. 6(a)),
//   2. when it moves, it moves violently -- hourly changes of hundreds to
//      hundreds of thousands of percent (Fig. 6(b)), with spikes rising well
//      above the on-demand price (Fig. 1),
//   3. distinct markets (types x zones) are uncorrelated (Fig. 6(c)/(d)).
//
// SpotPriceProcess reproduces these with a two-regime model: a NORMAL regime
// where the price is a small fraction of the on-demand price with lognormal
// jitter, interrupted by Poisson-arriving SPIKE regimes where the price jumps
// to a Pareto-distributed multiple of the on-demand price for an
// exponentially-distributed duration. Each market draws from its own RNG
// stream, which makes cross-market correlation zero by construction.

#ifndef SRC_MARKET_SPOT_PRICE_PROCESS_H_
#define SRC_MARKET_SPOT_PRICE_PROCESS_H_

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"
#include "src/market/price_trace.h"

namespace spotcheck {

struct SpotPriceProcessParams {
  double on_demand_price = 0.070;

  // NORMAL regime: price = on_demand * base_ratio * LogNormal(0, ratio_sigma),
  // re-drawn roughly every update_interval.
  double base_ratio = 0.11;
  double ratio_sigma = 0.15;
  SimDuration update_interval = SimDuration::Minutes(10);

  // SPIKE regime: arrivals are Poisson with rate spikes_per_day; magnitude is
  // on_demand * clamp(Pareto(spike_min_multiple, spike_alpha), ..,
  // spike_cap_multiple); duration is exponential with the given mean.
  double spikes_per_day = 0.05;
  SimDuration mean_spike_duration = SimDuration::Hours(4);
  // Spikes jump abruptly to well above the on-demand price (Fig. 1 and the
  // availability-bid knee of Fig. 6(a): bidding past the on-demand price
  // buys almost nothing because spike prices rarely sit just above it).
  double spike_min_multiple = 2.0;
  double spike_alpha = 1.5;
  double spike_cap_multiple = 80.0;

  // Fraction of NORMAL-regime updates that are moderate excursions to
  // [2x, 6x] the base level (still below on-demand for typical ratios);
  // fills in the middle of the jump CDF.
  double excursion_probability = 0.03;

  // Fraction of spikes preceded by a short escalation ramp (demand pressure
  // building up): prices climb through ~0.35x, 0.55x, 0.8x the on-demand
  // price over the quarter hour before crossing it. These are the spikes a
  // price-tracking predictor (Section 3.2) can see coming.
  double spike_precursor_probability = 0.5;
  SimDuration precursor_lead = SimDuration::Minutes(15);
};

// Returns parameters calibrated per instance type: the paper observed that
// m3.medium was highly stable over April-October 2014 (its 1P-M policy saw
// only a handful of revocations) while larger types spiked several times per
// day, and that larger types are often cheaper per unit of capacity.
SpotPriceProcessParams CalibratedParams(InstanceType type);

// As above, with deterministic per-zone perturbation (+-20% spike rate,
// +-10% base ratio) so that zones are distinguishable but comparable.
SpotPriceProcessParams CalibratedParams(MarketKey key);

class SpotPriceProcess {
 public:
  SpotPriceProcess(SpotPriceProcessParams params, Rng rng);

  // Generates a piecewise-constant trace covering [0, horizon].
  // `extra_spike_times` (sorted) injects additional spikes at fixed instants
  // -- the mechanism behind cross-market spike correlation.
  PriceTrace Generate(SimDuration horizon,
                      const std::vector<SimTime>& extra_spike_times = {});

  const SpotPriceProcessParams& params() const { return params_; }

 private:
  double DrawNormalPrice();
  double DrawSpikePrice();

  SpotPriceProcessParams params_;
  Rng rng_;
};

// Convenience: one calibrated trace per market key, seeded from `master_seed`
// and the key (stable across runs).
PriceTrace GenerateMarketTrace(MarketKey key, SimDuration horizon, uint64_t master_seed);

// Correlated variant: on top of each market's own independent spikes, a
// shared stream of "regional events" (demand surges hitting the whole
// region) arrives at `shared_events_per_day`, and each event spikes each
// market independently with probability `coupling`. coupling = 0 degenerates
// to fully independent markets; coupling = 1 makes every regional event a
// coincident storm across all pools (the nonzero P(N) entries of Table 3).
std::vector<PriceTrace> GenerateCorrelatedTraces(const std::vector<MarketKey>& keys,
                                                 SimDuration horizon,
                                                 uint64_t master_seed,
                                                 double shared_events_per_day,
                                                 double coupling);

}  // namespace spotcheck

#endif  // SRC_MARKET_SPOT_PRICE_PROCESS_H_

#include "src/market/spot_market.h"

#include <utility>

#include "src/market/trace_catalog.h"

namespace spotcheck {

SpotMarket::SpotMarket(MarketKey key, PriceTrace trace)
    : SpotMarket(key, std::make_shared<const PriceTrace>(std::move(trace))) {}

SpotMarket::SpotMarket(MarketKey key, std::shared_ptr<const PriceTrace> trace)
    : key_(key), trace_(std::move(trace)), now_cursor_(trace_.get()) {}

double SpotMarket::CurrentPrice() const {
  MetricInc(price_lookups_metric_);
  if (override_active_) {
    return override_price_;
  }
  if (sim_ == nullptr) {
    return trace_->empty() ? 0.0 : trace_->points().front().price;
  }
  return now_cursor_.PriceAt(sim_->Now());
}

void SpotMarket::SetPriceOverride(double price) {
  override_active_ = true;
  override_price_ = price;
  FireListeners(price);
}

void SpotMarket::ClearPriceOverride() {
  if (!override_active_) {
    return;
  }
  override_active_ = false;
  // Resume the trace: listeners see the real current price again.
  FireListeners(CurrentPrice());
}

void SpotMarket::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    price_lookups_metric_ = nullptr;
    price_changes_metric_ = nullptr;
    return;
  }
  price_lookups_metric_ = &metrics->Counter("market.price_lookups");
  price_changes_metric_ = &metrics->Counter("market.price_changes_fired");
}

int64_t SpotMarket::Subscribe(PriceListener listener) {
  const int64_t id = next_listener_id_++;
  listeners_[id] = std::move(listener);
  return id;
}

void SpotMarket::Unsubscribe(int64_t id) { listeners_.erase(id); }

void SpotMarket::Attach(Simulator* sim) {
  sim_ = sim;
  for (const PricePoint& point : trace_->points()) {
    if (point.time < sim->Now()) {
      continue;
    }
    sim->ScheduleAt(point.time, [this, price = point.price]() { FireListeners(price); });
  }
}

void SpotMarket::FireListeners(double price) {
  if (override_active_ && price != override_price_) {
    // Trace replay fires while a shock override is pinned; swallow them (the
    // now_cursor_ keeps the real trace position for ClearPriceOverride).
    return;
  }
  MetricInc(price_changes_metric_);
  // Copy: listeners may subscribe/unsubscribe during dispatch.
  std::vector<PriceListener> snapshot;
  snapshot.reserve(listeners_.size());
  for (const auto& [id, listener] : listeners_) {
    snapshot.push_back(listener);
  }
  for (const auto& listener : snapshot) {
    listener(*this, price);
  }
}

SpotMarket& MarketPlace::GetOrCreate(MarketKey key, SimDuration horizon,
                                     uint64_t seed) {
  auto it = markets_.find(key);
  if (it == markets_.end()) {
    bool was_hit = false;
    auto market = std::make_unique<SpotMarket>(
        key, TraceCatalog::Global().GetOrGenerate(key, horizon, seed, &was_hit));
    ++(was_hit ? trace_cache_hits_ : trace_cache_misses_);
    market->set_metrics(metrics_);
    market->Attach(sim_);
    it = markets_.emplace(key, std::move(market)).first;
  }
  return *it->second;
}

SpotMarket& MarketPlace::AddWithTrace(MarketKey key, PriceTrace trace) {
  auto market = std::make_unique<SpotMarket>(key, std::move(trace));
  market->set_metrics(metrics_);
  market->Attach(sim_);
  auto [it, inserted] = markets_.insert_or_assign(key, std::move(market));
  return *it->second;
}

SpotMarket* MarketPlace::Find(MarketKey key) {
  const auto it = markets_.find(key);
  return it == markets_.end() ? nullptr : it->second.get();
}

const SpotMarket* MarketPlace::Find(MarketKey key) const {
  const auto it = markets_.find(key);
  return it == markets_.end() ? nullptr : it->second.get();
}

std::vector<SpotMarket*> MarketPlace::All() {
  std::vector<SpotMarket*> all;
  all.reserve(markets_.size());
  for (auto& [key, market] : markets_) {
    all.push_back(market.get());
  }
  return all;
}

}  // namespace spotcheck

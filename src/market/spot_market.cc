#include "src/market/spot_market.h"

#include <utility>

#include "src/market/trace_catalog.h"
#include "src/obs/timeseries.h"

namespace spotcheck {

SpotMarket::SpotMarket(MarketKey key, PriceTrace trace)
    : SpotMarket(key, std::make_shared<const PriceTrace>(std::move(trace))) {}

SpotMarket::SpotMarket(MarketKey key, std::shared_ptr<const PriceTrace> trace)
    : key_(key), trace_(std::move(trace)), now_cursor_(trace_.get()) {}

double SpotMarket::CurrentPrice() const {
  MetricInc(price_lookups_metric_);
  if (override_active_) {
    return override_price_;
  }
  if (sim_ == nullptr) {
    return trace_->empty() ? 0.0 : trace_->price(0);
  }
  return now_cursor_.PriceAt(sim_->Now());
}

void SpotMarket::SetPriceOverride(double price) {
  override_active_ = true;
  override_price_ = price;
  FireListeners(price);
}

void SpotMarket::ClearPriceOverride() {
  if (!override_active_) {
    return;
  }
  override_active_ = false;
  // Resume the trace: listeners see the real current price again.
  FireListeners(CurrentPrice());
}

void SpotMarket::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    price_lookups_metric_ = nullptr;
    price_changes_metric_ = nullptr;
    return;
  }
  price_lookups_metric_ = &metrics->Counter("market.price_lookups");
  price_changes_metric_ = &metrics->Counter("market.price_changes_fired");
}

int64_t SpotMarket::Subscribe(PriceListener listener) {
  const int64_t id = next_listener_id_++;
  listeners_[id] = std::move(listener);
  return id;
}

void SpotMarket::Unsubscribe(int64_t id) { listeners_.erase(id); }

void SpotMarket::Attach(Simulator* sim) {
  sim_ = sim;
  // Replay the trace as a slotless stream: a six-month trace is ~100k change
  // points, and scheduling each as a regular event would pin ~100k callback
  // slots for the whole run. The stream consumes one sequence number per
  // point, exactly like the per-point ScheduleAt it replaces, so event
  // interleaving (and determinism) is unchanged.
  const uint32_t stream = sim->RegisterReplayStream(
      [](void* ctx, uint32_t index) {
        auto* market = static_cast<SpotMarket*>(ctx);
        market->FireListeners(market->trace_->price(index));
      },
      this);
  for (size_t i = 0; i < trace_->size(); ++i) {
    const SimTime when = trace_->time(i);
    if (when < sim->Now()) {
      continue;
    }
    sim->ScheduleStreamEvent(when, stream, static_cast<uint32_t>(i));
  }
}

void SpotMarket::FireListeners(double price) {
  if (override_active_ && price != override_price_) {
    // Trace replay fires while a shock override is pinned; swallow them (the
    // now_cursor_ keeps the real trace position for ClearPriceOverride).
    return;
  }
  MetricInc(price_changes_metric_);
  // Snapshot ids, not functions: listeners may subscribe during dispatch
  // (they see the next change, same as before), and looking each id back
  // up skips any listener unsubscribed mid-dispatch. Millions of fires per
  // cell make per-fire std::function copies (a heap allocation apiece) the
  // wrong trade. The id buffer is reused across fires.
  dispatch_ids_.clear();
  for (const auto& [id, listener] : listeners_) {
    dispatch_ids_.push_back(id);
  }
  for (const int64_t id : dispatch_ids_) {
    const auto it = listeners_.find(id);
    if (it != listeners_.end()) {
      it->second(*this, price);
    }
  }
}

SpotMarket& MarketPlace::GetOrCreate(MarketKey key, SimDuration horizon,
                                     uint64_t seed) {
  auto it = markets_.find(key);
  if (it == markets_.end()) {
    TraceCatalog::Lookup lookup;
    auto market = std::make_unique<SpotMarket>(
        key, TraceCatalog::Global().GetOrGenerate(key, horizon, seed, &lookup));
    ++(lookup.hit ? trace_cache_hits_ : trace_cache_misses_);
    trace_cache_lock_wait_ns_ += lookup.lock_wait_ns;
    if (metrics_ != nullptr) {
      // Wall time this cell spent blocked on the shared catalog; observational
      // only (wall clock never feeds simulation state).
      MetricInc(&metrics_->Counter("sim.trace_catalog.lock_wait_ns"),
                lookup.lock_wait_ns);
    }
    market->set_metrics(metrics_);
    market->Attach(sim_);
    it = markets_.emplace(key, std::move(market)).first;
  }
  return *it->second;
}

SpotMarket& MarketPlace::AddWithTrace(MarketKey key, PriceTrace trace) {
  auto market = std::make_unique<SpotMarket>(key, std::move(trace));
  market->set_metrics(metrics_);
  market->Attach(sim_);
  auto [it, inserted] = markets_.insert_or_assign(key, std::move(market));
  return *it->second;
}

SpotMarket* MarketPlace::Find(MarketKey key) {
  const auto it = markets_.find(key);
  return it == markets_.end() ? nullptr : it->second.get();
}

const SpotMarket* MarketPlace::Find(MarketKey key) const {
  const auto it = markets_.find(key);
  return it == markets_.end() ? nullptr : it->second.get();
}

void MarketPlace::RegisterTelemetry(TimeSeriesRecorder& ts) {
  ts.AddSeries("market.count",
               [this] { return static_cast<double>(markets_.size()); });
  ts.AddSeries("market.listeners", [this] {
    size_t n = 0;
    for (const auto& [key, market] : markets_) {
      n += market->num_listeners();
    }
    return static_cast<double>(n);
  });
}

std::vector<SpotMarket*> MarketPlace::All() {
  std::vector<SpotMarket*> all;
  all.reserve(markets_.size());
  for (auto& [key, market] : markets_) {
    all.push_back(market.get());
  }
  return all;
}

}  // namespace spotcheck

#include "src/market/price_forecaster.h"

#include <cmath>

namespace spotcheck {

std::string_view PriceRegimeName(PriceRegime regime) {
  switch (regime) {
    case PriceRegime::kCalm:
      return "calm";
    case PriceRegime::kElevated:
      return "elevated";
    case PriceRegime::kSpike:
      return "spike";
  }
  return "unknown";
}

void PriceForecaster::Observe(SimTime t, double price) {
  (void)t;  // EWMAs are per-observation, like RevocationPredictor's.
  if (!primed_) {
    mean_ = price;
    var_ = 0.0;
    primed_ = true;
  } else {
    const double deviation = price - mean_;
    mean_ += config_.mean_alpha * deviation;
    var_ = config_.var_alpha * deviation * deviation +
           (1.0 - config_.var_alpha) * var_;
  }
  last_price_ = price;
}

size_t PriceForecaster::ObserveTrace(const PriceTrace& trace, size_t from_index,
                                     SimTime until) {
  size_t i = from_index;
  for (; i < trace.size(); ++i) {
    const PricePoint point = trace.point(i);
    if (point.time > until) {
      break;
    }
    Observe(point.time, point.price);
  }
  return i;
}

double PriceForecaster::volatility() const {
  return var_ > 0.0 ? std::sqrt(var_) : 0.0;
}

double PriceForecaster::Upper(double z) const { return mean_ + z * volatility(); }

PriceRegime PriceForecaster::regime() const {
  if (!primed_ || mean_ <= 0.0) {
    return PriceRegime::kCalm;
  }
  const double ratio = last_price_ / mean_;
  if (ratio >= config_.spike_ratio) {
    return PriceRegime::kSpike;
  }
  if (ratio >= config_.elevated_ratio) {
    return PriceRegime::kElevated;
  }
  return PriceRegime::kCalm;
}

}  // namespace spotcheck

// Piecewise-constant spot-price traces.
//
// A PriceTrace is a sorted sequence of (time, $/hr) change points; the price
// holds between change points. Traces are either synthesized by a
// SpotPriceProcess or loaded from CSV (timestamp_seconds,price per row, as
// exported from EC2 spot price history).
//
// Storage is structure-of-arrays: one contiguous int64 column of change
// times (microseconds) and one double column of prices. The scan loops the
// simulator leans on -- monotone cursor advance, time-weighted means,
// threshold coverage -- walk a single packed column, so they autovectorize
// and touch half the cache lines of an array-of-structs walk. Threshold
// queries additionally skip 64-point blocks via a per-block min/max summary
// maintained on Append. All fast paths preserve the exact floating-point
// accumulation order of the scalar walk, so results are bit-identical.

#ifndef SRC_MARKET_PRICE_TRACE_H_
#define SRC_MARKET_PRICE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace spotcheck {

struct PricePoint {
  SimTime time;
  double price;  // $/hr
};

class PriceTrace {
 public:
  PriceTrace() = default;
  // Points must be time-sorted; the first point defines the trace start.
  explicit PriceTrace(std::vector<PricePoint> points);

  bool empty() const { return times_us_.empty(); }
  size_t size() const { return times_us_.size(); }
  SimTime start() const;
  SimTime end() const;

  // Column access (structure-of-arrays), plus per-point accessors.
  const std::vector<int64_t>& times_us() const { return times_us_; }
  const std::vector<double>& prices() const { return prices_; }
  SimTime time(size_t i) const { return SimTime::FromMicros(times_us_[i]); }
  double price(size_t i) const { return prices_[i]; }
  PricePoint point(size_t i) const { return {time(i), prices_[i]}; }

  // Price in effect at time t: the last change point at or before t. Before
  // the first point, returns the first price; on an empty trace, returns 0.
  double PriceAt(SimTime t) const;

  // Amortized-O(1) lookup for the forward-in-time access pattern the
  // simulator exhibits (prices queried at non-decreasing times). The cursor
  // remembers the change point in effect at the last query and advances
  // linearly (four comparisons per step, branch-free, over the packed time
  // column); a query earlier than the previous one falls back to binary
  // search. The referenced trace must outlive the cursor and must not be
  // appended to while the cursor is in use.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const PriceTrace* trace) : trace_(trace) {}

    double PriceAt(SimTime t);

    // How many queries arrived earlier than their predecessor. Backward
    // seeks are correct (served by the binary-search fallback) but defeat
    // the amortized-O(1) walk; monotone users -- SpotMarket's now-cursor,
    // MeanPrice's sweep -- should keep this at zero, so a nonzero value
    // flags a non-monotone access pattern worth auditing.
    int64_t backward_seeks() const { return backward_seeks_; }

   private:
    const PriceTrace* trace_ = nullptr;
    size_t index_ = 0;  // last change point with time <= previous query
    bool has_query_ = false;
    SimTime last_query_;
    int64_t backward_seeks_ = 0;
  };

  // Appends a change point; must not go backwards in time.
  void Append(SimTime t, double price);

  // Time-weighted mean price over [from, to).
  double MeanPrice(SimTime from, SimTime to) const;

  // Fraction of [from, to) during which price <= bid. This is the
  // "availability" a spot instance with that bid would have seen (Fig. 6(a)).
  double FractionAtOrBelow(double bid, SimTime from, SimTime to) const;

  // Price sampled on a regular grid, for correlation analysis (Fig. 6(c)/(d)).
  std::vector<double> SampleGrid(SimTime from, SimTime to, SimDuration step) const;

  // Percentage magnitudes of hour-over-hour price changes, split by sign
  // (Fig. 6(b)). A change from p0 to p1 contributes |p1/p0 - 1| * 100.
  struct JumpSeries {
    std::vector<double> increasing;
    std::vector<double> decreasing;
  };
  JumpSeries HourlyJumps(SimTime from, SimTime to) const;

  // CSV round-trip; format: "seconds,price" per line, no header.
  std::string ToCsv() const;
  static PriceTrace FromCsv(const std::string& text);

 private:
  // Points per min/max summary block; power of two so index math is shifts.
  static constexpr size_t kBlockLog2 = 6;
  static constexpr size_t kBlockSize = size_t{1} << kBlockLog2;

  // First index with times_us_[i] > t_us (upper bound on the time column).
  size_t UpperBound(int64_t t_us) const;

  std::vector<int64_t> times_us_;
  std::vector<double> prices_;
  // Per-block price min/max over prices_[b*64 .. b*64+63] (last block
  // partial); lets threshold scans skip blocks that cannot match.
  std::vector<double> block_min_;
  std::vector<double> block_max_;
};

}  // namespace spotcheck

#endif  // SRC_MARKET_PRICE_TRACE_H_

// Piecewise-constant spot-price traces.
//
// A PriceTrace is a sorted sequence of (time, $/hr) change points; the price
// holds between change points. Traces are either synthesized by a
// SpotPriceProcess or loaded from CSV (timestamp_seconds,price per row, as
// exported from EC2 spot price history).

#ifndef SRC_MARKET_PRICE_TRACE_H_
#define SRC_MARKET_PRICE_TRACE_H_

#include <string>
#include <vector>

#include "src/common/time.h"

namespace spotcheck {

struct PricePoint {
  SimTime time;
  double price;  // $/hr
};

class PriceTrace {
 public:
  PriceTrace() = default;
  // Points must be time-sorted; the first point defines the trace start.
  explicit PriceTrace(std::vector<PricePoint> points);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const std::vector<PricePoint>& points() const { return points_; }
  SimTime start() const;
  SimTime end() const;

  // Price in effect at time t: the last change point at or before t. Before
  // the first point, returns the first price; on an empty trace, returns 0.
  double PriceAt(SimTime t) const;

  // Amortized-O(1) lookup for the forward-in-time access pattern the
  // simulator exhibits (prices queried at non-decreasing times). The cursor
  // remembers the change point in effect at the last query and advances
  // linearly; a query earlier than the previous one falls back to binary
  // search. The referenced trace must outlive the cursor and must not be
  // appended to while the cursor is in use.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const PriceTrace* trace) : trace_(trace) {}

    double PriceAt(SimTime t);

    // How many queries arrived earlier than their predecessor. Backward
    // seeks are correct (served by the binary-search fallback) but defeat
    // the amortized-O(1) walk; monotone users -- SpotMarket's now-cursor,
    // MeanPrice's sweep -- should keep this at zero, so a nonzero value
    // flags a non-monotone access pattern worth auditing.
    int64_t backward_seeks() const { return backward_seeks_; }

   private:
    const PriceTrace* trace_ = nullptr;
    size_t index_ = 0;  // last change point with time <= previous query
    bool has_query_ = false;
    SimTime last_query_;
    int64_t backward_seeks_ = 0;
  };

  // Appends a change point; must not go backwards in time.
  void Append(SimTime t, double price);

  // Time-weighted mean price over [from, to).
  double MeanPrice(SimTime from, SimTime to) const;

  // Fraction of [from, to) during which price <= bid. This is the
  // "availability" a spot instance with that bid would have seen (Fig. 6(a)).
  double FractionAtOrBelow(double bid, SimTime from, SimTime to) const;

  // Price sampled on a regular grid, for correlation analysis (Fig. 6(c)/(d)).
  std::vector<double> SampleGrid(SimTime from, SimTime to, SimDuration step) const;

  // Percentage magnitudes of hour-over-hour price changes, split by sign
  // (Fig. 6(b)). A change from p0 to p1 contributes |p1/p0 - 1| * 100.
  struct JumpSeries {
    std::vector<double> increasing;
    std::vector<double> decreasing;
  };
  JumpSeries HourlyJumps(SimTime from, SimTime to) const;

  // CSV round-trip; format: "seconds,price" per line, no header.
  std::string ToCsv() const;
  static PriceTrace FromCsv(const std::string& text);

 private:
  std::vector<PricePoint> points_;
};

}  // namespace spotcheck

#endif  // SRC_MARKET_PRICE_TRACE_H_

#include "src/market/price_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/csv.h"

namespace spotcheck {

PriceTrace::PriceTrace(std::vector<PricePoint> points) {
  times_us_.reserve(points.size());
  prices_.reserve(points.size());
  for (const PricePoint& p : points) {
    Append(p.time, p.price);
  }
}

SimTime PriceTrace::start() const {
  return empty() ? SimTime() : SimTime::FromMicros(times_us_.front());
}

SimTime PriceTrace::end() const {
  return empty() ? SimTime() : SimTime::FromMicros(times_us_.back());
}

size_t PriceTrace::UpperBound(int64_t t_us) const {
  return static_cast<size_t>(
      std::upper_bound(times_us_.begin(), times_us_.end(), t_us) -
      times_us_.begin());
}

double PriceTrace::PriceAt(SimTime t) const {
  if (empty()) {
    return 0.0;
  }
  // First point with time > t; predecessor holds the in-effect price.
  const size_t ub = UpperBound(t.micros());
  return prices_[ub == 0 ? 0 : ub - 1];
}

double PriceTrace::Cursor::PriceAt(SimTime t) {
  if (has_query_ && t < last_query_) {
    ++backward_seeks_;
  }
  has_query_ = true;
  last_query_ = t;
  const size_t n = trace_->times_us_.size();
  if (n == 0) {
    return 0.0;
  }
  const int64_t t_us = t.micros();
  const int64_t* times = trace_->times_us_.data();
  size_t i = index_;
  if (i >= n || t_us < times[i]) {
    // Backwards jump (or trace replaced under us): re-locate by binary
    // search, keeping the invariant that point index_ is the last change
    // point at or before t (index 0 also covers "before the first point").
    const size_t ub = trace_->UpperBound(t_us);
    index_ = ub == 0 ? 0 : ub - 1;
    return trace_->prices_[index_];
  }
  // Forward: advance over the packed time column four comparisons at a
  // time. The comparisons are branch-free (summed flags), so the common
  // "advance 0 or 1 points" query costs one vectorizable round; under the
  // monotone sweep pattern every point is visited once, so the walk stays
  // amortized O(1).
  while (i + 4 < n) {
    const int step = static_cast<int>(times[i + 1] <= t_us) +
                     static_cast<int>(times[i + 2] <= t_us) +
                     static_cast<int>(times[i + 3] <= t_us) +
                     static_cast<int>(times[i + 4] <= t_us);
    i += static_cast<size_t>(step);
    if (step < 4) {
      break;
    }
  }
  while (i + 1 < n && times[i + 1] <= t_us) {
    ++i;
  }
  index_ = i;
  return trace_->prices_[i];
}

void PriceTrace::Append(SimTime t, double price) {
  if (!times_us_.empty() && t.micros() < times_us_.back()) {
    return;  // Ignore out-of-order appends.
  }
  const size_t index = times_us_.size();
  times_us_.push_back(t.micros());
  prices_.push_back(price);
  const size_t block = index >> kBlockLog2;
  if (block == block_min_.size()) {
    block_min_.push_back(price);
    block_max_.push_back(price);
  } else {
    block_min_[block] = std::min(block_min_[block], price);
    block_max_[block] = std::max(block_max_[block], price);
  }
}

double PriceTrace::MeanPrice(SimTime from, SimTime to) const {
  if (empty() || to <= from) {
    return 0.0;
  }
  const size_t n = times_us_.size();
  const int64_t* times = times_us_.data();
  const double* prices = prices_.data();
  const int64_t to_us = to.micros();
  // i: first change point after the sweep position; j: governing point.
  size_t i = UpperBound(from.micros());
  size_t j = i == 0 ? 0 : i - 1;
  int64_t cursor_us = from.micros();
  double weighted = 0.0;
  // Tight segment walk: one multiply and one add per change point, exactly
  // the terms (and order) of the original cursor-based sweep.
  while (cursor_us < to_us) {
    const int64_t next_us = (i < n && times[i] < to_us) ? times[i] : to_us;
    weighted +=
        prices[j] * SimDuration::Micros(next_us - cursor_us).seconds();
    cursor_us = next_us;
    if (i < n && times[i] <= cursor_us) {
      j = i;
      ++i;
    }
  }
  return weighted / (to - from).seconds();
}

double PriceTrace::FractionAtOrBelow(double bid, SimTime from, SimTime to) const {
  if (empty() || to <= from) {
    return 0.0;
  }
  const size_t n = times_us_.size();
  const int64_t* times = times_us_.data();
  const double* prices = prices_.data();
  const int64_t to_us = to.micros();
  size_t i = UpperBound(from.micros());
  size_t j = i == 0 ? 0 : i - 1;
  int64_t cursor_us = from.micros();
  double covered = 0.0;
  while (cursor_us < to_us) {
    // Block skip: while the governing point opens a summary block whose
    // minimum price exceeds the bid, none of its 64 segments can
    // contribute, so jump the sweep to the block boundary. Skipped
    // segments added nothing in the scalar walk, so the accumulated sum
    // is bit-identical.
    while (j + 1 == i && (j & (kBlockSize - 1)) == 0 &&
           block_min_[j >> kBlockLog2] > bid) {
      const size_t next_block = j + kBlockSize;
      if (next_block >= n || times[next_block] >= to_us) {
        // The remainder of the query window sits under this (or a
        // truncated final) block: nothing more can contribute.
        return covered / (to - from).seconds();
      }
      cursor_us = times[next_block];
      j = next_block;
      i = next_block + 1;
    }
    const int64_t next_us = (i < n && times[i] < to_us) ? times[i] : to_us;
    if (prices[j] <= bid) {
      covered += SimDuration::Micros(next_us - cursor_us).seconds();
    }
    cursor_us = next_us;
    if (i < n && times[i] <= cursor_us) {
      j = i;
      ++i;
    }
  }
  return covered / (to - from).seconds();
}

std::vector<double> PriceTrace::SampleGrid(SimTime from, SimTime to,
                                           SimDuration step) const {
  std::vector<double> samples;
  Cursor cursor(this);
  for (SimTime t = from; t < to; t += step) {
    samples.push_back(cursor.PriceAt(t));
  }
  return samples;
}

PriceTrace::JumpSeries PriceTrace::HourlyJumps(SimTime from, SimTime to) const {
  JumpSeries jumps;
  Cursor cursor(this);
  double prev = cursor.PriceAt(from);
  for (SimTime t = from + SimDuration::Hours(1); t <= to; t += SimDuration::Hours(1)) {
    const double cur = cursor.PriceAt(t);
    if (prev > 0.0 && cur != prev) {
      const double pct = std::abs(cur / prev - 1.0) * 100.0;
      if (cur > prev) {
        jumps.increasing.push_back(pct);
      } else {
        jumps.decreasing.push_back(pct);
      }
    }
    prev = cur;
  }
  return jumps;
}

std::string PriceTrace::ToCsv() const {
  CsvWriter writer;
  for (size_t i = 0; i < times_us_.size(); ++i) {
    writer.AddRow({std::to_string(time(i).seconds()),
                   std::to_string(prices_[i])});
  }
  return writer.ToString();
}

PriceTrace PriceTrace::FromCsv(const std::string& text) {
  const CsvReader reader = CsvReader::FromString(text, /*has_header=*/false);
  std::vector<PricePoint> points;
  points.reserve(reader.rows().size());
  for (const auto& row : reader.rows()) {
    if (row.size() < 2) {
      continue;
    }
    points.push_back(
        {SimTime::FromSeconds(std::stod(row[0])), std::stod(row[1])});
  }
  std::sort(points.begin(), points.end(),
            [](const PricePoint& a, const PricePoint& b) { return a.time < b.time; });
  return PriceTrace(std::move(points));
}

}  // namespace spotcheck

#include "src/market/price_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/csv.h"

namespace spotcheck {

PriceTrace::PriceTrace(std::vector<PricePoint> points) : points_(std::move(points)) {}

SimTime PriceTrace::start() const {
  return points_.empty() ? SimTime() : points_.front().time;
}

SimTime PriceTrace::end() const {
  return points_.empty() ? SimTime() : points_.back().time;
}

double PriceTrace::PriceAt(SimTime t) const {
  if (points_.empty()) {
    return 0.0;
  }
  // First point with time > t; predecessor holds the in-effect price.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime value, const PricePoint& p) { return value < p.time; });
  if (it == points_.begin()) {
    return points_.front().price;
  }
  return std::prev(it)->price;
}

double PriceTrace::Cursor::PriceAt(SimTime t) {
  const std::vector<PricePoint>& pts = trace_->points_;
  if (has_query_ && t < last_query_) {
    ++backward_seeks_;
  }
  has_query_ = true;
  last_query_ = t;
  if (pts.empty()) {
    return 0.0;
  }
  if (index_ >= pts.size() || t < pts[index_].time) {
    // Backwards jump (or trace replaced under us): re-locate by binary
    // search, keeping the invariant that pts[index_] is the last change
    // point at or before t (index 0 also covers "before the first point").
    const auto it = std::upper_bound(
        pts.begin(), pts.end(), t,
        [](SimTime value, const PricePoint& p) { return value < p.time; });
    index_ = it == pts.begin() ? 0 : static_cast<size_t>(it - pts.begin()) - 1;
    return pts[index_].price;
  }
  // Forward: advance change point by change point. Under the monotone sweep
  // pattern every point is visited once, so the walk is amortized O(1).
  while (index_ + 1 < pts.size() && pts[index_ + 1].time <= t) {
    ++index_;
  }
  return pts[index_].price;
}

void PriceTrace::Append(SimTime t, double price) {
  if (!points_.empty() && t < points_.back().time) {
    return;  // Ignore out-of-order appends.
  }
  points_.push_back({t, price});
}

double PriceTrace::MeanPrice(SimTime from, SimTime to) const {
  if (points_.empty() || to <= from) {
    return 0.0;
  }
  double weighted = 0.0;
  SimTime cursor = from;
  Cursor price_cursor(this);
  // Walk change points inside (from, to).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), from,
      [](SimTime value, const PricePoint& p) { return value < p.time; });
  while (cursor < to) {
    const SimTime next = (it != points_.end() && it->time < to) ? it->time : to;
    weighted += price_cursor.PriceAt(cursor) * (next - cursor).seconds();
    cursor = next;
    if (it != points_.end() && it->time <= cursor) {
      ++it;
    }
  }
  return weighted / (to - from).seconds();
}

double PriceTrace::FractionAtOrBelow(double bid, SimTime from, SimTime to) const {
  if (points_.empty() || to <= from) {
    return 0.0;
  }
  double covered = 0.0;
  SimTime cursor = from;
  Cursor price_cursor(this);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), from,
      [](SimTime value, const PricePoint& p) { return value < p.time; });
  while (cursor < to) {
    const SimTime next = (it != points_.end() && it->time < to) ? it->time : to;
    if (price_cursor.PriceAt(cursor) <= bid) {
      covered += (next - cursor).seconds();
    }
    cursor = next;
    if (it != points_.end() && it->time <= cursor) {
      ++it;
    }
  }
  return covered / (to - from).seconds();
}

std::vector<double> PriceTrace::SampleGrid(SimTime from, SimTime to,
                                           SimDuration step) const {
  std::vector<double> samples;
  Cursor cursor(this);
  for (SimTime t = from; t < to; t += step) {
    samples.push_back(cursor.PriceAt(t));
  }
  return samples;
}

PriceTrace::JumpSeries PriceTrace::HourlyJumps(SimTime from, SimTime to) const {
  JumpSeries jumps;
  Cursor cursor(this);
  double prev = cursor.PriceAt(from);
  for (SimTime t = from + SimDuration::Hours(1); t <= to; t += SimDuration::Hours(1)) {
    const double cur = cursor.PriceAt(t);
    if (prev > 0.0 && cur != prev) {
      const double pct = std::abs(cur / prev - 1.0) * 100.0;
      if (cur > prev) {
        jumps.increasing.push_back(pct);
      } else {
        jumps.decreasing.push_back(pct);
      }
    }
    prev = cur;
  }
  return jumps;
}

std::string PriceTrace::ToCsv() const {
  CsvWriter writer;
  for (const auto& p : points_) {
    writer.AddRow({std::to_string(p.time.seconds()), std::to_string(p.price)});
  }
  return writer.ToString();
}

PriceTrace PriceTrace::FromCsv(const std::string& text) {
  const CsvReader reader = CsvReader::FromString(text, /*has_header=*/false);
  std::vector<PricePoint> points;
  points.reserve(reader.rows().size());
  for (const auto& row : reader.rows()) {
    if (row.size() < 2) {
      continue;
    }
    points.push_back(
        {SimTime::FromSeconds(std::stod(row[0])), std::stod(row[1])});
  }
  std::sort(points.begin(), points.end(),
            [](const PricePoint& a, const PricePoint& b) { return a.time < b.time; });
  return PriceTrace(std::move(points));
}

}  // namespace spotcheck

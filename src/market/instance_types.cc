#include "src/market/instance_types.h"

#include <array>
#include <cmath>

namespace spotcheck {
namespace {

constexpr std::array<InstanceTypeInfo, 15> kCatalog = {{
    {InstanceType::kM1Small, "m1.small", 1, 1.7, 0.060, false},
    {InstanceType::kM3Medium, "m3.medium", 1, 3.75, 0.070, true},
    {InstanceType::kM3Large, "m3.large", 2, 7.5, 0.140, true},
    {InstanceType::kM3Xlarge, "m3.xlarge", 4, 15.0, 0.280, true},
    {InstanceType::kM32xlarge, "m3.2xlarge", 8, 30.0, 0.560, true},
    {InstanceType::kC3Large, "c3.large", 2, 3.75, 0.105, true},
    {InstanceType::kC3Xlarge, "c3.xlarge", 4, 7.5, 0.210, true},
    {InstanceType::kC32xlarge, "c3.2xlarge", 8, 15.0, 0.420, true},
    {InstanceType::kC34xlarge, "c3.4xlarge", 16, 30.0, 0.840, true},
    {InstanceType::kC38xlarge, "c3.8xlarge", 32, 60.0, 1.680, true},
    {InstanceType::kR3Large, "r3.large", 2, 15.25, 0.175, true},
    {InstanceType::kR3Xlarge, "r3.xlarge", 4, 30.5, 0.350, true},
    {InstanceType::kR32xlarge, "r3.2xlarge", 8, 61.0, 0.700, true},
    {InstanceType::kR34xlarge, "r3.4xlarge", 16, 122.0, 1.400, true},
    {InstanceType::kR38xlarge, "r3.8xlarge", 32, 244.0, 2.800, true},
}};

}  // namespace

std::span<const InstanceTypeInfo> InstanceCatalog() { return kCatalog; }

const InstanceTypeInfo& GetInstanceTypeInfo(InstanceType type) {
  return kCatalog[static_cast<size_t>(type)];
}

std::string_view InstanceTypeName(InstanceType type) {
  return GetInstanceTypeInfo(type).name;
}

double OnDemandPrice(InstanceType type) {
  return GetInstanceTypeInfo(type).on_demand_price;
}

std::optional<InstanceType> ParseInstanceType(std::string_view name) {
  for (const auto& info : kCatalog) {
    if (info.name == name) {
      return info.type;
    }
  }
  return std::nullopt;
}

std::vector<InstanceType> HvmCapableTypes() {
  std::vector<InstanceType> types;
  for (const auto& info : kCatalog) {
    if (info.hvm_capable) {
      types.push_back(info.type);
    }
  }
  return types;
}

int NestedSlotsPerHost(InstanceType host, InstanceType nested) {
  const double host_mem = GetInstanceTypeInfo(host).memory_gb;
  const double nested_mem = GetInstanceTypeInfo(nested).memory_gb;
  if (nested_mem <= 0.0) {
    return 0;
  }
  return static_cast<int>(std::floor(host_mem / nested_mem + 1e-9));
}

}  // namespace spotcheck

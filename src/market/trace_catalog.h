// Loading real spot-price history from disk.
//
// The paper replays six months of EC2 spot price history (April-October
// 2014, from Amazon's public API and a third-party archive [21]). When such
// history is available as CSV files, this module feeds it into a MarketPlace
// in place of the synthetic traces. File naming convention:
//
//     <instance-type>@zone-<index>.csv       e.g.  m3.medium@zone-0.csv
//
// with one "seconds,price" row per change point (PriceTrace::FromCsv's
// format). Files with unknown type names are reported and skipped.

#ifndef SRC_MARKET_TRACE_CATALOG_H_
#define SRC_MARKET_TRACE_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/market/spot_market.h"

namespace spotcheck {

// Parses "<type>@zone-<n>" (the stem of a trace file name).
std::optional<MarketKey> ParseMarketKey(const std::string& stem);

struct TraceLoadReport {
  std::vector<MarketKey> loaded;
  std::vector<std::string> skipped;  // unparsable names or unreadable files
};

// Loads every *.csv in `directory` into `markets`. Returns which markets were
// registered and which files were skipped. A missing/empty directory simply
// yields an empty report.
TraceLoadReport LoadTraceDirectory(MarketPlace& markets,
                                   const std::string& directory);

// Writes `trace` to `directory/<key>.csv`; returns false on I/O error.
bool SaveTrace(const MarketKey& key, const PriceTrace& trace,
               const std::string& directory);

}  // namespace spotcheck

#endif  // SRC_MARKET_TRACE_CATALOG_H_

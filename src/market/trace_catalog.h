// Loading real spot-price history from disk.
//
// The paper replays six months of EC2 spot price history (April-October
// 2014, from Amazon's public API and a third-party archive [21]). When such
// history is available as CSV files, this module feeds it into a MarketPlace
// in place of the synthetic traces. File naming convention:
//
//     <instance-type>@zone-<index>.csv       e.g.  m3.medium@zone-0.csv
//
// with one "seconds,price" row per change point (PriceTrace::FromCsv's
// format). Files with unknown type names are reported and skipped.

// This module also hosts the process-wide TraceCatalog: a memo of generated
// synthetic traces keyed by (market, horizon, seed), so that the 20 cells of
// an evaluation grid (and repeated figure benches) generate each market's
// six-month trace exactly once and share one immutable copy.
//
// Concurrency design (the catalog is the only structure every grid worker
// touches, so it must never serialize them):
//   * The cache is striped into kNumShards shards by key hash; workers
//     resolving different markets take different mutexes.
//   * Trace *generation* runs outside any shard lock. A first lookup
//     installs a pending marker, releases the shard, generates, then
//     publishes; concurrent first-lookups of the SAME key block on the
//     marker (single-flight), while lookups of other keys -- even in the
//     same shard -- proceed as soon as the brief map operation is done.
//   * Repeat lookups from the same thread (each worker runs many grid
//     cells back to back) are served from a per-thread pointer cache
//     without touching any mutex at all; Clear() invalidates these caches
//     by bumping a global epoch.

#ifndef SRC_MARKET_TRACE_CATALOG_H_
#define SRC_MARKET_TRACE_CATALOG_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/market/spot_market.h"

namespace spotcheck {

class TraceCatalog {
 public:
  static constexpr size_t kNumShards = 16;

  struct ShardStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t lock_wait_ns = 0;  // wall time spent acquiring this shard's mutex
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t lock_wait_ns = 0;
    std::array<ShardStats, kNumShards> shards{};
  };

  // Per-call diagnostics for one GetOrGenerate.
  struct Lookup {
    bool hit = false;          // served without generating a trace
    bool thread_cached = false;  // served lock-free from this thread's cache
    // Wall time this call spent blocked: shard-mutex acquisition plus any
    // wait for another thread's in-flight generation of the same key.
    // Observational only (never feeds simulation state).
    int64_t lock_wait_ns = 0;
  };

  // The singleton shared by every MarketPlace in the process.
  static TraceCatalog& Global();

  // Returns the trace for (key, horizon, seed), generating it on first use.
  // Thread-safe; generation runs outside the shard lock (single-flight per
  // key). `info`, when non-null, receives per-call diagnostics.
  std::shared_ptr<const PriceTrace> GetOrGenerate(MarketKey key,
                                                  SimDuration horizon,
                                                  uint64_t seed,
                                                  Lookup* info);
  // Back-compat shim: `was_hit` reports whether the trace was already cached.
  std::shared_ptr<const PriceTrace> GetOrGenerate(MarketKey key,
                                                  SimDuration horizon,
                                                  uint64_t seed,
                                                  bool* was_hit = nullptr);

  // Aggregated + per-shard counters. Lock-free (atomic reads), so Stats()
  // never contends with Lookup traffic.
  Stats stats() const;
  size_t size() const;

  // Drops all entries, resets the counters, and invalidates every thread's
  // pointer cache (tests, memory pressure). An in-flight generation may
  // still publish its trace afterwards; the content is deterministic per
  // key, so a stale publish is indistinguishable from a fresh one.
  void Clear();

  // Cache key; public so the per-thread cache in the .cc can name it.
  struct Key {
    MarketKey market;
    int64_t horizon_us = 0;
    uint64_t seed = 0;
    auto operator<=>(const Key&) const = default;
  };

 private:
  // Single-flight marker for one in-flight generation.
  struct PendingGeneration {
    std::mutex mu;
    std::condition_variable cv;
    std::shared_ptr<const PriceTrace> trace;
    bool ready = false;
  };

  struct Entry {
    std::shared_ptr<const PriceTrace> trace;        // null while generating
    std::shared_ptr<PendingGeneration> pending;     // non-null while generating
  };

  // Padded to a cache line so shard mutexes/counters never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::map<Key, Entry> cache;
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> misses{0};
    std::atomic<int64_t> lock_wait_ns{0};
  };

  Shard& ShardFor(const Key& key);

  std::array<Shard, kNumShards> shards_;
  // Bumped by Clear(); per-thread caches compare against it before serving.
  std::atomic<uint64_t> epoch_{0};
};

// Parses "<type>@zone-<n>" (the stem of a trace file name).
std::optional<MarketKey> ParseMarketKey(const std::string& stem);

struct TraceLoadReport {
  std::vector<MarketKey> loaded;
  std::vector<std::string> skipped;  // unparsable names or unreadable files
};

// Loads every *.csv in `directory` into `markets`. Returns which markets were
// registered and which files were skipped. A missing/empty directory simply
// yields an empty report.
TraceLoadReport LoadTraceDirectory(MarketPlace& markets,
                                   const std::string& directory);

// Writes `trace` to `directory/<key>.csv`; returns false on I/O error.
bool SaveTrace(const MarketKey& key, const PriceTrace& trace,
               const std::string& directory);

}  // namespace spotcheck

#endif  // SRC_MARKET_TRACE_CATALOG_H_

// Loading real spot-price history from disk.
//
// The paper replays six months of EC2 spot price history (April-October
// 2014, from Amazon's public API and a third-party archive [21]). When such
// history is available as CSV files, this module feeds it into a MarketPlace
// in place of the synthetic traces. File naming convention:
//
//     <instance-type>@zone-<index>.csv       e.g.  m3.medium@zone-0.csv
//
// with one "seconds,price" row per change point (PriceTrace::FromCsv's
// format). Files with unknown type names are reported and skipped.

// This module also hosts the process-wide TraceCatalog: a thread-safe memo
// of generated synthetic traces keyed by (market, horizon, seed), so that
// the 20 cells of an evaluation grid (and repeated figure benches) generate
// each market's six-month trace exactly once and share one immutable copy.

#ifndef SRC_MARKET_TRACE_CATALOG_H_
#define SRC_MARKET_TRACE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/market/spot_market.h"

namespace spotcheck {

// Process-wide memo of synthetic market traces. GenerateMarketTrace is a
// pure function of (key, horizon, seed), so caching is invisible to
// simulation results; it only removes redundant generation work and lets
// concurrent evaluation cells share one immutable trace in memory.
class TraceCatalog {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
  };

  // The singleton shared by every MarketPlace in the process.
  static TraceCatalog& Global();

  // Returns the trace for (key, horizon, seed), generating it on first use.
  // Thread-safe. If `was_hit` is non-null it reports whether the trace was
  // already cached.
  std::shared_ptr<const PriceTrace> GetOrGenerate(MarketKey key,
                                                  SimDuration horizon,
                                                  uint64_t seed,
                                                  bool* was_hit = nullptr);

  Stats stats() const;
  size_t size() const;

  // Drops all entries and resets the counters (tests, memory pressure).
  void Clear();

 private:
  struct Key {
    MarketKey market;
    int64_t horizon_us = 0;
    uint64_t seed = 0;
    auto operator<=>(const Key&) const = default;
  };

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const PriceTrace>> cache_;
  Stats stats_;
};

// Parses "<type>@zone-<n>" (the stem of a trace file name).
std::optional<MarketKey> ParseMarketKey(const std::string& stem);

struct TraceLoadReport {
  std::vector<MarketKey> loaded;
  std::vector<std::string> skipped;  // unparsable names or unreadable files
};

// Loads every *.csv in `directory` into `markets`. Returns which markets were
// registered and which files were skipped. A missing/empty directory simply
// yields an empty report.
TraceLoadReport LoadTraceDirectory(MarketPlace& markets,
                                   const std::string& directory);

// Writes `trace` to `directory/<key>.csv`; returns false on I/O error.
bool SaveTrace(const MarketKey& key, const PriceTrace& trace,
               const std::string& directory);

}  // namespace spotcheck

#endif  // SRC_MARKET_TRACE_CATALOG_H_

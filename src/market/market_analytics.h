// Analytics over price traces, matching the statistics the paper reports in
// Figure 6: availability-vs-bid CDFs, hourly price-jump CDFs, and pairwise
// correlation matrices across zones and instance types.

#ifndef SRC_MARKET_MARKET_ANALYTICS_H_
#define SRC_MARKET_MARKET_ANALYTICS_H_

#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"
#include "src/market/price_trace.h"

namespace spotcheck {

// One (bid ratio, availability) point of Figure 6(a): availability is the
// fraction of time the spot price was at or below ratio * on_demand_price.
struct AvailabilityPoint {
  double bid_ratio;
  double availability;
};

// Sweeps bid ratios 0..1 over `points` steps.
std::vector<AvailabilityPoint> AvailabilityVsBid(const PriceTrace& trace,
                                                 double on_demand_price,
                                                 SimTime from, SimTime to,
                                                 int points);

// Probability of revocation at a given bid: P(spot price > bid), i.e.
// 1 - availability. This is the `p` of the cost model in Section 4.4.
double RevocationProbability(const PriceTrace& trace, double bid, SimTime from,
                             SimTime to);

// Number of upward crossings of `bid` in [from, to): each crossing is one
// revocation event for a pool bidding `bid`.
int CountBidCrossings(const PriceTrace& trace, double bid, SimTime from, SimTime to);

// Empirical distributions of hourly percentage jumps (Fig. 6(b)).
struct JumpDistributions {
  EmpiricalDistribution increasing;
  EmpiricalDistribution decreasing;
};
JumpDistributions ComputeJumpDistributions(const PriceTrace& trace, SimTime from,
                                           SimTime to);

// Pairwise Pearson correlations of price series sampled on a common grid
// (Fig. 6(c)/(d)). Series are sampled every `step` over [from, to).
std::vector<std::vector<double>> PriceCorrelationMatrix(
    const std::vector<const PriceTrace*>& traces, SimTime from, SimTime to,
    SimDuration step);

// Mean absolute off-diagonal correlation -- a single-number summary used in
// tests to assert that markets are (un)correlated.
double MeanAbsOffDiagonal(const std::vector<std::vector<double>>& matrix);

// The "knee" of the availability-bid curve (Fig. 6(a)): the smallest bid
// ratio whose availability is within `epsilon` of the availability at
// `max_ratio`. Raising the bid past the knee buys almost nothing; the paper
// observes the knee sits slightly below the on-demand price, making
// "bid the on-demand price" a good approximation of the optimum.
double FindKneeRatio(const PriceTrace& trace, double on_demand_price,
                     SimTime from, SimTime to, double epsilon = 0.005,
                     double max_ratio = 2.0, int steps = 200);

}  // namespace spotcheck

#endif  // SRC_MARKET_MARKET_ANALYTICS_H_

#include "src/market/revocation_predictor.h"

#include <algorithm>

namespace spotcheck {

void RevocationPredictor::Observe(SimTime t, double price) {
  const double ratio = on_demand_price_ > 0.0 ? price / on_demand_price_ : 0.0;
  if (!primed_) {
    ewma_ratio_ = ratio;
    primed_ = true;
  } else {
    ewma_ratio_ = config_.ewma_alpha * ratio + (1.0 - config_.ewma_alpha) * ewma_ratio_;
  }
  history_.emplace_back(t, ewma_ratio_);
  const SimTime horizon = t - config_.velocity_window;
  while (history_.size() > 1 && history_.front().first < horizon) {
    history_.pop_front();
  }
}

double RevocationPredictor::LevelFeature() const {
  if (!primed_) {
    return 0.0;
  }
  const double span = config_.level_high_ratio - config_.level_low_ratio;
  if (span <= 0.0) {
    return ewma_ratio_ >= config_.level_high_ratio ? 1.0 : 0.0;
  }
  return std::clamp((ewma_ratio_ - config_.level_low_ratio) / span, 0.0, 1.0);
}

double RevocationPredictor::VelocityFeature() const {
  if (history_.size() < 2) {
    return 0.0;
  }
  const double climb = history_.back().second - history_.front().second;
  if (config_.velocity_high <= 0.0) {
    return climb > 0.0 ? 1.0 : 0.0;
  }
  return std::clamp(climb / config_.velocity_high, 0.0, 1.0);
}

double RevocationPredictor::RiskScore() const {
  return std::max(LevelFeature(), VelocityFeature());
}

PredictorScore EvaluatePredictor(const PredictorConfig& config,
                                 const PriceTrace& trace, double on_demand_price,
                                 double bid, SimTime from, SimTime to) {
  PredictorScore score;
  // Degenerate windows score zero instead of dividing by zero: an empty
  // trace or an inverted/empty window has no crossings to predict, and a bid
  // below the window's price floor is revoked instantly (the price never
  // comes back under it, so "crossings" would be meaningless).
  if (trace.size() == 0 || to <= from) {
    return score;
  }
  bool any_in_window = false;
  double floor_price = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const PricePoint point = trace.point(i);
    if (point.time < from || point.time >= to) {
      continue;
    }
    floor_price = any_in_window ? std::min(floor_price, point.price)
                                : point.price;
    any_in_window = true;
  }
  if (any_in_window && bid < floor_price) {
    return score;
  }
  RevocationPredictor predictor(config, on_demand_price);
  bool above = trace.PriceAt(from) > bid;
  bool signal_up = false;
  SimTime signal_since = from;
  double up_seconds = 0.0;
  SimTime last = from;

  for (size_t i = 0; i < trace.size(); ++i) {
    const PricePoint point = trace.point(i);
    if (point.time < from || point.time >= to) {
      continue;
    }
    // Account signal-up time over [last, point.time).
    if (signal_up) {
      up_seconds += (point.time - last).seconds();
    }
    last = point.time;

    const bool now_above = point.price > bid;
    if (now_above && !above) {
      ++score.crossings;
      // Was the alarm already raised when the spike hit? (The predictor has
      // not seen this observation yet, so this is a genuine lead.)
      if (signal_up && point.time > signal_since) {
        ++score.predicted;
      }
    }
    above = now_above;

    predictor.Observe(point.time, point.price);
    const bool now_up = predictor.AtRisk();
    if (now_up && !signal_up) {
      signal_since = point.time;
    }
    signal_up = now_up;
  }
  if (signal_up) {
    up_seconds += (to - last).seconds();
  }
  score.recall = score.crossings > 0
                     ? static_cast<double>(score.predicted) / score.crossings
                     : 0.0;
  const double total = (to - from).seconds();
  score.signal_up_fraction = total > 0.0 ? up_seconds / total : 0.0;
  return score;
}

}  // namespace spotcheck

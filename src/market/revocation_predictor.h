// Revocation prediction from market prices (Section 3.2).
//
// "Such predictive approaches make it feasible to employ live migration with
// spot servers and avoid the overhead and complexity of bounded-time VM
// migration ... e.g., by tracking and predicting a rise in market prices of
// spot servers that causes revocations."
//
// RevocationPredictor watches one market's price series and raises a risk
// signal from two features: the smoothed price level relative to the
// on-demand price (spikes start from elevated levels far more often than
// from the floor) and the recent upward velocity (spikes are abrupt, so a
// steep climb inside the lookback window is the strongest tell). The
// controller can drain a pool with live migrations while the signal is up,
// before any revocation warning arrives.
//
// EvaluatePredictor() replays a historical trace through the predictor and
// scores it the way one scores any alarm: how many bid crossings had the
// signal up beforehand (recall), and how much of the raised-signal time was
// actually followed by a crossing (precision proxy: false-alarm fraction).

#ifndef SRC_MARKET_REVOCATION_PREDICTOR_H_
#define SRC_MARKET_REVOCATION_PREDICTOR_H_

#include <deque>

#include "src/common/time.h"
#include "src/market/price_trace.h"

namespace spotcheck {

struct PredictorConfig {
  // EWMA smoothing for the price level (per observation).
  double ewma_alpha = 0.3;
  // Smoothed price/on-demand ratio above which the level feature saturates.
  double level_high_ratio = 0.6;
  // Ratio below which the level feature is zero.
  double level_low_ratio = 0.25;
  // Lookback for the velocity feature.
  SimDuration velocity_window = SimDuration::Minutes(30);
  // Ratio climb per velocity_window that saturates the velocity feature.
  double velocity_high = 0.3;
  // Risk score (max of the two features, each in [0,1]) that raises AtRisk.
  double risk_threshold = 0.5;
};

class RevocationPredictor {
 public:
  RevocationPredictor(PredictorConfig config, double on_demand_price)
      : config_(config), on_demand_price_(on_demand_price) {}

  // Feeds one price observation (call on every market change point).
  void Observe(SimTime t, double price);

  // Risk in [0, 1]; 0 before any observation.
  double RiskScore() const;
  bool AtRisk() const { return RiskScore() >= config_.risk_threshold; }

  double smoothed_ratio() const { return ewma_ratio_; }

 private:
  double LevelFeature() const;
  double VelocityFeature() const;

  PredictorConfig config_;
  double on_demand_price_;
  bool primed_ = false;
  double ewma_ratio_ = 0.0;
  // (time, smoothed ratio) samples inside the velocity window.
  std::deque<std::pair<SimTime, double>> history_;
};

// Offline scoring of the predictor against a trace.
struct PredictorScore {
  int crossings = 0;          // upward bid crossings in the window
  int predicted = 0;          // crossings with the signal up at crossing time
  double recall = 0.0;        // predicted / crossings
  double signal_up_fraction = 0.0;  // fraction of time the signal was raised
};
PredictorScore EvaluatePredictor(const PredictorConfig& config,
                                 const PriceTrace& trace, double on_demand_price,
                                 double bid, SimTime from, SimTime to);

}  // namespace spotcheck

#endif  // SRC_MARKET_REVOCATION_PREDICTOR_H_

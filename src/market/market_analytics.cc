#include "src/market/market_analytics.h"

#include <cmath>

namespace spotcheck {

std::vector<AvailabilityPoint> AvailabilityVsBid(const PriceTrace& trace,
                                                 double on_demand_price,
                                                 SimTime from, SimTime to,
                                                 int points) {
  std::vector<AvailabilityPoint> curve;
  curve.reserve(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double ratio =
        points > 1 ? static_cast<double>(i) / static_cast<double>(points - 1) : 1.0;
    curve.push_back(
        {ratio, trace.FractionAtOrBelow(ratio * on_demand_price, from, to)});
  }
  return curve;
}

double RevocationProbability(const PriceTrace& trace, double bid, SimTime from,
                             SimTime to) {
  return 1.0 - trace.FractionAtOrBelow(bid, from, to);
}

int CountBidCrossings(const PriceTrace& trace, double bid, SimTime from,
                      SimTime to) {
  int crossings = 0;
  bool above = trace.PriceAt(from) > bid;
  for (size_t i = 0; i < trace.size(); ++i) {
    const PricePoint p = trace.point(i);
    if (p.time < from || p.time >= to) {
      continue;
    }
    const bool now_above = p.price > bid;
    if (now_above && !above) {
      ++crossings;
    }
    above = now_above;
  }
  return crossings;
}

JumpDistributions ComputeJumpDistributions(const PriceTrace& trace, SimTime from,
                                           SimTime to) {
  const PriceTrace::JumpSeries jumps = trace.HourlyJumps(from, to);
  JumpDistributions dists;
  dists.increasing.AddAll(jumps.increasing);
  dists.decreasing.AddAll(jumps.decreasing);
  return dists;
}

std::vector<std::vector<double>> PriceCorrelationMatrix(
    const std::vector<const PriceTrace*>& traces, SimTime from, SimTime to,
    SimDuration step) {
  std::vector<std::vector<double>> series;
  series.reserve(traces.size());
  for (const PriceTrace* trace : traces) {
    series.push_back(trace->SampleGrid(from, to, step));
  }
  return CorrelationMatrix(series);
}

double FindKneeRatio(const PriceTrace& trace, double on_demand_price,
                     SimTime from, SimTime to, double epsilon, double max_ratio,
                     int steps) {
  if (steps < 2 || max_ratio <= 0.0) {
    return max_ratio;
  }
  const double plateau =
      trace.FractionAtOrBelow(max_ratio * on_demand_price, from, to);
  for (int i = 0; i <= steps; ++i) {
    const double ratio = max_ratio * static_cast<double>(i) / steps;
    if (trace.FractionAtOrBelow(ratio * on_demand_price, from, to) >=
        plateau - epsilon) {
      return ratio;
    }
  }
  return max_ratio;
}

double MeanAbsOffDiagonal(const std::vector<std::vector<double>>& matrix) {
  double sum = 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < matrix.size(); ++i) {
    for (size_t j = 0; j < matrix.size(); ++j) {
      if (i != j) {
        sum += std::abs(matrix[i][j]);
        ++n;
      }
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace spotcheck

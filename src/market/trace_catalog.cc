#include "src/market/trace_catalog.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/market/spot_price_process.h"

namespace spotcheck {

TraceCatalog& TraceCatalog::Global() {
  static TraceCatalog* catalog = new TraceCatalog();  // never destroyed
  return *catalog;
}

std::shared_ptr<const PriceTrace> TraceCatalog::GetOrGenerate(MarketKey key,
                                                              SimDuration horizon,
                                                              uint64_t seed,
                                                              bool* was_hit) {
  const Key cache_key{key, horizon.micros(), seed};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(cache_key);
  if (it != cache_.end()) {
    ++stats_.hits;
    if (was_hit != nullptr) {
      *was_hit = true;
    }
    return it->second;
  }
  // Generation runs under the lock: it is deterministic, happens once per
  // key for the process lifetime, and holding the lock keeps concurrent
  // first-lookups of the same market from generating twice.
  auto trace = std::make_shared<const PriceTrace>(
      GenerateMarketTrace(key, horizon, seed));
  cache_.emplace(cache_key, trace);
  ++stats_.misses;
  if (was_hit != nullptr) {
    *was_hit = false;
  }
  return trace;
}

TraceCatalog::Stats TraceCatalog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t TraceCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void TraceCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  stats_ = Stats{};
}

std::optional<MarketKey> ParseMarketKey(const std::string& stem) {
  const size_t at = stem.find('@');
  if (at == std::string::npos) {
    return std::nullopt;
  }
  const auto type = ParseInstanceType(stem.substr(0, at));
  if (!type.has_value()) {
    return std::nullopt;
  }
  const std::string zone_part = stem.substr(at + 1);
  constexpr std::string_view kPrefix = "zone-";
  if (zone_part.rfind(kPrefix, 0) != 0) {
    return std::nullopt;
  }
  int zone = 0;
  try {
    zone = std::stoi(zone_part.substr(kPrefix.size()));
  } catch (...) {
    return std::nullopt;
  }
  if (zone < 0) {
    return std::nullopt;
  }
  return MarketKey{*type, AvailabilityZone{zone}};
}

TraceLoadReport LoadTraceDirectory(MarketPlace& markets,
                                   const std::string& directory) {
  TraceLoadReport report;
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    return report;
  }
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".csv") {
      continue;
    }
    const std::string stem = entry.path().stem().string();
    const auto key = ParseMarketKey(stem);
    if (!key.has_value()) {
      report.skipped.push_back(entry.path().filename().string());
      continue;
    }
    std::ifstream file(entry.path());
    if (!file) {
      report.skipped.push_back(entry.path().filename().string());
      continue;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    PriceTrace trace = PriceTrace::FromCsv(contents.str());
    if (trace.empty()) {
      report.skipped.push_back(entry.path().filename().string());
      continue;
    }
    markets.AddWithTrace(*key, std::move(trace));
    report.loaded.push_back(*key);
  }
  return report;
}

bool SaveTrace(const MarketKey& key, const PriceTrace& trace,
               const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  const std::filesystem::path path =
      std::filesystem::path(directory) / (key.ToString() + ".csv");
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << trace.ToCsv();
  return static_cast<bool>(file);
}

}  // namespace spotcheck

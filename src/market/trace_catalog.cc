#include "src/market/trace_catalog.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/market/spot_price_process.h"

namespace spotcheck {
namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer: enough avalanche to spread the handful of live
  // (type, zone, horizon, seed) tuples evenly over the shards.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashKey(const TraceCatalog::Key& key) {
  uint64_t h = Mix64(static_cast<uint64_t>(key.market.type) |
                     (static_cast<uint64_t>(key.market.zone.index) << 8));
  h = Mix64(h ^ static_cast<uint64_t>(key.horizon_us));
  return Mix64(h ^ key.seed);
}

// Lock-free repeat-lookup path: each thread remembers the traces it has
// already resolved. Grid workers run many cells back to back over the same
// handful of markets, so after the first cell a worker never touches a
// shard mutex again (until Clear() bumps the epoch).
struct ThreadTraceCache {
  const TraceCatalog* owner = nullptr;
  uint64_t epoch = 0;
  std::map<TraceCatalog::Key, std::shared_ptr<const PriceTrace>> entries;
};

ThreadTraceCache& Tls() {
  static thread_local ThreadTraceCache cache;
  return cache;
}

}  // namespace

TraceCatalog& TraceCatalog::Global() {
  static TraceCatalog* catalog = new TraceCatalog();  // never destroyed
  return *catalog;
}

TraceCatalog::Shard& TraceCatalog::ShardFor(const Key& key) {
  return shards_[HashKey(key) % kNumShards];
}

std::shared_ptr<const PriceTrace> TraceCatalog::GetOrGenerate(MarketKey key,
                                                              SimDuration horizon,
                                                              uint64_t seed,
                                                              Lookup* info) {
  const Key cache_key{key, horizon.micros(), seed};
  Shard& shard = ShardFor(cache_key);

  ThreadTraceCache& tls = Tls();
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.owner != this || tls.epoch != epoch) {
    tls.owner = this;
    tls.epoch = epoch;
    tls.entries.clear();
  } else {
    const auto cached = tls.entries.find(cache_key);
    if (cached != tls.entries.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (info != nullptr) {
        *info = Lookup{/*hit=*/true, /*thread_cached=*/true, /*lock_wait_ns=*/0};
      }
      return cached->second;
    }
  }

  Lookup lookup;
  const auto lock_started = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(shard.mu);
  lookup.lock_wait_ns += ElapsedNs(lock_started);

  auto [it, inserted] = shard.cache.try_emplace(cache_key);
  if (!inserted) {
    if (it->second.trace != nullptr) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      std::shared_ptr<const PriceTrace> trace = it->second.trace;
      lock.unlock();
      lookup.hit = true;
      shard.lock_wait_ns.fetch_add(lookup.lock_wait_ns,
                                   std::memory_order_relaxed);
      if (info != nullptr) {
        *info = lookup;
      }
      tls.entries.emplace(cache_key, trace);
      return trace;
    }
    // Another thread is generating this exact trace right now: wait for its
    // publication instead of generating twice (single-flight).
    std::shared_ptr<PendingGeneration> pending = it->second.pending;
    lock.unlock();
    const auto wait_started = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> pending_lock(pending->mu);
    pending->cv.wait(pending_lock, [&pending] { return pending->ready; });
    lookup.lock_wait_ns += ElapsedNs(wait_started);
    std::shared_ptr<const PriceTrace> trace = pending->trace;
    pending_lock.unlock();
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    shard.lock_wait_ns.fetch_add(lookup.lock_wait_ns,
                                 std::memory_order_relaxed);
    lookup.hit = true;
    if (info != nullptr) {
      *info = lookup;
    }
    tls.entries.emplace(cache_key, trace);
    return trace;
  }

  // First lookup of this key anywhere: install the single-flight marker,
  // drop the shard lock, and generate. Workers resolving other keys -- even
  // in this shard -- proceed immediately.
  auto pending = std::make_shared<PendingGeneration>();
  it->second.pending = pending;
  lock.unlock();

  auto trace = std::make_shared<const PriceTrace>(
      GenerateMarketTrace(key, horizon, seed));

  {
    std::lock_guard<std::mutex> pending_lock(pending->mu);
    pending->trace = trace;
    pending->ready = true;
  }
  pending->cv.notify_all();

  const auto publish_started = std::chrono::steady_clock::now();
  lock.lock();
  lookup.lock_wait_ns += ElapsedNs(publish_started);
  // Re-find instead of reusing `it`: a concurrent Clear() may have dropped
  // the pending entry (re-publishing a deterministic trace is harmless).
  Entry& entry = shard.cache[cache_key];
  entry.trace = trace;
  entry.pending.reset();
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();

  shard.lock_wait_ns.fetch_add(lookup.lock_wait_ns, std::memory_order_relaxed);
  if (info != nullptr) {
    *info = lookup;
  }
  tls.entries.emplace(cache_key, trace);
  return trace;
}

std::shared_ptr<const PriceTrace> TraceCatalog::GetOrGenerate(MarketKey key,
                                                              SimDuration horizon,
                                                              uint64_t seed,
                                                              bool* was_hit) {
  Lookup info;
  auto trace = GetOrGenerate(key, horizon, seed, &info);
  if (was_hit != nullptr) {
    *was_hit = info.hit;
  }
  return trace;
}

TraceCatalog::Stats TraceCatalog::stats() const {
  Stats stats;
  for (size_t i = 0; i < kNumShards; ++i) {
    const Shard& shard = shards_[i];
    ShardStats& out = stats.shards[i];
    out.hits = shard.hits.load(std::memory_order_relaxed);
    out.misses = shard.misses.load(std::memory_order_relaxed);
    out.lock_wait_ns = shard.lock_wait_ns.load(std::memory_order_relaxed);
    stats.hits += out.hits;
    stats.misses += out.misses;
    stats.lock_wait_ns += out.lock_wait_ns;
  }
  return stats;
}

size_t TraceCatalog::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.cache) {
      if (entry.trace != nullptr) {
        ++total;
      }
    }
  }
  return total;
}

void TraceCatalog::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.cache.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.lock_wait_ns.store(0, std::memory_order_relaxed);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

std::optional<MarketKey> ParseMarketKey(const std::string& stem) {
  const size_t at = stem.find('@');
  if (at == std::string::npos) {
    return std::nullopt;
  }
  const auto type = ParseInstanceType(stem.substr(0, at));
  if (!type.has_value()) {
    return std::nullopt;
  }
  const std::string zone_part = stem.substr(at + 1);
  constexpr std::string_view kPrefix = "zone-";
  if (zone_part.rfind(kPrefix, 0) != 0) {
    return std::nullopt;
  }
  int zone = 0;
  try {
    zone = std::stoi(zone_part.substr(kPrefix.size()));
  } catch (...) {
    return std::nullopt;
  }
  if (zone < 0) {
    return std::nullopt;
  }
  return MarketKey{*type, AvailabilityZone{zone}};
}

TraceLoadReport LoadTraceDirectory(MarketPlace& markets,
                                   const std::string& directory) {
  TraceLoadReport report;
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) {
    return report;
  }
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".csv") {
      continue;
    }
    const std::string stem = entry.path().stem().string();
    const auto key = ParseMarketKey(stem);
    if (!key.has_value()) {
      report.skipped.push_back(entry.path().filename().string());
      continue;
    }
    std::ifstream file(entry.path());
    if (!file) {
      report.skipped.push_back(entry.path().filename().string());
      continue;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    PriceTrace trace = PriceTrace::FromCsv(contents.str());
    if (trace.empty()) {
      report.skipped.push_back(entry.path().filename().string());
      continue;
    }
    markets.AddWithTrace(*key, std::move(trace));
    report.loaded.push_back(*key);
  }
  return report;
}

bool SaveTrace(const MarketKey& key, const PriceTrace& trace,
               const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  const std::filesystem::path path =
      std::filesystem::path(directory) / (key.ToString() + ".csv");
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << trace.ToCsv();
  return static_cast<bool>(file);
}

}  // namespace spotcheck

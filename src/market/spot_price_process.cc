#include "src/market/spot_price_process.h"

#include <algorithm>
#include <cmath>

namespace spotcheck {
namespace {

struct TypeCalibration {
  double spikes_per_day;
  double spike_duration_hours;
  double base_ratio;
};

// Stability ordered per the paper's observations: small general-purpose types
// are in higher demand (ratio closer to on-demand) but the m3.medium market
// itself was very stable over the studied six months; bigger types see more
// frequent, shorter price spikes and lower per-unit prices.
TypeCalibration CalibrationFor(InstanceType type) {
  switch (type) {
    case InstanceType::kM1Small:
      return {2.0, 0.75, 0.25};  // the spiky market of Figure 1
    case InstanceType::kM3Medium:
      return {0.042, 4.0, 0.11};  // ~7-8 revocations over six months
    case InstanceType::kM3Large:
      return {0.45, 2.5, 0.09};
    case InstanceType::kM3Xlarge:
      return {0.6, 2.0, 0.08};
    case InstanceType::kM32xlarge:
      return {0.8, 1.8, 0.07};
    case InstanceType::kC3Large:
      return {0.15, 3.0, 0.12};
    case InstanceType::kC3Xlarge:
      return {0.3, 2.5, 0.10};
    case InstanceType::kC32xlarge:
      return {0.5, 2.0, 0.09};
    case InstanceType::kC34xlarge:
      return {0.7, 1.8, 0.085};
    case InstanceType::kC38xlarge:
      return {1.0, 1.5, 0.08};
    case InstanceType::kR3Large:
      return {0.1, 3.5, 0.13};
    case InstanceType::kR3Xlarge:
      return {0.25, 2.5, 0.11};
    case InstanceType::kR32xlarge:
      return {0.4, 2.2, 0.10};
    case InstanceType::kR34xlarge:
      return {0.6, 2.0, 0.09};
    case InstanceType::kR38xlarge:
      return {0.9, 1.6, 0.085};
  }
  return {0.5, 2.0, 0.10};
}

// Cheap deterministic hash for zone perturbations.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

SpotPriceProcessParams CalibratedParams(InstanceType type) {
  const TypeCalibration cal = CalibrationFor(type);
  SpotPriceProcessParams params;
  params.on_demand_price = OnDemandPrice(type);
  params.base_ratio = cal.base_ratio;
  params.spikes_per_day = cal.spikes_per_day;
  params.mean_spike_duration = SimDuration::Hours(cal.spike_duration_hours);
  if (type == InstanceType::kM1Small) {
    // Figure 1's market: spikes routinely reach tens of times the $0.06
    // on-demand price (dollars per hour).
    params.spike_alpha = 0.8;
  }
  return params;
}

SpotPriceProcessParams CalibratedParams(MarketKey key) {
  SpotPriceProcessParams params = CalibratedParams(key.type);
  const uint64_t h = Mix((static_cast<uint64_t>(key.type) << 32) ^
                         static_cast<uint64_t>(key.zone.index + 1));
  const double u1 = static_cast<double>(h & 0xffff) / 65535.0;         // [0,1]
  const double u2 = static_cast<double>((h >> 16) & 0xffff) / 65535.0; // [0,1]
  params.spikes_per_day *= 0.8 + 0.4 * u1;
  params.base_ratio *= 0.9 + 0.2 * u2;
  return params;
}

SpotPriceProcess::SpotPriceProcess(SpotPriceProcessParams params, Rng rng)
    : params_(params), rng_(rng) {}

double SpotPriceProcess::DrawNormalPrice() {
  double ratio = params_.base_ratio * rng_.LogNormal(0.0, params_.ratio_sigma);
  if (rng_.Bernoulli(params_.excursion_probability)) {
    ratio *= rng_.Uniform(2.0, 6.0);
  }
  // NORMAL-regime prices stay below the on-demand price; spikes are the only
  // mechanism that crosses it (as in the paper, where crossings are abrupt).
  ratio = std::min(ratio, 0.95);
  return params_.on_demand_price * ratio;
}

double SpotPriceProcess::DrawSpikePrice() {
  const double multiple =
      std::clamp(rng_.Pareto(params_.spike_min_multiple, params_.spike_alpha),
                 params_.spike_min_multiple, params_.spike_cap_multiple);
  return params_.on_demand_price * multiple;
}

PriceTrace SpotPriceProcess::Generate(SimDuration horizon,
                                      const std::vector<SimTime>& extra_spike_times) {
  PriceTrace trace;
  const double spike_rate_per_sec = params_.spikes_per_day / 86400.0;
  SimTime now;
  const SimTime end = SimTime() + horizon;
  size_t extra_idx = 0;

  trace.Append(now, DrawNormalPrice());
  SimTime own_next_spike =
      spike_rate_per_sec > 0.0
          ? now + SimDuration::Seconds(rng_.Exponential(spike_rate_per_sec))
          : SimTime::Max();

  while (now < end) {
    // The next spike is the earlier of this market's own Poisson arrival and
    // the next injected (shared) event.
    SimTime next_spike = own_next_spike;
    bool next_is_extra = false;
    while (extra_idx < extra_spike_times.size() &&
           extra_spike_times[extra_idx] <= now) {
      ++extra_idx;  // already passed (e.g. inside the previous spike)
    }
    if (extra_idx < extra_spike_times.size() &&
        extra_spike_times[extra_idx] < next_spike) {
      next_spike = extra_spike_times[extra_idx];
      next_is_extra = true;
    }
    if (next_spike <= end && next_spike <= now + params_.update_interval) {
      // Enter the SPIKE regime, possibly announced by an escalation ramp
      // squeezed into whatever gap remains before the crossing.
      if (rng_.Bernoulli(params_.spike_precursor_probability)) {
        const SimDuration gap = next_spike - now;
        const SimDuration lead =
            std::min(params_.precursor_lead, gap * 0.9);
        if (lead > SimDuration::Seconds(60)) {
          const SimDuration step = lead / 4.0;
          int i = 3;
          for (double ratio : {0.35, 0.55, 0.80}) {
            trace.Append(next_spike - step * i,
                         params_.on_demand_price * ratio * rng_.Uniform(0.9, 1.1));
            --i;
          }
        }
      }
      now = next_spike;
      trace.Append(now, DrawSpikePrice());
      const SimDuration spike_len = SimDuration::Seconds(
          rng_.Exponential(1.0 / params_.mean_spike_duration.seconds()));
      // Mid-spike wobble roughly every update interval.
      SimTime spike_end = now + spike_len;
      SimTime t = now + params_.update_interval;
      while (t < spike_end && t < end) {
        trace.Append(t, DrawSpikePrice());
        t += params_.update_interval;
      }
      now = spike_end;
      if (now < end) {
        trace.Append(now, DrawNormalPrice());
      }
      const auto redraw = [&]() {
        return spike_rate_per_sec > 0.0
                   ? now + SimDuration::Seconds(rng_.Exponential(spike_rate_per_sec))
                   : SimTime::Max();
      };
      if (next_is_extra) {
        ++extra_idx;
        // Own arrivals swallowed by this shared spike are consumed.
        if (own_next_spike <= now) {
          own_next_spike = redraw();
        }
      } else {
        own_next_spike = redraw();
      }
    } else {
      // NORMAL-regime update with +-30% jitter on the interval.
      now += params_.update_interval * rng_.Uniform(0.7, 1.3);
      if (now < end) {
        trace.Append(now, DrawNormalPrice());
      }
    }
  }
  return trace;
}

PriceTrace GenerateMarketTrace(MarketKey key, SimDuration horizon,
                               uint64_t master_seed) {
  const uint64_t label = (static_cast<uint64_t>(key.type) << 20) ^
                         static_cast<uint64_t>(key.zone.index + 7);
  SpotPriceProcess process(CalibratedParams(key), Rng(master_seed).Split(label));
  return process.Generate(horizon);
}

std::vector<PriceTrace> GenerateCorrelatedTraces(const std::vector<MarketKey>& keys,
                                                 SimDuration horizon,
                                                 uint64_t master_seed,
                                                 double shared_events_per_day,
                                                 double coupling) {
  // Shared regional-event arrivals, drawn once.
  std::vector<SimTime> shared_events;
  if (shared_events_per_day > 0.0 && coupling > 0.0) {
    Rng shared_rng = Rng(master_seed).Split(0x5ead);
    const double rate_per_sec = shared_events_per_day / 86400.0;
    SimTime t = SimTime() + SimDuration::Seconds(shared_rng.Exponential(rate_per_sec));
    while (t < SimTime() + horizon) {
      shared_events.push_back(t);
      t += SimDuration::Seconds(shared_rng.Exponential(rate_per_sec));
    }
  }
  std::vector<PriceTrace> traces;
  traces.reserve(keys.size());
  for (const MarketKey& key : keys) {
    const uint64_t label = (static_cast<uint64_t>(key.type) << 20) ^
                           static_cast<uint64_t>(key.zone.index + 7);
    Rng rng = Rng(master_seed).Split(label);
    // Each market participates in each regional event independently.
    Rng participation = rng.Split(0xc0b1);
    std::vector<SimTime> hits;
    for (SimTime event : shared_events) {
      if (participation.Bernoulli(coupling)) {
        hits.push_back(event);
      }
    }
    SpotPriceProcess process(CalibratedParams(key), rng);
    traces.push_back(process.Generate(horizon, hits));
  }
  return traces;
}

}  // namespace spotcheck

#include "src/workload/workload_model.h"

#include <algorithm>
#include <cmath>

namespace spotcheck {

const WorkloadProfile& TpcwProfile() {
  static constexpr WorkloadProfile kProfile{"tpc-w", 8.0, 3.0};
  return kProfile;
}

const WorkloadProfile& SpecJbbProfile() {
  static constexpr WorkloadProfile kProfile{"specjbb", 15.0, 3.3};
  return kProfile;
}

NestedVmSpec MakeVmSpec(InstanceType type, const WorkloadProfile& profile) {
  NestedVmSpec spec = NestedVmSpec::ForType(type);
  spec.dirty_rate_mbps = profile.dirty_rate_mbps;
  spec.checkpoint_demand_mbps = profile.checkpoint_demand_mbps;
  return spec;
}

double TpcwModel::ResponseTimeMs(const RunConditions& conditions) const {
  double rt = kBaseResponseMs;
  if (conditions.checkpointing) {
    rt *= 1.0 + kCheckpointOverhead;
  }
  if (conditions.backup_load_factor > 1.0) {
    rt *= 1.0 + kOverloadSlope * (conditions.backup_load_factor - 1.0);
  }
  if (conditions.lazily_restoring) {
    // Fault service is dominated by per-fault network latency; bandwidth
    // partitioning keeps the penalty nearly flat across restore concurrency.
    const double bw = std::max(conditions.restore_bandwidth_mbps, 1.0);
    const double slowdown = 0.9 + 0.1 * std::sqrt(125.0 / bw);
    rt += kRestorePenaltyMs * slowdown;
  }
  return rt;
}

double SpecJbbModel::ThroughputBops(const RunConditions& conditions) const {
  double bops = kBaseThroughputBops;
  // Checkpointing alone does not measurably slow SPECjbb (Section 6.1).
  if (conditions.backup_load_factor > 1.0) {
    bops /= 1.0 + kOverloadSlope * (conditions.backup_load_factor - 1.0);
  }
  if (conditions.lazily_restoring) {
    // Demand paging stalls the JVM heap; throughput dips during the window.
    bops *= 0.75;
  }
  return bops;
}

}  // namespace spotcheck

// Application workload models (Section 6's benchmarks).
//
// The paper probes SpotCheck with two memory-intensive interactive
// benchmarks: TPC-W (Tomcat + MySQL, "ordering" mix; the metric is response
// time) and SPECjbb2005 (three-tier emulation; the metric is throughput in
// bops). Rather than running Java stacks, these models reproduce the
// observable metrics mechanistically from the conditions that drive them:
//
//   * continuous checkpointing adds a fixed overhead to TPC-W response time
//     (+15% measured; SPECjbb is insensitive during normal operation),
//   * an overloaded backup server (checkpoint demand above its ingest
//     capacity) delays page flushes and backpressures the VMs: response time
//     inflates and throughput collapses proportionally (Figure 7),
//   * during a lazy restore, first-touch page faults are served across the
//     network: TPC-W response time roughly doubles (29 ms -> ~60 ms), with
//     only mild sensitivity to restore concurrency because the backup server
//     partitions bandwidth per VM (Figure 9).

#ifndef SRC_WORKLOAD_WORKLOAD_MODEL_H_
#define SRC_WORKLOAD_WORKLOAD_MODEL_H_

#include <string_view>

#include "src/virt/vm_spec.h"

namespace spotcheck {

// Memory behaviour of the two benchmark workloads, used to parameterize
// NestedVmSpec (dirty rate governs migration; checkpoint demand governs
// backup-server load).
struct WorkloadProfile {
  std::string_view name;
  double dirty_rate_mbps;
  double checkpoint_demand_mbps;
};

const WorkloadProfile& TpcwProfile();     // latency-sensitive web workload
const WorkloadProfile& SpecJbbProfile();  // memory-intensive server workload

// Applies a profile to a VM spec.
NestedVmSpec MakeVmSpec(InstanceType type, const WorkloadProfile& profile);

// Conditions a VM currently runs under, gathered from the backup server and
// migration engine.
struct RunConditions {
  bool checkpointing = false;
  // BackupServer::CheckpointLoadFactor(); > 1 means the server is saturated.
  double backup_load_factor = 0.0;
  bool lazily_restoring = false;
  // Per-VM restore bandwidth while lazily restoring (MB/s).
  double restore_bandwidth_mbps = 125.0;
};

class TpcwModel {
 public:
  static constexpr double kBaseResponseMs = 29.0;
  // "+15% response time" when checkpointing to a dedicated backup server.
  static constexpr double kCheckpointOverhead = 0.15;
  // Sensitivity of response time to backup-server saturation.
  static constexpr double kOverloadSlope = 1.5;
  // First-touch page faults during a lazy restore add ~31 ms.
  static constexpr double kRestorePenaltyMs = 31.0;

  double ResponseTimeMs(const RunConditions& conditions) const;
};

class SpecJbbModel {
 public:
  static constexpr double kBaseThroughputBops = 10000.0;
  static constexpr double kOverloadSlope = 1.5;

  double ThroughputBops(const RunConditions& conditions) const;
};

}  // namespace spotcheck

#endif  // SRC_WORKLOAD_WORKLOAD_MODEL_H_

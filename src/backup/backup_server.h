// Backup servers for bounded-time migration (Sections 3.2, 5).
//
// Each backup server continuously receives checkpointed memory pages from the
// nested VMs assigned to it, and serves memory images back during
// restorations. The paper tunes backup servers for this workload (ext4
// write-back journalling, noatime, large dirty ratios, fadvise hints,
// per-VM tc bandwidth throttling) and finds that one m3.xlarge can host
// 35-40 VMs before checkpoint traffic saturates it (Figure 7), making the
// amortized backup cost per VM under one cent per hour.
//
// This model exposes exactly the quantities the evaluation depends on:
//   * checkpoint load factor: total checkpoint demand vs. ingest capacity,
//     which the workload models translate into response-time/throughput
//     degradation (Figure 7);
//   * per-VM restore bandwidth as a function of restore kind (sequential
//     full reads vs. random lazy reads), the fadvise prefetch optimization,
//     and the number of concurrent restorations (Figures 8 and 9).

#ifndef SRC_BACKUP_BACKUP_SERVER_H_
#define SRC_BACKUP_BACKUP_SERVER_H_

#include <map>

#include "src/common/ids.h"
#include "src/market/instance_types.h"
#include "src/virt/migration_models.h"
#include "src/virt/restore_bandwidth.h"

namespace spotcheck {

struct BackupServerPerf {
  double network_mbps = 125.0;     // 1 Gbps NIC
  double disk_write_mbps = 180.0;  // absorbed by page cache + write-back journal

  // Sequential reads (full restores). "Optimized" = fadvise(WILLNEED,
  // SEQUENTIAL) preloading into the page cache during the warning period,
  // which lets the m3.xlarge's local SSDs run near their raw rate.
  double seq_read_mbps_unopt = 100.0;
  double seq_read_mbps_opt = 400.0;
  double seq_thrash_unopt = 0.12;  // throughput loss per extra concurrent stream
  double seq_thrash_opt = 0.02;

  // Random reads (lazy restores). "Optimized" = fadvise(WILLNEED, RANDOM)
  // plus the background prefetcher batching reads for the SSDs.
  double rand_read_mbps_unopt = 60.0;
  double rand_read_mbps_opt = 300.0;
  double rand_thrash_unopt = 0.20;
  double rand_thrash_opt = 0.02;

  // tc-based per-VM throttling: restores share bandwidth equally and cannot
  // starve checkpoint ingest for non-migrating VMs.
  bool throttle_per_vm = true;
};

class BackupServer : public RestoreBandwidthSource {
 public:
  BackupServer(BackupServerId id, InstanceType type, BackupServerPerf perf,
               int max_vms);
  BackupServer(BackupServerId id)
      : BackupServer(id, InstanceType::kM3Xlarge, BackupServerPerf{}, 40) {}

  BackupServerId id() const { return id_; }
  InstanceType type() const { return type_; }
  double hourly_cost() const { return OnDemandPrice(type_); }
  int max_vms() const { return max_vms_; }

  // --- Checkpoint streams -------------------------------------------------

  // Registers the continuous checkpoint stream of a nested VM; fails (false)
  // when the server is at capacity or the VM is already registered.
  bool AddStream(NestedVmId vm, double demand_mbps);
  void RemoveStream(NestedVmId vm);
  bool HasStream(NestedVmId vm) const { return streams_.contains(vm); }
  int num_streams() const { return static_cast<int>(streams_.size()); }
  bool full() const { return num_streams() >= max_vms_; }
  double checkpoint_demand_mbps() const { return demand_mbps_; }

  // Demand / ingest-capacity ratio. Values above ~1 mean checkpoint writes
  // queue up and resident VMs see degraded performance (Figure 7).
  double CheckpointLoadFactor() const;

  // Amortized backup cost per hosted VM ($/hr); the paper's headline value is
  // $0.28 / 40 = $0.007.
  double AmortizedCostPerVm() const;

  // --- Restorations ---------------------------------------------------------

  void BeginRestore(NestedVmId vm);
  void EndRestore(NestedVmId vm);
  int active_restores() const { return active_restores_; }

  double PerVmRestoreBandwidth(RestoreKind kind, bool optimized,
                               int concurrent) const override;

  // Fault-injection knob (src/chaos): multiplies the restore bandwidth this
  // server delivers (0 < scale <= 1 models a degraded/congested server; 1.0
  // restores nominal performance).
  void set_restore_bandwidth_scale(double scale) {
    restore_bandwidth_scale_ = scale;
  }
  double restore_bandwidth_scale() const { return restore_bandwidth_scale_; }

  const BackupServerPerf& perf() const { return perf_; }

 private:
  BackupServerId id_;
  InstanceType type_;
  BackupServerPerf perf_;
  int max_vms_;
  std::map<NestedVmId, double> streams_;
  double demand_mbps_ = 0.0;
  int active_restores_ = 0;
  double restore_bandwidth_scale_ = 1.0;
};

}  // namespace spotcheck

#endif  // SRC_BACKUP_BACKUP_SERVER_H_

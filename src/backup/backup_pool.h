// Backup server pool (Section 4.2).
//
// SpotCheck maps nested VMs in spot pools to backup servers round-robin, and
// distributes VMs of one spot pool across multiple backup servers so that a
// pool-wide revocation storm does not concentrate on a single backup server.
// When every backup server is fully utilized, the pool provisions a new one.

#ifndef SRC_BACKUP_BACKUP_POOL_H_
#define SRC_BACKUP_BACKUP_POOL_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/backup/backup_server.h"
#include "src/common/ids.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace spotcheck {

struct BackupPoolConfig {
  InstanceType server_type = InstanceType::kM3Xlarge;
  BackupServerPerf perf;
  // Section 6.1: at most 35-40 VMs per backup server keeps degradation
  // negligible during normal operation.
  int max_vms_per_server = 40;
};

class BackupPool {
 public:
  // `metrics` (optional) registers the backup.* instruments; `tracer`
  // (optional) marks provisioning/assignment on each server's
  // "backup/<id>" track; `profiler` (optional) times stream placement
  // (kBackupAssign) and counts round-robin probes. All must outlive the
  // pool.
  explicit BackupPool(BackupPoolConfig config = {},
                      MetricsRegistry* metrics = nullptr,
                      SpanTracer* tracer = nullptr,
                      EventCostProfiler* profiler = nullptr)
      : config_(config), tracer_(tracer), profiler_(profiler) {
    if (metrics != nullptr) {
      servers_provisioned_metric_ = &metrics->Counter("backup.servers_provisioned");
      assignments_metric_ = &metrics->Counter("backup.assignments");
      releases_metric_ = &metrics->Counter("backup.releases");
      assigned_vms_metric_ = &metrics->Gauge("backup.assigned_vms");
      checkpoint_load_metric_ =
          &metrics->Histogram("backup.checkpoint_load_factor", 0.0, 2.0, 40);
    }
  }

  // Assigns `vm` to a backup server (provisioning a new one if all are
  // full) and registers its checkpoint stream. Round-robin across
  // non-full servers spreads both checkpoint load and revocation risk.
  // `now` timestamps any newly provisioned server for cost accounting.
  BackupServer& Assign(NestedVmId vm, double demand_mbps,
                       SimTime now = SimTime());

  // Removes the VM's stream; the server is retained for reuse.
  void Release(NestedVmId vm);

  // Server currently backing `vm` (nullptr if unassigned).
  BackupServer* ServerFor(NestedVmId vm);
  const BackupServer* ServerFor(NestedVmId vm) const;

  int num_servers() const { return static_cast<int>(servers_.size()); }
  int num_assigned() const { return static_cast<int>(assignment_.size()); }
  const std::vector<std::unique_ptr<BackupServer>>& servers() const {
    return servers_;
  }

  // Aggregate $/hr for all provisioned backup servers.
  double TotalHourlyCost() const;

  // Total $ spent on backup servers from their provisioning until `now`.
  // Backup servers are retained once provisioned (the paper holds them as
  // long-lived on-demand instances).
  double TotalAccruedCost(SimTime now) const;

  // Fault-injection knob (src/chaos): scales restore bandwidth on every
  // server, current and future, until reset to 1.0.
  void SetRestoreBandwidthScale(double scale) {
    restore_bandwidth_scale_ = scale;
    for (auto& server : servers_) {
      server->set_restore_bandwidth_scale(scale);
    }
  }
  double restore_bandwidth_scale() const { return restore_bandwidth_scale_; }

 private:
  BackupServer& Provision(SimTime now);
  void RecordAssignment(const BackupServer& server);

  BackupPoolConfig config_;
  IdGenerator<BackupServerTag> ids_;
  std::vector<std::unique_ptr<BackupServer>> servers_;
  std::vector<SimTime> provisioned_at_;  // parallel to servers_
  std::unordered_map<NestedVmId, BackupServer*> assignment_;
  size_t rr_cursor_ = 0;
  double restore_bandwidth_scale_ = 1.0;
  SpanTracer* tracer_ = nullptr;
  EventCostProfiler* profiler_ = nullptr;

  // Observability instruments; all null without a registry.
  MetricCounter* servers_provisioned_metric_ = nullptr;
  MetricCounter* assignments_metric_ = nullptr;
  MetricCounter* releases_metric_ = nullptr;
  MetricGauge* assigned_vms_metric_ = nullptr;
  MetricHistogram* checkpoint_load_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_BACKUP_BACKUP_POOL_H_

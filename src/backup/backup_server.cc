#include "src/backup/backup_server.h"

#include <algorithm>

namespace spotcheck {

BackupServer::BackupServer(BackupServerId id, InstanceType type,
                           BackupServerPerf perf, int max_vms)
    : id_(id), type_(type), perf_(perf), max_vms_(max_vms) {}

bool BackupServer::AddStream(NestedVmId vm, double demand_mbps) {
  if (full() || streams_.contains(vm)) {
    return false;
  }
  streams_[vm] = demand_mbps;
  demand_mbps_ += demand_mbps;
  return true;
}

void BackupServer::RemoveStream(NestedVmId vm) {
  const auto it = streams_.find(vm);
  if (it == streams_.end()) {
    return;
  }
  demand_mbps_ -= it->second;
  streams_.erase(it);
}

double BackupServer::CheckpointLoadFactor() const {
  const double capacity = std::min(perf_.network_mbps, perf_.disk_write_mbps);
  return capacity > 0.0 ? demand_mbps_ / capacity : 0.0;
}

double BackupServer::AmortizedCostPerVm() const {
  const int n = std::max(num_streams(), 1);
  return hourly_cost() / static_cast<double>(n);
}

void BackupServer::BeginRestore(NestedVmId vm) {
  (void)vm;
  ++active_restores_;
}

void BackupServer::EndRestore(NestedVmId vm) {
  (void)vm;
  active_restores_ = std::max(0, active_restores_ - 1);
}

double BackupServer::PerVmRestoreBandwidth(RestoreKind kind, bool optimized,
                                           int concurrent) const {
  const int n = std::max(concurrent, 1);
  double disk_bw;
  double thrash;
  if (kind == RestoreKind::kFull) {
    disk_bw = optimized ? perf_.seq_read_mbps_opt : perf_.seq_read_mbps_unopt;
    thrash = optimized ? perf_.seq_thrash_opt : perf_.seq_thrash_unopt;
  } else {
    disk_bw = optimized ? perf_.rand_read_mbps_opt : perf_.rand_read_mbps_unopt;
    thrash = optimized ? perf_.rand_thrash_opt : perf_.rand_thrash_unopt;
  }
  // Concurrent streams thrash the disk (seeks interleave); fadvise batching
  // keeps the loss small. The aggregate is then split across streams, and
  // the NIC caps the total.
  const double disk_aggregate = disk_bw / (1.0 + thrash * static_cast<double>(n - 1));
  const double per_vm_disk = disk_aggregate / static_cast<double>(n);
  const double per_vm_net = perf_.network_mbps / static_cast<double>(n);
  return std::min(per_vm_disk, per_vm_net) * restore_bandwidth_scale_;
}

}  // namespace spotcheck

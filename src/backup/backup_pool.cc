#include "src/backup/backup_pool.h"

namespace spotcheck {

namespace {

// Marks an assignment on the server's "backup/<id>" track.
void TraceAssign(SpanTracer* tracer, const BackupServer& server, NestedVmId vm,
                 SimTime now) {
  if (tracer == nullptr) {
    return;
  }
  const TraceTrackId track = tracer->Track("backup/" + server.id().ToString());
  const SpanId mark = tracer->Instant(now, "backup.assign", "backup", track);
  tracer->AttrStr(mark, "vm", vm.ToString());
}

}  // namespace

BackupServer& BackupPool::Provision(SimTime now) {
  servers_.push_back(std::make_unique<BackupServer>(
      ids_.Next(), config_.server_type, config_.perf, config_.max_vms_per_server));
  servers_.back()->set_restore_bandwidth_scale(restore_bandwidth_scale_);
  provisioned_at_.push_back(now);
  MetricInc(servers_provisioned_metric_);
  if (tracer_ != nullptr) {
    tracer_->Instant(
        now, "backup.provision", "backup",
        tracer_->Track("backup/" + servers_.back()->id().ToString()));
  }
  return *servers_.back();
}

BackupServer& BackupPool::Assign(NestedVmId vm, double demand_mbps, SimTime now) {
  if (auto* existing = ServerFor(vm)) {
    return *existing;
  }
  ProfileScope scope(profiler_, ProfileCategory::kBackupAssign);
  // Round-robin over existing servers, skipping full ones. The probe
  // counter exposes this loop's cost exactly: once every server is full
  // (the steady state while a fleet grows), each assignment walks the
  // whole roster before provisioning -- O(fleet^2 / max_vms) in total,
  // the super-linear subsystem behind ROADMAP item 1's events/s cliff.
  for (size_t probe = 0; probe < servers_.size(); ++probe) {
    BackupServer& candidate = *servers_[rr_cursor_ % servers_.size()];
    rr_cursor_ = (rr_cursor_ + 1) % servers_.size();
    ProfileAdd(profiler_, ProfileStat::kBackupProbes);
    if (candidate.AddStream(vm, demand_mbps)) {
      assignment_[vm] = &candidate;
      RecordAssignment(candidate);
      TraceAssign(tracer_, candidate, vm, now);
      return candidate;
    }
  }
  BackupServer& fresh = Provision(now);
  fresh.AddStream(vm, demand_mbps);
  assignment_[vm] = &fresh;
  RecordAssignment(fresh);
  TraceAssign(tracer_, fresh, vm, now);
  return fresh;
}

void BackupPool::RecordAssignment(const BackupServer& server) {
  MetricInc(assignments_metric_);
  MetricSet(assigned_vms_metric_, static_cast<double>(assignment_.size()));
  MetricObserve(checkpoint_load_metric_, server.CheckpointLoadFactor());
}

void BackupPool::Release(NestedVmId vm) {
  const auto it = assignment_.find(vm);
  if (it == assignment_.end()) {
    return;
  }
  it->second->RemoveStream(vm);
  assignment_.erase(it);
  MetricInc(releases_metric_);
  MetricSet(assigned_vms_metric_, static_cast<double>(assignment_.size()));
}

BackupServer* BackupPool::ServerFor(NestedVmId vm) {
  const auto it = assignment_.find(vm);
  return it == assignment_.end() ? nullptr : it->second;
}

const BackupServer* BackupPool::ServerFor(NestedVmId vm) const {
  const auto it = assignment_.find(vm);
  return it == assignment_.end() ? nullptr : it->second;
}

double BackupPool::TotalHourlyCost() const {
  double total = 0.0;
  for (const auto& server : servers_) {
    total += server->hourly_cost();
  }
  return total;
}

double BackupPool::TotalAccruedCost(SimTime now) const {
  double total = 0.0;
  for (size_t i = 0; i < servers_.size(); ++i) {
    const SimDuration held = now - provisioned_at_[i];
    if (held > SimDuration::Zero()) {
      total += servers_[i]->hourly_cost() * held.hours();
    }
  }
  return total;
}

}  // namespace spotcheck

// Compiled fault schedule.
//
// FaultPlan::Compile turns a ChaosConfig plus an observation window into the
// complete, time-sorted list of faults a run will inject -- no hand-written
// event lists per test. Arrival times are Poisson (exponential
// inter-arrivals) per category, each category drawing from its own
// Rng(config.seed).Split(category) stream, so
//   * the same (config, window) always compiles to the identical schedule,
//   * changing one category's rate never perturbs another category's
//     arrivals, and
//   * a plan can be printed/diffed before any simulation runs.

#ifndef SRC_CHAOS_FAULT_PLAN_H_
#define SRC_CHAOS_FAULT_PLAN_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/chaos/chaos_config.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"

namespace spotcheck {

enum class FaultKind : uint8_t {
  kInstanceFailure,
  kZoneOutage,
  kPriceShock,
  kCapacityFault,
  kBackupDegradation,
};

std::string_view FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at;
  FaultKind kind = FaultKind::kInstanceFailure;
  // Target zone (zone outages only; picked at compile time).
  AvailabilityZone zone{0};
  // How long the injected condition persists (all kinds except instance
  // failures, which are instantaneous).
  SimDuration duration;
  // Kind-specific intensity: price multiplier (price shocks) or restore
  // bandwidth scale (backup degradation).
  double magnitude = 0.0;

  std::string ToString() const;
};

class FaultPlan {
 public:
  // Compiles the schedule of every fault in [start, end). Deterministic in
  // (config, start, end).
  static FaultPlan Compile(const ChaosConfig& config, SimTime start,
                           SimTime end);

  const ChaosConfig& config() const { return config_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  int64_t CountOf(FaultKind kind) const;

  // One line per event -- diffable fingerprint of the whole schedule.
  std::string ToString() const;

 private:
  ChaosConfig config_;
  std::vector<FaultEvent> events_;
};

}  // namespace spotcheck

#endif  // SRC_CHAOS_FAULT_PLAN_H_

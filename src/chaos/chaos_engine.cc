#include "src/chaos/chaos_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace spotcheck {
namespace {

// Fire-time pick streams, split off the plan seed like the compile streams
// in fault_plan.cc (distinct labels, so picks never alias arrivals).
constexpr uint64_t kVictimStream = 0x71c7;
constexpr uint64_t kMarketPickStream = 0x3a4b;

}  // namespace

ChaosEngine::ChaosEngine(Simulator* sim, NativeCloud* cloud,
                         MarketPlace* markets, BackupPool* backup,
                         MetricsRegistry* metrics)
    : sim_(sim),
      cloud_(cloud),
      markets_(markets),
      backup_(backup),
      victim_rng_(0),
      market_rng_(0) {
  if (metrics != nullptr) {
    instance_failures_metric_ = &metrics->Counter("chaos.instance_failures");
    victimless_metric_ = &metrics->Counter("chaos.instance_failures_victimless");
    zone_outages_metric_ = &metrics->Counter("chaos.zone_outages");
    price_shocks_metric_ = &metrics->Counter("chaos.price_shocks");
    capacity_faults_metric_ = &metrics->Counter("chaos.capacity_faults");
    spot_launch_faults_metric_ = &metrics->Counter("chaos.spot_launch_faults");
    backup_degradations_metric_ = &metrics->Counter("chaos.backup_degradations");
  }
}

void ChaosEngine::Arm(const FaultPlan& plan) {
  victim_rng_ = Rng(plan.config().seed).Split(kVictimStream);
  market_rng_ = Rng(plan.config().seed).Split(kMarketPickStream);
  const bool has_capacity_faults =
      plan.CountOf(FaultKind::kCapacityFault) > 0;
  if (has_capacity_faults && cloud_ != nullptr && !launch_hook_installed_) {
    launch_hook_installed_ = true;
    cloud_->set_spot_launch_fault_hook([this](const Instance& instance) {
      if (sim_->Now() >= capacity_fault_until_) {
        return false;
      }
      MetricInc(spot_launch_faults_metric_);
      RunReportEvent row;
      row.time_s = sim_->Now().seconds();
      row.kind = "chaos.spot-launch-fault";
      row.market = instance.market.ToString();
      row.detail = "spot launch swallowed by injected capacity shortage";
      timeline_.push_back(std::move(row));
      return true;
    });
  }
  for (const FaultEvent& event : plan.events()) {
    sim_->ScheduleAt(event.at, [this, event]() {
      switch (event.kind) {
        case FaultKind::kInstanceFailure:
          FireInstanceFailure(event);
          break;
        case FaultKind::kZoneOutage:
          FireZoneOutage(event);
          break;
        case FaultKind::kPriceShock:
          FirePriceShock(event);
          break;
        case FaultKind::kCapacityFault:
          FireCapacityFault(event);
          break;
        case FaultKind::kBackupDegradation:
          FireBackupDegradation(event);
          break;
      }
    });
  }
}

int64_t ChaosEngine::injected(FaultKind kind) const {
  const auto it = injected_.find(kind);
  return it == injected_.end() ? 0 : it->second;
}

void ChaosEngine::Record(const FaultEvent& event, std::string detail) {
  ++injected_[event.kind];
  RunReportEvent row;
  row.time_s = sim_->Now().seconds();
  row.kind = "chaos.";
  row.kind += FaultKindName(event.kind);
  row.detail = std::move(detail);
  timeline_.push_back(std::move(row));
}

void ChaosEngine::FireInstanceFailure(const FaultEvent& event) {
  if (cloud_ == nullptr) {
    return;
  }
  // Victims are drawn from running + warned instances (both are alive from
  // the platform's point of view), in deterministic id order.
  std::vector<const Instance*> alive = cloud_->Instances(InstanceState::kRunning);
  std::vector<const Instance*> warned = cloud_->Instances(InstanceState::kWarned);
  alive.insert(alive.end(), warned.begin(), warned.end());
  // One draw per scheduled failure even when victimless, so the pick
  // sequence depends only on the plan, not on how many victims existed.
  const uint64_t draw = victim_rng_.UniformInt(0, 1u << 30);
  if (alive.empty()) {
    ++skipped_victimless_;
    MetricInc(victimless_metric_);
    return;
  }
  const Instance* victim = alive[draw % alive.size()];
  const InstanceId id = victim->id;
  Record(event, "unwarned platform failure of " + id.ToString());
  timeline_.back().market = victim->market.ToString();
  MetricInc(instance_failures_metric_);
  cloud_->InjectInstanceFailure(id);
}

void ChaosEngine::FireZoneOutage(const FaultEvent& event) {
  if (cloud_ == nullptr) {
    return;
  }
  const SimTime until = sim_->Now() + event.duration;
  Record(event, "zone " + std::to_string(event.zone.index) + " down for " +
                    std::to_string(event.duration.seconds()) + "s");
  MetricInc(zone_outages_metric_);
  cloud_->ScheduleZoneOutage(event.zone, sim_->Now(), until);
}

void ChaosEngine::FirePriceShock(const FaultEvent& event) {
  if (markets_ == nullptr) {
    return;
  }
  std::vector<SpotMarket*> all = markets_->All();
  // Deterministic draw regardless of how many markets exist (see above).
  const uint64_t draw = market_rng_.UniformInt(0, 1u << 30);
  if (all.empty()) {
    return;
  }
  SpotMarket* market = all[draw % all.size()];
  const MarketKey key = market->key();
  const double price = event.magnitude * market->on_demand_price();
  const SimTime until = sim_->Now() + event.duration;
  auto [it, inserted] = shock_until_.try_emplace(key, until);
  if (!inserted) {
    it->second = std::max(it->second, until);
  }
  Record(event, "price pinned at " + std::to_string(price) + " $/hr");
  timeline_.back().market = key.ToString();
  MetricInc(price_shocks_metric_);
  market->SetPriceOverride(price);
  sim_->ScheduleAt(until, [this, market, key]() {
    const auto shock = shock_until_.find(key);
    if (shock == shock_until_.end() || sim_->Now() < shock->second) {
      return;  // a later overlapping shock extended the window
    }
    shock_until_.erase(shock);
    market->ClearPriceOverride();
  });
}

void ChaosEngine::FireCapacityFault(const FaultEvent& event) {
  const SimTime until = sim_->Now() + event.duration;
  capacity_fault_until_ = std::max(capacity_fault_until_, until);
  Record(event, "spot launches fail for " +
                    std::to_string(event.duration.seconds()) + "s");
  MetricInc(capacity_faults_metric_);
}

void ChaosEngine::FireBackupDegradation(const FaultEvent& event) {
  if (backup_ == nullptr) {
    return;
  }
  const SimTime until = sim_->Now() + event.duration;
  backup_degraded_until_ = std::max(backup_degraded_until_, until);
  Record(event, "restore bandwidth scaled to " +
                    std::to_string(event.magnitude));
  MetricInc(backup_degradations_metric_);
  backup_->SetRestoreBandwidthScale(event.magnitude);
  sim_->ScheduleAt(until, [this]() {
    if (sim_->Now() < backup_degraded_until_) {
      return;  // extended by a later overlapping degradation
    }
    backup_->SetRestoreBandwidthScale(1.0);
  });
}

}  // namespace spotcheck

// Fault-injection configuration (the "chaos" layer).
//
// SpotCheck's value proposition is surviving adversity -- revocation storms,
// zone outages, lost live-migration races (Sections 3.2, 4.3, Table 3) --
// but the figure benches only exercise those paths incidentally. A
// ChaosConfig describes *systematic* adversity as per-category Poisson rates
// and window lengths; FaultPlan::Compile turns it into a deterministic,
// seeded schedule of injected faults, and a ChaosEngine replays that
// schedule against a live simulation through the platform's existing hooks.
//
// Determinism contract: everything stochastic about a fault schedule is a
// pure function of (ChaosConfig, window) -- the plan is compiled up front
// from dedicated Rng streams and never draws from any simulation component's
// stream. A default-constructed ChaosConfig has every rate at zero and
// injects nothing: simulations are bit-identical to a build without the
// chaos layer.

#ifndef SRC_CHAOS_CHAOS_CONFIG_H_
#define SRC_CHAOS_CHAOS_CONFIG_H_

#include <cstdint>

#include "src/common/time.h"

namespace spotcheck {

struct ChaosConfig {
  // Seed for the fault schedule's Rng streams (one per fault category) and
  // for the engine's victim picks. Independent of the simulation seed so the
  // same workload can be soaked under many fault schedules.
  uint64_t seed = 1337;

  // Preset ladder rung this config came from (purely observational, recorded
  // in run reports so soak artifacts are self-describing); 0 for hand-built
  // configs.
  int level = 0;

  // Zones eligible for injected outages: indices [zone_base, zone_base +
  // num_zones). Mirror the controller's zone span.
  int zone_base = 0;
  int num_zones = 1;

  // --- Instance failures ---------------------------------------------------
  // Unannounced single-instance deaths (the platform loses a host with no
  // revocation warning), Poisson-distributed over the run.
  double instance_failures_per_day = 0.0;

  // --- Zone outages --------------------------------------------------------
  // Whole-zone platform failures (the paper cites an EC2 region outage
  // [17]): every instance in the zone dies, launches fail until the zone
  // recovers.
  double zone_outages_per_day = 0.0;
  SimDuration zone_outage_duration = SimDuration::Minutes(45);

  // --- Price shocks --------------------------------------------------------
  // Injected spot-price spikes overlaid on one market's trace: the price
  // jumps to `price_shock_multiplier` x on-demand for the shock duration,
  // revoking every out-bid instance in the pool, then snaps back.
  double price_shocks_per_day = 0.0;
  SimDuration price_shock_duration = SimDuration::Minutes(12);
  double price_shock_multiplier = 25.0;

  // --- Spot capacity faults ------------------------------------------------
  // Windows during which every spot launch fails on completion (the native
  // platform is out of spot capacity), forcing the controller down its
  // on-demand fallback paths.
  double capacity_faults_per_day = 0.0;
  SimDuration capacity_fault_duration = SimDuration::Minutes(20);

  // --- Backup bandwidth degradation ---------------------------------------
  // Windows during which every backup server's restore bandwidth is scaled
  // by `backup_degradation_scale` (network congestion / noisy neighbors),
  // stretching restore times right when evacuations need them.
  double backup_degradations_per_day = 0.0;
  SimDuration backup_degradation_duration = SimDuration::Minutes(30);
  double backup_degradation_scale = 0.25;

  bool enabled() const {
    return instance_failures_per_day > 0.0 || zone_outages_per_day > 0.0 ||
           price_shocks_per_day > 0.0 || capacity_faults_per_day > 0.0 ||
           backup_degradations_per_day > 0.0;
  }
};

// Preset intensity ladder for --chaos-level on the grid benches and the soak
// driver. Level 0 disables injection entirely; 1 = light (occasional
// instance failures and price shocks), 2 = moderate (adds zone outages,
// capacity faults, and backup degradation), 3 = heavy (storm-season rates).
// Levels outside [0, 3] clamp.
ChaosConfig ChaosConfigForLevel(int level, uint64_t seed = 1337);

}  // namespace spotcheck

#endif  // SRC_CHAOS_CHAOS_CONFIG_H_

#include "src/chaos/chaos_config.h"

#include <algorithm>

namespace spotcheck {

ChaosConfig ChaosConfigForLevel(int level, uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.level = std::clamp(level, 0, 3);
  switch (config.level) {
    case 0:
      break;  // all rates zero: injection disabled
    case 1:
      config.instance_failures_per_day = 0.25;
      config.price_shocks_per_day = 0.25;
      break;
    case 2:
      config.instance_failures_per_day = 1.0;
      config.price_shocks_per_day = 1.0;
      config.zone_outages_per_day = 0.1;
      config.capacity_faults_per_day = 0.5;
      config.backup_degradations_per_day = 0.5;
      break;
    case 3:
      config.instance_failures_per_day = 4.0;
      config.price_shocks_per_day = 4.0;
      config.zone_outages_per_day = 0.5;
      config.capacity_faults_per_day = 2.0;
      config.backup_degradations_per_day = 2.0;
      config.price_shock_multiplier = 50.0;
      config.backup_degradation_scale = 0.1;
      break;
  }
  return config;
}

}  // namespace spotcheck

#include "src/chaos/fault_plan.h"

#include <algorithm>
#include <cstdio>

#include "src/common/rng.h"

namespace spotcheck {
namespace {

// Stable per-category Split labels; changing one category's label (or rate)
// must never reshuffle another's arrivals.
constexpr uint64_t kInstanceFailureStream = 0xfa11;
constexpr uint64_t kZoneOutageStream = 0x2035;
constexpr uint64_t kPriceShockStream = 0x540c;
constexpr uint64_t kCapacityFaultStream = 0xca9a;
constexpr uint64_t kBackupDegradationStream = 0xbac0;

// Appends Poisson arrivals of `kind` over [start, end) at `per_day`;
// `decorate` fills the kind-specific fields from the category's own stream.
template <typename DecorateFn>
void CompileCategory(std::vector<FaultEvent>& out, FaultKind kind,
                     double per_day, uint64_t seed, uint64_t stream_label,
                     SimTime start, SimTime end, DecorateFn decorate) {
  if (per_day <= 0.0 || end <= start) {
    return;
  }
  Rng rng = Rng(seed).Split(stream_label);
  const double rate_per_second = per_day / 86400.0;
  SimTime t = start;
  while (true) {
    t = t + SimDuration::Seconds(rng.Exponential(rate_per_second));
    if (t >= end) {
      break;
    }
    FaultEvent event;
    event.at = t;
    event.kind = kind;
    decorate(event, rng);
    out.push_back(event);
  }
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kInstanceFailure:
      return "instance-failure";
    case FaultKind::kZoneOutage:
      return "zone-outage";
    case FaultKind::kPriceShock:
      return "price-shock";
    case FaultKind::kCapacityFault:
      return "capacity-fault";
    case FaultKind::kBackupDegradation:
      return "backup-degradation";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  char line[128];
  std::snprintf(line, sizeof(line), "t=%.3fs %s zone=%d dur=%.1fs mag=%.3f",
                at.seconds(), std::string(FaultKindName(kind)).c_str(),
                zone.index, duration.seconds(), magnitude);
  return line;
}

FaultPlan FaultPlan::Compile(const ChaosConfig& config, SimTime start,
                             SimTime end) {
  FaultPlan plan;
  plan.config_ = config;
  std::vector<FaultEvent>& events = plan.events_;

  CompileCategory(events, FaultKind::kInstanceFailure,
                  config.instance_failures_per_day, config.seed,
                  kInstanceFailureStream, start, end,
                  [](FaultEvent&, Rng&) {});
  CompileCategory(
      events, FaultKind::kZoneOutage, config.zone_outages_per_day, config.seed,
      kZoneOutageStream, start, end, [&config](FaultEvent& event, Rng& rng) {
        const int zones = std::max(config.num_zones, 1);
        event.zone =
            AvailabilityZone{config.zone_base +
                             static_cast<int>(rng.UniformInt(0, zones - 1))};
        event.duration = config.zone_outage_duration;
      });
  CompileCategory(events, FaultKind::kPriceShock, config.price_shocks_per_day,
                  config.seed, kPriceShockStream, start, end,
                  [&config](FaultEvent& event, Rng&) {
                    event.duration = config.price_shock_duration;
                    event.magnitude = config.price_shock_multiplier;
                  });
  CompileCategory(events, FaultKind::kCapacityFault,
                  config.capacity_faults_per_day, config.seed,
                  kCapacityFaultStream, start, end,
                  [&config](FaultEvent& event, Rng&) {
                    event.duration = config.capacity_fault_duration;
                  });
  CompileCategory(events, FaultKind::kBackupDegradation,
                  config.backup_degradations_per_day, config.seed,
                  kBackupDegradationStream, start, end,
                  [&config](FaultEvent& event, Rng&) {
                    event.duration = config.backup_degradation_duration;
                    event.magnitude = config.backup_degradation_scale;
                  });

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) {
                       return a.at < b.at;
                     }
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return plan;
}

int64_t FaultPlan::CountOf(FaultKind kind) const {
  return std::count_if(events_.begin(), events_.end(),
                       [kind](const FaultEvent& e) { return e.kind == kind; });
}

std::string FaultPlan::ToString() const {
  std::string out;
  out.reserve(events_.size() * 64);
  for (const FaultEvent& event : events_) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace spotcheck

// Replays a compiled FaultPlan against a live simulation.
//
// The ChaosEngine owns no policy: it arms one simulator callback per
// FaultEvent and drives the platform's existing fault surfaces --
//   * instance failures  -> NativeCloud::InjectInstanceFailure (victim picked
//     at fire time from the running set, via the engine's own Rng stream),
//   * zone outages       -> NativeCloud::ScheduleZoneOutage,
//   * price shocks       -> SpotMarket::SetPriceOverride / Clear,
//   * capacity faults    -> NativeCloud spot-launch fault hook (window test),
//   * backup degradation -> BackupPool::SetRestoreBandwidthScale.
//
// Every injection increments a chaos.* counter and appends a RunReportEvent,
// so a soak run's fault history lands in the same timeline as the
// controller's reactions to it. Two runs with the same (plan, workload seed)
// produce identical injections and identical chaos.* totals.

#ifndef SRC_CHAOS_CHAOS_ENGINE_H_
#define SRC_CHAOS_CHAOS_ENGINE_H_

#include <map>
#include <vector>

#include "src/backup/backup_pool.h"
#include "src/chaos/fault_plan.h"
#include "src/cloud/native_cloud.h"
#include "src/common/rng.h"
#include "src/market/spot_market.h"
#include "src/obs/metrics.h"
#include "src/obs/run_report.h"
#include "src/sim/simulator.h"

namespace spotcheck {

class ChaosEngine {
 public:
  // All targets must outlive the engine; `markets`, `backup`, and `metrics`
  // may be null (the corresponding fault kinds become no-ops / uncounted).
  ChaosEngine(Simulator* sim, NativeCloud* cloud, MarketPlace* markets,
              BackupPool* backup, MetricsRegistry* metrics = nullptr);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // Schedules every event of `plan` on the simulator. Call once, before
  // RunUntil; the engine must stay alive for the whole run.
  void Arm(const FaultPlan& plan);

  // Faults actually injected (instance failures with no running victim are
  // recorded as skipped, not injected).
  int64_t injected(FaultKind kind) const;
  int64_t skipped_instance_failures() const { return skipped_victimless_; }

  // Chronological chaos timeline, ready to merge into a RunReport.
  const std::vector<RunReportEvent>& timeline() const { return timeline_; }

 private:
  void FireInstanceFailure(const FaultEvent& event);
  void FireZoneOutage(const FaultEvent& event);
  void FirePriceShock(const FaultEvent& event);
  void FireCapacityFault(const FaultEvent& event);
  void FireBackupDegradation(const FaultEvent& event);
  void Record(const FaultEvent& event, std::string detail);

  Simulator* sim_;
  NativeCloud* cloud_;
  MarketPlace* markets_;
  BackupPool* backup_;

  // Victim/market picks happen at fire time (the running set is not known at
  // compile time) but from the engine's own streams, never the platform's.
  Rng victim_rng_;
  Rng market_rng_;

  // Active-window bookkeeping so overlapping faults extend rather than
  // truncate each other.
  std::map<MarketKey, SimTime> shock_until_;
  SimTime capacity_fault_until_;
  SimTime backup_degraded_until_;
  bool launch_hook_installed_ = false;

  std::map<FaultKind, int64_t> injected_;
  int64_t skipped_victimless_ = 0;
  std::vector<RunReportEvent> timeline_;

  MetricCounter* instance_failures_metric_ = nullptr;
  MetricCounter* victimless_metric_ = nullptr;
  MetricCounter* zone_outages_metric_ = nullptr;
  MetricCounter* price_shocks_metric_ = nullptr;
  MetricCounter* capacity_faults_metric_ = nullptr;
  MetricCounter* spot_launch_faults_metric_ = nullptr;
  MetricCounter* backup_degradations_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_CHAOS_CHAOS_ENGINE_H_

// Causal span tracing for simulation lifecycles.
//
// A SpanTracer records what the MetricsRegistry cannot: WHERE the time
// inside each bounded-time path went. Every nested VM's life -- placement,
// evacuation phases, crash recovery, repatriation -- becomes a tree of
// spans keyed by sim-time, with typed attributes and per-VM / per-host /
// per-backup-server track ids, exportable as Chrome/Perfetto trace-event
// JSON (`trace.json` per evaluation cell, behind --trace-dir).
//
// Design constraints (the MetricsRegistry contract, verbatim):
//   * Zero behavioral footprint: spans only observe. Simulation results
//     must be bit-identical with tracing on, off, or absent.
//   * Per-cell isolation: each evaluation cell owns its tracer; the
//     parallel grid needs no atomics and cells never share mutable state.
//   * Null-tolerant call sites: every instrumented component accepts a
//     nullable SpanTracer*; the TraceBegin-style free helpers below make
//     "tracing absent" a single well-predicted branch.
//
// Causality model: the simulation is single-threaded, so a synchronous
// call chain (coordinator -> engine -> cloud) IS a causal chain. The
// tracer keeps an ambient parent stack -- a caller pushes its span
// (ScopedTraceParent), and every span opened underneath without an
// explicit parent adopts it. Asynchronous halves (a host launch completing
// minutes later) carry their SpanId through the owner's state instead.
//
// Timing model: most phase boundaries in this simulator are computed
// synchronously in sim-time (the migration engine knows pause/resume
// instants up front; the cloud knows an operation's Table-1 latency at
// schedule time), so spans with known future ends are recorded eagerly via
// AddSpan(start, end, ...). Begin/End pairs serve the genuinely open-ended
// paths (host acquisitions, evacuations in flight).

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace spotcheck {

class JsonWriter;

// 1-based handles; 0 is "invalid/none" (safe to End/Attr/parent with).
using SpanId = uint32_t;
using TraceTrackId = uint32_t;

// Which clock a track's span timestamps come from. Almost every track is
// kSim: timestamps are simulation time and comparable across tracks. The
// grid worker-profile tracks are kWall: "wall microseconds since the grid
// started", a different timebase entirely. Tagging the domain keeps the two
// from being overlaid on one timeline (Chrome export renders wall tracks as
// a separate process) or mixed into one latency distribution (AnalyzeTrace
// reports wall-clock spans separately from sim-time percentiles).
enum class TraceClock : uint8_t { kSim, kWall };

// One typed span attribute: numeric or string (never both).
struct TraceAttrValue {
  std::string key;
  bool is_number = false;
  double number = 0.0;
  std::string text;
};

struct TraceSpan {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string name;
  std::string category;
  TraceTrackId track = 0;
  SimTime start;
  SimTime end;
  bool open = false;     // Begin() without End() yet
  bool instant = false;  // zero-duration marker ("i" phase in Perfetto)
  std::vector<TraceAttrValue> attrs;

  SimDuration duration() const { return end - start; }
};

struct TraceConfig {
  // A "sim.dispatch" instant is recorded every N executed kernel events
  // (tens of millions per six-month cell make per-event spans useless);
  // <= 0 disables the sampled dispatch track entirely.
  int64_t sim_event_sample_interval = 100000;
};

// Owns every span of one simulation (one evaluation cell). NOT thread-safe:
// a tracer belongs to exactly one simulation, single-threaded by
// construction. Spans are append-only and ids are stable.
class SpanTracer {
 public:
  explicit SpanTracer(TraceConfig config = {}) : config_(config) {}

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  const TraceConfig& config() const { return config_; }

  // Interns `name` as a track (Perfetto "thread"); same name, same id.
  // Convention: "sim", "vm/nvm-3", "host/i-17", "backup/bak-1". `clock`
  // tags the track's timebase (see TraceClock) and is fixed at the first
  // intern; re-interning an existing name ignores the argument.
  TraceTrackId Track(std::string_view name, TraceClock clock = TraceClock::kSim);

  // Opens a span; End() closes it. parent 0 adopts the ambient parent.
  SpanId Begin(SimTime start, std::string_view name, std::string_view category,
               TraceTrackId track, SpanId parent = 0);
  void End(SpanId span, SimTime end);

  // Records a span whose end is already known (computed synchronously).
  SpanId AddSpan(SimTime start, SimTime end, std::string_view name,
                 std::string_view category, TraceTrackId track,
                 SpanId parent = 0);
  // Zero-duration marker.
  SpanId Instant(SimTime at, std::string_view name, std::string_view category,
                 TraceTrackId track, SpanId parent = 0);

  // Typed attributes; no-ops on span 0.
  void AttrNum(SpanId span, std::string_view key, double value);
  void AttrStr(SpanId span, std::string_view key, std::string_view value);

  // Ambient parent stack (see ScopedTraceParent). Pushing 0 is allowed and
  // means "no ambient parent" for the scope.
  void PushParent(SpanId span) { parent_stack_.push_back(span); }
  void PopParent() {
    if (!parent_stack_.empty()) {
      parent_stack_.pop_back();
    }
  }
  SpanId CurrentParent() const {
    return parent_stack_.empty() ? 0 : parent_stack_.back();
  }

  // Closes every still-open span at `at` (ends clamp to >= start) and tags
  // it truncated=1. Call once when the simulation horizon is reached.
  void CloseOpenSpans(SimTime at);

  // --- Read side (analyzer, tests, export) -------------------------------

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const TraceSpan* Find(SpanId span) const {
    return span == 0 || span > spans_.size() ? nullptr : &spans_[span - 1];
  }
  const std::vector<std::string>& track_names() const { return track_names_; }
  std::string_view TrackName(TraceTrackId track) const {
    return track == 0 || track > track_names_.size()
               ? std::string_view()
               : track_names_[track - 1];
  }
  // A track's clock domain; unknown/zero ids read as kSim.
  TraceClock TrackClockDomain(TraceTrackId track) const {
    return track == 0 || track > track_clocks_.size() ? TraceClock::kSim
                                                      : track_clocks_[track - 1];
  }

  // Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
  // wrapper object), loadable in Perfetto UI / chrome://tracing. Tracks
  // become named threads of one process; spans become "X" complete events
  // with microsecond ts/dur (sim-time maps 1:1 to trace microseconds).
  void WriteChromeTraceJson(JsonWriter& json) const;
  std::string ToChromeTraceJson() const;
  // Writes ToChromeTraceJson() to `path` (creating parent directories);
  // false on I/O error. An observability artifact: callers should warn, not
  // abort, on failure.
  bool WriteTo(const std::string& path) const;

 private:
  TraceConfig config_;
  std::vector<TraceSpan> spans_;
  std::vector<std::string> track_names_;
  std::vector<TraceClock> track_clocks_;  // parallel to track_names_
  std::map<std::string, TraceTrackId, std::less<>> track_ids_;
  std::vector<SpanId> parent_stack_;
};

// RAII ambient parent: everything traced inside the scope (without an
// explicit parent) hangs off `parent`. Null-tolerant: a null tracer or a
// zero parent makes the whole scope a no-op.
class ScopedTraceParent {
 public:
  ScopedTraceParent(SpanTracer* tracer, SpanId parent)
      : tracer_(parent != 0 ? tracer : nullptr) {
    if (tracer_ != nullptr) {
      tracer_->PushParent(parent);
    }
  }
  ~ScopedTraceParent() {
    if (tracer_ != nullptr) {
      tracer_->PopParent();
    }
  }
  ScopedTraceParent(const ScopedTraceParent&) = delete;
  ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

 private:
  SpanTracer* tracer_;
};

// Null-tolerant recording helpers, mirroring MetricInc/MetricSet: every
// instrumented component keeps a nullable SpanTracer* and calls these.
inline TraceTrackId TraceTrack(SpanTracer* t, std::string_view name,
                               TraceClock clock = TraceClock::kSim) {
  return t != nullptr ? t->Track(name, clock) : 0;
}
inline SpanId TraceBegin(SpanTracer* t, SimTime start, std::string_view name,
                         std::string_view category, TraceTrackId track,
                         SpanId parent = 0) {
  return t != nullptr ? t->Begin(start, name, category, track, parent) : 0;
}
inline void TraceEnd(SpanTracer* t, SpanId span, SimTime end) {
  if (t != nullptr) {
    t->End(span, end);
  }
}
inline SpanId TraceAddSpan(SpanTracer* t, SimTime start, SimTime end,
                           std::string_view name, std::string_view category,
                           TraceTrackId track, SpanId parent = 0) {
  return t != nullptr ? t->AddSpan(start, end, name, category, track, parent)
                      : 0;
}
inline SpanId TraceInstant(SpanTracer* t, SimTime at, std::string_view name,
                           std::string_view category, TraceTrackId track) {
  return t != nullptr ? t->Instant(at, name, category, track) : 0;
}
inline void TraceAttrNum(SpanTracer* t, SpanId span, std::string_view key,
                         double value) {
  if (t != nullptr) {
    t->AttrNum(span, key, value);
  }
}
inline void TraceAttrStr(SpanTracer* t, SpanId span, std::string_view key,
                         std::string_view value) {
  if (t != nullptr) {
    t->AttrStr(span, key, value);
  }
}

}  // namespace spotcheck

#endif  // SRC_OBS_TRACE_H_

// Per-evaluation-cell run report.
//
// One RunReport captures everything a single evaluation cell observed: every
// instrument of its MetricsRegistry, the controller's structured event
// timeline, TraceCatalog hit/miss diagnostics, and a flat summary of the
// cell's configuration and headline results. Serialized as one
// `run_report.json` per cell (see --run-report-dir on the figure benches),
// it is the substrate for answering "which subsystem produced this number"
// without rerunning the simulation.
//
// This module deliberately depends only on src/common: the core layer
// converts its ControllerEventLog into the generic RunReportEvent rows
// below, so spotcheck_obs can sit underneath every other library.

#ifndef SRC_OBS_RUN_REPORT_H_
#define SRC_OBS_RUN_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace spotcheck {

class EventCostProfiler;
class SpanTracer;
class TimeSeriesRecorder;

// Version of the run_report.json / grid_summary.json document shape. Bump
// when a section is added, removed, or restructured. History:
//   1 (implicit; documents without the field): label/policy_spec/summary/
//     chaos/trace_catalog/trace_summary/metrics/events (run_report) and
//     num_cells/cells/chaos/totals/policies/per_market/contention/
//     slowest_evacuations (grid_summary).
//   2: adds "schema_version" itself, the "profile" (event-cost profiler)
//     and "timeseries" (telemetry summary) sections to run_report, and the
//     "hotspots" roll-up to grid_summary.
inline constexpr int kRunReportSchemaVersion = 2;

// One controller decision, flattened to strings for serialization.
struct RunReportEvent {
  double time_s = 0.0;
  std::string kind;
  std::string vm;      // empty when host-scoped
  std::string host;    // empty when not applicable
  std::string market;
  std::string detail;
};

struct RunReport {
  // Cell identity, e.g. "1P-M/spotcheck-lazy-restore"; set by the runner.
  std::string label;
  // The resolved policy spec the cell ran, e.g. "bid=on-demand,map=1p-m";
  // set by the runner. Grid summaries group cells by this string.
  std::string policy_spec;
  // Flat (name, value) summary of the cell's config and EvaluationResult
  // fields, in insertion order. Doubles carry ints exactly up to 2^53,
  // far beyond any counter this simulator produces.
  std::vector<std::pair<std::string, double>> summary;
  // The cell's full metrics registry (shared with the finished simulation).
  std::shared_ptr<const MetricsRegistry> metrics;
  // The controller's event timeline, flattened.
  std::vector<RunReportEvent> events;
  // TraceCatalog diagnostics (scheduling-order dependent under concurrency).
  int64_t trace_cache_hits = 0;
  int64_t trace_cache_misses = 0;
  // The cell's span tracer, when tracing was enabled (null otherwise). The
  // report embeds its TraceAnalyzer summary, not the raw spans -- the full
  // trace ships separately as trace.json.
  std::shared_ptr<const SpanTracer> trace;
  // Chaos provenance: soak artifacts must be self-describing, so a report
  // produced under fault injection records which preset ladder rung and
  // schedule seed shaped it.
  bool chaos_active = false;
  int chaos_level = 0;
  uint64_t chaos_seed = 0;
  // The cell's event-cost profile (null unless profiling was enabled);
  // serialized as the "profile" section.
  std::shared_ptr<const EventCostProfiler> profile;
  // The cell's telemetry recorder (null unless time-series collection was
  // enabled). The report embeds its compact summary, not the columnar
  // rings -- the full series ships separately as timeseries.json.
  std::shared_ptr<const TimeSeriesRecorder> timeseries;

  void AddSummary(std::string name, double value) {
    summary.emplace_back(std::move(name), value);
  }

  // {"schema_version": 2, "label": ..., "policy_spec": ..., "summary": {...},
  //  "chaos": {...}, "trace_catalog": {...}, "trace_summary": {...}|null,
  //  "profile": {...}|null, "timeseries": {...}|null, "metrics": {...},
  //  "events": [...]}
  std::string ToJson() const;

  // Writes ToJson() to `path` (creating parent directories); false on I/O
  // error. The report is an observability artifact: callers should report
  // failures without aborting the run.
  bool WriteTo(const std::string& path) const;
};

}  // namespace spotcheck

#endif  // SRC_OBS_RUN_REPORT_H_

// Grid-level aggregation over per-cell run reports.
//
// RunPolicyEvaluationGrid produces one RunReport per cell; a bench sweeping
// a 5x5 policy/mechanism grid therefore scatters 25 run_report.json files.
// This module folds them into a single `grid_summary.json`: cell labels,
// summed result totals, per-market lifecycle-event breakdowns, and the
// slowest evacuations observed anywhere in the grid. Like the rest of
// spotcheck_obs it depends on nothing above src/common.

#ifndef SRC_OBS_GRID_SUMMARY_H_
#define SRC_OBS_GRID_SUMMARY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/obs/run_report.h"

namespace spotcheck {

// Builds the grid_summary.json document from every non-null report. Cells
// appear in the given order; totals/markets are key-sorted; the slowest-
// evacuation list is capped at `max_slowest` entries.
std::string BuildGridSummaryJson(
    const std::vector<std::shared_ptr<const RunReport>>& reports,
    size_t max_slowest = 10);

// Writes BuildGridSummaryJson() to `path` (creating parent directories);
// false on I/O error.
bool WriteGridSummary(
    const std::string& path,
    const std::vector<std::shared_ptr<const RunReport>>& reports,
    size_t max_slowest = 10);

}  // namespace spotcheck

#endif  // SRC_OBS_GRID_SUMMARY_H_

// Offline analysis over a SpanTracer: per-span-type latency distributions
// and the critical path of each evacuation-class root span. Feeds the run
// report's "trace_summary" section so a soak artifact answers "where did the
// bounded-time budget go" without opening the full trace in Perfetto.

#ifndef SRC_OBS_TRACE_ANALYZER_H_
#define SRC_OBS_TRACE_ANALYZER_H_

#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/obs/trace.h"

namespace spotcheck {

class JsonWriter;

// Latency distribution of one span name ("evac.commit", "cloud.terminate",
// ...), instants excluded. Percentiles are nearest-rank over the sorted
// duration list (index floor(p * (n - 1))).
struct SpanTypeStats {
  std::string name;
  int64_t count = 0;
  double total_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

// One segment of an evacuation's critical path: a direct child span, a
// "(wait)" gap between children, or the "(other)" tail after the last child.
struct CriticalPathSegment {
  std::string name;
  double duration_s = 0.0;
};

// The critical path of one evacuation/crash-recovery root span: its direct
// children laid end to end along the root's interval, gaps made explicit.
struct EvacuationCriticalPath {
  SpanId root = 0;
  std::string root_name;   // "evacuation" or "crash_recovery"
  std::string track;       // "vm/nvm-N"
  double start_s = 0.0;
  double duration_s = 0.0;
  std::vector<CriticalPathSegment> segments;
};

struct TraceSummary {
  int64_t num_spans = 0;
  int64_t num_tracks = 0;
  // Spans on wall-clock tracks (TraceClock::kWall, e.g. the grid's
  // worker-profile spans). They live on a different timebase, so they are
  // excluded from `span_types` -- mixing them in skewed the sim-time
  // percentiles -- and reported in `wall_span_types` instead.
  int64_t num_wall_spans = 0;
  // Sim-time spans only, sorted by name for deterministic output.
  std::vector<SpanTypeStats> span_types;
  // Wall-clock spans (durations in wall seconds), sorted by name.
  std::vector<SpanTypeStats> wall_span_types;
  // Slowest first (duration desc, start asc, root id asc as tiebreaks).
  std::vector<EvacuationCriticalPath> slowest_evacuations;

  const SpanTypeStats* FindType(std::string_view name) const;
  void WriteJson(JsonWriter& json) const;
};

// Computes the summary; keeps at most `max_critical_paths` evacuations.
TraceSummary AnalyzeTrace(const SpanTracer& tracer,
                          size_t max_critical_paths = 10);

}  // namespace spotcheck

#endif  // SRC_OBS_TRACE_ANALYZER_H_

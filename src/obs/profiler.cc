#include "src/obs/profiler.h"

#include "src/obs/json.h"

namespace spotcheck {

std::string_view ProfileCategoryName(ProfileCategory c) {
  switch (c) {
    case ProfileCategory::kDispatchStream:
      return "dispatch_stream";
    case ProfileCategory::kDispatchCallback:
      return "dispatch_callback";
    case ProfileCategory::kDispatchPeriodic:
      return "dispatch_periodic";
    case ProfileCategory::kLadderMerge:
      return "ladder_merge";
    case ProfileCategory::kCalendarWrap:
      return "calendar_wrap";
    case ProfileCategory::kLazyBucketSort:
      return "lazy_bucket_sort";
    case ProfileCategory::kPoolCapacityIndex:
      return "pool_capacity_index";
    case ProfileCategory::kPoolPlaceableIndex:
      return "pool_placeable_index";
    case ProfileCategory::kPoolPendingJoin:
      return "pool_pending_join";
    case ProfileCategory::kBackupAssign:
      return "backup_assign";
  }
  return "unknown";
}

std::string_view ProfileStatName(ProfileStat s) {
  switch (s) {
    case ProfileStat::kOverflowSpills:
      return "overflow_spills";
    case ProfileStat::kRingInserts:
      return "ring_inserts";
    case ProfileStat::kBucketDegrades:
      return "bucket_degrades";
    case ProfileStat::kLazySortedEvents:
      return "lazy_sorted_events";
    case ProfileStat::kLadderMergedEvents:
      return "ladder_merged_events";
    case ProfileStat::kLadderFallbackSorts:
      return "ladder_fallback_sorts";
    case ProfileStat::kCalendarRetunes:
      return "calendar_retunes";
    case ProfileStat::kRingRebases:
      return "ring_rebases";
    case ProfileStat::kIndexInserts:
      return "index_inserts";
    case ProfileStat::kIndexErases:
      return "index_erases";
    case ProfileStat::kBackupProbes:
      return "backup_probes";
  }
  return "unknown";
}

EventCostProfiler::EventCostProfiler(ProfilerConfig config) : config_(config) {
  if (config_.sample_interval < 1) {
    config_.sample_interval = 1;
  }
  // Deterministic per-category phase: category i's first timed occurrence is
  // the ((seed + i) mod N + 1)-th, so categories with the same event cadence
  // do not all sample the same occurrence and a different seed shifts the
  // whole timed subset.
  for (size_t i = 0; i < kNumProfileCategories; ++i) {
    countdown_[i] = static_cast<int64_t>(
                        (config_.seed + i) %
                        static_cast<uint64_t>(config_.sample_interval)) +
                    1;
  }
}

void EventCostProfiler::MergeFrom(const EventCostProfiler& other) {
  for (size_t i = 0; i < kNumProfileCategories; ++i) {
    CategoryStats& into = categories_[i];
    const CategoryStats& from = other.categories_[i];
    into.count += from.count;
    into.timed += from.timed;
    into.total_ns += from.total_ns;
    if (from.max_ns > into.max_ns) {
      into.max_ns = from.max_ns;
    }
  }
  for (size_t i = 0; i < kNumProfileStats; ++i) {
    stats_[i] += other.stats_[i];
  }
}

void EventCostProfiler::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("sample_interval");
  json.Int(config_.sample_interval);
  json.Key("categories");
  json.BeginObject();
  for (size_t i = 0; i < kNumProfileCategories; ++i) {
    const CategoryStats& s = categories_[i];
    json.Key(ProfileCategoryName(static_cast<ProfileCategory>(i)));
    json.BeginObject();
    json.Key("count");
    json.Int(s.count);
    json.Key("timed");
    json.Int(s.timed);
    json.Key("total_ns");
    json.Uint(s.total_ns);
    json.Key("max_ns");
    json.Uint(s.max_ns);
    const double mean_ns =
        s.timed > 0 ? static_cast<double>(s.total_ns) /
                          static_cast<double>(s.timed)
                    : 0.0;
    json.Key("mean_ns");
    json.Double(mean_ns);
    // Extrapolation over the exact count: the headline attribution number.
    json.Key("est_total_ns");
    json.Double(mean_ns * static_cast<double>(s.count));
    json.EndObject();
  }
  json.EndObject();
  json.Key("counters");
  json.BeginObject();
  for (size_t i = 0; i < kNumProfileStats; ++i) {
    json.Key(ProfileStatName(static_cast<ProfileStat>(i)));
    json.Int(stats_[i]);
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace spotcheck

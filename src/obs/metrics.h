// Lightweight metrics for simulation observability.
//
// A MetricsRegistry owns named counters, gauges, and fixed-bin histograms.
// Components look their instruments up ONCE (at construction) and keep the
// returned references; after that, recording is a plain integer add or a
// couple of compares -- cheap enough for the simulator hot path, which
// executes tens of millions of events per six-month evaluation cell.
//
// Design constraints, in order:
//   * Zero behavioral footprint: instruments only observe. Simulation
//     results must be bit-identical with metrics on, off, or absent.
//   * Per-cell isolation: each evaluation cell owns its registry, so the
//     parallel grid needs no atomics and cells never share mutable state.
//   * Stable references: instruments are heap-allocated once and never move,
//     so cached pointers survive later registrations.
//   * Null-tolerant call sites: every instrumented component accepts a
//     nullable MetricsRegistry*; the MetricCounter::Inc-style free helpers
//     below make "metrics absent" a single well-predicted branch.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace spotcheck {

class JsonWriter;

// Monotonically increasing integer count (events, operations, bytes).
class MetricCounter {
 public:
  void Increment(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Last-written value plus the running extremes (queue depths, pool sizes).
// The floor matters as much as the peak: a hot-spare pool that ever hit
// zero is a bounded-evacuation hazard even if its mean looks healthy.
class MetricGauge {
 public:
  void Set(double v) {
    value_ = v;
    if (!initialized_ || v > max_) {
      max_ = v;
    }
    if (!initialized_ || v < min_) {
      min_ = v;
    }
    initialized_ = true;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  double min() const { return min_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
  bool initialized_ = false;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
// the first/last bin, so total() always equals the number of observations.
// Tracks sum/min/max exactly (unbinned) for reconciliation.
class MetricHistogram {
 public:
  MetricHistogram(double lo, double hi, size_t bins);

  void Observe(double x);

  int64_t total() const { return total_; }
  double sum() const { return sum_; }
  double min() const { return total_ > 0 ? min_ : 0.0; }
  double max() const { return total_ > 0 ? max_ : 0.0; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t num_bins() const { return counts_.size(); }
  int64_t bin_count(size_t bin) const { return counts_[bin]; }
  double BinLowerEdge(size_t bin) const;

 private:
  double lo_;
  double hi_;
  double inv_width_;  // bins / (hi - lo), hoisted out of the hot path
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Null-tolerant recording helpers: instrumented components keep nullable
// instrument pointers (null when the owner was built without a registry).
inline void MetricInc(MetricCounter* c, int64_t n = 1) {
  if (c != nullptr) {
    c->Increment(n);
  }
}
inline void MetricSet(MetricGauge* g, double v) {
  if (g != nullptr) {
    g->Set(v);
  }
}
inline void MetricObserve(MetricHistogram* h, double x) {
  if (h != nullptr) {
    h->Observe(x);
  }
}

// Owns every instrument of one simulation (one evaluation cell). Lookup is
// by name and creates on first use; names are dot-scoped by subsystem
// ("controller.evacuations"). NOT thread-safe: a registry belongs to exactly
// one simulation, which is single-threaded by construction.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the instrument registered under `name`, creating it on first
  // use. Re-registering an existing name returns the same instance (for
  // histograms, the original bin layout wins). Registering a name that
  // exists as a different instrument kind returns a fresh instrument that
  // is NOT serialized twice -- callers should keep kinds distinct per name.
  MetricCounter& Counter(std::string_view name);
  MetricGauge& Gauge(std::string_view name);
  MetricHistogram& Histogram(std::string_view name, double lo, double hi,
                             size_t bins);

  // Read-side lookups for reports and tests; null when never registered.
  const MetricCounter* FindCounter(std::string_view name) const;
  const MetricGauge* FindGauge(std::string_view name) const;
  const MetricHistogram* FindHistogram(std::string_view name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Serializes every instrument, sorted by name within kind, as the JSON
  // object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void WriteJson(JsonWriter& json) const;
  std::string ToJson() const;

 private:
  // std::map keeps serialization deterministically name-sorted; unique_ptr
  // keeps instrument addresses stable across rehash-free growth.
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>> histograms_;
};

}  // namespace spotcheck

#endif  // SRC_OBS_METRICS_H_

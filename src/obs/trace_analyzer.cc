#include "src/obs/trace_analyzer.h"

#include <algorithm>
#include <map>

#include "src/obs/json.h"

namespace spotcheck {

namespace {

bool IsEvacuationRoot(const TraceSpan& span) {
  return span.parent == 0 &&
         (span.name == "evacuation" || span.name == "crash_recovery");
}

EvacuationCriticalPath BuildCriticalPath(const SpanTracer& tracer,
                                         const TraceSpan& root,
                                         std::vector<const TraceSpan*> children) {
  EvacuationCriticalPath path;
  path.root = root.id;
  path.root_name = root.name;
  path.track = std::string(tracer.TrackName(root.track));
  path.start_s = root.start.seconds();
  path.duration_s = root.duration().seconds();

  // Walk the root's interval left to right. Children sorted by (start, id);
  // overlap (concurrent cloud ops) is handled by advancing a cursor to the
  // furthest end seen, so each wall-clock microsecond is attributed once.
  std::sort(children.begin(), children.end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              if (a->start != b->start) {
                return a->start < b->start;
              }
              return a->id < b->id;
            });
  SimTime cursor = root.start;
  for (const TraceSpan* child : children) {
    if (child->instant) {
      continue;
    }
    // Children may legitimately outlive the root -- lazy restore keeps
    // paging after the VM resumes -- so each child is clamped to the root's
    // interval: the critical path explains the root's duration, nothing more.
    const SimTime start = std::max(child->start, root.start);
    const SimTime end = std::min(child->end, root.end);
    if (end <= cursor) {
      continue;
    }
    if (start > cursor) {
      path.segments.push_back({"(wait)", (start - cursor).seconds()});
      cursor = start;
    }
    path.segments.push_back({child->name, (end - cursor).seconds()});
    cursor = end;
  }
  if (root.end > cursor) {
    path.segments.push_back({"(other)", (root.end - cursor).seconds()});
  }
  return path;
}

}  // namespace

const SpanTypeStats* TraceSummary::FindType(std::string_view name) const {
  for (const SpanTypeStats& stats : span_types) {
    if (stats.name == name) {
      return &stats;
    }
  }
  return nullptr;
}

TraceSummary AnalyzeTrace(const SpanTracer& tracer,
                          size_t max_critical_paths) {
  TraceSummary summary;
  summary.num_spans = static_cast<int64_t>(tracer.spans().size());
  summary.num_tracks = static_cast<int64_t>(tracer.track_names().size());

  // Duration distribution per span name, instants excluded. Wall-clock
  // tracks (the grid's worker-profile spans) use a different timebase, so
  // they get their own distribution table instead of skewing the sim-time
  // percentiles.
  std::map<std::string, std::vector<double>, std::less<>> durations;
  std::map<std::string, std::vector<double>, std::less<>> wall_durations;
  // Direct children of each evacuation-class root, by root id.
  std::map<SpanId, std::vector<const TraceSpan*>> children_of;
  std::vector<const TraceSpan*> roots;

  for (const TraceSpan& span : tracer.spans()) {
    const bool wall =
        tracer.TrackClockDomain(span.track) == TraceClock::kWall;
    if (wall) {
      ++summary.num_wall_spans;
      if (!span.instant) {
        wall_durations[span.name].push_back(span.duration().seconds());
      }
      continue;  // never an evacuation root or a sim-time child
    }
    if (!span.instant) {
      durations[span.name].push_back(span.duration().seconds());
    }
    if (IsEvacuationRoot(span)) {
      roots.push_back(&span);
      children_of[span.id];
    } else if (span.parent != 0) {
      auto it = children_of.find(span.parent);
      if (it != children_of.end()) {
        it->second.push_back(&span);
      }
    }
  }

  const auto fold = [](std::map<std::string, std::vector<double>,
                                std::less<>>& table,
                       std::vector<SpanTypeStats>& out) {
    for (auto& [name, values] : table) {
      std::sort(values.begin(), values.end());
      SpanTypeStats stats;
      stats.name = name;
      stats.count = static_cast<int64_t>(values.size());
      for (const double v : values) {
        stats.total_s += v;
      }
      const size_t n = values.size();
      stats.p50_s = values[(n - 1) / 2];
      stats.p99_s =
          values[static_cast<size_t>(0.99 * static_cast<double>(n - 1))];
      stats.max_s = values.back();
      out.push_back(std::move(stats));
    }
  };
  fold(durations, summary.span_types);
  fold(wall_durations, summary.wall_span_types);

  // Slowest evacuations first; ties broken by start then id so the order is
  // independent of span recording order across identical runs.
  std::sort(roots.begin(), roots.end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              if (a->duration() != b->duration()) {
                return a->duration() > b->duration();
              }
              if (a->start != b->start) {
                return a->start < b->start;
              }
              return a->id < b->id;
            });
  if (roots.size() > max_critical_paths) {
    roots.resize(max_critical_paths);
  }
  for (const TraceSpan* root : roots) {
    summary.slowest_evacuations.push_back(
        BuildCriticalPath(tracer, *root, children_of[root->id]));
  }
  return summary;
}

void TraceSummary::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("num_spans");
  json.Int(num_spans);
  json.Key("num_tracks");
  json.Int(num_tracks);
  if (num_wall_spans > 0) {
    json.Key("num_wall_spans");
    json.Int(num_wall_spans);
  }

  const auto write_types = [&json](const std::vector<SpanTypeStats>& types) {
    json.BeginObject();
    for (const SpanTypeStats& stats : types) {
      json.Key(stats.name);
      json.BeginObject();
      json.Key("count");
      json.Int(stats.count);
      json.Key("total_s");
      json.Double(stats.total_s);
      json.Key("p50_s");
      json.Double(stats.p50_s);
      json.Key("p99_s");
      json.Double(stats.p99_s);
      json.Key("max_s");
      json.Double(stats.max_s);
      json.EndObject();
    }
    json.EndObject();
  };
  json.Key("span_types");
  write_types(span_types);
  if (!wall_span_types.empty()) {
    json.Key("wall_span_types");
    write_types(wall_span_types);
  }

  json.Key("slowest_evacuations");
  json.BeginArray();
  for (const EvacuationCriticalPath& path : slowest_evacuations) {
    json.BeginObject();
    json.Key("root_span");
    json.Int(path.root);
    json.Key("kind");
    json.String(path.root_name);
    json.Key("track");
    json.String(path.track);
    json.Key("start_s");
    json.Double(path.start_s);
    json.Key("duration_s");
    json.Double(path.duration_s);
    json.Key("critical_path");
    json.BeginArray();
    for (const CriticalPathSegment& segment : path.segments) {
      json.BeginObject();
      json.Key("name");
      json.String(segment.name);
      json.Key("duration_s");
      json.Double(segment.duration_s);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

}  // namespace spotcheck

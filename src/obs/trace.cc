#include "src/obs/trace.h"

#include <cstdio>
#include <filesystem>

#include "src/obs/json.h"

namespace spotcheck {

TraceTrackId SpanTracer::Track(std::string_view name, TraceClock clock) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) {
    return it->second;
  }
  track_names_.emplace_back(name);
  track_clocks_.push_back(clock);
  const TraceTrackId id = static_cast<TraceTrackId>(track_names_.size());
  track_ids_.emplace(std::string(name), id);
  return id;
}

SpanId SpanTracer::Begin(SimTime start, std::string_view name,
                         std::string_view category, TraceTrackId track,
                         SpanId parent) {
  TraceSpan& span = spans_.emplace_back();
  span.id = static_cast<SpanId>(spans_.size());
  span.parent = parent != 0 ? parent : CurrentParent();
  span.name = std::string(name);
  span.category = std::string(category);
  span.track = track;
  span.start = start;
  span.end = start;
  span.open = true;
  return span.id;
}

void SpanTracer::End(SpanId span, SimTime end) {
  if (span == 0 || span > spans_.size()) {
    return;
  }
  TraceSpan& s = spans_[span - 1];
  if (!s.open) {
    return;
  }
  s.end = end < s.start ? s.start : end;
  s.open = false;
}

SpanId SpanTracer::AddSpan(SimTime start, SimTime end, std::string_view name,
                           std::string_view category, TraceTrackId track,
                           SpanId parent) {
  const SpanId id = Begin(start, name, category, track, parent);
  End(id, end);
  return id;
}

SpanId SpanTracer::Instant(SimTime at, std::string_view name,
                           std::string_view category, TraceTrackId track,
                           SpanId parent) {
  const SpanId id = AddSpan(at, at, name, category, track, parent);
  spans_[id - 1].instant = true;
  return id;
}

void SpanTracer::AttrNum(SpanId span, std::string_view key, double value) {
  if (span == 0 || span > spans_.size()) {
    return;
  }
  TraceAttrValue& attr = spans_[span - 1].attrs.emplace_back();
  attr.key = std::string(key);
  attr.is_number = true;
  attr.number = value;
}

void SpanTracer::AttrStr(SpanId span, std::string_view key,
                         std::string_view value) {
  if (span == 0 || span > spans_.size()) {
    return;
  }
  TraceAttrValue& attr = spans_[span - 1].attrs.emplace_back();
  attr.key = std::string(key);
  attr.text = std::string(value);
}

void SpanTracer::CloseOpenSpans(SimTime at) {
  for (TraceSpan& span : spans_) {
    if (!span.open) {
      continue;
    }
    span.end = at < span.start ? span.start : at;
    span.open = false;
    TraceAttrValue& attr = span.attrs.emplace_back();
    attr.key = "truncated";
    attr.is_number = true;
    attr.number = 1.0;
  }
}

namespace {

// Sim-time tracks render as threads of process 1; wall-clock tracks as
// threads of process 2. Two processes keep the two timebases from being
// overlaid on one seemingly-shared timeline in Perfetto.
constexpr int64_t kSimPid = 1;
constexpr int64_t kWallPid = 2;

void WriteEventHeader(JsonWriter& json, std::string_view phase, int64_t pid,
                      TraceTrackId track) {
  json.Key("ph");
  json.String(phase);
  json.Key("pid");
  json.Int(pid);
  json.Key("tid");
  json.Int(track);
}

void WriteProcessName(JsonWriter& json, int64_t pid, std::string_view name) {
  json.BeginObject();
  WriteEventHeader(json, "M", pid, 0);
  json.Key("name");
  json.String("process_name");
  json.Key("args");
  json.BeginObject();
  json.Key("name");
  json.String(name);
  json.EndObject();
  json.EndObject();
}

}  // namespace

void SpanTracer::WriteChromeTraceJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();

  bool any_wall = false;
  for (const TraceClock clock : track_clocks_) {
    any_wall = any_wall || clock == TraceClock::kWall;
  }
  WriteProcessName(json, kSimPid, "sim-time");
  if (any_wall) {
    WriteProcessName(json, kWallPid, "wall-clock (us since grid start)");
  }

  const auto pid_of = [this](TraceTrackId track) {
    return TrackClockDomain(track) == TraceClock::kWall ? kWallPid : kSimPid;
  };

  // One metadata event per track names the Perfetto "thread" it renders as.
  for (TraceTrackId track = 1; track <= track_names_.size(); ++track) {
    json.BeginObject();
    WriteEventHeader(json, "M", pid_of(track), track);
    json.Key("name");
    json.String("thread_name");
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    json.String(track_names_[track - 1]);
    json.EndObject();
    json.EndObject();
  }

  for (const TraceSpan& span : spans_) {
    json.BeginObject();
    WriteEventHeader(json, span.instant ? "i" : "X", pid_of(span.track),
                     span.track);
    json.Key("name");
    json.String(span.name);
    if (!span.category.empty()) {
      json.Key("cat");
      json.String(span.category);
    }
    json.Key("ts");
    json.Int(span.start.micros());
    if (span.instant) {
      json.Key("s");
      json.String("t");  // thread-scoped instant
    } else {
      json.Key("dur");
      json.Int(span.duration().micros());
    }
    json.Key("args");
    json.BeginObject();
    json.Key("span");
    json.Int(span.id);
    if (span.parent != 0) {
      json.Key("parent");
      json.Int(span.parent);
    }
    for (const TraceAttrValue& attr : span.attrs) {
      json.Key(attr.key);
      if (attr.is_number) {
        json.Double(attr.number);
      } else {
        json.String(attr.text);
      }
    }
    json.EndObject();
    json.EndObject();
  }

  json.EndArray();
  json.EndObject();
}

std::string SpanTracer::ToChromeTraceJson() const {
  JsonWriter json;
  WriteChromeTraceJson(json);
  return json.str();
}

bool SpanTracer::WriteTo(const std::string& path) const {
  const std::filesystem::path file(path);
  std::error_code ec;
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path(), ec);
    if (ec) {
      return false;
    }
  }
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return false;
  }
  const std::string text = ToChromeTraceJson();
  const size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const bool closed = std::fclose(out) == 0;
  return written == text.size() && closed;
}

}  // namespace spotcheck

// Minimal JSON emitter for observability artifacts (run reports, metric
// dumps). Write-only by design: the simulator never consumes JSON, it only
// exports it for offline tooling, so a ~100-line append-only writer beats a
// dependency on a full JSON library.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("counters");
//   w.BeginObject();
//   w.Key("sim.events_fired"); w.Int(42);
//   w.EndObject();
//   w.EndObject();
//   std::string text = w.str();
//
// The writer inserts commas automatically and indents two spaces per level.
// Doubles are emitted with enough digits (%.17g) to round-trip bit-exactly;
// NaN/Inf (not representable in JSON) are emitted as null.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spotcheck {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Object member key; must be followed by exactly one value (or container).
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  // Exact unsigned emission: values >= 2^63 (and anything >= 2^53 that a
  // double round-trip would corrupt) are written digit-for-digit.
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  const std::string& str() const { return out_; }

  // Escapes `value` per RFC 8259 (quotes, backslash, control characters).
  static std::string Escape(std::string_view value);

 private:
  // Emits the separating comma/newline/indent owed before a new value or key.
  void Prepare(bool is_key);

  std::string out_;
  // One entry per open container: true when at least one element was written
  // (so the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace spotcheck

#endif  // SRC_OBS_JSON_H_

#include "src/obs/run_report.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "src/obs/json.h"
#include "src/obs/profiler.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/obs/trace_analyzer.h"

namespace spotcheck {

std::string RunReport::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Int(kRunReportSchemaVersion);

  json.Key("label");
  json.String(label);

  json.Key("policy_spec");
  json.String(policy_spec);

  json.Key("summary");
  json.BeginObject();
  for (const auto& [name, value] : summary) {
    json.Key(name);
    json.Double(value);
  }
  json.EndObject();

  json.Key("chaos");
  json.BeginObject();
  json.Key("active");
  json.Bool(chaos_active);
  json.Key("level");
  json.Int(chaos_level);
  json.Key("seed");
  json.Int(static_cast<int64_t>(chaos_seed));
  json.EndObject();

  json.Key("trace_catalog");
  json.BeginObject();
  json.Key("hits");
  json.Int(trace_cache_hits);
  json.Key("misses");
  json.Int(trace_cache_misses);
  json.EndObject();

  json.Key("trace_summary");
  if (trace != nullptr) {
    AnalyzeTrace(*trace).WriteJson(json);
  } else {
    json.Null();
  }

  json.Key("profile");
  if (profile != nullptr) {
    profile->WriteJson(json);
  } else {
    json.Null();
  }

  json.Key("timeseries");
  if (timeseries != nullptr) {
    timeseries->WriteSummaryJson(json);
  } else {
    json.Null();
  }

  json.Key("metrics");
  if (metrics != nullptr) {
    metrics->WriteJson(json);
  } else {
    // Consumers iterate the metrics sections; an empty object keeps their
    // shape stable when a report was built without a registry.
    json.BeginObject();
    json.EndObject();
  }

  json.Key("events");
  json.BeginArray();
  for (const RunReportEvent& event : events) {
    json.BeginObject();
    json.Key("time_s");
    json.Double(event.time_s);
    json.Key("kind");
    json.String(event.kind);
    json.Key("vm");
    json.String(event.vm);
    json.Key("host");
    json.String(event.host);
    json.Key("market");
    json.String(event.market);
    json.Key("detail");
    json.String(event.detail);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.str();
}

bool RunReport::WriteTo(const std::string& path) const {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    // A pre-existing directory is fine; only the fopen below decides failure.
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string text = ToJson();
  const bool write_ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool close_ok = std::fclose(f) == 0;
  return write_ok && close_ok;
}

}  // namespace spotcheck

// Sim-time telemetry time-series: fixed-interval sampling of registered
// gauges into columnar ring buffers.
//
// MetricGauge keeps min/max/last of a value but discards its trajectory; for
// diagnosing fleet-scale behavior (placement bursts, evacuation storms,
// queue-depth ramps) the *shape over sim time* is the signal. A
// TimeSeriesRecorder holds named sampler callbacks and, every
// TimeSeriesConfig::interval of simulated time, evaluates all of them into a
// shared time column plus one value ring per series (overwrite-oldest once
// max_samples is reached, running summaries over ALL samples).
//
// Contract (same as MetricsRegistry/SpanTracer/EventCostProfiler):
//   * Zero behavioral footprint: the recorder is driven from the simulator's
//     dispatch loop (one integer compare per event), NOT via scheduled
//     events -- a sampling event would consume seq numbers and shift
//     same-timestamp interleaving, breaking golden-CSV bit-identity.
//     Samplers only read simulation state (or wall-side process facts like
//     RSS); they never mutate it.
//   * Per-cell isolation: one recorder per evaluation cell; no atomics.
//   * Null-tolerant: the simulator keeps a nullable pointer; recorder
//     absent costs one predicted branch per event.

#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace spotcheck {

class JsonWriter;

struct TimeSeriesConfig {
  // Simulated time between samples. Hourly => 4320 samples over a six-month
  // horizon (the newest max_samples are retained) -- enough to see every
  // ramp and storm, and cheap enough (samples x series sampler calls) that
  // the recorder stays inside the flight recorder's 5% overhead contract.
  SimDuration interval = SimDuration::Hours(1);
  // Ring capacity per series (shared time column included). Summaries
  // (min/max/last, largest delta) always cover every sample ever taken.
  size_t max_samples = 4096;
};

class TimeSeriesRecorder {
 public:
  using SampleFn = std::function<double()>;

  explicit TimeSeriesRecorder(TimeSeriesConfig config = {});
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  // Registers a gauge. `sampler` must outlive the recorder's last Sample()
  // and must be a pure read of observable state. Registration order is the
  // caller's wiring order; serialization sorts by name.
  void AddSeries(std::string name, SampleFn sampler);

  // Hot-path hook: samples iff `now` has reached the next due instant. The
  // first call always samples (baseline at the first executed event).
  void SampleIfDue(SimTime now) {
    if (now.micros() < next_due_us_) {
      return;
    }
    Sample(now);
  }
  // Forced sample (used for the final post-run snapshot).
  void Sample(SimTime now);

  size_t num_series() const { return series_.size(); }
  int64_t total_samples() const { return total_samples_; }
  size_t retained_samples() const;

  // Full columnar document: {"interval_s", "max_samples", "total_samples",
  // "retained_samples", "time_s": [...], "series": {name: [...]},
  // "summary": <WriteSummaryJson value>}.
  void WriteJson(JsonWriter& json) const;
  // Compact per-series summary for run_report.json: {name: {min, max, last,
  // largest_delta: {delta, from_s, to_s}}} under "series", plus sampling
  // facts. The largest-delta window names the sim-time interval where the
  // series moved the most between consecutive samples -- the "when did it
  // blow up" pointer.
  void WriteSummaryJson(JsonWriter& json) const;
  // Writes the full document to `path`; false on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    SampleFn sampler;
    std::vector<double> ring;  // parallel to time ring, same head/rotation
    // Running summary over ALL samples, not just the retained ring.
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;
    double prev = 0.0;
    double largest_delta = 0.0;  // max |v[i] - v[i-1]|
    double delta_from_s = 0.0;
    double delta_to_s = 0.0;
  };

  // Chronological ring order: element i of the returned sequence lives at
  // ring index (start + i) % capacity.
  size_t RingStart() const;

  TimeSeriesConfig config_;
  std::vector<Series> series_;
  std::vector<int64_t> time_us_;  // shared time column (ring)
  int64_t total_samples_ = 0;
  int64_t prev_time_us_ = 0;
  int64_t next_due_us_ = 0;  // 0 => first event samples immediately
};

}  // namespace spotcheck

#endif  // SRC_OBS_TIMESERIES_H_

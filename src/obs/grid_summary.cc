#include "src/obs/grid_summary.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <system_error>

#include "src/obs/json.h"
#include "src/obs/profiler.h"

namespace spotcheck {

namespace {

// Lifecycle kinds worth a per-market breakdown; other event kinds (placement
// churn, billing rows) would drown the table without informing it.
constexpr const char* kMarketKinds[] = {
    "revocation-warning", "evacuation-started",  "evacuation-completed",
    "crash-recovery",     "repatriation-started", "vm-lost",
};

bool IsMarketKind(const std::string& kind) {
  for (const char* k : kMarketKinds) {
    if (kind == k) {
      return true;
    }
  }
  return false;
}

struct SlowEvacuation {
  std::string cell;
  std::string vm;
  double time_s = 0.0;
  double downtime_s = 0.0;
  double degraded_s = 0.0;
};

// Per-policy aggregate across the cells that ran the same resolved spec
// (one policy x several mechanisms in the figure grids).
struct PolicyAggregate {
  int64_t cells = 0;
  double cost_sum = 0.0;
  double unavailability_sum = 0.0;
  int64_t evacuations = 0;
  int64_t repatriations = 0;
};

// Groups by the resolved spec the runner recorded; reports from before the
// strategy layer carry no spec, so the label's "<policy>/" prefix stands in.
std::string PolicyGroupKey(const RunReport& report) {
  if (!report.policy_spec.empty()) {
    return report.policy_spec;
  }
  const size_t slash = report.label.find('/');
  return slash == std::string::npos ? report.label
                                    : report.label.substr(0, slash);
}

double SummaryValue(const RunReport& report, const char* name) {
  for (const auto& [key, value] : report.summary) {
    if (key == name) {
      return value;
    }
  }
  return 0.0;
}

}  // namespace

std::string BuildGridSummaryJson(
    const std::vector<std::shared_ptr<const RunReport>>& reports,
    size_t max_slowest, const GridContentionReport* contention) {
  std::vector<std::string> cells;
  // Key-sorted maps keep the document deterministic regardless of cell order.
  std::map<std::string, double> totals;
  std::map<std::string, PolicyAggregate> policies;
  std::map<std::string, std::map<std::string, int64_t>> per_market;
  std::vector<SlowEvacuation> evacuations;
  bool chaos_active = false;
  int chaos_level = 0;
  uint64_t chaos_seed = 0;
  // Fleet-wide event-cost roll-up: the per-cell profiles merged into one
  // table. Category order (and sample_interval) come from the first
  // profiled cell; MergeFrom adds counts/totals and keeps maxima.
  EventCostProfiler hotspots;
  int64_t profiled_cells = 0;

  for (const auto& report : reports) {
    if (report == nullptr) {
      continue;
    }
    cells.push_back(report->label);
    if (report->profile != nullptr) {
      hotspots.MergeFrom(*report->profile);
      ++profiled_cells;
    }
    if (report->chaos_active) {
      chaos_active = true;
      chaos_level = report->chaos_level;
      chaos_seed = report->chaos_seed;
    }
    for (const auto& [name, value] : report->summary) {
      if (name.rfind("result.", 0) == 0) {
        totals[name] += value;
      }
    }
    PolicyAggregate& agg = policies[PolicyGroupKey(*report)];
    ++agg.cells;
    agg.cost_sum += SummaryValue(*report, "result.avg_cost_per_vm_hour");
    agg.unavailability_sum +=
        SummaryValue(*report, "result.unavailability_pct");
    agg.evacuations +=
        static_cast<int64_t>(SummaryValue(*report, "result.evacuations"));
    agg.repatriations +=
        static_cast<int64_t>(SummaryValue(*report, "result.repatriations"));
    for (const RunReportEvent& event : report->events) {
      if (event.market.empty() || !IsMarketKind(event.kind)) {
        continue;
      }
      ++per_market[event.market][event.kind];
      if (event.kind == "evacuation-completed") {
        SlowEvacuation evac;
        evac.cell = report->label;
        evac.vm = event.vm;
        evac.time_s = event.time_s;
        // The controller records completion details as
        // "downtime=12.3s degraded=45.6s".
        if (std::sscanf(event.detail.c_str(), "downtime=%lfs degraded=%lfs",
                        &evac.downtime_s, &evac.degraded_s) == 2) {
          evacuations.push_back(std::move(evac));
        }
      }
    }
  }

  std::sort(evacuations.begin(), evacuations.end(),
            [](const SlowEvacuation& a, const SlowEvacuation& b) {
              if (a.downtime_s != b.downtime_s) {
                return a.downtime_s > b.downtime_s;
              }
              if (a.time_s != b.time_s) {
                return a.time_s < b.time_s;
              }
              if (a.cell != b.cell) {
                return a.cell < b.cell;
              }
              return a.vm < b.vm;
            });
  if (evacuations.size() > max_slowest) {
    evacuations.resize(max_slowest);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Int(kRunReportSchemaVersion);
  json.Key("num_cells");
  json.Int(static_cast<int64_t>(cells.size()));
  json.Key("cells");
  json.BeginArray();
  for (const std::string& cell : cells) {
    json.String(cell);
  }
  json.EndArray();

  json.Key("chaos");
  json.BeginObject();
  json.Key("active");
  json.Bool(chaos_active);
  json.Key("level");
  json.Int(chaos_level);
  json.Key("seed");
  json.Int(static_cast<int64_t>(chaos_seed));
  json.EndObject();

  json.Key("totals");
  json.BeginObject();
  for (const auto& [name, value] : totals) {
    json.Key(name);
    json.Double(value);
  }
  json.EndObject();

  // Per-policy cost/availability breakdown, keyed by the resolved policy
  // spec (cells that ran the same policy under different mechanisms fold
  // into one row -- the figure-grid reading order).
  json.Key("policies");
  json.BeginObject();
  for (const auto& [spec, agg] : policies) {
    json.Key(spec);
    json.BeginObject();
    json.Key("cells");
    json.Int(agg.cells);
    json.Key("mean_cost_per_vm_hour");
    json.Double(agg.cells > 0 ? agg.cost_sum / static_cast<double>(agg.cells)
                              : 0.0);
    json.Key("mean_unavailability_pct");
    json.Double(agg.cells > 0
                    ? agg.unavailability_sum / static_cast<double>(agg.cells)
                    : 0.0);
    json.Key("evacuations");
    json.Int(agg.evacuations);
    json.Key("repatriations");
    json.Int(agg.repatriations);
    json.EndObject();
  }
  json.EndObject();

  json.Key("per_market");
  json.BeginObject();
  for (const auto& [market, kinds] : per_market) {
    json.Key(market);
    json.BeginObject();
    for (const auto& [kind, count] : kinds) {
      json.Key(kind);
      json.Int(count);
    }
    json.EndObject();
  }
  json.EndObject();

  if (contention != nullptr) {
    // Per-worker contention breakdown: where each grid worker's wall time
    // went, and what the pool paid up front. The scaling-debug section --
    // a worker whose catalog_lock_wait or report_build dwarfs the others'
    // is the shared bottleneck.
    json.Key("contention");
    json.BeginObject();
    json.Key("prewarm_traces");
    json.Int(contention->prewarm_traces);
    json.Key("prewarm_ms");
    json.Double(static_cast<double>(contention->prewarm_ns) / 1e6);
    json.Key("tracer_merge_ms");
    json.Double(static_cast<double>(contention->tracer_merge_ns) / 1e6);
    json.Key("total_ms");
    json.Double(static_cast<double>(contention->total_ns) / 1e6);
    json.Key("workers");
    json.BeginArray();
    for (const GridWorkerProfile& w : contention->workers) {
      json.BeginObject();
      json.Key("worker");
      json.Int(w.worker);
      json.Key("cells");
      json.Int(w.cells);
      json.Key("busy_ms");
      json.Double(static_cast<double>(w.busy_ns) / 1e6);
      json.Key("report_build_ms");
      json.Double(static_cast<double>(w.report_build_ns) / 1e6);
      json.Key("catalog_hits");
      json.Int(w.catalog_hits);
      json.Key("catalog_misses");
      json.Int(w.catalog_misses);
      json.Key("catalog_lock_wait_ms");
      json.Double(static_cast<double>(w.catalog_lock_wait_ns) / 1e6);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  // Fleet-wide event-cost hotspots: every profiled cell's profile merged
  // into one table (null when no cell ran with profiling enabled). The
  // top est_total_ns categories here are the grid's wall-clock sinks.
  json.Key("hotspots");
  if (profiled_cells > 0) {
    json.BeginObject();
    json.Key("profiled_cells");
    json.Int(profiled_cells);
    json.Key("profile");
    hotspots.WriteJson(json);
    json.EndObject();
  } else {
    json.Null();
  }

  json.Key("slowest_evacuations");
  json.BeginArray();
  for (const SlowEvacuation& evac : evacuations) {
    json.BeginObject();
    json.Key("cell");
    json.String(evac.cell);
    json.Key("vm");
    json.String(evac.vm);
    json.Key("time_s");
    json.Double(evac.time_s);
    json.Key("downtime_s");
    json.Double(evac.downtime_s);
    json.Key("degraded_s");
    json.Double(evac.degraded_s);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.str();
}

bool WriteGridSummary(
    const std::string& path,
    const std::vector<std::shared_ptr<const RunReport>>& reports,
    size_t max_slowest, const GridContentionReport* contention) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string text =
      BuildGridSummaryJson(reports, max_slowest, contention);
  const bool write_ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool close_ok = std::fclose(f) == 0;
  return write_ok && close_ok;
}

}  // namespace spotcheck

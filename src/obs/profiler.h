// Sampled event-cost profiler: attributes wall-clock time to kernel and
// controller subsystems without perturbing simulation order.
//
// The flight-recorder question ROADMAP item 1 leaves open -- events/s
// collapses 206k -> 92k -> 6.1k/s from 10k to 1M VMs -- is a *where does the
// time go* question, which MetricsRegistry (what happened) and SpanTracer
// (sim-time causality) cannot answer. EventCostProfiler closes the gap with
// two instruments:
//
//   * Timed categories: each occurrence of a category is counted exactly;
//     a deterministic 1-in-N subset (rare maintenance episodes: every
//     occurrence) is additionally timed with std::chrono::steady_clock.
//     count is exact, total_ns/max_ns cover the timed subset, and
//     est_total_ns = mean_ns * count extrapolates.
//   * Structural counters: exact tallies of the churn suspects (overflow
//     spills, ladder merges, bucket degrades, per-market set insert/erase
//     traffic) that explain *why* a category got slow.
//
// Contract (same as MetricsRegistry/SpanTracer):
//   * Zero behavioral footprint: only wall-clock reads, never sim state, so
//     results are bit-identical with the profiler on, off, or absent.
//     Sampling decisions depend only on (seed, occurrence index), never on
//     measured time, so the timed subset is reproducible too.
//   * Per-cell isolation: one profiler per evaluation cell, no atomics.
//   * Null-tolerant call sites: hook sites keep a nullable pointer; the
//     ProfileAdd/ProfileScope helpers make "profiler absent" one predicted
//     branch.

#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spotcheck {

class JsonWriter;

// Where one dispatched event or queue/index maintenance episode spends its
// wall-clock time. Dispatch categories partition RunOne() by the kernel's
// own event taxonomy (callbacks carry no type info beyond this).
enum class ProfileCategory : uint8_t {
  kDispatchStream = 0,   // replay-stream fire (price-trace points)
  kDispatchCallback,     // one-shot scheduled callback
  kDispatchPeriodic,     // periodic tick
  kLadderMerge,          // SortTail: overflow-ladder tail merge
  kCalendarWrap,         // Wrap(): window advance + ladder drain + retune
  kLazyBucketSort,       // FindEarliest: first-touch bucket sort
  kPoolCapacityIndex,    // capacity index maintenance in host_pool
  kPoolPlaceableIndex,   // placeable-subindex refresh in host_pool
  kPoolPendingJoin,      // pending/joinable bookkeeping in host_pool
  kBackupAssign,         // backup-server stream placement (BackupPool)
};
inline constexpr size_t kNumProfileCategories = 10;
std::string_view ProfileCategoryName(ProfileCategory c);

// Exact (never sampled) structural counters for the cliff suspects named in
// ROADMAP item 1.
enum class ProfileStat : uint8_t {
  kOverflowSpills = 0,   // events appended beyond the calendar window
  kRingInserts,          // events inserted into the bucket ring
  kBucketDegrades,       // sorted-bucket inserts demoted to unsorted append
  kLazySortedEvents,     // events sorted by first-touch bucket sorts
  kLadderMergedEvents,   // tail events merged into the sorted ladder
  kLadderFallbackSorts,  // SortTail calls that fell back to std::sort
  kCalendarRetunes,      // bucket-width changes at Wrap()
  kRingRebases,          // RebaseRingTo flushes of live ring events
  kIndexInserts,         // per-market std::set inserts (pool indexes)
  kIndexErases,          // per-market std::set erases (pool indexes)
  kBackupProbes,         // backup servers probed per stream assignment
};
inline constexpr size_t kNumProfileStats = 11;
std::string_view ProfileStatName(ProfileStat s);

struct ProfilerConfig {
  // Frequent categories (dispatch, lazy bucket sorts, pool indexes) time 1
  // occurrence in sample_interval; rare maintenance episodes (ladder merge,
  // wrap) are always timed. Must be >= 1.
  int64_t sample_interval = 64;
  // Staggers each category's first timed occurrence deterministically so
  // co-periodic work (e.g. a tick every N events) cannot alias with the
  // sampler. Same seed => same timed subset.
  uint64_t seed = 0;
};

class EventCostProfiler {
 public:
  struct CategoryStats {
    int64_t count = 0;     // occurrences observed (exact)
    int64_t timed = 0;     // occurrences wall-clocked
    uint64_t total_ns = 0;  // over the timed subset
    uint64_t max_ns = 0;    // over the timed subset
  };

  explicit EventCostProfiler(ProfilerConfig config = {});
  EventCostProfiler(const EventCostProfiler&) = delete;
  EventCostProfiler& operator=(const EventCostProfiler&) = delete;

  // Counts one occurrence of `c`; true when this occurrence should be timed
  // (the caller then owes exactly one End with the elapsed nanoseconds).
  bool Begin(ProfileCategory c) {
    const size_t i = static_cast<size_t>(c);
    CategoryStats& s = categories_[i];
    ++s.count;
    if (!AlwaysTimed(c)) {
      if (--countdown_[i] > 0) {
        return false;
      }
      countdown_[i] = config_.sample_interval;
    }
    ++s.timed;
    return true;
  }
  void End(ProfileCategory c, uint64_t ns) {
    CategoryStats& s = categories_[static_cast<size_t>(c)];
    s.total_ns += ns;
    if (ns > s.max_ns) {
      s.max_ns = ns;
    }
  }

  void Add(ProfileStat s, int64_t n = 1) {
    stats_[static_cast<size_t>(s)] += n;
  }

  const CategoryStats& stats(ProfileCategory c) const {
    return categories_[static_cast<size_t>(c)];
  }
  int64_t stat(ProfileStat s) const {
    return stats_[static_cast<size_t>(s)];
  }
  int64_t sample_interval() const { return config_.sample_interval; }

  // Rare maintenance episodes are always timed: they are orders of magnitude
  // less frequent than dispatch but can each be O(ladder) long, so sampling
  // 1-in-N would miss the spikes the profiler exists to catch. Lazy bucket
  // sorts deliberately do NOT qualify: one fires per bucket touch (about as
  // often as dispatch), and always-timing them costs two clock reads each --
  // the kLazySortedEvents counter keeps their volume exact instead.
  static constexpr bool AlwaysTimed(ProfileCategory c) {
    return c == ProfileCategory::kLadderMerge ||
           c == ProfileCategory::kCalendarWrap;
  }

  // Accumulates another cell's profile into this one (grid roll-up):
  // counts/timed/total_ns sum, max_ns takes the max.
  void MergeFrom(const EventCostProfiler& other);

  // {"sample_interval": N, "categories": {name: {count, timed, total_ns,
  // max_ns, mean_ns, est_total_ns}}, "counters": {name: N}}. total_ns /
  // max_ns use exact unsigned emission (they exceed 2^53 on long runs).
  void WriteJson(JsonWriter& json) const;

 private:
  ProfilerConfig config_;
  std::array<CategoryStats, kNumProfileCategories> categories_{};
  std::array<int64_t, kNumProfileCategories> countdown_{};
  std::array<int64_t, kNumProfileStats> stats_{};
};

// Null-tolerant counter helper (mirrors MetricInc).
inline void ProfileAdd(EventCostProfiler* p, ProfileStat s, int64_t n = 1) {
  if (p != nullptr) {
    p->Add(s, n);
  }
}

// RAII timing scope. Reads steady_clock only for occurrences the profiler
// elects to time; with a null profiler the whole scope is one branch.
class ProfileScope {
 public:
  ProfileScope(EventCostProfiler* profiler, ProfileCategory category)
      : profiler_(profiler), category_(category) {
    if (profiler_ != nullptr && profiler_->Begin(category_)) {
      timed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfileScope() {
    if (timed_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->End(
          category_,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  EventCostProfiler* profiler_;
  ProfileCategory category_;
  bool timed_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spotcheck

#endif  // SRC_OBS_PROFILER_H_

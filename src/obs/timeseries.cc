#include "src/obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "src/obs/json.h"

namespace spotcheck {

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesConfig config)
    : config_(config) {
  if (config_.max_samples < 2) {
    config_.max_samples = 2;  // a delta needs two samples
  }
  if (config_.interval <= SimDuration::Zero()) {
    config_.interval = SimDuration::Minutes(15);
  }
}

void TimeSeriesRecorder::AddSeries(std::string name, SampleFn sampler) {
  Series series;
  series.name = std::move(name);
  series.sampler = std::move(sampler);
  series.ring.reserve(std::min<size_t>(config_.max_samples, 256));
  // Late registration would leave this ring shorter than the time column;
  // keep them aligned by back-filling the samples it missed as its first
  // reading would not be meaningful anyway. In practice all series are
  // registered before the first event runs, so this stays empty.
  series.ring.resize(retained_samples(), 0.0);
  series_.push_back(std::move(series));
}

void TimeSeriesRecorder::Sample(SimTime now) {
  next_due_us_ = now.micros() + config_.interval.micros();

  const size_t cap = config_.max_samples;
  const size_t write =
      static_cast<size_t>(total_samples_ % static_cast<int64_t>(cap));
  const bool grow = static_cast<size_t>(total_samples_) < cap;

  if (grow) {
    time_us_.push_back(now.micros());
  } else {
    time_us_[write] = now.micros();
  }

  for (Series& series : series_) {
    const double v = series.sampler ? series.sampler() : 0.0;
    if (grow) {
      series.ring.push_back(v);
    } else {
      series.ring[write] = v;
    }
    if (total_samples_ == 0) {
      series.min = series.max = v;
    } else {
      series.min = std::min(series.min, v);
      series.max = std::max(series.max, v);
      const double delta = std::abs(v - series.prev);
      if (delta > series.largest_delta) {
        series.largest_delta = delta;
        series.delta_from_s = static_cast<double>(prev_time_us_) / 1e6;
        series.delta_to_s = now.seconds();
      }
    }
    series.prev = v;
    series.last = v;
  }

  prev_time_us_ = now.micros();
  ++total_samples_;
}

size_t TimeSeriesRecorder::retained_samples() const { return time_us_.size(); }

size_t TimeSeriesRecorder::RingStart() const {
  const size_t cap = config_.max_samples;
  if (static_cast<size_t>(total_samples_) <= cap) {
    return 0;
  }
  return static_cast<size_t>(total_samples_ % static_cast<int64_t>(cap));
}

void TimeSeriesRecorder::WriteSummaryJson(JsonWriter& json) const {
  // Name-sorted view for deterministic serialization regardless of wiring
  // order.
  std::vector<const Series*> sorted;
  sorted.reserve(series_.size());
  for (const Series& series : series_) {
    sorted.push_back(&series);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  json.BeginObject();
  json.Key("interval_s");
  json.Double(config_.interval.seconds());
  json.Key("total_samples");
  json.Int(total_samples_);
  json.Key("series");
  json.BeginObject();
  for (const Series* series : sorted) {
    json.Key(series->name);
    json.BeginObject();
    json.Key("min");
    json.Double(total_samples_ > 0 ? series->min : 0.0);
    json.Key("max");
    json.Double(total_samples_ > 0 ? series->max : 0.0);
    json.Key("last");
    json.Double(total_samples_ > 0 ? series->last : 0.0);
    json.Key("largest_delta");
    json.BeginObject();
    json.Key("delta");
    json.Double(series->largest_delta);
    json.Key("from_s");
    json.Double(series->delta_from_s);
    json.Key("to_s");
    json.Double(series->delta_to_s);
    json.EndObject();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

void TimeSeriesRecorder::WriteJson(JsonWriter& json) const {
  std::vector<const Series*> sorted;
  sorted.reserve(series_.size());
  for (const Series& series : series_) {
    sorted.push_back(&series);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Series* a, const Series* b) { return a->name < b->name; });

  const size_t retained = retained_samples();
  const size_t start = RingStart();
  const size_t cap = config_.max_samples;

  json.BeginObject();
  json.Key("interval_s");
  json.Double(config_.interval.seconds());
  json.Key("max_samples");
  json.Int(static_cast<int64_t>(config_.max_samples));
  json.Key("total_samples");
  json.Int(total_samples_);
  json.Key("retained_samples");
  json.Int(static_cast<int64_t>(retained));
  json.Key("time_s");
  json.BeginArray();
  for (size_t i = 0; i < retained; ++i) {
    json.Double(static_cast<double>(time_us_[(start + i) % cap]) / 1e6);
  }
  json.EndArray();
  json.Key("series");
  json.BeginObject();
  for (const Series* series : sorted) {
    json.Key(series->name);
    json.BeginArray();
    for (size_t i = 0; i < retained; ++i) {
      json.Double(series->ring[(start + i) % cap]);
    }
    json.EndArray();
  }
  json.EndObject();
  json.Key("summary");
  WriteSummaryJson(json);
  json.EndObject();
}

bool TimeSeriesRecorder::WriteTo(const std::string& path) const {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    // A pre-existing directory is fine; only the fopen below decides failure.
  }
  JsonWriter json;
  WriteJson(json);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  const std::string& text = json.str();
  const size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const bool ok = std::fclose(out) == 0 && written == text.size();
  return ok;
}

}  // namespace spotcheck

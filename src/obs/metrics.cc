#include "src/obs/metrics.h"

#include <algorithm>

#include "src/obs/json.h"

namespace spotcheck {

MetricHistogram::MetricHistogram(double lo, double hi, size_t bins)
    : lo_(lo),
      hi_(hi > lo ? hi : lo + 1.0),
      inv_width_(static_cast<double>(bins == 0 ? 1 : bins) / (hi_ - lo_)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void MetricHistogram::Observe(double x) {
  const double scaled = (x - lo_) * inv_width_;
  size_t bin;
  if (scaled <= 0.0) {
    bin = 0;
  } else if (scaled >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<size_t>(scaled);
  }
  ++counts_[bin];
  if (total_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++total_;
  sum_ += x;
}

double MetricHistogram::BinLowerEdge(size_t bin) const {
  return lo_ + static_cast<double>(bin) / inv_width_;
}

MetricCounter& MetricsRegistry::Counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<MetricCounter>())
              .first->second;
}

MetricGauge& MetricsRegistry::Gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return *it->second;
  }
  return *gauges_.emplace(std::string(name), std::make_unique<MetricGauge>())
              .first->second;
}

MetricHistogram& MetricsRegistry::Histogram(std::string_view name, double lo,
                                            double hi, size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return *it->second;
  }
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<MetricHistogram>(lo, hi, bins))
              .first->second;
}

const MetricCounter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const MetricGauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const MetricHistogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name);
    json.Int(counter->value());
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name);
    json.BeginObject();
    json.Key("value");
    json.Double(gauge->value());
    json.Key("min");
    json.Double(gauge->min());
    json.Key("max");
    json.Double(gauge->max());
    json.EndObject();
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name);
    json.BeginObject();
    json.Key("lo");
    json.Double(histogram->lo());
    json.Key("hi");
    json.Double(histogram->hi());
    json.Key("total");
    json.Int(histogram->total());
    json.Key("sum");
    json.Double(histogram->sum());
    json.Key("min");
    json.Double(histogram->min());
    json.Key("max");
    json.Double(histogram->max());
    // Sparse bins: a 64-bin histogram with three occupied bins serializes
    // three entries, keyed by bin index with its lower edge alongside.
    json.Key("bins");
    json.BeginArray();
    for (size_t b = 0; b < histogram->num_bins(); ++b) {
      if (histogram->bin_count(b) == 0) {
        continue;
      }
      json.BeginObject();
      json.Key("index");
      json.Int(static_cast<int64_t>(b));
      json.Key("lower_edge");
      json.Double(histogram->BinLowerEdge(b));
      json.Key("count");
      json.Int(histogram->bin_count(b));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  WriteJson(json);
  return json.str();
}

}  // namespace spotcheck

#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

namespace spotcheck {

std::string JsonWriter::Escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Prepare(bool is_key) {
  if (after_key_) {
    // Value directly following its key: "key": <value>.
    after_key_ = false;
    return;
  }
  if (has_element_.empty()) {
    return;  // Top-level value.
  }
  if (has_element_.back()) {
    out_ += ',';
  }
  has_element_.back() = true;
  out_ += '\n';
  out_.append(has_element_.size() * 2, ' ');
  (void)is_key;
}

void JsonWriter::BeginObject() {
  Prepare(false);
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  const bool had_elements = !has_element_.empty() && has_element_.back();
  has_element_.pop_back();
  if (had_elements) {
    out_ += '\n';
    out_.append(has_element_.size() * 2, ' ');
  }
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Prepare(false);
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  const bool had_elements = !has_element_.empty() && has_element_.back();
  has_element_.pop_back();
  if (had_elements) {
    out_ += '\n';
    out_.append(has_element_.size() * 2, ' ');
  }
  out_ += ']';
}

void JsonWriter::Key(std::string_view name) {
  Prepare(true);
  out_ += '"';
  out_ += Escape(name);
  out_ += "\": ";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Prepare(false);
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  Prepare(false);
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  Prepare(false);
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Prepare(false);
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Prepare(false);
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Prepare(false);
  out_ += "null";
}

}  // namespace spotcheck

#include "src/core/event_log.h"

#include "src/common/csv.h"

namespace spotcheck {

std::string_view ControllerEventKindName(ControllerEventKind kind) {
  switch (kind) {
    case ControllerEventKind::kVmRequested:
      return "vm-requested";
    case ControllerEventKind::kVmPlaced:
      return "vm-placed";
    case ControllerEventKind::kRevocationWarning:
      return "revocation-warning";
    case ControllerEventKind::kEvacuationStarted:
      return "evacuation-started";
    case ControllerEventKind::kEvacuationCompleted:
      return "evacuation-completed";
    case ControllerEventKind::kProactiveDrain:
      return "proactive-drain";
    case ControllerEventKind::kRepatriationStarted:
      return "repatriation-started";
    case ControllerEventKind::kRepatriationCompleted:
      return "repatriation-completed";
    case ControllerEventKind::kStatelessRespawn:
      return "stateless-respawn";
    case ControllerEventKind::kCrashRecovery:
      return "crash-recovery";
    case ControllerEventKind::kVmLost:
      return "vm-lost";
    case ControllerEventKind::kVmReleased:
      return "vm-released";
  }
  return "unknown";
}

void ControllerEventLog::Record(SimTime time, ControllerEventKind kind,
                                NestedVmId vm, InstanceId host, MarketKey market,
                                std::string detail) {
  if (!enabled_) {
    return;
  }
  events_.push_back(ControllerEvent{time, kind, vm, host, market,
                                    std::move(detail)});
}

int64_t ControllerEventLog::CountOf(ControllerEventKind kind) const {
  int64_t count = 0;
  for (const ControllerEvent& event : events_) {
    if (event.kind == kind) {
      ++count;
    }
  }
  return count;
}

std::vector<const ControllerEvent*> ControllerEventLog::ForVm(NestedVmId vm) const {
  std::vector<const ControllerEvent*> matched;
  for (const ControllerEvent& event : events_) {
    if (event.vm == vm) {
      matched.push_back(&event);
    }
  }
  return matched;
}

std::string ControllerEventLog::ToCsv() const {
  CsvWriter writer;
  writer.AddRow({"time_s", "kind", "vm", "host", "market", "detail"});
  for (const ControllerEvent& event : events_) {
    writer.AddRow({std::to_string(event.time.seconds()),
                   std::string(ControllerEventKindName(event.kind)),
                   event.vm.valid() ? event.vm.ToString() : "",
                   event.host.valid() ? event.host.ToString() : "",
                   event.market.ToString(), event.detail});
  }
  return writer.ToString();
}

}  // namespace spotcheck

#include "src/core/parallel_evaluation.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

namespace spotcheck {

int ResolveEvaluationJobs(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  if (const char* env = std::getenv("SPOTCHECK_JOBS")) {
    try {
      const int parsed = std::stoi(env);
      if (parsed > 0) {
        return parsed;
      }
    } catch (...) {
      // Unparsable value: fall through to hardware concurrency.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, int jobs) {
  std::vector<EvaluationResult> results(configs.size());
  const int workers = std::min(ResolveEvaluationJobs(jobs),
                               static_cast<int>(configs.size()));
  if (workers <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      results[i] = RunPolicyEvaluation(configs[i]);
    }
    return results;
  }

  // Work queue: an atomic cursor over the config list. Each worker claims
  // the next unstarted cell, so long cells (multi-pool policies simulate
  // more markets) don't leave a statically-partitioned thread idle.
  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) {
        return;
      }
      try {
        results[i] = RunPolicyEvaluation(configs[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace spotcheck

#include "src/core/parallel_evaluation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/trace.h"

namespace spotcheck {

int ResolveEvaluationJobs(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  if (const char* env = std::getenv("SPOTCHECK_JOBS")) {
    try {
      const int parsed = std::stoi(env);
      if (parsed > 0) {
        return parsed;
      }
    } catch (...) {
      // Unparsable value: fall through to hardware concurrency.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, int jobs) {
  GridRunOptions options;
  options.jobs = jobs;
  return RunPolicyEvaluationGrid(configs, options);
}

std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, const GridRunOptions& options) {
  std::vector<EvaluationResult> results(configs.size());
  const int workers = std::min(ResolveEvaluationJobs(options.jobs),
                               static_cast<int>(configs.size()));
  // Wall-clock origin for worker-profile spans; sim-time in the worker
  // tracer is "wall microseconds since the grid started".
  const auto grid_started = std::chrono::steady_clock::now();
  std::mutex tracer_mu;
  const auto record_cell = [&](int worker, size_t cell,
                               std::chrono::steady_clock::time_point started) {
    if (options.worker_tracer == nullptr) {
      return;
    }
    const auto us = [&grid_started](std::chrono::steady_clock::time_point t) {
      return SimTime::FromMicros(
          std::chrono::duration_cast<std::chrono::microseconds>(t -
                                                                grid_started)
              .count());
    };
    const SimTime end_us = us(std::chrono::steady_clock::now());
    std::lock_guard<std::mutex> lock(tracer_mu);
    SpanTracer& tracer = *options.worker_tracer;
    const TraceTrackId track =
        tracer.Track("grid/worker-" + std::to_string(worker));
    const SpanId span =
        tracer.AddSpan(us(started), end_us, "grid.cell", "grid", track);
    tracer.AttrNum(span, "cell_index", static_cast<double>(cell));
    if (!configs[cell].report_label.empty()) {
      tracer.AttrStr(span, "cell", configs[cell].report_label);
    }
  };

  if (workers <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      const auto started = std::chrono::steady_clock::now();
      results[i] = RunPolicyEvaluation(configs[i]);
      record_cell(0, i, started);
    }
    return results;
  }

  // Work queue: an atomic cursor over the config list. Each worker claims
  // the next unstarted cell, so long cells (multi-pool policies simulate
  // more markets) don't leave a statically-partitioned thread idle.
  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&](int worker_id) {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) {
        return;
      }
      try {
        const auto started = std::chrono::steady_clock::now();
        results[i] = RunPolicyEvaluation(configs[i]);
        record_cell(worker_id, i, started);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace spotcheck

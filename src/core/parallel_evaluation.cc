#include "src/core/parallel_evaluation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>

#include "src/market/trace_catalog.h"
#include "src/obs/grid_summary.h"
#include "src/obs/trace.h"

namespace spotcheck {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedNs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

// One worker-profile span, buffered locally until every worker has joined.
struct PendingCellSpan {
  size_t cell = 0;
  int64_t start_us = 0;
  int64_t end_us = 0;
};

// Everything one worker writes while running cells. Padded to a cache line
// so two workers' hot counters never share one.
struct alignas(64) WorkerSlot {
  GridWorkerProfile profile;
  std::vector<PendingCellSpan> spans;
};

// Accumulates one finished cell into the worker's slot.
void RecordCell(WorkerSlot& slot, bool buffer_span, size_t cell,
                int64_t start_us, int64_t end_us,
                const EvaluationResult& result) {
  slot.profile.cells += 1;
  slot.profile.busy_ns += (end_us - start_us) * 1000;
  slot.profile.report_build_ns += result.report_build_ns;
  slot.profile.catalog_hits += result.trace_cache_hits;
  slot.profile.catalog_misses += result.trace_cache_misses;
  slot.profile.catalog_lock_wait_ns += result.trace_cache_lock_wait_ns;
  if (buffer_span) {
    slot.spans.push_back(PendingCellSpan{cell, start_us, end_us});
  }
}

// Generates every distinct trace the configs will need, on this thread.
// Returns how many traces were actually generated (the rest were cached).
int64_t PrewarmTraces(const std::vector<EvaluationConfig>& configs) {
  std::set<std::tuple<int, int, int64_t, uint64_t>> seen;
  int64_t generated = 0;
  for (const EvaluationConfig& config : configs) {
    for (const EvaluationTraceKey& key : EvaluationTraceKeys(config)) {
      const auto dedupe = std::make_tuple(static_cast<int>(key.market.type),
                                          key.market.zone.index,
                                          key.horizon.micros(), key.seed);
      if (!seen.insert(dedupe).second) {
        continue;
      }
      TraceCatalog::Lookup lookup;
      TraceCatalog::Global().GetOrGenerate(key.market, key.horizon, key.seed,
                                           &lookup);
      generated += lookup.hit ? 0 : 1;
    }
  }
  return generated;
}

// Merges every buffered worker-profile span into the tracer, single-
// threaded, workers in id order and cells in each worker's completion
// order. The spans live on wall-clock tracks (us since the grid started).
void MergeWorkerSpans(SpanTracer& tracer,
                      const std::vector<EvaluationConfig>& configs,
                      const std::vector<WorkerSlot>& slots) {
  for (size_t w = 0; w < slots.size(); ++w) {
    if (slots[w].spans.empty()) {
      continue;
    }
    const TraceTrackId track = tracer.Track(
        "grid/worker-" + std::to_string(w), TraceClock::kWall);
    for (const PendingCellSpan& span : slots[w].spans) {
      const SpanId id =
          tracer.AddSpan(SimTime::FromMicros(span.start_us),
                         SimTime::FromMicros(span.end_us), "grid.cell", "grid",
                         track);
      tracer.AttrNum(id, "cell_index", static_cast<double>(span.cell));
      if (!configs[span.cell].report_label.empty()) {
        tracer.AttrStr(id, "cell", configs[span.cell].report_label);
      }
    }
  }
}

}  // namespace

int ResolveEvaluationJobsFor(int jobs, const char* env, unsigned hardware) {
  if (jobs > 0) {
    return jobs;
  }
  if (env != nullptr) {
    try {
      const int parsed = std::stoi(env);
      if (parsed > 0) {
        return parsed;
      }
    } catch (...) {
      // Unparsable value: fall through to hardware concurrency.
    }
  }
  // hardware_concurrency() may legitimately return 0 ("not computable");
  // run serial rather than guessing a parallelism the machine may not have.
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

int ResolveEvaluationJobs(int jobs) {
  return ResolveEvaluationJobsFor(jobs, std::getenv("SPOTCHECK_JOBS"),
                                  std::thread::hardware_concurrency());
}

std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, int jobs) {
  GridRunOptions options;
  options.jobs = jobs;
  return RunPolicyEvaluationGrid(configs, options);
}

std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, const GridRunOptions& options) {
  std::vector<EvaluationResult> results(configs.size());
  // Never more threads than cells: an idle worker would still pay thread
  // spawn plus its share of scheduler churn for nothing.
  const int workers = std::min(ResolveEvaluationJobs(options.jobs),
                               static_cast<int>(configs.size()));
  const bool buffer_spans = options.worker_tracer != nullptr;
  // Wall-clock origin for worker-profile spans; their track timebase is
  // "wall microseconds since the grid started" (TraceClock::kWall).
  const auto grid_started = Clock::now();
  const auto now_us = [&grid_started] {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 grid_started)
        .count();
  };

  GridContentionReport local_report;
  GridContentionReport& report =
      options.contention != nullptr ? *options.contention : local_report;
  report = GridContentionReport{};

  // Generate shared traces before any worker exists. Otherwise every cold
  // worker's first cell wants the same (market, horizon, seed) traces and
  // the whole pool stalls single-file on the single-flight markers.
  if (workers > 1 && options.prewarm_traces) {
    const auto prewarm_started = Clock::now();
    report.prewarm_traces = PrewarmTraces(configs);
    report.prewarm_ns = ElapsedNs(prewarm_started);
  }

  std::vector<WorkerSlot> slots(
      static_cast<size_t>(std::max(workers, configs.empty() ? 0 : 1)));

  if (workers <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      const int64_t start_us = now_us();
      results[i] = RunPolicyEvaluation(configs[i]);
      RecordCell(slots[0], buffer_spans, i, start_us, now_us(), results[i]);
    }
  } else {
    // Work queue: an atomic cursor over the config list. Each worker claims
    // the next unstarted cell, so long cells (multi-pool policies simulate
    // more markets) don't leave a statically-partitioned thread idle.
    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&](int worker_id) {
      WorkerSlot& slot = slots[static_cast<size_t>(worker_id)];
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= configs.size()) {
          return;
        }
        try {
          const int64_t start_us = now_us();
          results[i] = RunPolicyEvaluation(configs[i]);
          RecordCell(slot, buffer_spans, i, start_us, now_us(), results[i]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
  }

  if (buffer_spans) {
    const auto merge_started = Clock::now();
    MergeWorkerSpans(*options.worker_tracer, configs, slots);
    report.tracer_merge_ns = ElapsedNs(merge_started);
  }
  report.workers.reserve(slots.size());
  for (size_t w = 0; w < slots.size(); ++w) {
    GridWorkerProfile profile = slots[w].profile;
    profile.worker = static_cast<int>(w);
    report.workers.push_back(profile);
  }
  report.total_ns = ElapsedNs(grid_started);
  return results;
}

}  // namespace spotcheck

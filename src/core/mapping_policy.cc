#include "src/core/mapping_policy.h"

#include <algorithm>
#include <cmath>

#include "src/market/market_analytics.h"

namespace spotcheck {
namespace {

// Host-type pools that can carry a `nested` VM: the nested type itself plus
// progressively larger types of the same family (slicing targets), in size
// order. For m3.medium this is exactly {m3.medium, m3.large, m3.xlarge,
// m3.2xlarge} as in Table 2.
std::vector<InstanceType> FamilyLadder(InstanceType nested) {
  const std::string_view name = InstanceTypeName(nested);
  const std::string_view family = name.substr(0, name.find('.'));
  std::vector<InstanceType> ladder;
  for (const InstanceTypeInfo& info : InstanceCatalog()) {
    if (!info.hvm_capable) {
      continue;
    }
    const std::string_view candidate_family =
        info.name.substr(0, info.name.find('.'));
    if (candidate_family == family && NestedSlotsPerHost(info.type, nested) >= 1) {
      ladder.push_back(info.type);
    }
  }
  // The catalog lists each family smallest-first already; keep that order.
  if (ladder.empty()) {
    ladder.push_back(nested);
  }
  return ladder;
}

std::vector<MarketKey> CandidatesFor(MappingPolicyKind kind, InstanceType nested,
                                     AvailabilityZone zone) {
  const std::vector<InstanceType> ladder = FamilyLadder(nested);
  size_t pools = 0;
  switch (kind) {
    case MappingPolicyKind::k1PM:
      pools = 1;
      break;
    case MappingPolicyKind::k2PML:
      pools = 2;
      break;
    case MappingPolicyKind::k4PED:
    case MappingPolicyKind::k4PCost:
    case MappingPolicyKind::k4PStability:
    case MappingPolicyKind::kGreedyCheapest:
    case MappingPolicyKind::kStabilityFirst:
      pools = 4;
      break;
  }
  pools = std::min(std::max<size_t>(pools, 1), ladder.size());
  std::vector<MarketKey> candidates;
  candidates.reserve(pools);
  for (size_t i = 0; i < pools; ++i) {
    candidates.push_back(MarketKey{ladder[i], zone});
  }
  return candidates;
}

}  // namespace

std::string_view MappingPolicyName(MappingPolicyKind kind) {
  switch (kind) {
    case MappingPolicyKind::k1PM:
      return "1P-M";
    case MappingPolicyKind::k2PML:
      return "2P-ML";
    case MappingPolicyKind::k4PED:
      return "4P-ED";
    case MappingPolicyKind::k4PCost:
      return "4P-COST";
    case MappingPolicyKind::k4PStability:
      return "4P-ST";
    case MappingPolicyKind::kGreedyCheapest:
      return "GREEDY";
    case MappingPolicyKind::kStabilityFirst:
      return "STABLE";
  }
  return "unknown";
}

MappingPolicy::MappingPolicy(MappingPolicyKind kind, InstanceType nested_type,
                             AvailabilityZone zone, Rng rng)
    : MappingPolicy(kind, nested_type, std::vector<AvailabilityZone>{zone}, rng) {}

MappingPolicy::MappingPolicy(MappingPolicyKind kind, InstanceType nested_type,
                             const std::vector<AvailabilityZone>& zones, Rng rng)
    : kind_(kind), nested_type_(nested_type), rng_(rng) {
  for (const AvailabilityZone& zone :
       zones.empty() ? std::vector<AvailabilityZone>{AvailabilityZone{0}} : zones) {
    for (const MarketKey& key : CandidatesFor(kind, nested_type, zone)) {
      candidates_.push_back(key);
    }
  }
}

double MappingPolicy::PerSlotPrice(const SpotMarket& market,
                                   InstanceType nested_type, SimTime now) {
  const int slots = NestedSlotsPerHost(market.key().type, nested_type);
  if (slots <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return market.PriceAt(now) / static_cast<double>(slots);
}

MarketKey MappingPolicy::ChooseWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0.0) {
    return candidates_[round_robin_++ % candidates_.size()];
  }
  double draw = rng_.Uniform(0.0, total);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) {
      return candidates_[i];
    }
  }
  return candidates_.back();
}

MarketKey MappingPolicy::ChoosePool(MarketPlace& markets,
                                    const BiddingPolicy& bidding, SimTime now) {
  if (candidates_.size() == 1) {
    return candidates_.front();
  }
  switch (kind_) {
    case MappingPolicyKind::k1PM:
    case MappingPolicyKind::k2PML:
    case MappingPolicyKind::k4PED:
      // Equal distribution: round-robin gives an exact split. (1P-M only has
      // multiple candidates in multi-zone deployments, where the single type
      // is spread across zones.)
      return candidates_[round_robin_++ % candidates_.size()];

    case MappingPolicyKind::k4PCost: {
      // Weight inversely to historical per-slot cost.
      std::vector<double> weights;
      for (const MarketKey& key : candidates_) {
        SpotMarket* market = markets.Find(key);
        const int slots = NestedSlotsPerHost(key.type, nested_type_);
        double weight = 0.0;
        if (market != nullptr && slots > 0 && now > SimTime()) {
          const double mean = market->trace().MeanPrice(SimTime(), now) /
                              static_cast<double>(slots);
          weight = mean > 0.0 ? 1.0 / mean : 0.0;
        }
        weights.push_back(weight);
      }
      return ChooseWeighted(weights);
    }

    case MappingPolicyKind::k4PStability: {
      // Weight inversely to the number of past revocations (bid crossings).
      std::vector<double> weights;
      for (const MarketKey& key : candidates_) {
        SpotMarket* market = markets.Find(key);
        double weight = 0.0;
        if (market != nullptr) {
          const int crossings = CountBidCrossings(
              market->trace(), bidding.BidFor(key.type), SimTime(), now);
          weight = 1.0 / (1.0 + static_cast<double>(crossings));
        }
        weights.push_back(weight);
      }
      return ChooseWeighted(weights);
    }

    case MappingPolicyKind::kGreedyCheapest: {
      // Lowest current per-slot price wins (exploits the slicing arbitrage).
      MarketKey best = candidates_.front();
      double best_price = std::numeric_limits<double>::infinity();
      for (const MarketKey& key : candidates_) {
        SpotMarket* market = markets.Find(key);
        if (market == nullptr) {
          continue;
        }
        const double price = PerSlotPrice(*market, nested_type_, now);
        if (price < best_price) {
          best_price = price;
          best = key;
        }
      }
      return best;
    }

    case MappingPolicyKind::kStabilityFirst: {
      // Fewest past revocations wins outright.
      MarketKey best = candidates_.front();
      int best_crossings = std::numeric_limits<int>::max();
      for (const MarketKey& key : candidates_) {
        SpotMarket* market = markets.Find(key);
        if (market == nullptr) {
          continue;
        }
        const int crossings = CountBidCrossings(
            market->trace(), bidding.BidFor(key.type), SimTime(), now);
        if (crossings < best_crossings) {
          best_crossings = crossings;
          best = key;
        }
      }
      return best;
    }
  }
  return candidates_.front();
}

}  // namespace spotcheck

#include "src/core/mapping_policy.h"

#include "src/core/policy_bridge.h"
#include "src/policy/builtin_strategies.h"
#include "src/policy/registry.h"

namespace spotcheck {

std::string_view MappingPolicyName(MappingPolicyKind kind) {
  switch (kind) {
    case MappingPolicyKind::k1PM:
      return "1P-M";
    case MappingPolicyKind::k2PML:
      return "2P-ML";
    case MappingPolicyKind::k4PED:
      return "4P-ED";
    case MappingPolicyKind::k4PCost:
      return "4P-COST";
    case MappingPolicyKind::k4PStability:
      return "4P-ST";
    case MappingPolicyKind::kGreedyCheapest:
      return "GREEDY";
    case MappingPolicyKind::kStabilityFirst:
      return "STABLE";
  }
  return "unknown";
}

MappingPolicy::MappingPolicy(MappingPolicyKind kind, InstanceType nested_type,
                             AvailabilityZone zone, Rng rng)
    : MappingPolicy(kind, nested_type, std::vector<AvailabilityZone>{zone}, rng) {}

MappingPolicy::MappingPolicy(MappingPolicyKind kind, InstanceType nested_type,
                             const std::vector<AvailabilityZone>& zones, Rng rng)
    : kind_(kind) {
  PoolStrategyInit init;
  init.nested_type = nested_type;
  init.zones = zones.empty()
                   ? std::vector<AvailabilityZone>{AvailabilityZone{0}}
                   : zones;
  init.rng = rng;
  strategy_ = CreatePoolStrategyOrDie(MapSpecFromLegacy(kind), init);
}

MarketKey MappingPolicy::ChoosePool(MarketPlace& markets,
                                    const BiddingPolicy& bidding, SimTime now) {
  const FixedBidStrategy bid(BidSpecFromLegacy(bidding),
                             bidding.kind == BidPolicyKind::kMultipleOfOnDemand,
                             bidding.k);
  return strategy_->ChoosePool(MarketView(markets, now), bid);
}

}  // namespace spotcheck

// Evacuation: the revocation-warning / platform-failure state machine.
//
// On a spot revocation warning every resident nested VM is evacuated via
// the configured migration mechanism; on an unwarned platform failure VMs
// recover from their last checkpoint (or are lost, for live-migration-only
// VMs with no backup). An evacuation completes in two asynchronous halves
// -- the phase-1 state commit and destination readiness -- tracked per VM
// until FinalizeEvacuation settles residency, billing hooks, and network
// rebinding.

#ifndef SRC_CORE_EVACUATION_H_
#define SRC_CORE_EVACUATION_H_

#include <cstdint>
#include <map>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/core/controller_context.h"
#include "src/market/instance_types.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/virt/host_vm.h"
#include "src/virt/migration_engine.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {

class BackupServer;

class EvacuationCoordinator {
 public:
  explicit EvacuationCoordinator(ControllerContext* ctx);

  EvacuationCoordinator(const EvacuationCoordinator&) = delete;
  EvacuationCoordinator& operator=(const EvacuationCoordinator&) = delete;

  // Native-cloud handlers (wired by the facade).
  void OnRevocationWarning(InstanceId instance, SimTime deadline);
  // Platform (zone) failure: the instance died with no warning.
  void OnInstanceFailure(InstanceId instance);

  void EvacuateVm(NestedVm& vm, SimTime deadline);
  void RespawnStateless(NestedVm& vm, SimTime deadline);
  // A destination host reserved for this VM's evacuation is up.
  void OnDestinationHostReady(NestedVm& vm, HostVm& host);

  // A VM whose evacuation record is still open may transiently violate
  // residency invariants (e.g. a failed VM lingering on its host).
  bool IsEvacuating(NestedVmId vm) const { return evacuating_.contains(vm); }

  int64_t revocation_events() const { return revocation_events_; }
  int64_t stateless_respawns() const { return stateless_respawns_; }
  int64_t stagings() const { return stagings_; }
  // VMs whose state was unrecoverable after a platform failure (no backup).
  int64_t vms_lost() const { return vms_lost_; }

 private:
  // Evacuation in flight: phase-1 commit and destination readiness must both
  // land before phase 2 (EC2 ops + restore) can run.
  struct EvacuationState {
    MigrationMechanism mechanism;
    BackupServer* backup = nullptr;
    MarketKey old_market;
    InstanceId old_host;
    SimTime deadline;
    bool committed = false;
    bool dest_ready = false;
    bool completing = false;
    // Destination is a staging host in another spot pool; a second (live)
    // migration to a final host follows once one launches.
    bool staged = false;
    MarketKey staging_market;
    // Tracing (all 0 when tracing is off): the evacuation's root span on the
    // VM's track, the open wait-for-destination child, and the backup
    // server's restore-hold span (BeginRestore -> EndRestore).
    SpanId span = 0;
    SpanId wait_span = 0;
    SpanId restore_hold_span = 0;
  };

  void MaybeCompleteEvacuation(NestedVm& vm);
  void FinalizeEvacuation(NestedVm& vm, const MigrationOutcome& outcome);

  ControllerContext* ctx_;
  std::map<NestedVmId, EvacuationState> evacuating_;

  int64_t revocation_events_ = 0;
  int64_t stateless_respawns_ = 0;
  int64_t stagings_ = 0;
  int64_t vms_lost_ = 0;

  // Observability instruments; all null without a registry.
  MetricCounter* revocation_events_metric_ = nullptr;
  MetricCounter* stateless_respawns_metric_ = nullptr;
  MetricCounter* stagings_metric_ = nullptr;
  MetricCounter* vms_lost_metric_ = nullptr;
  MetricCounter* backup_restores_metric_ = nullptr;
  // Completed evacuations, named after the configured mechanism
  // ("controller.migrations.<mechanism>") so grid-wide reports keep a
  // per-mechanism breakdown.
  MetricCounter* migrations_by_mechanism_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_CORE_EVACUATION_H_

#include "src/core/evacuation.h"

#include <cstdio>
#include <string>
#include <vector>

#include "src/backup/backup_pool.h"
#include "src/cloud/native_cloud.h"
#include "src/common/log.h"
#include "src/core/controller_config.h"
#include "src/core/event_log.h"
#include "src/core/host_pool.h"
#include "src/core/placement.h"
#include "src/core/repatriation.h"
#include "src/core/storm_tracker.h"
#include "src/virt/activity_log.h"

namespace spotcheck {

EvacuationCoordinator::EvacuationCoordinator(ControllerContext* ctx)
    : ctx_(ctx) {
  if (ctx_->metrics != nullptr) {
    MetricsRegistry& metrics = *ctx_->metrics;
    revocation_events_metric_ =
        &metrics.Counter("controller.revocation_events");
    stateless_respawns_metric_ =
        &metrics.Counter("controller.stateless_respawns");
    stagings_metric_ = &metrics.Counter("controller.stagings");
    vms_lost_metric_ = &metrics.Counter("controller.vms_lost");
    backup_restores_metric_ = &metrics.Counter("controller.backup_restores");
    migrations_by_mechanism_metric_ = &metrics.Counter(
        std::string("controller.migrations.") +
        std::string(MigrationMechanismName(ctx_->config->mechanism)));
  }
}

void EvacuationCoordinator::OnRevocationWarning(InstanceId instance,
                                                SimTime deadline) {
  HostVm* host = ctx_->pool->GetMutableHost(instance);
  if (host == nullptr) {
    return;
  }
  ++revocation_events_;
  MetricInc(revocation_events_metric_);
  ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kRevocationWarning,
                          NestedVmId(), instance, host->market(),
                          "vms=" + std::to_string(host->num_vms()));
  const std::vector<NestedVmId> resident = host->vms();  // copy: we mutate
  int evacuating = 0;
  for (NestedVmId vm_id : resident) {
    NestedVm* vm = ctx_->FindAliveVm(vm_id);
    if (vm == nullptr) {
      continue;
    }
    if (vm->state() != NestedVmState::kRunning &&
        vm->state() != NestedVmState::kDegraded) {
      continue;  // already mid-migration
    }
    ++evacuating;
    EvacuateVm(*vm, deadline);
  }
  if (evacuating > 0) {
    ctx_->storms->RecordBatch(ctx_->Now(), evacuating);
  }
}

void EvacuationCoordinator::OnInstanceFailure(InstanceId instance) {
  HostVm* host = ctx_->pool->GetMutableHost(instance);
  if (host == nullptr) {
    return;
  }
  const std::vector<NestedVmId> resident = host->vms();  // copy: we mutate
  for (NestedVmId vm_id : resident) {
    NestedVm* vm_ptr = ctx_->FindAliveVm(vm_id);
    if (vm_ptr == nullptr) {
      continue;
    }
    NestedVm& vm = *vm_ptr;
    if (vm.state() != NestedVmState::kRunning &&
        vm.state() != NestedVmState::kDegraded) {
      continue;  // an in-flight migration handles (or already left) this VM
    }
    if (vm.spec().stateless) {
      RespawnStateless(vm, ctx_->Now());
      continue;
    }
    BackupServer* backup = ctx_->backup_pool->ServerFor(vm.id());
    if (backup == nullptr) {
      // Live-migration-only VM with no checkpoint anywhere: state is gone.
      ++vms_lost_;
      MetricInc(vms_lost_metric_);
      vm.set_state(NestedVmState::kFailed);
      ctx_->activity_log->MarkDeath(vm.id(), ctx_->Now());
      host->RemoveVm(vm.id(), vm.spec());
      ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kVmLost,
                              vm.id(), instance, host->market(),
                              "platform failure, no backup");
      if (ctx_->tracer != nullptr) {
        SpanTracer& tracer = *ctx_->tracer;
        tracer.Instant(ctx_->Now(), "vm.lost", "core",
                       tracer.Track("vm/" + vm.id().ToString()));
      }
      SPOTCHECK_LOG(kError) << vm.id().ToString()
                            << " lost to a platform failure (no backup)";
      continue;
    }
    // Recover from the last checkpoint: at most the stale threshold of
    // execution rolls back, but the VM survives.
    EvacuationState& evac = evacuating_[vm.id()];
    evac.mechanism = ctx_->config->mechanism;
    evac.backup = backup;
    evac.old_host = instance;
    evac.old_market = host->market();
    evac.deadline = ctx_->Now();
    evac.committed = true;  // the surviving checkpoint IS the commit
    if (ctx_->tracer != nullptr) {
      SpanTracer& tracer = *ctx_->tracer;
      evac.span = tracer.Begin(ctx_->Now(), "crash_recovery", "core",
                               tracer.Track("vm/" + vm.id().ToString()));
      tracer.AttrStr(evac.span, "mechanism",
                     MigrationMechanismName(evac.mechanism));
      tracer.AttrStr(evac.span, "from_market", evac.old_market.ToString());
      evac.restore_hold_span = tracer.Begin(
          ctx_->Now(), "backup.restore_hold", "backup",
          tracer.Track("backup/" + backup->id().ToString()), evac.span);
    }
    const ScopedTraceParent trace_parent(ctx_->tracer, evac.span);
    backup->BeginRestore(vm.id());
    MetricInc(backup_restores_metric_);
    ctx_->engine->BeginCrashRecovery(vm, ctx_->Now());
    ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kCrashRecovery,
                            vm.id(), instance, host->market());
    vm.set_host(InstanceId());
    if (ctx_->tracer != nullptr) {
      evac.wait_span = ctx_->tracer->Begin(
          ctx_->Now(), "evac.wait_destination", "core",
          ctx_->tracer->Track("vm/" + vm.id().ToString()), evac.span);
    }
    ctx_->pool->AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                            Waiter{vm.id(), WaitIntent::kEvacuationDestination});
  }
  ctx_->pool->MaybeReleaseHost(instance);
}

void EvacuationCoordinator::EvacuateVm(NestedVm& vm, SimTime deadline) {
  if (vm.spec().stateless) {
    RespawnStateless(vm, deadline);
    return;
  }
  EvacuationState& evac = evacuating_[vm.id()];
  evac.mechanism = ctx_->config->mechanism;
  evac.backup = ctx_->backup_pool->ServerFor(vm.id());
  evac.old_host = vm.host();
  evac.old_market = ctx_->MarketOfOrDefault(vm.host());
  evac.deadline = deadline;
  ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kEvacuationStarted,
                          vm.id(), evac.old_host, evac.old_market);
  if (ctx_->tracer != nullptr) {
    // Root of this VM's causal tree, open until FinalizeEvacuation. Every
    // span recorded inside this function's scope -- commit phases, backup
    // holds, host acquisitions, cloud operations -- hangs off it.
    SpanTracer& tracer = *ctx_->tracer;
    evac.span = tracer.Begin(ctx_->Now(), "evacuation", "core",
                             tracer.Track("vm/" + vm.id().ToString()));
    tracer.AttrStr(evac.span, "mechanism",
                   MigrationMechanismName(evac.mechanism));
    tracer.AttrStr(evac.span, "from_market", evac.old_market.ToString());
  }
  const ScopedTraceParent trace_parent(ctx_->tracer, evac.span);

  // Phase 1: get the state safe. Xen-live has nothing to commit (and nothing
  // saved -- it bets everything on the pre-copy).
  if (MechanismNeedsBackup(ctx_->config->mechanism)) {
    if (evac.backup != nullptr) {
      evac.backup->BeginRestore(vm.id());
      MetricInc(backup_restores_metric_);
      if (ctx_->tracer != nullptr) {
        evac.restore_hold_span = ctx_->tracer->Begin(
            ctx_->Now(), "backup.restore_hold", "backup",
            ctx_->tracer->Track("backup/" + evac.backup->id().ToString()),
            evac.span);
      }
    }
    ctx_->engine->BeginEvacuation(vm, ctx_->config->mechanism, deadline,
                                  [this, &vm]() {
                                    const auto it = evacuating_.find(vm.id());
                                    if (it != evacuating_.end()) {
                                      it->second.committed = true;
                                      MaybeCompleteEvacuation(vm);
                                    }
                                  });
  } else {
    vm.set_state(NestedVmState::kMigrating);
    evac.committed = true;
  }

  // Destination preference: a hot spare, then (when enabled) a staging host
  // in another stable pool, then a fresh on-demand server (its ~60 s launch
  // fits comfortably inside the 120 s warning).
  if (HostVm* spare = ctx_->placement->PickSpareDestination(vm.spec())) {
    spare->AddVm(vm.id(), vm.spec());
    vm.set_host(spare->instance());
    evac.dest_ready = true;
    TraceAttrStr(ctx_->tracer, evac.span, "destination", "hot_spare");
    ctx_->pool->ReplenishHotSpares();
    MaybeCompleteEvacuation(vm);
    return;
  }
  if (ctx_->config->use_staging) {
    if (HostVm* staging =
            ctx_->placement->PickStagingHost(vm.spec(), evac.old_market)) {
      staging->AddVm(vm.id(), vm.spec());
      vm.set_host(staging->instance());
      evac.dest_ready = true;
      evac.staged = true;
      evac.staging_market = staging->market();
      TraceAttrStr(ctx_->tracer, evac.span, "destination", "staging");
      ++stagings_;
      MetricInc(stagings_metric_);
      MaybeCompleteEvacuation(vm);
      return;
    }
  }
  vm.set_host(InstanceId());  // assigned when the on-demand host is up
  TraceAttrStr(ctx_->tracer, evac.span, "destination", "on_demand");
  if (ctx_->tracer != nullptr) {
    evac.wait_span = ctx_->tracer->Begin(
        ctx_->Now(), "evac.wait_destination", "core",
        ctx_->tracer->Track("vm/" + vm.id().ToString()), evac.span);
  }
  ctx_->pool->AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                          Waiter{vm.id(), WaitIntent::kEvacuationDestination});
}

void EvacuationCoordinator::RespawnStateless(NestedVm& vm, SimTime deadline) {
  // No state to save: let the old replica serve until the platform kills it
  // at `deadline`, and boot a replacement that takes over. The replacement
  // launches well within the warning, so the tier never loses capacity.
  (void)deadline;
  ++stateless_respawns_;
  MetricInc(stateless_respawns_metric_);
  ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kStatelessRespawn,
                          vm.id(), vm.host(), ctx_->MarketOfOrDefault(vm.host()));
  const InstanceId old_host_id = vm.host();
  const MarketKey old_market = ctx_->MarketOfOrDefault(old_host_id);
  SpanId root = 0;
  SpanId wait = 0;
  if (ctx_->tracer != nullptr) {
    SpanTracer& tracer = *ctx_->tracer;
    const TraceTrackId track = tracer.Track("vm/" + vm.id().ToString());
    root = tracer.Begin(ctx_->Now(), "stateless_respawn", "core", track);
    tracer.AttrStr(root, "from_market", old_market.ToString());
    wait = tracer.Begin(ctx_->Now(), "evac.wait_destination", "core", track,
                        root);
  }
  const ScopedTraceParent trace_parent(ctx_->tracer, root);
  vm.set_state(NestedVmState::kMigrating);  // replica swap in progress
  vm.set_host(InstanceId());
  ctx_->pool->AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                          Waiter{vm.id(), WaitIntent::kEvacuationDestination});
  // A minimal evacuation record so the destination-ready path completes the
  // swap through the common machinery -- committed from the start (there is
  // no state to commit) and with no backup involvement.
  EvacuationState& evac = evacuating_[vm.id()];
  evac.mechanism = MigrationMechanism::kXenLiveMigration;  // no restore
  evac.backup = nullptr;
  evac.old_host = old_host_id;
  evac.old_market = old_market;
  evac.deadline = deadline;
  evac.committed = true;
  evac.span = root;
  evac.wait_span = wait;
}

void EvacuationCoordinator::OnDestinationHostReady(NestedVm& vm, HostVm& host) {
  const auto it = evacuating_.find(vm.id());
  EvacuationState* evac = it != evacuating_.end() ? &it->second : nullptr;
  // Reserve capacity; phase 2 of the evacuation runs once the checkpoint
  // commit also lands.
  if (!host.AddVm(vm.id(), vm.spec())) {
    // Capacity race against a co-waiter: this VM's state is still safe
    // on the backup server, so keep hunting for a destination (the
    // wait-for-destination span stays open across the retry).
    const ScopedTraceParent trace_parent(ctx_->tracer,
                                         evac != nullptr ? evac->span : 0);
    ctx_->pool->AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                            Waiter{vm.id(), WaitIntent::kEvacuationDestination});
    return;
  }
  vm.set_host(host.instance());
  if (evac != nullptr) {
    TraceEnd(ctx_->tracer, evac->wait_span, ctx_->Now());
    evac->dest_ready = true;
    MaybeCompleteEvacuation(vm);
  }
}

void EvacuationCoordinator::MaybeCompleteEvacuation(NestedVm& vm) {
  const auto it = evacuating_.find(vm.id());
  if (it == evacuating_.end()) {
    return;
  }
  EvacuationState& evac = it->second;
  if (!evac.committed || !evac.dest_ready || evac.completing) {
    return;
  }
  evac.completing = true;
  // Phase-2 mechanics (live-race arbitration, EC2 ops, restore) record their
  // spans synchronously inside these calls; parent them under the root.
  const ScopedTraceParent trace_parent(ctx_->tracer, evac.span);
  if (vm.spec().stateless) {
    // Fresh replica boot: nothing to transfer, no downtime charged to the
    // tier (the old replica served until its termination).
    MigrationOutcome outcome;
    outcome.success = true;
    outcome.completed_at = ctx_->Now();
    vm.set_state(NestedVmState::kRunning);
    FinalizeEvacuation(vm, outcome);
    return;
  }
  if (evac.mechanism == MigrationMechanism::kXenLiveMigration) {
    ctx_->engine->LiveEvacuate(vm, evac.deadline,
                               [this, &vm](const MigrationOutcome& out) {
                                 FinalizeEvacuation(vm, out);
                               });
    return;
  }
  const int concurrent =
      evac.backup != nullptr ? evac.backup->active_restores() : 1;
  ctx_->engine->CompleteEvacuation(vm, evac.mechanism, evac.backup, concurrent,
                                   [this, &vm](const MigrationOutcome& out) {
                                     FinalizeEvacuation(vm, out);
                                   });
}

void EvacuationCoordinator::FinalizeEvacuation(NestedVm& vm,
                                               const MigrationOutcome& outcome) {
  const auto it = evacuating_.find(vm.id());
  if (it == evacuating_.end()) {
    return;
  }
  const EvacuationState evac = it->second;
  evacuating_.erase(it);

  if (evac.backup != nullptr) {
    evac.backup->EndRestore(vm.id());
    TraceEnd(ctx_->tracer, evac.restore_hold_span, ctx_->Now());
  }
  // Drop the stale membership in the revoked host; once empty, its (already
  // terminated) record is reaped.
  if (HostVm* old_host = ctx_->pool->GetMutableHost(evac.old_host)) {
    old_host->RemoveVm(vm.id(), vm.spec());
  }
  ctx_->pool->MaybeReleaseHost(evac.old_host);
  ctx_->backup_pool->Release(vm.id());
  vm.set_backup(BackupServerId());
  if (!outcome.success) {
    // VM lost (live-migration race defeat). It was pre-added to its
    // destination (hot spare / staging / fresh on-demand) when the
    // evacuation started; reclaim that capacity or the slot leaks forever
    // -- and an idle destination would be billed indefinitely.
    const InstanceId dest_host = vm.host();
    if (dest_host != evac.old_host) {
      if (HostVm* dest = ctx_->pool->GetMutableHost(dest_host)) {
        dest->RemoveVm(vm.id(), vm.spec());
      }
    }
    vm.set_host(InstanceId());
    ++vms_lost_;
    MetricInc(vms_lost_metric_);
    ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kVmLost, vm.id(),
                            evac.old_host, evac.old_market,
                            "live-migration race");
    TraceAttrNum(ctx_->tracer, evac.span, "lost", 1);
    TraceEnd(ctx_->tracer, evac.span, ctx_->Now());
    ctx_->pool->MaybeReleaseHost(dest_host);
    return;
  }
  MetricInc(migrations_by_mechanism_metric_);
  {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "downtime=%.1fs degraded=%.1fs",
                  outcome.downtime.seconds(), outcome.degraded.seconds());
    ctx_->event_log->Record(ctx_->Now(),
                            ControllerEventKind::kEvacuationCompleted, vm.id(),
                            vm.host(), evac.old_market, detail);
  }
  if (evac.staged) {
    // The VM landed on a borrowed spot host: re-arm its backup stream there
    // and launch the real destination in the (stable) staging pool; a live
    // migration will relieve the staging host once it is up.
    ctx_->placement->AssignBackup(vm);
    ctx_->repatriation->AddPendingMove(vm.id());
    ctx_->pool->QueueOrAcquireSpot(evac.staging_market,
                                   Waiter{vm.id(), WaitIntent::kPlannedMove});
  }
  // Off-spot (or borrowed) placement: return home when prices recover.
  if (ctx_->config->enable_repatriation) {
    ctx_->repatriation->EnqueueRepatriation(evac.old_market, vm.id());
  }
  const HostVm* dest = ctx_->pool->GetHost(vm.host());
  if (dest != nullptr) {
    // The trailing EBS/ENI rebinds are part of the evacuation's causal tree.
    const ScopedTraceParent trace_parent(ctx_->tracer, evac.span);
    ctx_->cloud->AttachVolume(vm.root_volume(), dest->instance());
    ctx_->cloud->AssignAddress(vm.address(), dest->instance());
  }
  ctx_->placement->RebindNetwork(vm, outcome.downtime);
  TraceAttrNum(ctx_->tracer, evac.span, "downtime_s",
               outcome.downtime.seconds());
  TraceAttrNum(ctx_->tracer, evac.span, "degraded_s",
               outcome.degraded.seconds());
  TraceEnd(ctx_->tracer, evac.span, ctx_->Now());
}

}  // namespace spotcheck

#include "src/core/evaluation.h"

#include "src/market/spot_market.h"
#include "src/market/spot_price_process.h"
#include "src/sim/simulator.h"

namespace spotcheck {

EvaluationResult RunPolicyEvaluation(const EvaluationConfig& config) {
  Simulator sim;
  MarketPlace markets(&sim);

  if (config.market_coupling > 0.0) {
    // Pre-populate every candidate pool with regionally-coupled traces; the
    // cloud then replays these instead of generating independent ones.
    std::vector<MarketKey> keys;
    for (InstanceType type : {InstanceType::kM3Medium, InstanceType::kM3Large,
                              InstanceType::kM3Xlarge, InstanceType::kM32xlarge}) {
      for (int zone = 0; zone < std::max(config.num_zones, 1); ++zone) {
        keys.push_back(MarketKey{type, AvailabilityZone{zone}});
      }
    }
    std::vector<PriceTrace> traces = GenerateCorrelatedTraces(
        keys, config.horizon + SimDuration::Days(1), config.seed,
        config.shared_events_per_day, config.market_coupling);
    for (size_t i = 0; i < keys.size(); ++i) {
      markets.AddWithTrace(keys[i], std::move(traces[i]));
    }
  }

  NativeCloudConfig cloud_config;
  cloud_config.market_horizon = config.horizon + SimDuration::Days(1);
  cloud_config.market_seed = config.seed;
  cloud_config.latency_seed = config.seed ^ 0xfeed;
  NativeCloud cloud(&sim, &markets, cloud_config);

  ControllerConfig controller_config;
  controller_config.mapping = config.policy;
  controller_config.mechanism = config.mechanism;
  controller_config.bidding = config.bidding;
  controller_config.enable_proactive = config.proactive;
  controller_config.hot_spares = config.hot_spares;
  controller_config.use_staging = config.use_staging;
  controller_config.num_zones = config.num_zones;
  controller_config.seed = config.seed;
  SpotCheckController controller(&sim, &cloud, &markets, controller_config);

  const int customers = std::max(config.num_customers, 1);
  std::vector<CustomerId> customer_ids;
  customer_ids.reserve(static_cast<size_t>(customers));
  for (int c = 0; c < customers; ++c) {
    customer_ids.push_back(controller.RegisterCustomer());
  }
  sim.RunUntil(SimTime() + config.placement_delay);
  const int stateless_count =
      static_cast<int>(config.stateless_fraction * config.num_vms);
  for (int i = 0; i < config.num_vms; ++i) {
    controller.RequestServer(
        customer_ids[static_cast<size_t>(i) % customer_ids.size()],
        /*stateless=*/i < stateless_count);
  }

  sim.RunUntil(SimTime() + config.horizon);

  EvaluationResult result;
  const SpotCheckController::CostReport cost = controller.ComputeCostReport();
  result.avg_cost_per_vm_hour = cost.avg_cost_per_vm_hour;
  result.native_cost = cost.native_cost;
  result.backup_cost = cost.backup_cost;
  result.vm_hours = cost.vm_hours;
  result.unavailability_pct =
      controller.activity_log().MeanFraction(ActivityKind::kDowntime, SimTime(),
                                             sim.Now()) *
      100.0;
  result.degradation_pct =
      controller.activity_log().MeanFraction(ActivityKind::kDegraded, SimTime(),
                                             sim.Now()) *
      100.0;
  result.storms = controller.storms().Probabilities(config.num_vms,
                                                    config.storm_window,
                                                    config.horizon);
  result.revocation_events = controller.revocation_events();
  result.evacuations = controller.engine().evacuations();
  result.repatriations = controller.repatriations();
  result.failed_migrations = controller.engine().failed_migrations();
  result.stagings = controller.stagings();
  result.stateless_respawns = controller.stateless_respawns();
  result.num_backup_servers = controller.backup_pool().num_servers();
  result.trace_cache_hits = markets.trace_cache_hits();
  result.trace_cache_misses = markets.trace_cache_misses();
  return result;
}

}  // namespace spotcheck

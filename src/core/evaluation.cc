#include "src/core/evaluation.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory_resource>
#include <string>
#include <unordered_map>

#include "src/chaos/chaos_engine.h"
#include "src/chaos/fault_plan.h"
#include "src/common/memory_probe.h"
#include "src/core/mapping_policy.h"
#include "src/market/spot_market.h"
#include "src/policy/registry.h"
#include "src/market/spot_price_process.h"
#include "src/sim/simulator.h"

namespace spotcheck {
namespace {

// Flattens the cell's config, results, and controller event timeline into a
// self-contained RunReport that shares the (now-final) metrics registry.
std::shared_ptr<const RunReport> BuildRunReport(
    const EvaluationConfig& config, const EvaluationResult& result,
    const SpotCheckController& controller, const ChaosEngine* chaos,
    std::shared_ptr<const MetricsRegistry> metrics,
    std::shared_ptr<const SpanTracer> trace,
    std::shared_ptr<const EventCostProfiler> profile,
    std::shared_ptr<const TimeSeriesRecorder> timeseries) {
  auto report = std::make_shared<RunReport>();
  if (!config.report_label.empty()) {
    report->label = config.report_label;
  } else if (config.policy_spec.has_value()) {
    report->label =
        config.policy_spec->ToString() + "/" +
        std::string(MigrationMechanismName(config.mechanism));
  } else {
    report->label =
        std::string(MappingPolicyName(config.policy)) + "/" +
        std::string(MigrationMechanismName(config.mechanism));
  }
  // Record the spec the controller actually ran (resolved from either the
  // explicit spec or the legacy enums), so grid summaries can group cells by
  // policy without re-deriving the translation.
  report->policy_spec = controller.policy_spec().ToString();
  report->AddSummary("config.num_vms", config.num_vms);
  report->AddSummary("config.num_customers", config.num_customers);
  report->AddSummary("config.horizon_days", config.horizon.days());
  report->AddSummary("config.seed", static_cast<double>(config.seed));
  report->AddSummary("config.stateless_fraction", config.stateless_fraction);
  report->AddSummary("config.market_coupling", config.market_coupling);
  report->AddSummary("result.avg_cost_per_vm_hour", result.avg_cost_per_vm_hour);
  report->AddSummary("result.unavailability_pct", result.unavailability_pct);
  report->AddSummary("result.degradation_pct", result.degradation_pct);
  report->AddSummary("result.storms.quarter", result.storms.quarter);
  report->AddSummary("result.storms.half", result.storms.half);
  report->AddSummary("result.storms.three_quarters",
                     result.storms.three_quarters);
  report->AddSummary("result.storms.all", result.storms.all);
  report->AddSummary("result.revocation_events",
                     static_cast<double>(result.revocation_events));
  report->AddSummary("result.evacuations",
                     static_cast<double>(result.evacuations));
  report->AddSummary("result.repatriations",
                     static_cast<double>(result.repatriations));
  report->AddSummary("result.failed_migrations",
                     static_cast<double>(result.failed_migrations));
  report->AddSummary("result.stagings", static_cast<double>(result.stagings));
  report->AddSummary("result.stateless_respawns",
                     static_cast<double>(result.stateless_respawns));
  report->AddSummary("result.num_backup_servers", result.num_backup_servers);
  report->AddSummary("result.native_cost", result.native_cost);
  report->AddSummary("result.backup_cost", result.backup_cost);
  report->AddSummary("result.vm_hours", result.vm_hours);
  if (chaos != nullptr) {
    report->AddSummary("result.chaos_faults_injected",
                       static_cast<double>(result.chaos_faults_injected));
  }
  report->chaos_active = config.chaos.enabled();
  report->chaos_level = config.chaos.level;
  report->chaos_seed = config.chaos.seed;
  if (report->chaos_active) {
    report->AddSummary("config.chaos_level", config.chaos.level);
    report->AddSummary("config.chaos_seed",
                       static_cast<double>(config.chaos.seed));
  }
  report->metrics = std::move(metrics);
  report->trace = std::move(trace);
  report->profile = std::move(profile);
  report->timeseries = std::move(timeseries);
  const std::vector<ControllerEvent>& events = controller.event_log().events();
  report->events.reserve(events.size() +
                         (chaos != nullptr ? chaos->timeline().size() : 0));
  // Tens of thousands of event rows name the same handful of markets and a
  // few thousand ids; stringify each distinct one once instead of per row.
  std::map<MarketKey, std::string> market_names;
  std::unordered_map<uint64_t, std::string> vm_names;
  std::unordered_map<uint64_t, std::string> host_names;
  for (const ControllerEvent& event : events) {
    RunReportEvent row;
    row.time_s = event.time.seconds();
    row.kind = std::string(ControllerEventKindName(event.kind));
    if (event.vm.valid()) {
      auto [it, inserted] = vm_names.try_emplace(event.vm.value());
      if (inserted) {
        it->second = event.vm.ToString();
      }
      row.vm = it->second;
    }
    if (event.host.valid()) {
      auto [it, inserted] = host_names.try_emplace(event.host.value());
      if (inserted) {
        it->second = event.host.ToString();
      }
      row.host = it->second;
    }
    {
      auto [it, inserted] = market_names.try_emplace(event.market);
      if (inserted) {
        it->second = event.market.ToString();
      }
      row.market = it->second;
    }
    row.detail = event.detail;
    report->events.push_back(std::move(row));
  }
  if (chaos != nullptr && !chaos->timeline().empty()) {
    // Interleave injected faults with the controller's reactions to them.
    report->events.insert(report->events.end(), chaos->timeline().begin(),
                          chaos->timeline().end());
    std::stable_sort(report->events.begin(), report->events.end(),
                     [](const RunReportEvent& a, const RunReportEvent& b) {
                       return a.time_s < b.time_s;
                     });
  }
  report->trace_cache_hits = result.trace_cache_hits;
  report->trace_cache_misses = result.trace_cache_misses;
  return report;
}

}  // namespace

EvaluationResult RunPolicyEvaluation(const EvaluationConfig& config) {
  // One registry per cell: every component below holds plain pointers into
  // it, so parallel grid cells never share an instrument.
  const std::shared_ptr<MetricsRegistry> metrics =
      config.collect_metrics ? std::make_shared<MetricsRegistry>() : nullptr;
  // Same ownership story for the tracer: one per cell, plain pointers below.
  const std::shared_ptr<SpanTracer> tracer =
      config.collect_trace ? std::make_shared<SpanTracer>(config.trace)
                           : nullptr;
  // ...and for the flight recorder. The profiler's sampling phase derives
  // from the cell seed unless pinned, so the timed subset is reproducible.
  std::shared_ptr<EventCostProfiler> profiler;
  if (config.collect_profile) {
    ProfilerConfig profiler_config = config.profile;
    if (profiler_config.seed == 0) {
      profiler_config.seed = config.seed;
    }
    profiler = std::make_shared<EventCostProfiler>(profiler_config);
  }
  const std::shared_ptr<TimeSeriesRecorder> timeseries =
      config.collect_timeseries
          ? std::make_shared<TimeSeriesRecorder>(config.timeseries)
          : nullptr;
  // Cell-private arena for the kernel's queue/slot storage: grid workers
  // stop meeting each other on the process allocator's locks, and the
  // pool's size-classed free lists soak up the event-slot churn. Single
  // ownership per cell, no synchronization (the cell is single-threaded);
  // declared before the simulator so it strictly outlives it.
  std::pmr::unsynchronized_pool_resource arena;
  Simulator sim(metrics.get(), tracer.get(), &arena);
  sim.set_profiler(profiler.get());
  MarketPlace markets(&sim, metrics.get());

  if (config.market_coupling > 0.0) {
    // Pre-populate every candidate pool with regionally-coupled traces; the
    // cloud then replays these instead of generating independent ones.
    std::vector<MarketKey> keys;
    for (InstanceType type : {InstanceType::kM3Medium, InstanceType::kM3Large,
                              InstanceType::kM3Xlarge, InstanceType::kM32xlarge}) {
      for (int zone = 0; zone < std::max(config.num_zones, 1); ++zone) {
        keys.push_back(MarketKey{type, AvailabilityZone{zone}});
      }
    }
    std::vector<PriceTrace> traces = GenerateCorrelatedTraces(
        keys, config.horizon + SimDuration::Days(1), config.seed,
        config.shared_events_per_day, config.market_coupling);
    for (size_t i = 0; i < keys.size(); ++i) {
      markets.AddWithTrace(keys[i], std::move(traces[i]));
    }
  }

  NativeCloudConfig cloud_config;
  cloud_config.market_horizon = config.horizon + SimDuration::Days(1);
  cloud_config.market_seed = config.seed;
  cloud_config.latency_seed = config.seed ^ 0xfeed;
  cloud_config.metrics = metrics.get();
  cloud_config.tracer = tracer.get();
  NativeCloud cloud(&sim, &markets, cloud_config);

  ControllerConfig controller_config;
  controller_config.mapping = config.policy;
  controller_config.mechanism = config.mechanism;
  controller_config.bidding = config.bidding;
  controller_config.policy_spec = config.policy_spec;
  controller_config.enable_proactive = config.proactive;
  controller_config.hot_spares = config.hot_spares;
  controller_config.use_staging = config.use_staging;
  controller_config.num_zones = config.num_zones;
  controller_config.seed = config.seed;
  controller_config.metrics = metrics.get();
  controller_config.tracer = tracer.get();
  controller_config.profiler = profiler.get();
  SpotCheckController controller(&sim, &cloud, &markets, controller_config);

  if (timeseries != nullptr) {
    // Register every gauge before the first event runs, then arm the
    // dispatch-loop hook. Registration order is irrelevant to output
    // (serialization sorts by name) but kept stable anyway.
    sim.RegisterTelemetry(*timeseries);
    controller.RegisterTelemetry(*timeseries);
    markets.RegisterTelemetry(*timeseries);
    // Throttled: one /proc read costs ~2us (kernel-side statm assembly),
    // which at every sample over a six-month horizon is a measurable slice
    // of the simulation itself. RSS moves on allocation timescales, so
    // refreshing every 16th sample loses nothing and keeps the whole
    // recorder inside the 5% overhead contract.
    timeseries->AddSeries("process.rss_bytes",
                          [cached = 0.0, tick = 0]() mutable {
                            if (tick-- == 0) {
                              tick = 15;
                              cached = static_cast<double>(CurrentRssBytes());
                            }
                            return cached;
                          });
    sim.set_timeseries(timeseries.get());
  }

  // Fault injection: compile the full schedule up front (dedicated Rng
  // streams; nothing here perturbs the simulation's own draws) and arm it.
  // With the default all-zero ChaosConfig no plan is compiled and no engine
  // exists -- the baseline stays bit-identical.
  std::unique_ptr<ChaosEngine> chaos;
  if (config.chaos.enabled()) {
    ChaosConfig chaos_config = config.chaos;
    chaos_config.num_zones = std::max(config.num_zones, 1);
    const FaultPlan plan = FaultPlan::Compile(chaos_config, SimTime(),
                                              SimTime() + config.horizon);
    chaos = std::make_unique<ChaosEngine>(&sim, &cloud, &markets,
                                          &controller.mutable_backup_pool(),
                                          metrics.get());
    chaos->Arm(plan);
  }

  const int customers = std::max(config.num_customers, 1);
  std::vector<CustomerId> customer_ids;
  customer_ids.reserve(static_cast<size_t>(customers));
  for (int c = 0; c < customers; ++c) {
    customer_ids.push_back(controller.RegisterCustomer());
  }
  sim.RunUntil(SimTime() + config.placement_delay);
  const int stateless_count =
      static_cast<int>(config.stateless_fraction * config.num_vms);
  for (int i = 0; i < config.num_vms; ++i) {
    controller.RequestServer(
        customer_ids[static_cast<size_t>(i) % customer_ids.size()],
        /*stateless=*/i < stateless_count);
  }

  sim.RunUntil(SimTime() + config.horizon);

  EvaluationResult result;
  const SpotCheckController::CostReport cost = controller.ComputeCostReport();
  result.avg_cost_per_vm_hour = cost.avg_cost_per_vm_hour;
  result.native_cost = cost.native_cost;
  result.backup_cost = cost.backup_cost;
  result.vm_hours = cost.vm_hours;
  result.unavailability_pct =
      controller.activity_log().MeanFraction(ActivityKind::kDowntime, SimTime(),
                                             sim.Now()) *
      100.0;
  result.degradation_pct =
      controller.activity_log().MeanFraction(ActivityKind::kDegraded, SimTime(),
                                             sim.Now()) *
      100.0;
  result.storms = controller.storms().Probabilities(config.num_vms,
                                                    config.storm_window,
                                                    config.horizon);
  result.revocation_events = controller.revocation_events();
  result.evacuations = controller.engine().evacuations();
  result.repatriations = controller.repatriations();
  result.failed_migrations = controller.engine().failed_migrations();
  result.stagings = controller.stagings();
  result.stateless_respawns = controller.stateless_respawns();
  result.num_backup_servers = controller.backup_pool().num_servers();
  if (chaos != nullptr) {
    for (FaultKind kind :
         {FaultKind::kInstanceFailure, FaultKind::kZoneOutage,
          FaultKind::kPriceShock, FaultKind::kCapacityFault,
          FaultKind::kBackupDegradation}) {
      result.chaos_faults_injected += chaos->injected(kind);
    }
  }
  result.trace_cache_hits = markets.trace_cache_hits();
  result.trace_cache_misses = markets.trace_cache_misses();
  result.trace_cache_lock_wait_ns = markets.trace_cache_lock_wait_ns();
  if (tracer != nullptr) {
    // Evacuations (etc.) still in flight at the horizon stay visible as
    // clamped, `truncated`-tagged spans rather than vanishing.
    tracer->CloseOpenSpans(sim.Now());
    result.trace = tracer;
  }
  if (timeseries != nullptr) {
    // Final forced sample: the horizon-end fleet state is always recorded,
    // even when the last interval boundary fell short of it.
    timeseries->Sample(sim.Now());
    result.timeseries = timeseries;
  }
  result.profile = profiler;
  if (metrics != nullptr) {
    const auto build_started = std::chrono::steady_clock::now();
    result.report = BuildRunReport(config, result, controller, chaos.get(),
                                   metrics, tracer, profiler, timeseries);
    result.report_build_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - build_started)
                                 .count();
  }
  return result;
}

std::vector<EvaluationTraceKey> EvaluationTraceKeys(
    const EvaluationConfig& config) {
  if (config.market_coupling > 0.0) {
    // Correlated traces are pre-populated via AddWithTrace and never touch
    // the catalog.
    return {};
  }
  // Mirror the wiring above: the controller derives its pools from
  // ControllerConfig defaults (nested_type) plus this config's policy and
  // zone count, and NativeCloud fetches traces at horizon + 1 day with the
  // config's seed.
  const ControllerConfig defaults;
  std::vector<AvailabilityZone> zones;
  for (int i = 0; i < std::max(config.num_zones, 1); ++i) {
    zones.push_back(AvailabilityZone{defaults.zone.index + i});
  }
  // Candidate enumeration ignores the Rng (only weighted ChoosePool draws
  // from it), so any seed yields the same key set.
  std::vector<MarketKey> candidates;
  if (config.policy_spec.has_value()) {
    std::string error;
    candidates = PolicyRegistry::Instance().CandidatesFor(
        config.policy_spec->map, defaults.nested_type, zones, &error);
  } else {
    MappingPolicy mapping(config.policy, defaults.nested_type, zones, Rng(0));
    candidates = mapping.candidates();
  }
  const SimDuration horizon = config.horizon + SimDuration::Days(1);
  std::vector<EvaluationTraceKey> keys;
  keys.reserve(candidates.size());
  for (const MarketKey& market : candidates) {
    keys.push_back(EvaluationTraceKey{market, horizon, config.seed});
  }
  return keys;
}

}  // namespace spotcheck

#include "src/core/cost_model.h"

#include <algorithm>

#include "src/market/market_analytics.h"

namespace spotcheck {

double ExpectedHourlyCost(const CostModelInputs& inputs) {
  const double p = std::clamp(inputs.revocation_probability, 0.0, 1.0);
  return (1.0 - p) * inputs.mean_spot_price_below_bid +
         p * inputs.on_demand_price + inputs.backup_cost_per_vm;
}

double ExpectedUnavailability(const AvailabilityModelInputs& inputs) {
  if (inputs.price_change_period <= SimDuration::Zero()) {
    return 0.0;
  }
  const double p = std::clamp(inputs.revocation_probability, 0.0, 1.0);
  return std::clamp(
      inputs.downtime_per_migration.seconds() * p /
          inputs.price_change_period.seconds(),
      0.0, 1.0);
}

TraceDerivedInputs DeriveFromTrace(const PriceTrace& trace, double bid,
                                   SimTime from, SimTime to) {
  TraceDerivedInputs derived;
  if (trace.empty() || to <= from) {
    return derived;
  }
  const double below = trace.FractionAtOrBelow(bid, from, to);
  derived.revocation_probability = 1.0 - below;
  // E[price | price <= bid]: mean price minus the above-bid contribution.
  // Computed by integrating the trace piecewise.
  double below_weighted = 0.0;
  double below_seconds = 0.0;
  SimTime cursor = from;
  const std::vector<int64_t>& times = trace.times_us();
  size_t i = 0;
  while (i < times.size() && times[i] <= from.micros()) {
    ++i;
  }
  while (cursor < to) {
    const SimTime next = (i < times.size() && times[i] < to.micros())
                             ? SimTime::FromMicros(times[i])
                             : to;
    const double price = trace.PriceAt(cursor);
    if (price <= bid) {
      below_weighted += price * (next - cursor).seconds();
      below_seconds += (next - cursor).seconds();
    }
    cursor = next;
    ++i;
  }
  derived.mean_spot_price_below_bid =
      below_seconds > 0.0 ? below_weighted / below_seconds : 0.0;
  derived.revocations = CountBidCrossings(trace, bid, from, to);
  derived.mean_time_between_revocations =
      derived.revocations > 0 ? (to - from) / static_cast<double>(derived.revocations)
                              : SimDuration::Zero();
  return derived;
}

}  // namespace spotcheck

#include "src/core/placement.h"

#include <algorithm>
#include <vector>

#include "src/backup/backup_pool.h"
#include "src/cloud/native_cloud.h"
#include "src/common/log.h"
#include "src/core/controller_config.h"
#include "src/core/event_log.h"
#include "src/core/host_pool.h"
#include "src/core/policy_bridge.h"
#include "src/net/connection_tracker.h"
#include "src/net/nat_table.h"
#include "src/net/vpc.h"
#include "src/virt/activity_log.h"
#include "src/virt/migration_engine.h"

namespace spotcheck {
namespace {

std::vector<AvailabilityZone> ZoneSpan(const ControllerConfig& config) {
  std::vector<AvailabilityZone> zones;
  for (int i = 0; i < std::max(config.num_zones, 1); ++i) {
    zones.push_back(AvailabilityZone{config.zone.index + i});
  }
  return zones;
}

}  // namespace

PlacementEngine::PlacementEngine(ControllerContext* ctx) : ctx_(ctx) {
  // The Rng split label and seeding are pinned by the determinism golden
  // test: the weighted-draw stream must match the pre-refactor MappingPolicy.
  PoolStrategyInit init;
  init.nested_type = ctx->config->nested_type;
  init.zones = ZoneSpan(*ctx->config);
  init.rng = Rng(ctx->config->seed).Split(0x9a9);
  pool_ = CreatePoolStrategyOrDie(ResolvedPolicySpec(*ctx->config).map, init);
}

void PlacementEngine::PlaceVm(NestedVm& vm) {
  const MarketKey pool = pool_->ChoosePool(
      MarketView(*ctx_->markets, ctx_->Now()), *ctx_->bid);
  SpanId span = 0;
  if (ctx_->tracer != nullptr) {
    SpanTracer& tracer = *ctx_->tracer;
    span = tracer.Begin(ctx_->Now(), "placement.place", "core",
                        tracer.Track("vm/" + vm.id().ToString()));
    tracer.AttrStr(span, "pool", pool.ToString());
    placing_spans_[vm.id()] = span;
  }
  const ScopedTraceParent trace_parent(ctx_->tracer, span);
  if (HostVm* host =
          ctx_->pool->FindHostWithCapacity(pool, /*spot=*/true, vm.spec())) {
    AttachVmToHost(vm, *host);
    return;
  }
  ctx_->pool->QueueOrAcquireSpot(
      pool, Waiter{vm.id(), WaitIntent::kInitialPlacement});
}

void PlacementEngine::OnInitialPlacementHostReady(NestedVm& vm, HostVm& host) {
  if (vm.state() == NestedVmState::kProvisioning) {
    AttachVmToHost(vm, host);
  }
}

void PlacementEngine::AttachVmToHost(NestedVm& vm, HostVm& host) {
  const auto span_it = placing_spans_.find(vm.id());
  const SpanId span = span_it != placing_spans_.end() ? span_it->second : 0;
  // Cloud operations triggered while binding (volume/address attachment,
  // retried spot launches) nest under the open placement span.
  const ScopedTraceParent trace_parent(ctx_->tracer, span);
  if (!host.AddVm(vm.id(), vm.spec())) {
    // Lost a capacity race (or a mis-sized host); place the VM afresh.
    SPOTCHECK_LOG(kWarning) << vm.id().ToString() << " does not fit on "
                            << host.instance().ToString() << "; re-placing";
    ctx_->pool->QueueOrAcquireSpot(
        host.market(), Waiter{vm.id(), WaitIntent::kInitialPlacement});
    return;
  }
  vm.set_host(host.instance());
  const bool was_new = vm.state() == NestedVmState::kProvisioning;
  vm.set_state(NestedVmState::kRunning);
  if (was_new) {
    ctx_->activity_log->MarkBirth(vm.id(), ctx_->Now());
    ctx_->event_log->Record(ctx_->Now(), ControllerEventKind::kVmPlaced,
                            vm.id(), host.instance(), host.market());
    // Persistent root volume and stable private address (Sections 3.4, 5).
    vm.set_root_volume(ctx_->cloud->CreateVolume(8.0));
    vm.set_address(ctx_->cloud->AllocateAddress());
    ctx_->cloud->AttachVolume(vm.root_volume(), host.instance());
    ctx_->cloud->AssignAddress(vm.address(), host.instance());
    // VPC private address + NAT binding in the nested hypervisor (Fig. 4);
    // the customer's first VM becomes the public head of its subnet.
    const auto ip = ctx_->vpc->AssignPrivateIp(vm.customer(), vm.id());
    if (ip.has_value()) {
      ctx_->network->MoveAddress(*ip, host.instance(), vm.id());
      if (!ctx_->vpc->PublicHead(vm.customer()).has_value()) {
        ctx_->vpc->SetPublicHead(vm.customer(), vm.id());
      }
    }
  }
  AssignBackup(vm);
  if (span != 0) {
    ctx_->tracer->AttrStr(span, "host", host.instance().ToString());
    ctx_->tracer->End(span, ctx_->Now());
    placing_spans_.erase(span_it);
  }
}

void PlacementEngine::AssignBackup(NestedVm& vm) {
  const HostVm* host = ctx_->pool->GetHost(vm.host());
  const bool needs_backup = host != nullptr && host->is_spot() &&
                            !vm.spec().stateless &&
                            MechanismNeedsBackup(ctx_->config->mechanism);
  if (needs_backup) {
    BackupServer& server = ctx_->backup_pool->Assign(
        vm.id(), vm.spec().checkpoint_demand_mbps, ctx_->Now());
    vm.set_backup(server.id());
  } else {
    ctx_->backup_pool->Release(vm.id());
    vm.set_backup(BackupServerId());
  }
}

void PlacementEngine::MoveVmToHost(NestedVm& vm, HostVm& destination) {
  const InstanceId old_host_id = vm.host();
  if (old_host_id != destination.instance()) {
    if (HostVm* old_host = ctx_->pool->GetMutableHost(old_host_id)) {
      old_host->RemoveVm(vm.id(), vm.spec());
    }
  }
  vm.set_host(destination.instance());
  if (destination.is_spot()) {
    ctx_->event_log->Record(ctx_->Now(),
                            ControllerEventKind::kRepatriationCompleted,
                            vm.id(), destination.instance(),
                            destination.market());
  }
  AssignBackup(vm);
  ctx_->cloud->AttachVolume(vm.root_volume(), destination.instance());
  ctx_->cloud->AssignAddress(vm.address(), destination.instance());
  // Live migrations pause for well under any TCP timeout; rebinding the
  // address keeps established connections alive.
  RebindNetwork(vm, SimDuration::Millis(200));
  ctx_->pool->MaybeReleaseHost(old_host_id);
}

void PlacementEngine::DetachVmFromCurrentHost(NestedVm& vm) {
  if (HostVm* host = ctx_->pool->GetMutableHost(vm.host())) {
    host->RemoveVm(vm.id(), vm.spec());
  }
  vm.set_host(InstanceId());
}

void PlacementEngine::RebindNetwork(NestedVm& vm, SimDuration outage) {
  const auto ip = ctx_->vpc->IpOf(vm.id());
  const HostVm* host = ctx_->pool->GetHost(vm.host());
  if (ip.has_value() && host != nullptr) {
    ctx_->network->MoveAddress(*ip, host->instance(), vm.id());
  }
  ctx_->connections->ApplyOutage(vm.id(), outage);
}

HostVm* PlacementEngine::PickSpareDestination(const NestedVmSpec& spec) {
  for (InstanceId instance : ctx_->pool->hot_spare_hosts()) {
    const HostVm* host = ctx_->pool->GetHost(instance);
    if (host == nullptr) {
      continue;
    }
    const Instance* native = ctx_->cloud->GetInstance(instance);
    if (native != nullptr && native->state == InstanceState::kRunning &&
        host->CanHost(spec)) {
      // Promote the spare to a regular on-demand host.
      return ctx_->pool->PromoteHotSpare(instance);
    }
  }
  return nullptr;
}

HostVm* PlacementEngine::PickStagingHost(const NestedVmSpec& spec,
                                         const MarketKey& exclude) {
  // Id-ordered fleet scan, exactly as the old host-map iteration was; the
  // first match wins. Staging is rare enough that O(hosts) is fine here.
  HostVm* found = nullptr;
  ctx_->pool->ForEachHost([&](HostVm& host) {
    if (found != nullptr) {
      return;
    }
    if (!host.is_spot() || host.market() == exclude || !host.CanHost(spec)) {
      return;
    }
    const Instance* native = ctx_->cloud->GetInstance(host.instance());
    if (native == nullptr || native->state != InstanceState::kRunning) {
      return;
    }
    // Only pools that are currently stable (price safely below the bid) make
    // sensible havens; a pool mid-spike would just revoke the VM again.
    SpotMarket* market = ctx_->markets->Find(host.market());
    if (market == nullptr ||
        market->CurrentPrice() > ctx_->bid->BidFor(host.market().type)) {
      return;
    }
    found = &host;
  });
  return found;
}

}  // namespace spotcheck

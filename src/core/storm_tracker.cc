#include "src/core/storm_tracker.h"

#include <algorithm>

namespace spotcheck {

void RevocationStormTracker::RecordBatch(SimTime at, int vm_count) {
  if (vm_count <= 0) {
    return;
  }
  batches_.emplace_back(at, vm_count);
  total_vms_ += vm_count;
  max_batch_ = std::max(max_batch_, vm_count);
}

RevocationStormTracker::StormProbabilities
RevocationStormTracker::Probabilities(int total_vms, SimDuration window,
                                      SimDuration horizon) const {
  StormProbabilities probs;
  if (total_vms <= 0 || window <= SimDuration::Zero() ||
      horizon <= SimDuration::Zero()) {
    return probs;
  }
  const int64_t num_windows =
      std::max<int64_t>(1, static_cast<int64_t>(horizon / window));
  // Sliding-window grouping: a storm is a maximal run of batches that all
  // land within `window` of the run's first batch. Bucketing by fixed
  // [k*window, (k+1)*window) cells instead would split a storm straddling a
  // cell boundary into two half-size groups -- e.g. a full-fleet revocation
  // at the boundary counts twice in `half` and never in `all`. Batches are
  // recorded in simulation-time order, so one forward pass suffices.
  const double n = static_cast<double>(total_vms);
  int64_t quarter = 0;
  int64_t half = 0;
  int64_t three_quarters = 0;
  int64_t all = 0;
  for (size_t i = 0; i < batches_.size();) {
    const SimTime start = batches_[i].first;
    int64_t count = 0;
    for (; i < batches_.size() && batches_[i].first - start < window; ++i) {
      count += batches_[i].second;
    }
    const double fraction = static_cast<double>(count) / n;
    if (fraction >= 1.0) {
      ++all;
    } else if (fraction >= 0.75) {
      ++three_quarters;
    } else if (fraction >= 0.5) {
      ++half;
    } else if (fraction >= 0.25) {
      ++quarter;
    }
  }
  const double windows = static_cast<double>(num_windows);
  probs.quarter = static_cast<double>(quarter) / windows;
  probs.half = static_cast<double>(half) / windows;
  probs.three_quarters = static_cast<double>(three_quarters) / windows;
  probs.all = static_cast<double>(all) / windows;
  return probs;
}

}  // namespace spotcheck

#include "src/core/storm_tracker.h"

#include <algorithm>

namespace spotcheck {

void RevocationStormTracker::RecordBatch(SimTime at, int vm_count) {
  if (vm_count <= 0) {
    return;
  }
  batches_.emplace_back(at, vm_count);
  total_vms_ += vm_count;
  max_batch_ = std::max(max_batch_, vm_count);
}

RevocationStormTracker::StormProbabilities
RevocationStormTracker::Probabilities(int total_vms, SimDuration window,
                                      SimDuration horizon) const {
  StormProbabilities probs;
  if (total_vms <= 0 || window <= SimDuration::Zero() ||
      horizon <= SimDuration::Zero()) {
    return probs;
  }
  const int64_t num_windows =
      std::max<int64_t>(1, static_cast<int64_t>(horizon / window));
  // Sum the revoked VMs per window (revocations of one storm land within the
  // two-minute warning, far inside any sensible window).
  std::map<int64_t, int> per_window;
  for (const auto& [at, count] : batches_) {
    const int64_t index = (at - SimTime()).micros() / window.micros();
    per_window[index] += count;
  }
  const double n = static_cast<double>(total_vms);
  int64_t quarter = 0;
  int64_t half = 0;
  int64_t three_quarters = 0;
  int64_t all = 0;
  for (const auto& [index, count] : per_window) {
    const double fraction = static_cast<double>(count) / n;
    if (fraction >= 1.0) {
      ++all;
    } else if (fraction >= 0.75) {
      ++three_quarters;
    } else if (fraction >= 0.5) {
      ++half;
    } else if (fraction >= 0.25) {
      ++quarter;
    }
  }
  const double windows = static_cast<double>(num_windows);
  probs.quarter = static_cast<double>(quarter) / windows;
  probs.half = static_cast<double>(half) / windows;
  probs.three_quarters = static_cast<double>(three_quarters) / windows;
  probs.all = static_cast<double>(all) / windows;
  return probs;
}

}  // namespace spotcheck

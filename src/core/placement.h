// Placement: which pool, which host, which backup.
//
// The PlacementEngine wraps the customer-to-pool mapping policy (Table 2)
// and every "pick a host" decision the controller makes: first placement of
// a fresh VM, the capacity lookup behind repatriation, hot-spare and
// staging-host selection during evacuations, and the mechanics of binding a
// VM to a host (volume/address attachment, VPC address, backup stream).

#ifndef SRC_CORE_PLACEMENT_H_
#define SRC_CORE_PLACEMENT_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/core/controller_context.h"
#include "src/obs/trace.h"
#include "src/policy/strategy.h"
#include "src/virt/host_vm.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {

class PlacementEngine {
 public:
  explicit PlacementEngine(ControllerContext* ctx);

  PlacementEngine(const PlacementEngine&) = delete;
  PlacementEngine& operator=(const PlacementEngine&) = delete;

  // Candidate pools of the configured pool-selection strategy.
  const std::vector<MarketKey>& candidates() const {
    return pool_->candidates();
  }

  // Chooses a pool and either joins an existing host with a free slot or
  // queues the VM on a (possibly fresh) spot launch.
  void PlaceVm(NestedVm& vm);
  // A host this VM was queued on for initial placement is up.
  void OnInitialPlacementHostReady(NestedVm& vm, HostVm& host);
  // Binds `vm` to `host`: capacity, first-birth bookkeeping (volume,
  // address, VPC subnet), and the backup stream. Re-places on a lost
  // capacity race.
  void AttachVmToHost(NestedVm& vm, HostVm& host);
  // (Re-)derives whether the VM needs a backup stream on its current host
  // and assigns/releases accordingly.
  void AssignBackup(NestedVm& vm);
  // Completes a live migration: moves residency, re-arms the backup, swings
  // volume/address/NAT to `destination`, releases the old host when empty.
  void MoveVmToHost(NestedVm& vm, HostVm& destination);
  void DetachVmFromCurrentHost(NestedVm& vm);
  // Re-binds the VM's private address to its current host and charges the
  // migration outage to its client connections.
  void RebindNetwork(NestedVm& vm, SimDuration outage);

  // First ready hot spare that fits `spec`; promotes it to a regular host.
  HostVm* PickSpareDestination(const NestedVmSpec& spec);
  // An under-utilized spot host in a different, currently-stable pool that
  // can temporarily take `spec` (Section 4.3's staging servers).
  HostVm* PickStagingHost(const NestedVmSpec& spec, const MarketKey& exclude);

 private:
  ControllerContext* ctx_;
  // The pool-selection strategy resolved from the controller's PolicySpec
  // (registry-created; the legacy MappingPolicyKind maps 1:1 onto builtin
  // strategy names, so enum configs behave bit-identically).
  std::unique_ptr<PoolSelectionStrategy> pool_;
  // Open "placement.place" spans: PlaceVm -> first successful attach.
  // Empty when tracing is off.
  std::map<NestedVmId, SpanId> placing_spans_;
};

}  // namespace spotcheck

#endif  // SRC_CORE_PLACEMENT_H_

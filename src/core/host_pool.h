// Host pool management: the controller component that owns every running
// and pending host, hot spares, and the indexes behind placement lookups.
//
// The pool keeps two families of per-MarketKey indexes so the placement hot
// path never scans the whole fleet:
//
//   * capacity indexes (one for spot, one for on-demand): the InstanceIds of
//     every placeable host of a market, ordered by id. Hot spares are
//     excluded until promoted. Because InstanceIds are allocated
//     monotonically at acquisition, id order IS acquisition order -- and,
//     critically, it equals the iteration order of the old whole-fleet
//     std::map scan, so FindHostWithCapacity selects bit-identically to the
//     pre-index controller. (A readiness-ordered list would NOT: launch
//     latencies reorder readiness relative to acquisition.)
//
//   * placeable sub-indexes (spot and on-demand): the subset of each
//     capacity index with at least one standard nested slot free, kept in
//     sync by a HostOccupancyListener hook on every AddVm/RemoveVm. The
//     placement hot path walks this subset, so a market full of packed
//     hosts costs O(1) instead of O(hosts of the market). Exact for specs
//     at least one slot large (the common case: every acceptable host is
//     in the subset, re-checked with CanHost in the same id order);
//     smaller bespoke specs fall back to the full capacity index.
//
//   * a pending-spot index plus its joinable subset: non-hot-spare spot
//     launches per market, and the ones that still have a free nested
//     slot, so QueueOrAcquireSpot joins an in-flight host (the slicing
//     arbitrage) in O(log n) instead of scanning every pending
//     acquisition. Waiters never leave a pending host before it resolves,
//     so fullness is monotone and the joinable subset's minimum id is
//     exactly the host the old first-with-room scan picked.
//
// Aggregate accounting (host count, fleet capacity/used MB, queued
// waiters) is maintained incrementally at the same mutation sites and
// cross-checked against full scans by ValidateInvariants.
//
// Host readiness fans out to the other components by waiter intent: initial
// placements to the PlacementEngine, evacuation destinations to the
// EvacuationCoordinator, planned moves to the RepatriationScheduler.

#ifndef SRC_CORE_HOST_POOL_H_
#define SRC_CORE_HOST_POOL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/fleet_store.h"
#include "src/common/ids.h"
#include "src/core/controller_context.h"
#include "src/market/instance_types.h"
#include "src/obs/trace.h"
#include "src/virt/host_vm.h"
#include "src/virt/vm_spec.h"

namespace spotcheck {

class TimeSeriesRecorder;

// Why a VM is waiting for a host to come up.
enum class WaitIntent : uint8_t {
  kInitialPlacement,       // fresh VM, first host
  kEvacuationDestination,  // destination of an in-flight evacuation
  kPlannedMove,            // live-migration target (repatriation/proactive)
};

struct Waiter {
  NestedVmId vm;
  WaitIntent intent = WaitIntent::kInitialPlacement;
};

class HostPoolManager : public HostOccupancyListener {
 public:
  explicit HostPoolManager(ControllerContext* ctx) : ctx_(ctx) {}

  HostPoolManager(const HostPoolManager&) = delete;
  HostPoolManager& operator=(const HostPoolManager&) = delete;

  // --- Host table ---------------------------------------------------------

  size_t num_hosts() const { return hosts_.size(); }
  const HostVm* GetHost(InstanceId instance) const;
  HostVm* GetMutableHost(InstanceId instance);
  std::vector<const HostVm*> Hosts() const;
  // Id-ordered scan over every host record, hot spares included; for cold
  // paths that genuinely need the whole fleet (state dump, staging search).
  // fn takes (const) HostVm&. No acquisition/release while iterating.
  template <typename Fn>
  void ForEachHost(Fn&& fn) const {
    hosts_.ForEach([&](InstanceId, const HostVm& host) { fn(host); });
  }
  template <typename Fn>
  void ForEachHost(Fn&& fn) {
    hosts_.ForEach([&](InstanceId, HostVm& host) { fn(host); });
  }

  // --- Placement lookups --------------------------------------------------

  // First host of `market` (spot or on-demand side) that can take `spec`,
  // in acquisition order; skips hot spares and non-running natives. O(hosts
  // of that one market), not O(all hosts).
  HostVm* FindHostWithCapacity(const MarketKey& market, bool spot,
                               const NestedVmSpec& spec);
  // Spot hosts of `market` in acquisition order (snapshot; callers mutate
  // residency while iterating).
  std::vector<InstanceId> SpotHostsIn(const MarketKey& market) const;

  // --- Acquisition --------------------------------------------------------

  // Requests a fresh native instance; `first_waiter` (when valid) is placed
  // on it once it is up.
  void AcquireHost(MarketKey market, bool is_spot, Waiter first_waiter,
                   bool hot_spare = false);
  // Joins an already-launching spot host in `market` when it has a free
  // nested slot (the slicing arbitrage), otherwise requests a new one.
  void QueueOrAcquireSpot(const MarketKey& market, Waiter waiter);

  // --- Lifecycle ----------------------------------------------------------

  // Terminates and forgets `instance` once it is empty (hot spares stay up).
  void MaybeReleaseHost(InstanceId instance);
  // Tops pending + ready hot spares back up to config.hot_spares.
  void ReplenishHotSpares();

  // --- Hot spares ---------------------------------------------------------

  bool IsHotSpare(InstanceId instance) const {
    return hot_spare_set_.contains(instance);
  }
  // Readiness-ordered, as spare selection has always been.
  const std::vector<InstanceId>& hot_spare_hosts() const {
    return hot_spare_order_;
  }
  // Turns a spare into a regular placeable host (it joins the capacity
  // index); returns the host, or null when unknown.
  HostVm* PromoteHotSpare(InstanceId instance);

  // --- Introspection ------------------------------------------------------

  size_t num_pending_hosts() const { return pending_hosts_.size(); }
  int num_pending_hot_spares() const { return pending_hot_spares_; }
  // O(1) fleet aggregates, maintained at every mutation site and
  // cross-checked against full scans by ValidateInvariants.
  double total_capacity_mb() const { return total_capacity_mb_; }
  double total_used_mb() const { return total_used_mb_; }
  size_t num_waiting_vms() const { return num_waiting_vms_; }
  // The "-- hosts --" section of the controller state dump.
  std::string DumpHosts() const;
  // Capacity accounting, dead-resident, and index-consistency checks.
  bool ValidateInvariants(std::string* error) const;
  // Registers the pool's fleet/index-shape gauges (host counts, capacity,
  // waitlist depth, per-market index entry totals) on `ts`. Samplers read
  // pool state only; the recorder must outlive the pool's last sample.
  void RegisterTelemetry(TimeSeriesRecorder& ts);

 private:
  struct PendingHost {
    MarketKey market;
    bool is_spot = true;
    bool is_hot_spare = false;
    std::deque<Waiter> waiting;  // VMs to place when the host is up
    // Open "pool.acquire" span covering request -> ready/failed (0 when
    // tracing is off).
    SpanId span = 0;
  };

  void OnHostReady(InstanceId instance, bool ok);
  // HostOccupancyListener: keeps total_used_mb_ and the placeable
  // sub-index in step with every AddVm/RemoveVm on a pooled host.
  void OnHostOccupancyChanged(HostVm& host, double used_delta_mb) override;
  std::set<InstanceId>& CapacityIndex(const MarketKey& market, bool spot) {
    return (spot ? spot_index_ : ondemand_index_)[market];
  }
  std::set<InstanceId>& PlaceableIndex(const MarketKey& market, bool spot) {
    return (spot ? placeable_spot_index_ : placeable_ondemand_index_)[market];
  }
  // Memory of one standard nested slot (config.nested_type); the placeable
  // sub-index admits hosts with at least this much free.
  double PlaceableThresholdMb() const;
  // Recomputes `host`'s membership in the placeable sub-index (in iff
  // capacity-indexed, i.e. not a hot spare, with a standard slot free).
  void RefreshPlaceable(const HostVm& host);
  int SpotSlots(const MarketKey& market) const;

  ControllerContext* ctx_;
  // Fleet-scale host storage: arena records (stable for the HostVm&
  // handed to the components), O(1) id lookups, id-order iteration.
  FleetTable<InstanceTag, HostVm> hosts_;
  std::map<InstanceId, PendingHost> pending_hosts_;
  // Per-market capacity indexes (see file comment); hot spares excluded.
  std::map<MarketKey, std::set<InstanceId>> spot_index_;
  std::map<MarketKey, std::set<InstanceId>> ondemand_index_;
  // The placeable subset of each capacity index (standard slot free).
  std::map<MarketKey, std::set<InstanceId>> placeable_spot_index_;
  std::map<MarketKey, std::set<InstanceId>> placeable_ondemand_index_;
  // Non-hot-spare spot launches per market, for QueueOrAcquireSpot...
  std::map<MarketKey, std::set<InstanceId>> pending_spot_index_;
  // ...and the subset that still has a free nested slot to join.
  std::map<MarketKey, std::set<InstanceId>> joinable_spot_index_;
  // Hot spares: readiness-ordered pick list + O(log n) membership.
  std::vector<InstanceId> hot_spare_order_;
  std::set<InstanceId> hot_spare_set_;
  int pending_hot_spares_ = 0;
  // O(1) aggregates (see accessors above).
  double total_capacity_mb_ = 0.0;
  double total_used_mb_ = 0.0;
  size_t num_waiting_vms_ = 0;
  mutable double placeable_threshold_mb_ = -1.0;  // lazy; config-immutable
};

}  // namespace spotcheck

#endif  // SRC_CORE_HOST_POOL_H_

// Host pool management: the controller component that owns every running
// and pending host, hot spares, and the indexes behind placement lookups.
//
// The pool keeps two families of per-MarketKey indexes so the placement hot
// path never scans the whole fleet:
//
//   * capacity indexes (one for spot, one for on-demand): the InstanceIds of
//     every placeable host of a market, ordered by id. Hot spares are
//     excluded until promoted. Because InstanceIds are allocated
//     monotonically at acquisition, id order IS acquisition order -- and,
//     critically, it equals the iteration order of the old whole-fleet
//     std::map scan, so FindHostWithCapacity selects bit-identically to the
//     pre-index controller. (A readiness-ordered list would NOT: launch
//     latencies reorder readiness relative to acquisition.)
//
//   * a pending-spot index: non-hot-spare spot launches per market, so
//     QueueOrAcquireSpot finds a joinable in-flight host (the slicing
//     arbitrage) without scanning every pending acquisition.
//
// Host readiness fans out to the other components by waiter intent: initial
// placements to the PlacementEngine, evacuation destinations to the
// EvacuationCoordinator, planned moves to the RepatriationScheduler.

#ifndef SRC_CORE_HOST_POOL_H_
#define SRC_CORE_HOST_POOL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/core/controller_context.h"
#include "src/market/instance_types.h"
#include "src/obs/trace.h"
#include "src/virt/host_vm.h"
#include "src/virt/vm_spec.h"

namespace spotcheck {

// Why a VM is waiting for a host to come up.
enum class WaitIntent : uint8_t {
  kInitialPlacement,       // fresh VM, first host
  kEvacuationDestination,  // destination of an in-flight evacuation
  kPlannedMove,            // live-migration target (repatriation/proactive)
};

struct Waiter {
  NestedVmId vm;
  WaitIntent intent = WaitIntent::kInitialPlacement;
};

class HostPoolManager {
 public:
  explicit HostPoolManager(ControllerContext* ctx) : ctx_(ctx) {}

  HostPoolManager(const HostPoolManager&) = delete;
  HostPoolManager& operator=(const HostPoolManager&) = delete;

  // --- Host table ---------------------------------------------------------

  const std::map<InstanceId, std::unique_ptr<HostVm>>& hosts() const {
    return hosts_;
  }
  const HostVm* GetHost(InstanceId instance) const;
  HostVm* GetMutableHost(InstanceId instance);
  std::vector<const HostVm*> Hosts() const;

  // --- Placement lookups --------------------------------------------------

  // First host of `market` (spot or on-demand side) that can take `spec`,
  // in acquisition order; skips hot spares and non-running natives. O(hosts
  // of that one market), not O(all hosts).
  HostVm* FindHostWithCapacity(const MarketKey& market, bool spot,
                               const NestedVmSpec& spec);
  // Spot hosts of `market` in acquisition order (snapshot; callers mutate
  // residency while iterating).
  std::vector<InstanceId> SpotHostsIn(const MarketKey& market) const;

  // --- Acquisition --------------------------------------------------------

  // Requests a fresh native instance; `first_waiter` (when valid) is placed
  // on it once it is up.
  void AcquireHost(MarketKey market, bool is_spot, Waiter first_waiter,
                   bool hot_spare = false);
  // Joins an already-launching spot host in `market` when it has a free
  // nested slot (the slicing arbitrage), otherwise requests a new one.
  void QueueOrAcquireSpot(const MarketKey& market, Waiter waiter);

  // --- Lifecycle ----------------------------------------------------------

  // Terminates and forgets `instance` once it is empty (hot spares stay up).
  void MaybeReleaseHost(InstanceId instance);
  // Tops pending + ready hot spares back up to config.hot_spares.
  void ReplenishHotSpares();

  // --- Hot spares ---------------------------------------------------------

  bool IsHotSpare(InstanceId instance) const {
    return hot_spare_set_.contains(instance);
  }
  // Readiness-ordered, as spare selection has always been.
  const std::vector<InstanceId>& hot_spare_hosts() const {
    return hot_spare_order_;
  }
  // Turns a spare into a regular placeable host (it joins the capacity
  // index); returns the host, or null when unknown.
  HostVm* PromoteHotSpare(InstanceId instance);

  // --- Introspection ------------------------------------------------------

  size_t num_pending_hosts() const { return pending_hosts_.size(); }
  int num_pending_hot_spares() const { return pending_hot_spares_; }
  // The "-- hosts --" section of the controller state dump.
  std::string DumpHosts() const;
  // Capacity accounting, dead-resident, and index-consistency checks.
  bool ValidateInvariants(std::string* error) const;

 private:
  struct PendingHost {
    MarketKey market;
    bool is_spot = true;
    bool is_hot_spare = false;
    std::deque<Waiter> waiting;  // VMs to place when the host is up
    // Open "pool.acquire" span covering request -> ready/failed (0 when
    // tracing is off).
    SpanId span = 0;
  };

  void OnHostReady(InstanceId instance, bool ok);
  std::set<InstanceId>& CapacityIndex(const MarketKey& market, bool spot) {
    return (spot ? spot_index_ : ondemand_index_)[market];
  }

  ControllerContext* ctx_;
  std::map<InstanceId, std::unique_ptr<HostVm>> hosts_;
  std::map<InstanceId, PendingHost> pending_hosts_;
  // Per-market capacity indexes (see file comment); hot spares excluded.
  std::map<MarketKey, std::set<InstanceId>> spot_index_;
  std::map<MarketKey, std::set<InstanceId>> ondemand_index_;
  // Non-hot-spare spot launches per market, for QueueOrAcquireSpot.
  std::map<MarketKey, std::set<InstanceId>> pending_spot_index_;
  // Hot spares: readiness-ordered pick list + O(log n) membership.
  std::vector<InstanceId> hot_spare_order_;
  std::set<InstanceId> hot_spare_set_;
  int pending_hot_spares_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_CORE_HOST_POOL_H_

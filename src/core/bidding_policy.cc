#include "src/core/bidding_policy.h"

#include <cstdio>

namespace spotcheck {

std::string BiddingPolicy::ToString() const {
  if (kind == BidPolicyKind::kOnDemandPrice) {
    return "bid=on-demand";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "bid=%.2gx-on-demand", k);
  return buf;
}

}  // namespace spotcheck

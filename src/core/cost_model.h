// Analytic cost and availability model (Section 4.4).
//
// For a nested VM with revocation probability p = P(spot > bid):
//
//   E(c) = (1 - p) * E(c_spot) + p * c_od           (+ amortized backup cost)
//
// and, with the market price changing every T time units, a revocation rate
// R = p / T, each revocation charging D seconds of migration downtime:
//
//   unavailability = D * p / T
//
// These closed forms let policies be compared without running a full
// simulation; the simulation harness validates them.

#ifndef SRC_CORE_COST_MODEL_H_
#define SRC_CORE_COST_MODEL_H_

#include "src/common/time.h"
#include "src/market/price_trace.h"

namespace spotcheck {

struct CostModelInputs {
  double bid = 0.07;                  // $/hr
  double on_demand_price = 0.07;      // $/hr
  double mean_spot_price_below_bid = 0.008;  // E[c_spot | c_spot <= bid]
  double revocation_probability = 0.01;      // p = P(c_spot > bid)
  double backup_cost_per_vm = 0.007;  // amortized $/hr (0 for live-only)
};

// Expected $/hr for one nested VM.
double ExpectedHourlyCost(const CostModelInputs& inputs);

struct AvailabilityModelInputs {
  double revocation_probability = 0.01;     // p
  SimDuration price_change_period = SimDuration::Hours(1);  // T
  SimDuration downtime_per_migration = SimDuration::Seconds(23);  // D
};

// Expected fraction of time unavailable, in [0, 1].
double ExpectedUnavailability(const AvailabilityModelInputs& inputs);

// Derives the model inputs from a price trace over [from, to):
//   p  = fraction of time price > bid,
//   E[c_spot | below bid] = time-weighted mean of the price when at/below bid,
//   T  = (to - from) / number of upward bid crossings.
struct TraceDerivedInputs {
  double revocation_probability = 0.0;
  double mean_spot_price_below_bid = 0.0;
  SimDuration mean_time_between_revocations = SimDuration::Zero();
  int revocations = 0;
};
TraceDerivedInputs DeriveFromTrace(const PriceTrace& trace, double bid,
                                   SimTime from, SimTime to);

}  // namespace spotcheck

#endif  // SRC_CORE_COST_MODEL_H_

#include "src/core/policy_bridge.h"

#include <cstdio>
#include <cstdlib>

namespace spotcheck {

StrategySpec BidSpecFromLegacy(const BiddingPolicy& bidding) {
  if (bidding.kind == BidPolicyKind::kMultipleOfOnDemand) {
    return StrategySpec{"multiple", {bidding.k}};
  }
  return StrategySpec{"on-demand", {}};
}

StrategySpec MapSpecFromLegacy(MappingPolicyKind kind) {
  switch (kind) {
    case MappingPolicyKind::k1PM:
      return StrategySpec{"1p-m", {}};
    case MappingPolicyKind::k2PML:
      return StrategySpec{"2p-ml", {}};
    case MappingPolicyKind::k4PED:
      return StrategySpec{"4p-ed", {}};
    case MappingPolicyKind::k4PCost:
      return StrategySpec{"4p-cost", {}};
    case MappingPolicyKind::k4PStability:
      return StrategySpec{"4p-st", {}};
    case MappingPolicyKind::kGreedyCheapest:
      return StrategySpec{"greedy", {}};
    case MappingPolicyKind::kStabilityFirst:
      return StrategySpec{"stable", {}};
  }
  return StrategySpec{"1p-m", {}};
}

PolicySpec ResolvedPolicySpec(const ControllerConfig& config) {
  if (config.policy_spec.has_value()) {
    return *config.policy_spec;
  }
  PolicySpec spec;
  spec.bid = BidSpecFromLegacy(config.bidding);
  spec.map = MapSpecFromLegacy(config.mapping);
  return spec;
}

std::unique_ptr<BidStrategy> CreateBidStrategyOrDie(const StrategySpec& spec) {
  std::string error;
  auto strategy = PolicyRegistry::Instance().CreateBid(spec, &error);
  if (strategy == nullptr) {
    std::fprintf(stderr, "cannot instantiate bid strategy '%s': %s\n",
                 spec.ToString().c_str(), error.c_str());
    std::abort();
  }
  return strategy;
}

std::unique_ptr<PoolSelectionStrategy> CreatePoolStrategyOrDie(
    const StrategySpec& spec, const PoolStrategyInit& init) {
  std::string error;
  auto strategy = PolicyRegistry::Instance().CreatePool(spec, init, &error);
  if (strategy == nullptr) {
    std::fprintf(stderr, "cannot instantiate pool strategy '%s': %s\n",
                 spec.ToString().c_str(), error.c_str());
    std::abort();
  }
  return strategy;
}

}  // namespace spotcheck

// Customer-to-pool mapping policies (Table 2, Section 4.2) -- legacy shim.
//
// When a customer requests a nested VM, SpotCheck decides which spot pool
// (host instance type x zone) should receive it. Distributing a customer's
// VMs across pools whose prices move independently reduces the chance of a
// revocation storm -- portfolio diversification applied to servers. The
// evaluated policies:
//
//   1P-M     all VMs in the m3.medium pool
//   2P-ML    split evenly between m3.medium and m3.large
//   4P-ED    split evenly across all four m3 types
//   4P-COST  weighted towards pools with lower historical per-slot cost
//   4P-ST    weighted towards pools with fewer historical revocations
//
// plus two allocation strategies described in the prose: greedy
// cheapest-first (current per-slot price, exploiting the slicing arbitrage)
// and stability-first (fewest recent bid crossings).
//
// Since the policy-layer refactor the implementations live in src/policy
// (builtin_strategies.h) behind the PoolSelectionStrategy interface; this
// class keeps the enum-based API for existing callers by delegating to the
// registry-created strategy. New code should address strategies by spec
// string ("map=4p-cost") through ControllerConfig::policy_spec instead.

#ifndef SRC_CORE_MAPPING_POLICY_H_
#define SRC_CORE_MAPPING_POLICY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/core/bidding_policy.h"
#include "src/market/spot_market.h"
#include "src/policy/strategy.h"

namespace spotcheck {

enum class MappingPolicyKind : uint8_t {
  k1PM,
  k2PML,
  k4PED,
  k4PCost,
  k4PStability,
  kGreedyCheapest,
  kStabilityFirst,
};

std::string_view MappingPolicyName(MappingPolicyKind kind);

// Chooses the spot pool for each newly requested nested VM. Pools are
// identified by the market of their host servers; a pool whose host type is
// larger than the nested VM type is sliced (NestedSlotsPerHost > 1).
// Move-only: owns the underlying registry-created strategy.
class MappingPolicy {
 public:
  // `nested_type` is the type customers request (m3.medium in the paper);
  // candidates are derived from the policy kind within `zone`.
  MappingPolicy(MappingPolicyKind kind, InstanceType nested_type,
                AvailabilityZone zone, Rng rng);

  // Multi-zone variant (Section 4.2: pool management operates across types
  // AND availability zones within a region): the policy's type ladder is
  // replicated into each zone, multiplying the number of independent pools.
  MappingPolicy(MappingPolicyKind kind, InstanceType nested_type,
                const std::vector<AvailabilityZone>& zones, Rng rng);

  MappingPolicy(MappingPolicy&&) = default;
  MappingPolicy& operator=(MappingPolicy&&) = default;

  MappingPolicyKind kind() const { return kind_; }
  const std::vector<MarketKey>& candidates() const {
    return strategy_->candidates();
  }

  // Picks the pool for the next VM. `markets` supplies price history for the
  // cost/stability-weighted policies; `bidding` defines the bid whose
  // crossings count as revocations; `now` bounds the history lookback.
  MarketKey ChoosePool(MarketPlace& markets, const BiddingPolicy& bidding,
                       SimTime now);

  // Per-slot price of hosting one `nested_type` VM in `pool` at `now`
  // (host price divided by slots; the slicing arbitrage in Section 4.2).
  static double PerSlotPrice(const SpotMarket& market, InstanceType nested_type,
                             SimTime now) {
    return PoolSelectionStrategy::PerSlotPrice(market, nested_type, now);
  }

 private:
  MappingPolicyKind kind_;
  std::unique_ptr<PoolSelectionStrategy> strategy_;
};

}  // namespace spotcheck

#endif  // SRC_CORE_MAPPING_POLICY_H_

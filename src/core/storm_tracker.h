// Revocation-storm statistics (Table 3).
//
// A pool-wide price spike revokes every spot server in the pool at once; the
// resulting mass migration overloads backup servers. Table 3 quantifies the
// benefit of pool diversification as the probability that a large fraction
// of a customer's N VMs must migrate concurrently. The tracker records each
// revocation batch and reports how often a storm -- batches grouped by a
// sliding observation window -- reached each fraction-of-N bucket.

#ifndef SRC_CORE_STORM_TRACKER_H_
#define SRC_CORE_STORM_TRACKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time.h"

namespace spotcheck {

class RevocationStormTracker {
 public:
  // Records that `vm_count` VMs were revoked together at `at`.
  void RecordBatch(SimTime at, int vm_count);

  int64_t total_batches() const { return static_cast<int64_t>(batches_.size()); }
  int64_t total_revoked_vms() const { return total_vms_; }
  int max_batch() const { return max_batch_; }

  // Table 3 row: probability that a storm's concurrently revoked VM count
  // reaches each of the buckets {>= N/4, >= N/2, >= 3N/4, == N} exclusively
  // (a storm counts in its highest bucket only, matching the paper's
  // "maximum number of concurrent revocations"). A storm is a maximal run of
  // batches within `window` of its first batch -- a sliding window, so a
  // storm is never split by a fixed bucket boundary. Probabilities are
  // fractions of the horizon/window observation windows in [0, horizon).
  struct StormProbabilities {
    double quarter = 0.0;        // max in [N/4, N/2)
    double half = 0.0;           // max in [N/2, 3N/4)
    double three_quarters = 0.0; // max in [3N/4, N)
    double all = 0.0;            // max == N (or more)
  };
  StormProbabilities Probabilities(int total_vms, SimDuration window,
                                   SimDuration horizon) const;

  const std::vector<std::pair<SimTime, int>>& batches() const { return batches_; }

 private:
  std::vector<std::pair<SimTime, int>> batches_;
  int64_t total_vms_ = 0;
  int max_batch_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_CORE_STORM_TRACKER_H_

// Revocation-storm statistics (Table 3).
//
// A pool-wide price spike revokes every spot server in the pool at once; the
// resulting mass migration overloads backup servers. Table 3 quantifies the
// benefit of pool diversification as the probability that a large fraction
// of a customer's N VMs must migrate concurrently. The tracker records each
// revocation batch and reports, over fixed observation windows, how often
// the concurrent-migration count fell in each fraction-of-N bucket.

#ifndef SRC_CORE_STORM_TRACKER_H_
#define SRC_CORE_STORM_TRACKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time.h"

namespace spotcheck {

class RevocationStormTracker {
 public:
  // Records that `vm_count` VMs were revoked together at `at`.
  void RecordBatch(SimTime at, int vm_count);

  int64_t total_batches() const { return static_cast<int64_t>(batches_.size()); }
  int64_t total_revoked_vms() const { return total_vms_; }
  int max_batch() const { return max_batch_; }

  // Table 3 row: probability that, within an observation window of length
  // `window`, the number of concurrently revoked VMs reaches each of the
  // buckets {>= N/4, >= N/2, >= 3N/4, == N} exclusively (a window counts in
  // its highest bucket only, matching the paper's "maximum number of
  // concurrent revocations"). Probabilities are fractions of all windows in
  // [0, horizon).
  struct StormProbabilities {
    double quarter = 0.0;        // max in [N/4, N/2)
    double half = 0.0;           // max in [N/2, 3N/4)
    double three_quarters = 0.0; // max in [3N/4, N)
    double all = 0.0;            // max == N (or more)
  };
  StormProbabilities Probabilities(int total_vms, SimDuration window,
                                   SimDuration horizon) const;

  const std::vector<std::pair<SimTime, int>>& batches() const { return batches_; }

 private:
  std::vector<std::pair<SimTime, int>> batches_;
  int64_t total_vms_ = 0;
  int max_batch_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_CORE_STORM_TRACKER_H_

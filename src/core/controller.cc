#include "src/core/controller.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace spotcheck {

SpotCheckController::SpotCheckController(Simulator* sim, NativeCloud* cloud,
                                         MarketPlace* markets,
                                         ControllerConfig config)
    : sim_(sim),
      cloud_(cloud),
      markets_(markets),
      config_(config),
      mapping_(config.mapping, config.nested_type,
               [&config]() {
                 std::vector<AvailabilityZone> zones;
                 for (int i = 0; i < std::max(config.num_zones, 1); ++i) {
                   zones.push_back(AvailabilityZone{config.zone.index + i});
                 }
                 return zones;
               }(),
               Rng(config.seed).Split(0x9a9)),
      engine_(sim, &activity_log_, config.engine, config.metrics),
      backup_pool_(config.backup, config.metrics),
      rng_(Rng(config.seed).Split(0xc0de)) {
  if (config_.metrics != nullptr) {
    MetricsRegistry& metrics = *config_.metrics;
    revocation_events_metric_ = &metrics.Counter("controller.revocation_events");
    repatriations_metric_ = &metrics.Counter("controller.repatriations");
    proactive_migrations_metric_ =
        &metrics.Counter("controller.proactive_migrations");
    stateless_respawns_metric_ =
        &metrics.Counter("controller.stateless_respawns");
    stagings_metric_ = &metrics.Counter("controller.stagings");
    vms_lost_metric_ = &metrics.Counter("controller.vms_lost");
    backup_restores_metric_ = &metrics.Counter("controller.backup_restores");
    migrations_by_mechanism_metric_ = &metrics.Counter(
        std::string("controller.migrations.") +
        std::string(MigrationMechanismName(config_.mechanism)));
  }
  cloud_->set_revocation_handler(
      [this](InstanceId instance, SimTime deadline) {
        OnRevocationWarning(instance, deadline);
      });
  cloud_->set_instance_failure_handler(
      [this](InstanceId instance) { OnInstanceFailure(instance); });
  // Materialize all candidate markets so history-weighted policies can
  // consult their traces, and subscribe for pool dynamics.
  for (const MarketKey& key : mapping_.candidates()) {
    cloud_->MarketFor(key);
    SubscribeMarket(key);
  }
  for (int i = 0; i < config_.hot_spares; ++i) {
    AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()}, /*is_spot=*/false,
                Waiter{}, /*hot_spare=*/true);
  }
}

CustomerId SpotCheckController::RegisterCustomer(std::string name) {
  const CustomerId id = customer_ids_.Next();
  customers_[id] = name.empty() ? id.ToString() : std::move(name);
  return id;
}

NestedVmId SpotCheckController::RequestServer(CustomerId customer, bool stateless) {
  const NestedVmId id = vm_ids_.Next();
  NestedVmSpec spec = MakeVmSpec(config_.nested_type, config_.workload);
  spec.stateless = stateless;
  auto vm = std::make_unique<NestedVm>(id, customer, spec);
  NestedVm& ref = *vm;
  vms_[id] = std::move(vm);
  event_log_.Record(sim_->Now(), ControllerEventKind::kVmRequested, id,
                    InstanceId(), MarketKey{config_.nested_type, config_.zone},
                    stateless ? "stateless" : "");
  PlaceVm(ref);
  return id;
}

void SpotCheckController::ReleaseServer(NestedVmId id) {
  const auto it = vms_.find(id);
  if (it == vms_.end() || !it->second->alive()) {
    return;
  }
  NestedVm& vm = *it->second;
  activity_log_.MarkDeath(id, sim_->Now());
  vm.set_state(NestedVmState::kTerminated);
  event_log_.Record(sim_->Now(), ControllerEventKind::kVmReleased, id, vm.host(),
                    GetHost(vm.host()) != nullptr
                        ? GetHost(vm.host())->market()
                        : MarketKey{config_.nested_type, config_.zone});
  backup_pool_.Release(id);
  const auto ip = vpc_.IpOf(id);
  if (ip.has_value()) {
    network_.ReleaseAddress(*ip);
    vpc_.ReleasePrivateIp(id);
  }
  const InstanceId old_host = vm.host();
  DetachVmFromCurrentHost(vm);
  MaybeReleaseHost(old_host);
}

const NestedVm* SpotCheckController::GetVm(NestedVmId vm) const {
  const auto it = vms_.find(vm);
  return it == vms_.end() ? nullptr : it->second.get();
}

std::vector<const NestedVm*> SpotCheckController::Vms() const {
  std::vector<const NestedVm*> result;
  result.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) {
    result.push_back(vm.get());
  }
  return result;
}

const HostVm* SpotCheckController::GetHost(InstanceId instance) const {
  const auto it = hosts_.find(instance);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::vector<const HostVm*> SpotCheckController::Hosts() const {
  std::vector<const HostVm*> result;
  result.reserve(hosts_.size());
  for (const auto& [id, host] : hosts_) {
    result.push_back(host.get());
  }
  return result;
}

int SpotCheckController::RunningVmCount() const {
  int count = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->state() == NestedVmState::kRunning ||
        vm->state() == NestedVmState::kDegraded) {
      ++count;
    }
  }
  return count;
}

// --- Placement ---------------------------------------------------------------

void SpotCheckController::PlaceVm(NestedVm& vm) {
  const MarketKey pool = mapping_.ChoosePool(*markets_, config_.bidding, sim_->Now());
  if (HostVm* host = FindHostWithCapacity(pool, /*spot=*/true, vm.spec())) {
    AttachVmToHost(vm, *host);
    return;
  }
  QueueOrAcquireSpot(pool, Waiter{vm.id(), WaitIntent::kInitialPlacement});
}

void SpotCheckController::QueueOrAcquireSpot(const MarketKey& market,
                                             Waiter waiter) {
  const int slots = NestedSlotsPerHost(market.type, config_.nested_type);
  for (auto& [instance, pending] : pending_hosts_) {
    if (pending.is_spot && pending.market == market && !pending.is_hot_spare &&
        static_cast<int>(pending.waiting.size()) < slots) {
      pending.waiting.push_back(waiter);
      return;
    }
  }
  AcquireHost(market, /*is_spot=*/true, waiter);
}

HostVm* SpotCheckController::FindHostWithCapacity(const MarketKey& market,
                                                  bool spot,
                                                  const NestedVmSpec& spec) {
  for (auto& [instance, host] : hosts_) {
    if (host->market() == market && host->is_spot() == spot &&
        host->CanHost(spec)) {
      // Skip hot spares (reserved for revocation storms) and dying hosts.
      if (std::find(hot_spare_hosts_.begin(), hot_spare_hosts_.end(), instance) !=
          hot_spare_hosts_.end()) {
        continue;
      }
      const Instance* native = cloud_->GetInstance(instance);
      if (native != nullptr && native->state == InstanceState::kRunning) {
        return host.get();
      }
    }
  }
  return nullptr;
}

void SpotCheckController::AcquireHost(MarketKey market, bool is_spot,
                                      Waiter first_waiter, bool hot_spare) {
  InstanceId instance;
  if (is_spot) {
    instance = cloud_->RequestSpotInstance(
        market, config_.bidding.BidFor(market.type),
        [this](InstanceId id, bool ok) { OnHostReady(id, ok); });
  } else {
    instance = cloud_->RequestOnDemandInstance(
        market, [this](InstanceId id, bool ok) { OnHostReady(id, ok); });
  }
  PendingHost& pending = pending_hosts_[instance];
  pending.market = market;
  pending.is_spot = is_spot;
  pending.is_hot_spare = hot_spare;
  if (first_waiter.vm.valid()) {
    pending.waiting.push_back(first_waiter);
  }
}

void SpotCheckController::OnHostReady(InstanceId instance, bool ok) {
  const auto it = pending_hosts_.find(instance);
  if (it == pending_hosts_.end()) {
    return;
  }
  PendingHost pending = std::move(it->second);
  pending_hosts_.erase(it);

  if (!ok) {
    // A spot request lost the race against a price move (or on-demand
    // capacity ran out): fall back to on-demand for the queued VMs and note
    // the pool for repatriation once prices recover.
    SPOTCHECK_LOG(kInfo) << "host launch failed in " << pending.market.ToString()
                         << ", falling back to on-demand";
    for (const Waiter& waiter : pending.waiting) {
      const auto vm_it = vms_.find(waiter.vm);
      if (vm_it == vms_.end() || !vm_it->second->alive()) {
        continue;
      }
      switch (waiter.intent) {
        case WaitIntent::kInitialPlacement:
          if (pending.is_spot) {
            AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()},
                        /*is_spot=*/false, waiter);
            if (config_.enable_repatriation) {
              EnqueueRepatriation(pending.market, waiter.vm);
            }
          } else {
            // Even the on-demand market failed; retry (Section 4.3: some
            // type is always available somewhere -- here, retry until it is).
            AcquireHost(pending.market, /*is_spot=*/false, waiter);
          }
          break;
        case WaitIntent::kEvacuationDestination:
          // The evacuated VM's state is safe on the backup server; keep
          // retrying for a destination (downtime extends meanwhile).
          AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()},
                      /*is_spot=*/false, waiter);
          break;
        case WaitIntent::kPlannedMove:
          // The planned move's target pool spiked again; requeue for the
          // next price drop.
          pending_moves_.erase(waiter.vm);
          if (config_.enable_repatriation && pending.is_spot) {
            EnqueueRepatriation(pending.market, waiter.vm);
          }
          break;
      }
    }
    if (pending.is_hot_spare) {
      ReplenishHotSpares();
    }
    return;
  }

  auto host = std::make_unique<HostVm>(instance, pending.market, pending.is_spot);
  HostVm& host_ref = *host;
  hosts_[instance] = std::move(host);
  if (pending.is_hot_spare) {
    hot_spare_hosts_.push_back(instance);
  }
  if (pending.is_spot) {
    SubscribeMarket(pending.market);
  }

  for (const Waiter& waiter : pending.waiting) {
    const auto vm_it = vms_.find(waiter.vm);
    if (vm_it == vms_.end() || !vm_it->second->alive()) {
      continue;
    }
    NestedVm& vm = *vm_it->second;
    switch (waiter.intent) {
      case WaitIntent::kInitialPlacement:
        if (vm.state() == NestedVmState::kProvisioning) {
          AttachVmToHost(vm, host_ref);
        }
        break;
      case WaitIntent::kPlannedMove:
        // Repatriation or proactive drain: the destination is up, run the
        // live migration now (stateless replicas just boot fresh instead).
        pending_moves_.erase(vm.id());
        if (vm.state() == NestedVmState::kRunning ||
            vm.state() == NestedVmState::kDegraded) {
          if (!host_ref.AddVm(vm.id(), vm.spec())) {
            // Another waiter on this host won the capacity race; requeue
            // instead of over-committing the host.
            if (config_.enable_repatriation && pending.is_spot) {
              EnqueueRepatriation(pending.market, vm.id());
            }
            break;
          }
          if (vm.spec().stateless) {
            MoveVmToHost(vm, host_ref);
          } else {
            engine_.LiveMigrate(vm, [this, &vm, &host_ref](const MigrationOutcome&) {
              MoveVmToHost(vm, host_ref);
            });
          }
        }
        break;
      case WaitIntent::kEvacuationDestination: {
        // Reserve capacity; phase 2 of the evacuation runs once the
        // checkpoint commit also lands.
        if (!host_ref.AddVm(vm.id(), vm.spec())) {
          // Capacity race against a co-waiter: this VM's state is still safe
          // on the backup server, so keep hunting for a destination.
          AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()},
                      /*is_spot=*/false,
                      Waiter{vm.id(), WaitIntent::kEvacuationDestination});
          break;
        }
        vm.set_host(instance);
        const auto evac_it = evacuating_.find(vm.id());
        if (evac_it != evacuating_.end()) {
          evac_it->second.dest_ready = true;
          MaybeCompleteEvacuation(vm);
        }
        break;
      }
    }
  }
  MaybeReleaseHost(instance);  // All waiters may have died meanwhile.
}

void SpotCheckController::AttachVmToHost(NestedVm& vm, HostVm& host) {
  if (!host.AddVm(vm.id(), vm.spec())) {
    // Lost a capacity race (or a mis-sized host); place the VM afresh.
    SPOTCHECK_LOG(kWarning) << vm.id().ToString() << " does not fit on "
                            << host.instance().ToString() << "; re-placing";
    QueueOrAcquireSpot(host.market(),
                       Waiter{vm.id(), WaitIntent::kInitialPlacement});
    return;
  }
  vm.set_host(host.instance());
  const bool was_new = vm.state() == NestedVmState::kProvisioning;
  vm.set_state(NestedVmState::kRunning);
  if (was_new) {
    activity_log_.MarkBirth(vm.id(), sim_->Now());
    event_log_.Record(sim_->Now(), ControllerEventKind::kVmPlaced, vm.id(),
                      host.instance(), host.market());
    // Persistent root volume and stable private address (Sections 3.4, 5).
    vm.set_root_volume(cloud_->CreateVolume(8.0));
    vm.set_address(cloud_->AllocateAddress());
    cloud_->AttachVolume(vm.root_volume(), host.instance());
    cloud_->AssignAddress(vm.address(), host.instance());
    // VPC private address + NAT binding in the nested hypervisor (Fig. 4);
    // the customer's first VM becomes the public head of its subnet.
    const auto ip = vpc_.AssignPrivateIp(vm.customer(), vm.id());
    if (ip.has_value()) {
      network_.MoveAddress(*ip, host.instance(), vm.id());
      if (!vpc_.PublicHead(vm.customer()).has_value()) {
        vpc_.SetPublicHead(vm.customer(), vm.id());
      }
    }
  }
  AssignBackup(vm);
}

void SpotCheckController::AssignBackup(NestedVm& vm) {
  const HostVm* host = GetHost(vm.host());
  const bool needs_backup = host != nullptr && host->is_spot() &&
                            !vm.spec().stateless &&
                            MechanismNeedsBackup(config_.mechanism);
  if (needs_backup) {
    BackupServer& server = backup_pool_.Assign(
        vm.id(), vm.spec().checkpoint_demand_mbps, sim_->Now());
    vm.set_backup(server.id());
  } else {
    backup_pool_.Release(vm.id());
    vm.set_backup(BackupServerId());
  }
}

// --- Revocation handling -------------------------------------------------------

void SpotCheckController::OnRevocationWarning(InstanceId instance,
                                              SimTime deadline) {
  const auto it = hosts_.find(instance);
  if (it == hosts_.end()) {
    return;
  }
  HostVm& host = *it->second;
  ++revocation_events_;
  MetricInc(revocation_events_metric_);
  event_log_.Record(sim_->Now(), ControllerEventKind::kRevocationWarning,
                    NestedVmId(), instance, host.market(),
                    "vms=" + std::to_string(host.num_vms()));
  const std::vector<NestedVmId> resident = host.vms();  // copy: we mutate
  int evacuating = 0;
  for (NestedVmId vm_id : resident) {
    const auto vm_it = vms_.find(vm_id);
    if (vm_it == vms_.end() || !vm_it->second->alive()) {
      continue;
    }
    NestedVm& vm = *vm_it->second;
    if (vm.state() != NestedVmState::kRunning &&
        vm.state() != NestedVmState::kDegraded) {
      continue;  // already mid-migration
    }
    ++evacuating;
    EvacuateVm(vm, deadline);
  }
  if (evacuating > 0) {
    storms_.RecordBatch(sim_->Now(), evacuating);
  }
}

AvailabilityZone SpotCheckController::PickAvailableZone() const {
  for (int i = 0; i < std::max(config_.num_zones, 1); ++i) {
    const AvailabilityZone zone{config_.zone.index + i};
    if (cloud_->ZoneAvailable(zone)) {
      return zone;
    }
  }
  return config_.zone;  // everything is down: requests will retry
}

void SpotCheckController::OnInstanceFailure(InstanceId instance) {
  const auto it = hosts_.find(instance);
  if (it == hosts_.end()) {
    return;
  }
  HostVm& host = *it->second;
  const std::vector<NestedVmId> resident = host.vms();  // copy: we mutate
  for (NestedVmId vm_id : resident) {
    const auto vm_it = vms_.find(vm_id);
    if (vm_it == vms_.end() || !vm_it->second->alive()) {
      continue;
    }
    NestedVm& vm = *vm_it->second;
    if (vm.state() != NestedVmState::kRunning &&
        vm.state() != NestedVmState::kDegraded) {
      continue;  // an in-flight migration handles (or already left) this VM
    }
    if (vm.spec().stateless) {
      RespawnStateless(vm, sim_->Now());
      continue;
    }
    BackupServer* backup = backup_pool_.ServerFor(vm.id());
    if (backup == nullptr) {
      // Live-migration-only VM with no checkpoint anywhere: state is gone.
      ++vms_lost_;
      MetricInc(vms_lost_metric_);
      vm.set_state(NestedVmState::kFailed);
      activity_log_.MarkDeath(vm.id(), sim_->Now());
      host.RemoveVm(vm.id(), vm.spec());
      event_log_.Record(sim_->Now(), ControllerEventKind::kVmLost, vm.id(),
                        instance, host.market(), "platform failure, no backup");
      SPOTCHECK_LOG(kError) << vm.id().ToString()
                            << " lost to a platform failure (no backup)";
      continue;
    }
    // Recover from the last checkpoint: at most the stale threshold of
    // execution rolls back, but the VM survives.
    EvacuationState& evac = evacuating_[vm.id()];
    evac.mechanism = config_.mechanism;
    evac.backup = backup;
    evac.old_host = instance;
    evac.old_market = host.market();
    evac.deadline = sim_->Now();
    evac.committed = true;  // the surviving checkpoint IS the commit
    backup->BeginRestore(vm.id());
    MetricInc(backup_restores_metric_);
    engine_.BeginCrashRecovery(vm, sim_->Now());
    event_log_.Record(sim_->Now(), ControllerEventKind::kCrashRecovery, vm.id(),
                      instance, host.market());
    vm.set_host(InstanceId());
    AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()},
                /*is_spot=*/false,
                Waiter{vm.id(), WaitIntent::kEvacuationDestination});
  }
  MaybeReleaseHost(instance);
}

void SpotCheckController::EvacuateVm(NestedVm& vm, SimTime deadline) {
  if (vm.spec().stateless) {
    RespawnStateless(vm, deadline);
    return;
  }
  EvacuationState& evac = evacuating_[vm.id()];
  evac.mechanism = config_.mechanism;
  evac.backup = backup_pool_.ServerFor(vm.id());
  evac.old_host = vm.host();
  evac.old_market = GetHost(vm.host()) != nullptr
                        ? GetHost(vm.host())->market()
                        : MarketKey{config_.nested_type, config_.zone};
  evac.deadline = deadline;
  event_log_.Record(sim_->Now(), ControllerEventKind::kEvacuationStarted,
                    vm.id(), evac.old_host, evac.old_market);

  // Phase 1: get the state safe. Xen-live has nothing to commit (and nothing
  // saved -- it bets everything on the pre-copy).
  if (MechanismNeedsBackup(config_.mechanism)) {
    if (evac.backup != nullptr) {
      evac.backup->BeginRestore(vm.id());
      MetricInc(backup_restores_metric_);
    }
    engine_.BeginEvacuation(vm, config_.mechanism, deadline, [this, &vm]() {
      const auto it = evacuating_.find(vm.id());
      if (it != evacuating_.end()) {
        it->second.committed = true;
        MaybeCompleteEvacuation(vm);
      }
    });
  } else {
    vm.set_state(NestedVmState::kMigrating);
    evac.committed = true;
  }

  // Destination preference: a hot spare, then (when enabled) a staging host
  // in another stable pool, then a fresh on-demand server (its ~60 s launch
  // fits comfortably inside the 120 s warning).
  if (HostVm* spare = PickSpareDestination(vm.spec())) {
    spare->AddVm(vm.id(), vm.spec());
    vm.set_host(spare->instance());
    evac.dest_ready = true;
    ReplenishHotSpares();
    MaybeCompleteEvacuation(vm);
    return;
  }
  if (config_.use_staging) {
    if (HostVm* staging = PickStagingHost(vm.spec(), evac.old_market)) {
      staging->AddVm(vm.id(), vm.spec());
      vm.set_host(staging->instance());
      evac.dest_ready = true;
      evac.staged = true;
      evac.staging_market = staging->market();
      ++stagings_;
      MetricInc(stagings_metric_);
      MaybeCompleteEvacuation(vm);
      return;
    }
  }
  vm.set_host(InstanceId());  // assigned when the on-demand host is up
  AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()}, /*is_spot=*/false,
              Waiter{vm.id(), WaitIntent::kEvacuationDestination});
}

void SpotCheckController::RespawnStateless(NestedVm& vm, SimTime deadline) {
  // No state to save: let the old replica serve until the platform kills it
  // at `deadline`, and boot a replacement that takes over. The replacement
  // launches well within the warning, so the tier never loses capacity.
  (void)deadline;
  ++stateless_respawns_;
  MetricInc(stateless_respawns_metric_);
  event_log_.Record(sim_->Now(), ControllerEventKind::kStatelessRespawn, vm.id(),
                    vm.host(),
                    GetHost(vm.host()) != nullptr
                        ? GetHost(vm.host())->market()
                        : MarketKey{config_.nested_type, config_.zone});
  const InstanceId old_host_id = vm.host();
  const MarketKey old_market = GetHost(old_host_id) != nullptr
                                   ? GetHost(old_host_id)->market()
                                   : MarketKey{config_.nested_type, config_.zone};
  vm.set_state(NestedVmState::kMigrating);  // replica swap in progress
  vm.set_host(InstanceId());
  AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()}, /*is_spot=*/false,
              Waiter{vm.id(), WaitIntent::kEvacuationDestination});
  // A minimal evacuation record so the destination-ready path completes the
  // swap through the common machinery -- committed from the start (there is
  // no state to commit) and with no backup involvement.
  EvacuationState& evac = evacuating_[vm.id()];
  evac.mechanism = MigrationMechanism::kXenLiveMigration;  // no restore
  evac.backup = nullptr;
  evac.old_host = old_host_id;
  evac.old_market = old_market;
  evac.deadline = deadline;
  evac.committed = true;
}

void SpotCheckController::MaybeCompleteEvacuation(NestedVm& vm) {
  const auto it = evacuating_.find(vm.id());
  if (it == evacuating_.end()) {
    return;
  }
  EvacuationState& evac = it->second;
  if (!evac.committed || !evac.dest_ready || evac.completing) {
    return;
  }
  evac.completing = true;
  if (vm.spec().stateless) {
    // Fresh replica boot: nothing to transfer, no downtime charged to the
    // tier (the old replica served until its termination).
    MigrationOutcome outcome;
    outcome.success = true;
    outcome.completed_at = sim_->Now();
    vm.set_state(NestedVmState::kRunning);
    FinalizeEvacuation(vm, outcome);
    return;
  }
  if (evac.mechanism == MigrationMechanism::kXenLiveMigration) {
    engine_.LiveEvacuate(vm, evac.deadline, [this, &vm](const MigrationOutcome& out) {
      FinalizeEvacuation(vm, out);
    });
    return;
  }
  const int concurrent = evac.backup != nullptr ? evac.backup->active_restores() : 1;
  engine_.CompleteEvacuation(vm, evac.mechanism, evac.backup, concurrent,
                             [this, &vm](const MigrationOutcome& out) {
                               FinalizeEvacuation(vm, out);
                             });
}

void SpotCheckController::FinalizeEvacuation(NestedVm& vm,
                                             const MigrationOutcome& outcome) {
  const auto it = evacuating_.find(vm.id());
  if (it == evacuating_.end()) {
    return;
  }
  const EvacuationState evac = it->second;
  evacuating_.erase(it);

  if (evac.backup != nullptr) {
    evac.backup->EndRestore(vm.id());
  }
  // Drop the stale membership in the revoked host; once empty, its (already
  // terminated) record is reaped.
  const auto old_it = hosts_.find(evac.old_host);
  if (old_it != hosts_.end()) {
    old_it->second->RemoveVm(vm.id(), vm.spec());
  }
  MaybeReleaseHost(evac.old_host);
  backup_pool_.Release(vm.id());
  vm.set_backup(BackupServerId());
  if (!outcome.success) {
    // VM lost (live-migration race defeat). It was pre-added to its
    // destination (hot spare / staging / fresh on-demand) when the
    // evacuation started; reclaim that capacity or the slot leaks forever
    // -- and an idle destination would be billed indefinitely.
    const InstanceId dest_host = vm.host();
    if (dest_host != evac.old_host) {
      const auto dest_it = hosts_.find(dest_host);
      if (dest_it != hosts_.end()) {
        dest_it->second->RemoveVm(vm.id(), vm.spec());
      }
    }
    vm.set_host(InstanceId());
    ++vms_lost_;
    MetricInc(vms_lost_metric_);
    event_log_.Record(sim_->Now(), ControllerEventKind::kVmLost, vm.id(),
                      evac.old_host, evac.old_market, "live-migration race");
    MaybeReleaseHost(dest_host);
    return;
  }
  MetricInc(migrations_by_mechanism_metric_);
  {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "downtime=%.1fs degraded=%.1fs",
                  outcome.downtime.seconds(), outcome.degraded.seconds());
    event_log_.Record(sim_->Now(), ControllerEventKind::kEvacuationCompleted,
                      vm.id(), vm.host(), evac.old_market, detail);
  }
  if (evac.staged) {
    // The VM landed on a borrowed spot host: re-arm its backup stream there
    // and launch the real destination in the (stable) staging pool; a live
    // migration will relieve the staging host once it is up.
    AssignBackup(vm);
    pending_moves_.insert(vm.id());
    QueueOrAcquireSpot(evac.staging_market,
                       Waiter{vm.id(), WaitIntent::kPlannedMove});
  }
  // Off-spot (or borrowed) placement: return home when prices recover.
  if (config_.enable_repatriation) {
    EnqueueRepatriation(evac.old_market, vm.id());
  }
  const HostVm* dest = GetHost(vm.host());
  if (dest != nullptr) {
    cloud_->AttachVolume(vm.root_volume(), dest->instance());
    cloud_->AssignAddress(vm.address(), dest->instance());
  }
  RebindNetwork(vm, outcome.downtime);
}

void SpotCheckController::RebindNetwork(NestedVm& vm, SimDuration outage) {
  const auto ip = vpc_.IpOf(vm.id());
  const HostVm* host = GetHost(vm.host());
  if (ip.has_value() && host != nullptr) {
    network_.MoveAddress(*ip, host->instance(), vm.id());
  }
  connections_.ApplyOutage(vm.id(), outage);
}

HostVm* SpotCheckController::PickStagingHost(const NestedVmSpec& spec,
                                             const MarketKey& exclude) {
  for (auto& [instance, host] : hosts_) {
    if (!host->is_spot() || host->market() == exclude || !host->CanHost(spec)) {
      continue;
    }
    const Instance* native = cloud_->GetInstance(instance);
    if (native == nullptr || native->state != InstanceState::kRunning) {
      continue;
    }
    // Only pools that are currently stable (price safely below the bid) make
    // sensible havens; a pool mid-spike would just revoke the VM again.
    SpotMarket* market = markets_->Find(host->market());
    if (market == nullptr ||
        market->CurrentPrice() > config_.bidding.BidFor(host->market().type)) {
      continue;
    }
    return host.get();
  }
  return nullptr;
}

HostVm* SpotCheckController::PickSpareDestination(const NestedVmSpec& spec) {
  for (auto it = hot_spare_hosts_.begin(); it != hot_spare_hosts_.end(); ++it) {
    const auto host_it = hosts_.find(*it);
    if (host_it == hosts_.end()) {
      continue;
    }
    HostVm& host = *host_it->second;
    const Instance* native = cloud_->GetInstance(*it);
    if (native != nullptr && native->state == InstanceState::kRunning &&
        host.CanHost(spec)) {
      // Promote the spare to a regular on-demand host.
      hot_spare_hosts_.erase(it);
      return &host;
    }
  }
  return nullptr;
}

void SpotCheckController::ReplenishHotSpares() {
  int pending_spares = 0;
  for (const auto& [id, pending] : pending_hosts_) {
    if (pending.is_hot_spare) {
      ++pending_spares;
    }
  }
  const int current = static_cast<int>(hot_spare_hosts_.size()) + pending_spares;
  for (int i = current; i < config_.hot_spares; ++i) {
    AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()}, /*is_spot=*/false,
                Waiter{}, /*hot_spare=*/true);
  }
}

// --- Pool dynamics -------------------------------------------------------------

void SpotCheckController::SubscribeMarket(const MarketKey& key) {
  if (subscribed_[key]) {
    return;
  }
  subscribed_[key] = true;
  cloud_->MarketFor(key).Subscribe(
      [this, key](const SpotMarket&, double price) { OnPriceChange(key, price); });
}

void SpotCheckController::OnPriceChange(const MarketKey& key, double price) {
  const double od_price = OnDemandPrice(key.type);
  bool predicted_risk = false;
  if (config_.enable_predictive) {
    auto [it, inserted] = predictors_.try_emplace(
        key, RevocationPredictor(config_.predictor, od_price));
    it->second.Observe(sim_->Now(), price);
    predicted_risk = it->second.AtRisk();
  }
  if (config_.enable_repatriation && price <= od_price && !predicted_risk) {
    TryRepatriate(key);
  }
  if (config_.enable_proactive && config_.bidding.SupportsProactiveMigration() &&
      price > od_price && price <= config_.bidding.BidFor(key.type)) {
    ProactivelyDrain(key);
  }
  // The predictor fires while the price is still below the bid -- the whole
  // point is to leave before any revocation warning exists.
  if (predicted_risk && price <= config_.bidding.BidFor(key.type)) {
    ProactivelyDrain(key);
  }
}

void SpotCheckController::EnqueueRepatriation(const MarketKey& key,
                                              NestedVmId vm) {
  const auto [it, inserted] = waitlisted_.try_emplace(vm, key);
  if (!inserted) {
    if (it->second == key) {
      return;  // already waiting for this pool
    }
    // Re-exiled toward a different pool; the newest exile wins.
    auto& old_list = repatriation_waitlist_[it->second];
    old_list.erase(std::remove(old_list.begin(), old_list.end(), vm),
                   old_list.end());
    it->second = key;
  }
  repatriation_waitlist_[key].push_back(vm);
}

void SpotCheckController::TryRepatriate(const MarketKey& key) {
  auto it = repatriation_waitlist_.find(key);
  if (it == repatriation_waitlist_.end() || it->second.empty()) {
    return;
  }
  std::vector<NestedVmId> waiting = std::move(it->second);
  it->second.clear();
  for (NestedVmId vm_id : waiting) {
    waitlisted_.erase(vm_id);
    const auto vm_it = vms_.find(vm_id);
    if (vm_it == vms_.end() || !vm_it->second->alive()) {
      continue;
    }
    NestedVm& vm = *vm_it->second;
    const HostVm* current = GetHost(vm.host());
    if (pending_moves_.contains(vm_id)) {
      // A move is already in flight -- but it may be headed the WRONG way (a
      // proactive drain whose spike ended before its destination launched).
      // Keep the VM on the waitlist; once it settles somewhere, the next
      // price event either repatriates it or drops it as already-home.
      EnqueueRepatriation(key, vm_id);
      continue;
    }
    if (vm.state() != NestedVmState::kRunning &&
        vm.state() != NestedVmState::kDegraded) {
      // Mid-migration: keep it on the waitlist for the next price event.
      EnqueueRepatriation(key, vm_id);
      continue;
    }
    if (current != nullptr && current->is_spot()) {
      continue;  // already back on spot
    }
    HostVm* host = FindHostWithCapacity(key, /*spot=*/true, vm.spec());
    if (host != nullptr && !host->AddVm(vm.id(), vm.spec())) {
      host = nullptr;  // lost the capacity race; fall back to a fresh host
    }
    ++repatriations_;
    MetricInc(repatriations_metric_);
    event_log_.Record(sim_->Now(), ControllerEventKind::kRepatriationStarted,
                      vm_id, vm.host(), key);
    if (host != nullptr) {
      HostVm& dest = *host;
      if (vm.spec().stateless) {
        MoveVmToHost(vm, dest);
      } else {
        engine_.LiveMigrate(vm, [this, &vm, &dest](const MigrationOutcome&) {
          MoveVmToHost(vm, dest);
        });
      }
    } else {
      pending_moves_.insert(vm_id);
      QueueOrAcquireSpot(key, Waiter{vm_id, WaitIntent::kPlannedMove});
    }
  }
}

void SpotCheckController::ProactivelyDrain(const MarketKey& key) {
  for (auto& [instance, host] : hosts_) {
    if (!host->is_spot() || !(host->market() == key)) {
      continue;
    }
    const std::vector<NestedVmId> resident = host->vms();
    for (NestedVmId vm_id : resident) {
      const auto vm_it = vms_.find(vm_id);
      if (vm_it == vms_.end() || !vm_it->second->alive()) {
        continue;
      }
      NestedVm& vm = *vm_it->second;
      if (vm.state() != NestedVmState::kRunning &&
          vm.state() != NestedVmState::kDegraded) {
        continue;
      }
      if (pending_moves_.contains(vm_id)) {
        continue;  // a drain for this VM is already in flight
      }
      ++proactive_migrations_;
      MetricInc(proactive_migrations_metric_);
      pending_moves_.insert(vm_id);
      event_log_.Record(sim_->Now(), ControllerEventKind::kProactiveDrain, vm_id,
                        instance, key);
      AcquireHost(MarketKey{config_.nested_type, PickAvailableZone()}, /*is_spot=*/false,
                  Waiter{vm_id, WaitIntent::kPlannedMove});
      if (config_.enable_repatriation) {
        EnqueueRepatriation(key, vm_id);
      }
    }
  }
}

void SpotCheckController::MoveVmToHost(NestedVm& vm, HostVm& destination) {
  const InstanceId old_host_id = vm.host();
  if (old_host_id != destination.instance()) {
    const auto old_it = hosts_.find(old_host_id);
    if (old_it != hosts_.end()) {
      old_it->second->RemoveVm(vm.id(), vm.spec());
    }
  }
  vm.set_host(destination.instance());
  if (destination.is_spot()) {
    event_log_.Record(sim_->Now(), ControllerEventKind::kRepatriationCompleted,
                      vm.id(), destination.instance(), destination.market());
  }
  AssignBackup(vm);
  cloud_->AttachVolume(vm.root_volume(), destination.instance());
  cloud_->AssignAddress(vm.address(), destination.instance());
  // Live migrations pause for well under any TCP timeout; rebinding the
  // address keeps established connections alive.
  RebindNetwork(vm, SimDuration::Millis(200));
  MaybeReleaseHost(old_host_id);
}

void SpotCheckController::DetachVmFromCurrentHost(NestedVm& vm) {
  const auto it = hosts_.find(vm.host());
  if (it != hosts_.end()) {
    it->second->RemoveVm(vm.id(), vm.spec());
  }
  vm.set_host(InstanceId());
}

void SpotCheckController::MaybeReleaseHost(InstanceId instance) {
  const auto it = hosts_.find(instance);
  if (it == hosts_.end() || !it->second->empty()) {
    return;
  }
  if (std::find(hot_spare_hosts_.begin(), hot_spare_hosts_.end(), instance) !=
      hot_spare_hosts_.end()) {
    return;  // spares stay up even when idle
  }
  const Instance* native = cloud_->GetInstance(instance);
  if (native != nullptr && native->state != InstanceState::kTerminated) {
    cloud_->TerminateInstance(instance);
  }
  hosts_.erase(it);
}

std::string SpotCheckController::DumpState() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "SpotCheck controller @ %s | policy=%s mechanism=%s %s\n",
                FormatTime(sim_->Now()).c_str(),
                std::string(MappingPolicyName(config_.mapping)).c_str(),
                std::string(MigrationMechanismName(config_.mechanism)).c_str(),
                config_.bidding.ToString().c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "vms=%zu hosts=%zu backups=%d revocations=%lld repatriations=%lld"
                " proactive=%lld stagings=%lld respawns=%lld\n",
                vms_.size(), hosts_.size(), backup_pool_.num_servers(),
                static_cast<long long>(revocation_events_),
                static_cast<long long>(repatriations_),
                static_cast<long long>(proactive_migrations_),
                static_cast<long long>(stagings_),
                static_cast<long long>(stateless_respawns_));
  out += line;

  out += "-- nested VMs --\n";
  for (const auto& [id, vm] : vms_) {
    const HostVm* host = GetHost(vm->host());
    const auto ip = vpc_.IpOf(id);
    std::snprintf(line, sizeof(line),
                  "%-10s cust=%-8s state=%-12s host=%-18s ip=%-12s backup=%-8s"
                  " migrations=%lld%s\n",
                  id.ToString().c_str(), vm->customer().ToString().c_str(),
                  std::string(NestedVmStateName(vm->state())).c_str(),
                  host != nullptr ? host->market().ToString().c_str() : "-",
                  ip.has_value() ? ip->ToString().c_str() : "-",
                  vm->backup().valid() ? vm->backup().ToString().c_str() : "-",
                  static_cast<long long>(vm->migrations()),
                  vm->spec().stateless ? " [stateless]" : "");
    out += line;
  }

  out += "-- hosts --\n";
  for (const auto& [instance, host] : hosts_) {
    std::snprintf(line, sizeof(line), "%-10s %-20s %-9s vms=%d used=%.0f/%.0fMB\n",
                  instance.ToString().c_str(), host->market().ToString().c_str(),
                  host->is_spot() ? "spot" : "on-demand", host->num_vms(),
                  host->used_mb(), host->capacity_mb());
    out += line;
  }
  return out;
}

bool SpotCheckController::ValidateInvariants(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  for (const auto& [id, vm] : vms_) {
    const NestedVmState state = vm->state();
    if (state != NestedVmState::kRunning && state != NestedVmState::kDegraded) {
      continue;  // transitional or dead states are exempt
    }
    // Settled VMs live on a known, running host that lists them.
    const auto host_it = hosts_.find(vm->host());
    if (host_it == hosts_.end()) {
      return fail(id.ToString() + " is settled but has no host record");
    }
    const HostVm& host = *host_it->second;
    const auto& members = host.vms();
    if (std::find(members.begin(), members.end(), id) == members.end()) {
      return fail(id.ToString() + " not listed on its host " +
                  vm->host().ToString());
    }
    const Instance* native = cloud_->GetInstance(host.instance());
    if (native == nullptr || native->state == InstanceState::kTerminated) {
      return fail(id.ToString() + " sits on a terminated native instance");
    }
    // Backup streams exactly when needed.
    const bool needs_backup = host.is_spot() && !vm->spec().stateless &&
                              MechanismNeedsBackup(config_.mechanism);
    const bool has_stream = backup_pool_.ServerFor(id) != nullptr;
    if (needs_backup != has_stream) {
      return fail(id.ToString() + (needs_backup ? " misses" : " leaks") +
                  " a backup stream");
    }
    // The stable private address routes to this VM.
    const auto ip = vpc_.IpOf(id);
    if (!ip.has_value()) {
      return fail(id.ToString() + " has no private address");
    }
    const auto routed = network_.Route(*ip);
    if (!routed.has_value() || *routed != id) {
      return fail(id.ToString() + " address " + ip->ToString() +
                  " does not route to it");
    }
  }
  // Host capacity accounting: used memory equals the sum of resident specs,
  // never exceeds capacity, and no host retains a dead VM (a failed VM may
  // linger only while its evacuation record is still being finalized).
  for (const auto& [instance, host] : hosts_) {
    double used = 0.0;
    for (NestedVmId member : host->vms()) {
      const auto vm_it = vms_.find(member);
      if (vm_it == vms_.end()) {
        return fail(instance.ToString() + " lists unknown VM");
      }
      if (!vm_it->second->alive() && !evacuating_.contains(member)) {
        return fail(instance.ToString() + " retains dead VM " +
                    member.ToString() + " (leaked capacity)");
      }
      used += vm_it->second->spec().memory_mb;
    }
    if (std::abs(used - host->used_mb()) > 1e-6) {
      return fail(instance.ToString() + " capacity accounting drifted");
    }
    if (host->used_mb() > host->capacity_mb() + 1e-6) {
      return fail(instance.ToString() + " is over capacity");
    }
  }
  // Repatriation waitlists hold each VM at most once, in the pool the
  // mirror map says it waits for.
  std::set<NestedVmId> queued;
  for (const auto& [key, list] : repatriation_waitlist_) {
    for (NestedVmId vm : list) {
      if (!queued.insert(vm).second) {
        return fail(vm.ToString() + " queued for repatriation twice");
      }
      const auto w = waitlisted_.find(vm);
      if (w == waitlisted_.end() || !(w->second == key)) {
        return fail(vm.ToString() + " waitlist mirror drifted");
      }
    }
  }
  if (queued.size() != waitlisted_.size()) {
    return fail("waitlist mirror holds stale entries");
  }
  return true;
}

// --- Reporting -------------------------------------------------------------------

SpotCheckController::CustomerReport SpotCheckController::ComputeCustomerReport(
    CustomerId customer) const {
  CustomerReport report;
  const SimTime now = sim_->Now();
  const double resale_price =
      config_.resale_fraction_of_on_demand * OnDemandPrice(config_.nested_type);
  for (const auto& [id, vm] : vms_) {
    if (vm->customer() != customer) {
      continue;
    }
    ++report.vms;
    const SimDuration life = activity_log_.Lifetime(id, SimTime(), now);
    const SimDuration down =
        activity_log_.Total(id, ActivityKind::kDowntime, SimTime(), now);
    report.vm_hours += life.hours();
    report.downtime += down;
    report.revenue += (life - down).hours() * resale_price;
  }
  if (report.vm_hours > 0.0) {
    report.availability_pct =
        100.0 * (1.0 - report.downtime.hours() / report.vm_hours);
  }
  return report;
}

SpotCheckController::BusinessReport SpotCheckController::ComputeBusinessReport()
    const {
  BusinessReport report;
  for (const auto& [id, name] : customers_) {
    report.revenue += ComputeCustomerReport(id).revenue;
  }
  const CostReport costs = ComputeCostReport();
  report.platform_cost = costs.native_cost + costs.backup_cost;
  report.margin = report.revenue - report.platform_cost;
  report.margin_fraction =
      report.revenue > 0.0 ? report.margin / report.revenue : 0.0;
  return report;
}

SpotCheckController::CostReport SpotCheckController::ComputeCostReport() const {
  CostReport report;
  const SimTime now = sim_->Now();
  report.native_cost = cloud_->TotalCost();
  report.backup_cost = backup_pool_.TotalAccruedCost(now);
  for (const auto& [id, vm] : vms_) {
    report.vm_hours += activity_log_.Lifetime(id, SimTime(), now).hours();
  }
  report.avg_cost_per_vm_hour =
      report.vm_hours > 0.0
          ? (report.native_cost + report.backup_cost) / report.vm_hours
          : 0.0;
  return report;
}

}  // namespace spotcheck

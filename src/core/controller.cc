#include "src/core/controller.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/core/policy_bridge.h"
#include "src/obs/timeseries.h"

namespace spotcheck {

SpotCheckController::SpotCheckController(Simulator* sim, NativeCloud* cloud,
                                         MarketPlace* markets,
                                         ControllerConfig config)
    : sim_(sim),
      cloud_(cloud),
      markets_(markets),
      config_(config),
      engine_(sim, &activity_log_, config.engine, config.metrics,
              config.tracer),
      backup_pool_(config.backup, config.metrics, config.tracer,
                   config.profiler) {
  event_log_.set_enabled(config_.collect_event_log);
  // Populate the shared context, then construct the components against it
  // (each expects the platform handles and facade bookkeeping to be wired
  // before its constructor runs; see controller_context.h).
  ctx_.sim = sim_;
  ctx_.cloud = cloud_;
  ctx_.markets = markets_;
  ctx_.config = &config_;
  ctx_.metrics = config_.metrics;
  ctx_.tracer = config_.tracer;
  ctx_.profiler = config_.profiler;
  ctx_.activity_log = &activity_log_;
  ctx_.event_log = &event_log_;
  ctx_.engine = &engine_;
  ctx_.backup_pool = &backup_pool_;
  ctx_.storms = &storms_;
  ctx_.vpc = &vpc_;
  ctx_.network = &network_;
  ctx_.connections = &connections_;
  ctx_.vms = &vms_;
  // Resolve the policy spec (explicit spec wins over the legacy enums) and
  // own the bid strategy every component consults through ctx_.bid.
  policy_spec_ = ResolvedPolicySpec(config_);
  bid_strategy_ = CreateBidStrategyOrDie(policy_spec_.bid);
  ctx_.bid = bid_strategy_.get();

  pool_ = std::make_unique<HostPoolManager>(&ctx_);
  ctx_.pool = pool_.get();
  placement_ = std::make_unique<PlacementEngine>(&ctx_);
  ctx_.placement = placement_.get();
  evacuation_ = std::make_unique<EvacuationCoordinator>(&ctx_);
  ctx_.evacuation = evacuation_.get();
  market_watcher_ = std::make_unique<MarketWatcher>(&ctx_);
  ctx_.market_watcher = market_watcher_.get();
  repatriation_ = std::make_unique<RepatriationScheduler>(&ctx_);
  ctx_.repatriation = repatriation_.get();

  cloud_->set_revocation_handler(
      [this](InstanceId instance, SimTime deadline) {
        evacuation_->OnRevocationWarning(instance, deadline);
      });
  cloud_->set_instance_failure_handler(
      [this](InstanceId instance) { evacuation_->OnInstanceFailure(instance); });
  // Materialize all candidate markets so history-weighted policies can
  // consult their traces, and subscribe for pool dynamics.
  for (const MarketKey& key : placement_->candidates()) {
    cloud_->MarketFor(key);
    market_watcher_->Subscribe(key);
  }
  for (int i = 0; i < config_.hot_spares; ++i) {
    pool_->AcquireHost(ctx_.FallbackOnDemandMarket(), /*is_spot=*/false,
                       Waiter{}, /*hot_spare=*/true);
  }
}

CustomerId SpotCheckController::RegisterCustomer(std::string name) {
  const CustomerId id = customer_ids_.Next();
  customers_[id] = name.empty() ? id.ToString() : std::move(name);
  return id;
}

NestedVmId SpotCheckController::RequestServer(CustomerId customer,
                                              bool stateless) {
  const NestedVmId id = vm_ids_.Next();
  NestedVmSpec spec = MakeVmSpec(config_.nested_type, config_.workload);
  spec.stateless = stateless;
  NestedVm& ref = vms_.Emplace(id, id, customer, spec);
  ref.BindStateCounters(vm_state_counts_.data());
  event_log_.Record(sim_->Now(), ControllerEventKind::kVmRequested, id,
                    InstanceId(), ctx_.DefaultMarket(),
                    stateless ? "stateless" : "");
  placement_->PlaceVm(ref);
  return id;
}

void SpotCheckController::ReleaseServer(NestedVmId id) {
  NestedVm* found = vms_.Find(id);
  if (found == nullptr || !found->alive()) {
    return;
  }
  NestedVm& vm = *found;
  activity_log_.MarkDeath(id, sim_->Now());
  vm.set_state(NestedVmState::kTerminated);
  event_log_.Record(sim_->Now(), ControllerEventKind::kVmReleased, id,
                    vm.host(), ctx_.MarketOfOrDefault(vm.host()));
  backup_pool_.Release(id);
  const auto ip = vpc_.IpOf(id);
  if (ip.has_value()) {
    network_.ReleaseAddress(*ip);
    vpc_.ReleasePrivateIp(id);
  }
  const InstanceId old_host = vm.host();
  placement_->DetachVmFromCurrentHost(vm);
  pool_->MaybeReleaseHost(old_host);
}

const NestedVm* SpotCheckController::GetVm(NestedVmId vm) const {
  return vms_.Find(vm);
}

std::vector<const NestedVm*> SpotCheckController::Vms() const {
  std::vector<const NestedVm*> result;
  result.reserve(vms_.size());
  vms_.ForEach(
      [&](NestedVmId, const NestedVm& vm) { result.push_back(&vm); });
  return result;
}

int SpotCheckController::RunningVmCount() const {
  // O(1): set_state maintains the per-state population counters.
  return static_cast<int>(
      vm_state_counts_[static_cast<int>(NestedVmState::kRunning)] +
      vm_state_counts_[static_cast<int>(NestedVmState::kDegraded)]);
}

void SpotCheckController::RegisterTelemetry(TimeSeriesRecorder& ts) {
  for (int i = 0; i < kNumNestedVmStates; ++i) {
    const NestedVmState state = static_cast<NestedVmState>(i);
    ts.AddSeries(
        "fleet.vms." + std::string(NestedVmStateName(state)),
        [this, i] { return static_cast<double>(vm_state_counts_[i]); });
  }
  pool_->RegisterTelemetry(ts);
  ts.AddSeries("backup.servers", [this] {
    return static_cast<double>(backup_pool_.num_servers());
  });
  ts.AddSeries("backup.assigned_vms", [this] {
    return static_cast<double>(backup_pool_.num_assigned());
  });
}

std::string SpotCheckController::DumpState() const {
  std::string out;
  char line[256];
  if (config_.policy_spec.has_value()) {
    std::snprintf(line, sizeof(line),
                  "SpotCheck controller @ %s | policy=%s mechanism=%s bid=%s\n",
                  FormatTime(sim_->Now()).c_str(),
                  policy_spec_.map.ToString().c_str(),
                  std::string(MigrationMechanismName(config_.mechanism)).c_str(),
                  policy_spec_.bid.ToString().c_str());
  } else {
    // Legacy print, pinned by the state-dump test ("policy=1P-M ...").
    std::snprintf(line, sizeof(line),
                  "SpotCheck controller @ %s | policy=%s mechanism=%s %s\n",
                  FormatTime(sim_->Now()).c_str(),
                  std::string(MappingPolicyName(config_.mapping)).c_str(),
                  std::string(MigrationMechanismName(config_.mechanism)).c_str(),
                  config_.bidding.ToString().c_str());
  }
  out += line;
  std::snprintf(line, sizeof(line),
                "vms=%zu hosts=%zu backups=%d revocations=%lld repatriations=%lld"
                " proactive=%lld stagings=%lld respawns=%lld\n",
                vms_.size(), pool_->num_hosts(), backup_pool_.num_servers(),
                static_cast<long long>(evacuation_->revocation_events()),
                static_cast<long long>(repatriation_->repatriations()),
                static_cast<long long>(repatriation_->proactive_migrations()),
                static_cast<long long>(evacuation_->stagings()),
                static_cast<long long>(evacuation_->stateless_respawns()));
  out += line;

  out += "-- nested VMs --\n";
  vms_.ForEach([&](NestedVmId id, const NestedVm& vm) {
    const HostVm* host = pool_->GetHost(vm.host());
    const auto ip = vpc_.IpOf(id);
    std::snprintf(line, sizeof(line),
                  "%-10s cust=%-8s state=%-12s host=%-18s ip=%-12s backup=%-8s"
                  " migrations=%lld%s\n",
                  id.ToString().c_str(), vm.customer().ToString().c_str(),
                  std::string(NestedVmStateName(vm.state())).c_str(),
                  host != nullptr ? host->market().ToString().c_str() : "-",
                  ip.has_value() ? ip->ToString().c_str() : "-",
                  vm.backup().valid() ? vm.backup().ToString().c_str() : "-",
                  static_cast<long long>(vm.migrations()),
                  vm.spec().stateless ? " [stateless]" : "");
    out += line;
  });
  out += pool_->DumpHosts();
  return out;
}

bool SpotCheckController::ValidateInvariants(std::string* error) const {
  std::string failure;
  const auto fail = [&failure](std::string message) {
    if (failure.empty()) {
      failure = std::move(message);
    }
  };
  // The O(1) per-state counters must agree with a full scan: every set_state
  // mutation site funnels through the bound counter array, so a drift here
  // means some code path bypassed NestedVm::set_state.
  std::array<int64_t, kNumNestedVmStates> scanned{};
  vms_.ForEach([&](NestedVmId id, const NestedVm& vm) {
    ++scanned[static_cast<int>(vm.state())];
    if (!failure.empty()) {
      return;
    }
    const NestedVmState state = vm.state();
    if (state != NestedVmState::kRunning && state != NestedVmState::kDegraded) {
      return;  // transitional or dead states are exempt
    }
    // Settled VMs live on a known, running host that lists them.
    const HostVm* host = pool_->GetHost(vm.host());
    if (host == nullptr) {
      return fail(id.ToString() + " is settled but has no host record");
    }
    const auto& members = host->vms();
    if (std::find(members.begin(), members.end(), id) == members.end()) {
      return fail(id.ToString() + " not listed on its host " +
                  vm.host().ToString());
    }
    const Instance* native = cloud_->GetInstance(host->instance());
    if (native == nullptr || native->state == InstanceState::kTerminated) {
      return fail(id.ToString() + " sits on a terminated native instance");
    }
    // Backup streams exactly when needed.
    const bool needs_backup = host->is_spot() && !vm.spec().stateless &&
                              MechanismNeedsBackup(config_.mechanism);
    const bool has_stream = backup_pool_.ServerFor(id) != nullptr;
    if (needs_backup != has_stream) {
      return fail(id.ToString() + (needs_backup ? " misses" : " leaks") +
                  " a backup stream");
    }
    // The stable private address routes to this VM.
    const auto ip = vpc_.IpOf(id);
    if (!ip.has_value()) {
      return fail(id.ToString() + " has no private address");
    }
    const auto routed = network_.Route(*ip);
    if (!routed.has_value() || *routed != id) {
      return fail(id.ToString() + " address " + ip->ToString() +
                  " does not route to it");
    }
  });
  if (failure.empty() && scanned != vm_state_counts_) {
    fail("vm state counters drifted from a full scan");
  }
  if (!failure.empty()) {
    if (error != nullptr) {
      *error = std::move(failure);
    }
    return false;
  }
  return pool_->ValidateInvariants(error) &&
         repatriation_->ValidateInvariants(error);
}

// --- Reporting -------------------------------------------------------------------

SpotCheckController::CustomerReport SpotCheckController::ComputeCustomerReport(
    CustomerId customer) const {
  CustomerReport report;
  const SimTime now = sim_->Now();
  const double resale_price =
      config_.resale_fraction_of_on_demand * OnDemandPrice(config_.nested_type);
  vms_.ForEach([&](NestedVmId id, const NestedVm& vm) {
    if (vm.customer() != customer) {
      return;
    }
    ++report.vms;
    const SimDuration life = activity_log_.Lifetime(id, SimTime(), now);
    const SimDuration down =
        activity_log_.Total(id, ActivityKind::kDowntime, SimTime(), now);
    report.vm_hours += life.hours();
    report.downtime += down;
    report.revenue += (life - down).hours() * resale_price;
  });
  if (report.vm_hours > 0.0) {
    report.availability_pct =
        100.0 * (1.0 - report.downtime.hours() / report.vm_hours);
  }
  return report;
}

SpotCheckController::BusinessReport SpotCheckController::ComputeBusinessReport()
    const {
  BusinessReport report;
  for (const auto& [id, name] : customers_) {
    report.revenue += ComputeCustomerReport(id).revenue;
  }
  const CostReport costs = ComputeCostReport();
  report.platform_cost = costs.native_cost + costs.backup_cost;
  report.margin = report.revenue - report.platform_cost;
  report.margin_fraction =
      report.revenue > 0.0 ? report.margin / report.revenue : 0.0;
  return report;
}

SpotCheckController::CostReport SpotCheckController::ComputeCostReport() const {
  CostReport report;
  const SimTime now = sim_->Now();
  report.native_cost = cloud_->TotalCost();
  report.backup_cost = backup_pool_.TotalAccruedCost(now);
  vms_.ForEach([&](NestedVmId id, const NestedVm&) {
    report.vm_hours += activity_log_.Lifetime(id, SimTime(), now).hours();
  });
  report.avg_cost_per_vm_hour =
      report.vm_hours > 0.0
          ? (report.native_cost + report.backup_cost) / report.vm_hours
          : 0.0;
  return report;
}

}  // namespace spotcheck

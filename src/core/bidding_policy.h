// Bidding policies (Section 4.3).
//
// SpotCheck deliberately keeps bidding simple: either bid exactly the
// on-demand price (so a revocation only ever happens when on-demand servers
// are the cheaper option anyway), or bid k times the on-demand price (k > 1)
// to lower the revocation frequency at a higher worst-case cost -- the
// variant that also enables proactive live migrations, triggered when the
// price rises above the on-demand price but is still below the bid.

#ifndef SRC_CORE_BIDDING_POLICY_H_
#define SRC_CORE_BIDDING_POLICY_H_

#include <cstdint>
#include <string>

#include "src/market/instance_types.h"

namespace spotcheck {

enum class BidPolicyKind : uint8_t {
  kOnDemandPrice,       // bid = on-demand price
  kMultipleOfOnDemand,  // bid = k * on-demand price, k > 1
};

struct BiddingPolicy {
  BidPolicyKind kind = BidPolicyKind::kOnDemandPrice;
  double k = 1.0;

  static BiddingPolicy OnDemand() { return {BidPolicyKind::kOnDemandPrice, 1.0}; }
  static BiddingPolicy Multiple(double k) {
    return {BidPolicyKind::kMultipleOfOnDemand, k};
  }

  // The bid for servers of `type`.
  double BidFor(InstanceType type) const {
    const double od = OnDemandPrice(type);
    return kind == BidPolicyKind::kOnDemandPrice ? od : k * od;
  }

  // Proactive migrations only make sense when the bid exceeds the on-demand
  // price: between the two there is a window to migrate before revocation.
  bool SupportsProactiveMigration() const {
    return kind == BidPolicyKind::kMultipleOfOnDemand && k > 1.0;
  }

  // Price above which a proactive policy should evacuate: staying on spot
  // above the on-demand price is never cost-effective.
  double ProactiveThreshold(InstanceType type) const { return OnDemandPrice(type); }

  std::string ToString() const;
};

}  // namespace spotcheck

#endif  // SRC_CORE_BIDDING_POLICY_H_

// End-to-end evaluation harness (Section 6.2).
//
// Runs a full SpotCheck deployment -- markets, native cloud, controller, N
// nested VMs -- over a long horizon and reports the metrics of Figures 10-12
// and Table 3: average $/hr per VM, unavailability %, performance-degradation
// %, and revocation-storm probabilities. One call = one bar of one figure.

#ifndef SRC_CORE_EVALUATION_H_
#define SRC_CORE_EVALUATION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/chaos/chaos_config.h"
#include "src/core/controller.h"
#include "src/obs/profiler.h"
#include "src/obs/run_report.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace spotcheck {

struct EvaluationConfig {
  MappingPolicyKind policy = MappingPolicyKind::k1PM;
  MigrationMechanism mechanism = MigrationMechanism::kSpotCheckLazyRestore;
  BiddingPolicy bidding = BiddingPolicy::OnDemand();
  // Strategy-layer override: when set, `policy` and `bidding` above are
  // ignored and both strategies come from this spec (see ControllerConfig::
  // policy_spec). Enables the new families ("index-track", "adaptive") that
  // have no legacy enum value.
  std::optional<PolicySpec> policy_spec;
  bool proactive = false;
  int hot_spares = 0;
  bool use_staging = false;
  // Fraction of the fleet requested as stateless replicas (no backup,
  // respawn-on-revocation).
  double stateless_fraction = 0.0;
  int num_zones = 1;
  // Cross-market spike coupling (GenerateCorrelatedTraces): > 0 adds shared
  // regional events that can storm several pools at once -- the coincident
  // buckets of Table 3. 0 keeps markets fully independent.
  double market_coupling = 0.0;
  double shared_events_per_day = 0.1;
  int num_vms = 40;  // one backup server's worth, as in Table 3
  int num_customers = 4;
  SimDuration horizon = SimDuration::Days(180);  // April-October 2014
  // VMs are requested this long after the markets open, so history-weighted
  // policies (4P-COST, 4P-ST) have price history to consult.
  SimDuration placement_delay = SimDuration::Days(7);
  // Observation window for concurrent-revocation probabilities (Table 3).
  SimDuration storm_window = SimDuration::Minutes(6);
  uint64_t seed = 1;
  // Fault injection (src/chaos). The default has every rate at zero:
  // FaultPlan compilation is skipped entirely and results are bit-identical
  // to a build without the chaos layer. chaos.num_zones is forced to this
  // config's num_zones so injected outages target real pools.
  ChaosConfig chaos;
  // Build a per-cell MetricsRegistry and attach a RunReport to the result.
  // On by default: instruments are nullable pointers behind one predictable
  // branch, and the numeric results are bit-identical either way.
  bool collect_metrics = true;
  // Build a per-cell SpanTracer and attach the full causal span record to
  // the result (and its RunReport). Off by default: spans are bulkier than
  // metrics. Like metrics, tracing is behavior-free -- the numeric results
  // are bit-identical either way.
  bool collect_trace = false;
  // Tracer knobs (sampling interval for simulator dispatch instants).
  TraceConfig trace;
  // Build a per-cell EventCostProfiler and attach it to the result (and its
  // RunReport's "profile" section). Off by default. Behavior-free: the
  // profiler reads wall clocks only, so numeric results are bit-identical
  // either way.
  bool collect_profile = false;
  // Profiler knobs. profile.seed == 0 derives the sampling phase from this
  // config's `seed`, so the timed subset is reproducible per cell.
  ProfilerConfig profile;
  // Build a per-cell TimeSeriesRecorder, register the fleet/pool/kernel/
  // market gauges plus process RSS on it, and attach it to the result (and
  // its RunReport's "timeseries" summary). Off by default. Behavior-free:
  // sampling is driven from the dispatch loop, never via scheduled events.
  bool collect_timeseries = false;
  // Recorder knobs (sim-time sampling interval, ring capacity).
  TimeSeriesConfig timeseries;
  // RunReport label; defaults to "<policy>/<mechanism>" when empty (with the
  // policy spec string standing in for <policy> when policy_spec is set).
  std::string report_label;
};

struct EvaluationResult {
  double avg_cost_per_vm_hour = 0.0;
  double unavailability_pct = 0.0;  // mean fraction of VM lifetime down, in %
  double degradation_pct = 0.0;     // mean fraction degraded, in %
  RevocationStormTracker::StormProbabilities storms;
  int64_t revocation_events = 0;
  int64_t evacuations = 0;
  int64_t repatriations = 0;
  int64_t failed_migrations = 0;
  int64_t stagings = 0;
  int64_t stateless_respawns = 0;
  int num_backup_servers = 0;
  // Faults the chaos layer actually injected (0 when chaos is disabled).
  int64_t chaos_faults_injected = 0;
  double native_cost = 0.0;
  double backup_cost = 0.0;
  double vm_hours = 0.0;
  // Diagnostics: how many of this run's synthetic-trace fetches were served
  // from the process-wide TraceCatalog vs freshly generated. Scheduling-order
  // dependent when cells run concurrently (whoever asks first generates), so
  // excluded from determinism comparisons.
  int64_t trace_cache_hits = 0;
  int64_t trace_cache_misses = 0;
  // Wall-clock diagnostics (excluded from determinism comparisons like the
  // cache counters): time blocked on the shared TraceCatalog, and time spent
  // building this cell's RunReport (the allocation-heavy tail of a cell; the
  // grid's per-worker contention report aggregates both).
  int64_t trace_cache_lock_wait_ns = 0;
  int64_t report_build_ns = 0;
  // Full observability report (metrics, controller events, summary); null
  // when the config disabled metrics collection. Excluded from determinism
  // comparisons -- the numeric fields above are the contract.
  std::shared_ptr<const RunReport> report;
  // The cell's span record (null unless collect_trace); export with
  // SpanTracer::WriteTo or summarize with AnalyzeTrace. Excluded from
  // determinism comparisons like the report.
  std::shared_ptr<const SpanTracer> trace;
  // The cell's event-cost profile (null unless collect_profile). Wall-clock
  // contents; excluded from determinism comparisons.
  std::shared_ptr<const EventCostProfiler> profile;
  // The cell's telemetry recorder (null unless collect_timeseries); export
  // the full columnar document with TimeSeriesRecorder::WriteTo. Sample
  // values are deterministic, but excluded from the numeric contract like
  // the report.
  std::shared_ptr<const TimeSeriesRecorder> timeseries;
};

EvaluationResult RunPolicyEvaluation(const EvaluationConfig& config);

// One (market, horizon, seed) tuple a cell will fetch from the process-wide
// TraceCatalog.
struct EvaluationTraceKey {
  MarketKey market;
  SimDuration horizon;
  uint64_t seed = 0;
};

// The catalog keys `config`'s simulation resolves through MarketPlace::
// GetOrCreate: the mapping policy's candidate pools across the config's
// zones, at the horizon/seed NativeCloud passes through. Empty when the
// config pre-populates correlated traces (market_coupling > 0), which
// bypass the catalog. The grid runner generates these once, on the calling
// thread, before spawning workers -- otherwise every cold worker piles onto
// the single-flight generation of the same first trace.
std::vector<EvaluationTraceKey> EvaluationTraceKeys(
    const EvaluationConfig& config);

}  // namespace spotcheck

#endif  // SRC_CORE_EVALUATION_H_

#include "src/core/controller_context.h"

#include <algorithm>

#include "src/cloud/native_cloud.h"
#include "src/core/controller_config.h"
#include "src/core/host_pool.h"
#include "src/sim/simulator.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {

SimTime ControllerContext::Now() const { return sim->Now(); }

NestedVm* ControllerContext::FindVm(NestedVmId id) const {
  return vms->Find(id);
}

NestedVm* ControllerContext::FindAliveVm(NestedVmId id) const {
  NestedVm* vm = FindVm(id);
  return vm != nullptr && vm->alive() ? vm : nullptr;
}

AvailabilityZone ControllerContext::PickAvailableZone() const {
  for (int i = 0; i < std::max(config->num_zones, 1); ++i) {
    const AvailabilityZone zone{config->zone.index + i};
    if (cloud->ZoneAvailable(zone)) {
      return zone;
    }
  }
  return config->zone;  // everything is down: requests will retry
}

MarketKey ControllerContext::DefaultMarket() const {
  return MarketKey{config->nested_type, config->zone};
}

MarketKey ControllerContext::FallbackOnDemandMarket() const {
  return MarketKey{config->nested_type, PickAvailableZone()};
}

MarketKey ControllerContext::MarketOfOrDefault(InstanceId host) const {
  const HostVm* record = pool->GetHost(host);
  return record != nullptr ? record->market() : DefaultMarket();
}

}  // namespace spotcheck

#include "src/core/repatriation.h"

#include <algorithm>
#include <utility>

#include "src/cloud/native_cloud.h"
#include "src/core/controller_config.h"
#include "src/core/event_log.h"
#include "src/core/host_pool.h"
#include "src/core/placement.h"
#include "src/policy/strategy.h"
#include "src/virt/migration_engine.h"

namespace spotcheck {

// --- MarketWatcher -----------------------------------------------------------

void MarketWatcher::Subscribe(const MarketKey& key) {
  if (subscribed_[key]) {
    return;
  }
  subscribed_[key] = true;
  ctx_->cloud->MarketFor(key).Subscribe(
      [this, key](const SpotMarket&, double price) {
        OnPriceChange(key, price);
      });
}

void MarketWatcher::OnPriceChange(const MarketKey& key, double price) {
  const ControllerConfig& config = *ctx_->config;
  BidStrategy& bid = *ctx_->bid;
  // Adaptive strategies rebid from observed crossing rates; the fixed
  // strategies' hook is a no-op, keeping the pre-refactor event sequence
  // bit-identical.
  bid.OnPriceObservation(key, ctx_->Now(), price);
  const double od_price = OnDemandPrice(key.type);
  bool predicted_risk = false;
  if (config.enable_predictive) {
    auto [it, inserted] = predictors_.try_emplace(
        key, RevocationPredictor(config.predictor, od_price));
    it->second.Observe(ctx_->Now(), price);
    predicted_risk = it->second.AtRisk();
  }
  if (config.enable_repatriation && price <= od_price && !predicted_risk) {
    ctx_->repatriation->TryRepatriate(key);
  }
  if (config.enable_proactive && bid.SupportsProactiveMigration() &&
      price > bid.ProactiveThreshold(key.type) &&
      price <= bid.BidFor(key.type)) {
    ctx_->repatriation->ProactivelyDrain(key);
  }
  // The predictor fires while the price is still below the bid -- the whole
  // point is to leave before any revocation warning exists.
  if (predicted_risk && price <= bid.BidFor(key.type)) {
    ctx_->repatriation->ProactivelyDrain(key);
  }
}

// --- RepatriationScheduler ---------------------------------------------------

RepatriationScheduler::RepatriationScheduler(ControllerContext* ctx)
    : ctx_(ctx) {
  if (ctx_->metrics != nullptr) {
    repatriations_metric_ = &ctx_->metrics->Counter("controller.repatriations");
    proactive_migrations_metric_ =
        &ctx_->metrics->Counter("controller.proactive_migrations");
  }
}

void RepatriationScheduler::EnqueueRepatriation(const MarketKey& key,
                                                NestedVmId vm) {
  const auto [it, inserted] = waitlisted_.try_emplace(vm, key);
  if (!inserted) {
    if (it->second == key) {
      return;  // already waiting for this pool
    }
    // Re-exiled toward a different pool; the newest exile wins.
    auto& old_list = repatriation_waitlist_[it->second];
    old_list.erase(std::remove(old_list.begin(), old_list.end(), vm),
                   old_list.end());
    it->second = key;
  }
  repatriation_waitlist_[key].push_back(vm);
}

void RepatriationScheduler::TryRepatriate(const MarketKey& key) {
  auto it = repatriation_waitlist_.find(key);
  if (it == repatriation_waitlist_.end() || it->second.empty()) {
    return;
  }
  std::vector<NestedVmId> waiting = std::move(it->second);
  it->second.clear();
  for (NestedVmId vm_id : waiting) {
    waitlisted_.erase(vm_id);
    NestedVm* vm_ptr = ctx_->FindAliveVm(vm_id);
    if (vm_ptr == nullptr) {
      continue;
    }
    NestedVm& vm = *vm_ptr;
    const HostVm* current = ctx_->pool->GetHost(vm.host());
    if (pending_moves_.contains(vm_id)) {
      // A move is already in flight -- but it may be headed the WRONG way (a
      // proactive drain whose spike ended before its destination launched).
      // Keep the VM on the waitlist; once it settles somewhere, the next
      // price event either repatriates it or drops it as already-home.
      EnqueueRepatriation(key, vm_id);
      continue;
    }
    if (vm.state() != NestedVmState::kRunning &&
        vm.state() != NestedVmState::kDegraded) {
      // Mid-migration: keep it on the waitlist for the next price event.
      EnqueueRepatriation(key, vm_id);
      continue;
    }
    if (current != nullptr && current->is_spot()) {
      continue;  // already back on spot
    }
    HostVm* host = ctx_->pool->FindHostWithCapacity(key, /*spot=*/true,
                                                    vm.spec());
    if (host != nullptr && !host->AddVm(vm.id(), vm.spec())) {
      host = nullptr;  // lost the capacity race; fall back to a fresh host
    }
    ++repatriations_;
    MetricInc(repatriations_metric_);
    ctx_->event_log->Record(ctx_->Now(),
                            ControllerEventKind::kRepatriationStarted, vm_id,
                            vm.host(), key);
    SpanId span = 0;
    if (ctx_->tracer != nullptr) {
      SpanTracer& tracer = *ctx_->tracer;
      span = tracer.Begin(ctx_->Now(), "repatriation", "core",
                          tracer.Track("vm/" + vm_id.ToString()));
      tracer.AttrStr(span, "to_market", key.ToString());
      move_spans_[vm_id] = span;
    }
    const ScopedTraceParent trace_parent(ctx_->tracer, span);
    if (host != nullptr) {
      HostVm& dest = *host;
      if (vm.spec().stateless) {
        ctx_->placement->MoveVmToHost(vm, dest);
        EndMoveSpan(vm.id(), "completed");
      } else {
        ctx_->engine->LiveMigrate(
            vm, [this, &vm, &dest](const MigrationOutcome&) {
              const auto it = move_spans_.find(vm.id());
              const ScopedTraceParent parent(
                  ctx_->tracer, it != move_spans_.end() ? it->second : 0);
              ctx_->placement->MoveVmToHost(vm, dest);
              EndMoveSpan(vm.id(), "completed");
            });
      }
    } else {
      pending_moves_.insert(vm_id);
      ctx_->pool->QueueOrAcquireSpot(key,
                                     Waiter{vm_id, WaitIntent::kPlannedMove});
    }
  }
}

void RepatriationScheduler::ProactivelyDrain(const MarketKey& key) {
  for (InstanceId instance : ctx_->pool->SpotHostsIn(key)) {
    const HostVm* host = ctx_->pool->GetHost(instance);
    if (host == nullptr) {
      continue;
    }
    const std::vector<NestedVmId> resident = host->vms();
    for (NestedVmId vm_id : resident) {
      NestedVm* vm = ctx_->FindAliveVm(vm_id);
      if (vm == nullptr) {
        continue;
      }
      if (vm->state() != NestedVmState::kRunning &&
          vm->state() != NestedVmState::kDegraded) {
        continue;
      }
      if (pending_moves_.contains(vm_id)) {
        continue;  // a drain for this VM is already in flight
      }
      ++proactive_migrations_;
      MetricInc(proactive_migrations_metric_);
      pending_moves_.insert(vm_id);
      ctx_->event_log->Record(ctx_->Now(),
                              ControllerEventKind::kProactiveDrain, vm_id,
                              instance, key);
      SpanId span = 0;
      if (ctx_->tracer != nullptr) {
        SpanTracer& tracer = *ctx_->tracer;
        span = tracer.Begin(ctx_->Now(), "proactive_drain", "core",
                            tracer.Track("vm/" + vm_id.ToString()));
        tracer.AttrStr(span, "from_market", key.ToString());
        move_spans_[vm_id] = span;
      }
      const ScopedTraceParent trace_parent(ctx_->tracer, span);
      ctx_->pool->AcquireHost(ctx_->FallbackOnDemandMarket(),
                              /*is_spot=*/false,
                              Waiter{vm_id, WaitIntent::kPlannedMove});
      if (ctx_->config->enable_repatriation) {
        EnqueueRepatriation(key, vm_id);
      }
    }
  }
}

void RepatriationScheduler::OnPlannedMoveHostReady(NestedVm& vm, HostVm& host,
                                                   const MarketKey& market,
                                                   bool is_spot) {
  // Repatriation or proactive drain: the destination is up, run the live
  // migration now (stateless replicas just boot fresh instead).
  pending_moves_.erase(vm.id());
  if (vm.state() != NestedVmState::kRunning &&
      vm.state() != NestedVmState::kDegraded) {
    EndMoveSpan(vm.id(), "aborted");
    return;
  }
  if (!host.AddVm(vm.id(), vm.spec())) {
    // Another waiter on this host won the capacity race; requeue instead of
    // over-committing the host.
    EndMoveSpan(vm.id(), "requeued");
    if (ctx_->config->enable_repatriation && is_spot) {
      EnqueueRepatriation(market, vm.id());
    }
    return;
  }
  const auto span_it = move_spans_.find(vm.id());
  const SpanId span = span_it != move_spans_.end() ? span_it->second : 0;
  const ScopedTraceParent trace_parent(ctx_->tracer, span);
  if (vm.spec().stateless) {
    ctx_->placement->MoveVmToHost(vm, host);
    EndMoveSpan(vm.id(), "completed");
  } else {
    ctx_->engine->LiveMigrate(vm, [this, &vm, &host](const MigrationOutcome&) {
      const auto it = move_spans_.find(vm.id());
      const ScopedTraceParent parent(
          ctx_->tracer, it != move_spans_.end() ? it->second : 0);
      ctx_->placement->MoveVmToHost(vm, host);
      EndMoveSpan(vm.id(), "completed");
    });
  }
}

void RepatriationScheduler::OnPlannedMoveLaunchFailed(const MarketKey& market,
                                                      bool is_spot,
                                                      NestedVmId vm) {
  pending_moves_.erase(vm);
  EndMoveSpan(vm, "launch-failed");
  if (ctx_->config->enable_repatriation && is_spot) {
    EnqueueRepatriation(market, vm);
  }
}

void RepatriationScheduler::EndMoveSpan(NestedVmId vm, const char* status) {
  const auto it = move_spans_.find(vm);
  if (it == move_spans_.end()) {
    return;
  }
  if (ctx_->tracer != nullptr) {
    ctx_->tracer->AttrStr(it->second, "status", status);
    ctx_->tracer->End(it->second, ctx_->Now());
  }
  move_spans_.erase(it);
}

bool RepatriationScheduler::ValidateInvariants(std::string* error) const {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  // Repatriation waitlists hold each VM at most once, in the pool the
  // mirror map says it waits for.
  std::set<NestedVmId> queued;
  for (const auto& [key, list] : repatriation_waitlist_) {
    for (NestedVmId vm : list) {
      if (!queued.insert(vm).second) {
        return fail(vm.ToString() + " queued for repatriation twice");
      }
      const auto w = waitlisted_.find(vm);
      if (w == waitlisted_.end() || !(w->second == key)) {
        return fail(vm.ToString() + " waitlist mirror drifted");
      }
    }
  }
  if (queued.size() != waitlisted_.size()) {
    return fail("waitlist mirror holds stale entries");
  }
  return true;
}

}  // namespace spotcheck

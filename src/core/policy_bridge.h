// Bridge between the legacy enum-based policy configuration and the
// src/policy strategy layer.
//
// ControllerConfig/EvaluationConfig still carry MappingPolicyKind /
// BiddingPolicy for every existing caller; the controller resolves them --
// or an explicit ControllerConfig::policy_spec, which wins -- into one
// PolicySpec and instantiates the strategies through the registry. The
// legacy enums map onto registry names 1:1, so a config expressed either way
// produces the same strategy objects (and bit-identical simulations).

#ifndef SRC_CORE_POLICY_BRIDGE_H_
#define SRC_CORE_POLICY_BRIDGE_H_

#include <memory>

#include "src/core/controller_config.h"
#include "src/policy/registry.h"

namespace spotcheck {

// "on-demand" or "multiple:k".
StrategySpec BidSpecFromLegacy(const BiddingPolicy& bidding);
// "1p-m" / "2p-ml" / "4p-ed" / "4p-cost" / "4p-st" / "greedy" / "stable".
StrategySpec MapSpecFromLegacy(MappingPolicyKind kind);

// The spec the controller runs: config.policy_spec when set, else the legacy
// enums translated.
PolicySpec ResolvedPolicySpec(const ControllerConfig& config);

// Registry instantiation for pre-validated specs; prints the error and
// aborts on failure (a spec that reached the controller has either passed
// PolicySpec::Parse or came from the legacy enums, so failure here is a
// programming error, not user input).
std::unique_ptr<BidStrategy> CreateBidStrategyOrDie(const StrategySpec& spec);
std::unique_ptr<PoolSelectionStrategy> CreatePoolStrategyOrDie(
    const StrategySpec& spec, const PoolStrategyInit& init);

}  // namespace spotcheck

#endif  // SRC_CORE_POLICY_BRIDGE_H_

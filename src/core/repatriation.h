// Pool dynamics: price subscriptions and planned (non-forced) migrations.
//
// MarketWatcher subscribes to every spot pool the controller touches and
// turns price changes into decisions: repatriate exiled VMs when a pool's
// price falls back below on-demand, proactively drain a pool whose price
// climbed above on-demand but not yet above the bid (k>1 bidding), and --
// with the predictive option -- drain on a predictor signal before the
// price even crosses on-demand.
//
// RepatriationScheduler owns the machinery those decisions drive: the
// deduplicated per-pool waitlist of exiled VMs (with its vm->pool mirror),
// the pending-move guard that stops double-scheduling, and the planned-move
// completion/failure handlers invoked by the host pool.

#ifndef SRC_CORE_REPATRIATION_H_
#define SRC_CORE_REPATRIATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/core/controller_context.h"
#include "src/market/instance_types.h"
#include "src/market/revocation_predictor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/virt/host_vm.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {

class MarketWatcher {
 public:
  explicit MarketWatcher(ControllerContext* ctx) : ctx_(ctx) {}

  MarketWatcher(const MarketWatcher&) = delete;
  MarketWatcher& operator=(const MarketWatcher&) = delete;

  // Idempotent: the first call per pool installs the price-change callback.
  void Subscribe(const MarketKey& key);
  // Public so pool-dynamics tests can inject price points directly.
  void OnPriceChange(const MarketKey& key, double price);

  bool IsSubscribed(const MarketKey& key) const {
    const auto it = subscribed_.find(key);
    return it != subscribed_.end() && it->second;
  }

 private:
  ControllerContext* ctx_;
  std::map<MarketKey, bool> subscribed_;
  // Per-market spike predictors (enable_predictive).
  std::map<MarketKey, RevocationPredictor> predictors_;
};

class RepatriationScheduler {
 public:
  explicit RepatriationScheduler(ControllerContext* ctx);

  RepatriationScheduler(const RepatriationScheduler&) = delete;
  RepatriationScheduler& operator=(const RepatriationScheduler&) = delete;

  // Adds `vm` to `key`'s repatriation waitlist, exactly once: a VM already
  // waiting for the same pool is left alone, and one waiting for a different
  // pool is moved (the newest exile wins). Prevents the duplicate entries
  // that ProactivelyDrain / failed planned moves / FinalizeEvacuation used
  // to accumulate for VMs bouncing between pools.
  void EnqueueRepatriation(const MarketKey& key, NestedVmId vm);
  // Drains `key`'s waitlist: every waiting VM still exiled off spot is
  // live-migrated back (or queued on a fresh spot launch).
  void TryRepatriate(const MarketKey& key);
  // Live-migrates every settled VM off `key`'s spot hosts onto on-demand
  // before the pool's price reaches the bid.
  void ProactivelyDrain(const MarketKey& key);

  // Host-pool callbacks for WaitIntent::kPlannedMove.
  void OnPlannedMoveHostReady(NestedVm& vm, HostVm& host,
                              const MarketKey& market, bool is_spot);
  void OnPlannedMoveLaunchFailed(const MarketKey& market, bool is_spot,
                                 NestedVmId vm);

  // Planned-move guard (also used by the evacuation staging path).
  void AddPendingMove(NestedVmId vm) { pending_moves_.insert(vm); }
  bool HasPendingMove(NestedVmId vm) const {
    return pending_moves_.contains(vm);
  }

  int64_t repatriations() const { return repatriations_; }
  int64_t proactive_migrations() const { return proactive_migrations_; }

  // Introspection for tests and DumpState.
  const std::map<MarketKey, std::vector<NestedVmId>>& waitlist() const {
    return repatriation_waitlist_;
  }
  const std::map<NestedVmId, MarketKey>& waitlisted() const {
    return waitlisted_;
  }

  // Waitlist structural invariants: each VM queued at most once, in the pool
  // its mirror entry names, with no stale mirror entries.
  bool ValidateInvariants(std::string* error) const;

 private:
  // Closes `vm`'s open move span (if any) with a status attribute; no-op
  // when no span is open for it.
  void EndMoveSpan(NestedVmId vm, const char* status);

  ControllerContext* ctx_;
  // VMs currently exiled to on-demand, keyed by the spot pool they left.
  std::map<MarketKey, std::vector<NestedVmId>> repatriation_waitlist_;
  // Mirror of repatriation_waitlist_ (vm -> pool it waits for), kept in sync
  // by EnqueueRepatriation/TryRepatriate to suppress duplicate entries.
  std::map<NestedVmId, MarketKey> waitlisted_;
  // VMs with a planned move (repatriation / proactive drain) whose target
  // host is still launching; guards against double-scheduling a move.
  std::set<NestedVmId> pending_moves_;
  // Open "repatriation" / "proactive_drain" spans, schedule -> settle.
  // Empty when tracing is off.
  std::map<NestedVmId, SpanId> move_spans_;

  int64_t repatriations_ = 0;
  int64_t proactive_migrations_ = 0;

  MetricCounter* repatriations_metric_ = nullptr;
  MetricCounter* proactive_migrations_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_CORE_REPATRIATION_H_

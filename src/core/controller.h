// SpotCheck controller (Section 5) -- the derivative cloud's main component
// and the primary public API of this library.
//
// The controller exposes an EC2-like interface to customers (request /
// release servers) while internally renting spot and on-demand instances
// from the native cloud, running nested VMs on them, and orchestrating:
//
//   * placement: the customer-to-pool mapping policies of Table 2, with
//     large-instance slicing (multiple nested VMs per host),
//   * backup assignment: round-robin over a pool of backup servers for every
//     nested VM hosted on a spot server,
//   * revocation handling: on a spot warning, evacuate every resident nested
//     VM via the configured migration mechanism to a hot spare or a freshly
//     requested on-demand server,
//   * allocation dynamics: when the spot price falls back below the
//     on-demand price, live-migrate VMs from on-demand servers back to spot,
//   * proactive migration (with k>1 bids): when the price rises above the
//     on-demand price but below the bid, live-migrate off the spot server
//     before any revocation happens.
//
// All downtime and degradation is charged to an ActivityLog, revocation
// batches to a RevocationStormTracker, and every dollar to the native
// cloud's billing meter plus the backup pool's accrual -- which is exactly
// the data needed to regenerate Figures 10-12 and Table 3.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/backup/backup_pool.h"
#include "src/cloud/native_cloud.h"
#include "src/core/bidding_policy.h"
#include "src/core/event_log.h"
#include "src/core/mapping_policy.h"
#include "src/core/storm_tracker.h"
#include "src/market/revocation_predictor.h"
#include "src/net/connection_tracker.h"
#include "src/net/nat_table.h"
#include "src/net/vpc.h"
#include "src/obs/metrics.h"
#include "src/virt/activity_log.h"
#include "src/virt/host_vm.h"
#include "src/virt/migration_engine.h"
#include "src/virt/nested_vm.h"
#include "src/workload/workload_model.h"

namespace spotcheck {

struct ControllerConfig {
  MappingPolicyKind mapping = MappingPolicyKind::k1PM;
  MigrationMechanism mechanism = MigrationMechanism::kSpotCheckLazyRestore;
  BiddingPolicy bidding = BiddingPolicy::OnDemand();
  // The server type customers request (the paper's default: the smallest
  // HVM-capable type).
  InstanceType nested_type = InstanceType::kM3Medium;
  WorkloadProfile workload = TpcwProfile();
  AvailabilityZone zone{0};
  // Pools are spread across this many zones starting at `zone` (Section 4.2:
  // policies operate across types and availability zones within a region).
  int num_zones = 1;
  // Allocation dynamics: migrate back to spot when the price spike abates.
  bool enable_repatriation = true;
  // Proactive live migration off spot before revocation (requires k>1 bids).
  bool enable_proactive = false;
  // Predictive migration (Section 3.2): drain a pool with live migrations as
  // soon as its price level/velocity signals an imminent spike -- even
  // before the price crosses the on-demand level. False alarms cost a round
  // trip of live migrations; hits avoid the bounded-time downtime entirely.
  bool enable_predictive = false;
  PredictorConfig predictor;
  // Idle on-demand hosts kept ready to absorb revocation storms.
  int hot_spares = 0;
  // On a revocation, park evacuated VMs on under-utilized spot hosts in
  // other, currently-stable pools while the real destination launches
  // (Section 4.3's staging-server alternative to hot spares). Costs nothing
  // when idle, but doubles the number of migrations per revocation.
  bool use_staging = false;
  BackupPoolConfig backup;
  MigrationEngineConfig engine;
  // What SpotCheck charges its customers, as a fraction of the equivalent
  // on-demand price. The derivative cloud's margin is this revenue minus its
  // own spot/on-demand/backup spend; downtime is not billed.
  double resale_fraction_of_on_demand = 0.6;
  uint64_t seed = 7;
  // Optional observability registry. Shared with the MigrationEngine and
  // BackupPool this controller owns; must outlive the controller. Purely
  // observational: simulation results are identical with or without it.
  MetricsRegistry* metrics = nullptr;
};

class SpotCheckController {
 public:
  SpotCheckController(Simulator* sim, NativeCloud* cloud, MarketPlace* markets,
                      ControllerConfig config = {});

  SpotCheckController(const SpotCheckController&) = delete;
  SpotCheckController& operator=(const SpotCheckController&) = delete;

  // --- Customer API -------------------------------------------------------

  CustomerId RegisterCustomer(std::string name = {});
  // Requests one non-revocable nested VM of config.nested_type. Provisioning
  // is asynchronous (native instance launch); the VM enters kRunning when a
  // host is ready. Stateless servers (one replica of a fault-tolerant tier)
  // skip the backup server -- cheaper -- and are respawned fresh instead of
  // migrated when revoked (Section 4.2).
  NestedVmId RequestServer(CustomerId customer, bool stateless = false);
  void ReleaseServer(NestedVmId vm);

  const NestedVm* GetVm(NestedVmId vm) const;
  std::vector<const NestedVm*> Vms() const;
  const HostVm* GetHost(InstanceId instance) const;
  std::vector<const HostVm*> Hosts() const;
  int RunningVmCount() const;

  // --- Evaluation surface ---------------------------------------------------

  const ActivityLog& activity_log() const { return activity_log_; }
  const ControllerEventLog& event_log() const { return event_log_; }
  const RevocationStormTracker& storms() const { return storms_; }
  const MigrationEngine& engine() const { return engine_; }
  const BackupPool& backup_pool() const { return backup_pool_; }
  // Mutable access for the fault-injection layer (restore-bandwidth
  // degradation); regular evaluation code should use the const accessor.
  BackupPool& mutable_backup_pool() { return backup_pool_; }
  const ControllerConfig& config() const { return config_; }
  // Network state: each nested VM keeps one stable private address whose
  // NAT binding follows it from host to host (Fig. 4); client connections
  // survive any outage shorter than their timeout.
  const VirtualPrivateCloud& vpc() const { return vpc_; }
  const HostNetworkPlane& network() const { return network_; }
  ConnectionTracker& connections() { return connections_; }
  const ConnectionTracker& connections() const { return connections_; }

  struct CostReport {
    double native_cost = 0.0;   // spot + on-demand instance spend ($)
    double backup_cost = 0.0;   // backup server spend ($)
    double vm_hours = 0.0;      // nested-VM lifetime
    double avg_cost_per_vm_hour = 0.0;
  };
  CostReport ComputeCostReport() const;

  // What one customer experienced and owes at the resale price.
  struct CustomerReport {
    int64_t vms = 0;
    double vm_hours = 0.0;
    SimDuration downtime;
    double availability_pct = 100.0;
    double revenue = 0.0;  // billed hours x resale price (downtime unbilled)
  };
  CustomerReport ComputeCustomerReport(CustomerId customer) const;

  // The derivative cloud's books: customer revenue vs. platform spend.
  struct BusinessReport {
    double revenue = 0.0;
    double platform_cost = 0.0;  // native instances + backup servers
    double margin = 0.0;         // revenue - platform_cost
    double margin_fraction = 0.0;
  };
  BusinessReport ComputeBusinessReport() const;

  int64_t revocation_events() const { return revocation_events_; }
  int64_t repatriations() const { return repatriations_; }
  int64_t proactive_migrations() const { return proactive_migrations_; }
  int64_t stateless_respawns() const { return stateless_respawns_; }
  int64_t stagings() const { return stagings_; }
  // VMs whose state was unrecoverable after a platform failure (no backup).
  int64_t vms_lost() const { return vms_lost_; }

  // Human-readable snapshot of the controller's state -- the information the
  // paper's controller keeps in its database (Section 5): every nested VM
  // with its placement, address and backup assignment, every host with its
  // occupancy, and the headline counters.
  std::string DumpState() const;

  // Structural invariants, checked by property tests after arbitrary
  // simulated histories: settled (running/degraded) VMs sit on live hosts
  // that list them, host capacity accounting is consistent, backup streams
  // exist exactly for spot-hosted VMs (when the mechanism needs them), and
  // every settled VM's private address routes to it. Returns true when all
  // hold; otherwise false with a description in `error`.
  bool ValidateInvariants(std::string* error) const;

 private:
  // Why a VM is waiting for a host to come up.
  enum class WaitIntent : uint8_t {
    kInitialPlacement,        // fresh VM, first host
    kEvacuationDestination,   // destination of an in-flight evacuation
    kPlannedMove,             // live-migration target (repatriation/proactive)
  };
  struct Waiter {
    NestedVmId vm;
    WaitIntent intent = WaitIntent::kInitialPlacement;
  };
  struct PendingHost {
    MarketKey market;
    bool is_spot = true;
    bool is_hot_spare = false;
    std::deque<Waiter> waiting;  // VMs to place when the host is up
  };
  // Evacuation in flight: phase-1 commit and destination readiness must both
  // land before phase 2 (EC2 ops + restore) can run.
  struct EvacuationState {
    MigrationMechanism mechanism;
    BackupServer* backup = nullptr;
    MarketKey old_market;
    InstanceId old_host;
    SimTime deadline;
    bool committed = false;
    bool dest_ready = false;
    bool completing = false;
    // Destination is a staging host in another spot pool; a second (live)
    // migration to a final host follows once one launches.
    bool staged = false;
    MarketKey staging_market;
  };

  // Placement.
  void PlaceVm(NestedVm& vm);
  HostVm* FindHostWithCapacity(const MarketKey& market, bool spot,
                               const NestedVmSpec& spec);
  void AcquireHost(MarketKey market, bool is_spot, Waiter first_waiter,
                   bool hot_spare = false);
  // Joins an already-launching spot host in `market` when it has a free
  // nested slot (the slicing arbitrage), otherwise requests a new one.
  void QueueOrAcquireSpot(const MarketKey& market, Waiter waiter);
  void OnHostReady(InstanceId instance, bool ok);
  void AttachVmToHost(NestedVm& vm, HostVm& host);
  void AssignBackup(NestedVm& vm);

  // Revocation handling.
  void OnRevocationWarning(InstanceId instance, SimTime deadline);
  // Platform (zone) failure: the instance died with no warning.
  void OnInstanceFailure(InstanceId instance);
  void EvacuateVm(NestedVm& vm, SimTime deadline);
  void RespawnStateless(NestedVm& vm, SimTime deadline);
  // First zone (from config.zone, spanning num_zones) the platform can still
  // launch into; falls back to the primary zone when all are down.
  AvailabilityZone PickAvailableZone() const;
  void MaybeCompleteEvacuation(NestedVm& vm);
  void FinalizeEvacuation(NestedVm& vm, const MigrationOutcome& outcome);
  HostVm* PickSpareDestination(const NestedVmSpec& spec);
  // An under-utilized spot host in a different, currently-stable pool that
  // can temporarily take `spec` (Section 4.3's staging servers).
  HostVm* PickStagingHost(const NestedVmSpec& spec, const MarketKey& exclude);
  void ReplenishHotSpares();

  // Pool dynamics.
  void SubscribeMarket(const MarketKey& key);
  void OnPriceChange(const MarketKey& key, double price);
  // Adds `vm` to `key`'s repatriation waitlist, exactly once: a VM already
  // waiting for the same pool is left alone, and one waiting for a different
  // pool is moved (the newest exile wins). Prevents the duplicate entries
  // that ProactivelyDrain / failed planned moves / FinalizeEvacuation used
  // to accumulate for VMs bouncing between pools.
  void EnqueueRepatriation(const MarketKey& key, NestedVmId vm);
  void TryRepatriate(const MarketKey& key);
  void ProactivelyDrain(const MarketKey& key);
  void MoveVmToHost(NestedVm& vm, HostVm& destination);
  void DetachVmFromCurrentHost(NestedVm& vm);
  void MaybeReleaseHost(InstanceId instance);
  // Re-binds the VM's private address to its current host and charges the
  // migration outage to its client connections.
  void RebindNetwork(NestedVm& vm, SimDuration outage);

  Simulator* sim_;
  NativeCloud* cloud_;
  MarketPlace* markets_;
  ControllerConfig config_;
  MappingPolicy mapping_;
  ActivityLog activity_log_;
  ControllerEventLog event_log_;
  MigrationEngine engine_;
  BackupPool backup_pool_;
  RevocationStormTracker storms_;
  VirtualPrivateCloud vpc_;
  HostNetworkPlane network_;
  ConnectionTracker connections_;
  Rng rng_;

  IdGenerator<CustomerTag> customer_ids_;
  IdGenerator<NestedVmTag> vm_ids_;
  std::map<CustomerId, std::string> customers_;
  std::map<NestedVmId, std::unique_ptr<NestedVm>> vms_;
  std::map<InstanceId, std::unique_ptr<HostVm>> hosts_;
  std::map<InstanceId, PendingHost> pending_hosts_;
  std::map<NestedVmId, EvacuationState> evacuating_;
  // VMs with a planned move (repatriation / proactive drain) whose target
  // host is still launching; guards against double-scheduling a move.
  std::set<NestedVmId> pending_moves_;
  std::map<MarketKey, bool> subscribed_;
  // Per-market spike predictors (enable_predictive).
  std::map<MarketKey, RevocationPredictor> predictors_;
  // VMs currently exiled to on-demand, keyed by the spot pool they left.
  std::map<MarketKey, std::vector<NestedVmId>> repatriation_waitlist_;
  // Mirror of repatriation_waitlist_ (vm -> pool it waits for), kept in sync
  // by EnqueueRepatriation/TryRepatriate to suppress duplicate entries.
  std::map<NestedVmId, MarketKey> waitlisted_;
  std::vector<InstanceId> hot_spare_hosts_;

  int64_t revocation_events_ = 0;
  int64_t repatriations_ = 0;
  int64_t proactive_migrations_ = 0;
  int64_t stateless_respawns_ = 0;
  int64_t stagings_ = 0;
  int64_t vms_lost_ = 0;

  // Observability instruments; all null without a registry.
  MetricCounter* revocation_events_metric_ = nullptr;
  MetricCounter* repatriations_metric_ = nullptr;
  MetricCounter* proactive_migrations_metric_ = nullptr;
  MetricCounter* stateless_respawns_metric_ = nullptr;
  MetricCounter* stagings_metric_ = nullptr;
  MetricCounter* vms_lost_metric_ = nullptr;
  MetricCounter* backup_restores_metric_ = nullptr;
  // Completed evacuations, named after the configured mechanism
  // ("controller.migrations.<mechanism>") so grid-wide reports keep a
  // per-mechanism breakdown.
  MetricCounter* migrations_by_mechanism_metric_ = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_CORE_CONTROLLER_H_

// SpotCheck controller (Section 5) -- the derivative cloud's main component
// and the primary public API of this library.
//
// The controller exposes an EC2-like interface to customers (request /
// release servers) while internally renting spot and on-demand instances
// from the native cloud, running nested VMs on them, and orchestrating:
//
//   * placement: the customer-to-pool mapping policies of Table 2, with
//     large-instance slicing (multiple nested VMs per host),
//   * backup assignment: round-robin over a pool of backup servers for every
//     nested VM hosted on a spot server,
//   * revocation handling: on a spot warning, evacuate every resident nested
//     VM via the configured migration mechanism to a hot spare or a freshly
//     requested on-demand server,
//   * allocation dynamics: when the spot price falls back below the
//     on-demand price, live-migrate VMs from on-demand servers back to spot,
//   * proactive migration (with k>1 bids): when the price rises above the
//     on-demand price but below the bid, live-migrate off the spot server
//     before any revocation happens.
//
// All downtime and degradation is charged to an ActivityLog, revocation
// batches to a RevocationStormTracker, and every dollar to the native
// cloud's billing meter plus the backup pool's accrual -- which is exactly
// the data needed to regenerate Figures 10-12 and Table 3.
//
// Since the layered refactor this class is a thin facade: the actual
// machinery lives in five components (HostPoolManager, PlacementEngine,
// EvacuationCoordinator, MarketWatcher, RepatriationScheduler) that share a
// ControllerContext. See controller_context.h for the wiring contract and
// DESIGN.md section 10 for the architecture.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/backup_pool.h"
#include "src/cloud/native_cloud.h"
#include "src/common/fleet_store.h"
#include "src/core/controller_config.h"
#include "src/core/controller_context.h"
#include "src/core/evacuation.h"
#include "src/core/event_log.h"
#include "src/core/host_pool.h"
#include "src/core/placement.h"
#include "src/core/repatriation.h"
#include "src/core/storm_tracker.h"
#include "src/net/connection_tracker.h"
#include "src/net/nat_table.h"
#include "src/net/vpc.h"
#include "src/policy/policy_spec.h"
#include "src/policy/strategy.h"
#include "src/virt/activity_log.h"
#include "src/virt/host_vm.h"
#include "src/virt/migration_engine.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {

class SpotCheckController {
 public:
  SpotCheckController(Simulator* sim, NativeCloud* cloud, MarketPlace* markets,
                      ControllerConfig config = {});

  SpotCheckController(const SpotCheckController&) = delete;
  SpotCheckController& operator=(const SpotCheckController&) = delete;

  // --- Customer API -------------------------------------------------------

  CustomerId RegisterCustomer(std::string name = {});
  // Requests one non-revocable nested VM of config.nested_type. Provisioning
  // is asynchronous (native instance launch); the VM enters kRunning when a
  // host is ready. Stateless servers (one replica of a fault-tolerant tier)
  // skip the backup server -- cheaper -- and are respawned fresh instead of
  // migrated when revoked (Section 4.2).
  NestedVmId RequestServer(CustomerId customer, bool stateless = false);
  void ReleaseServer(NestedVmId vm);

  const NestedVm* GetVm(NestedVmId vm) const;
  std::vector<const NestedVm*> Vms() const;
  const HostVm* GetHost(InstanceId instance) const {
    return pool_->GetHost(instance);
  }
  std::vector<const HostVm*> Hosts() const { return pool_->Hosts(); }
  int RunningVmCount() const;

  // --- Evaluation surface ---------------------------------------------------

  const ActivityLog& activity_log() const { return activity_log_; }
  const ControllerEventLog& event_log() const { return event_log_; }
  const RevocationStormTracker& storms() const { return storms_; }
  const MigrationEngine& engine() const { return engine_; }
  const BackupPool& backup_pool() const { return backup_pool_; }
  // Mutable access for the fault-injection layer (restore-bandwidth
  // degradation); regular evaluation code should use the const accessor.
  BackupPool& mutable_backup_pool() { return backup_pool_; }
  const ControllerConfig& config() const { return config_; }
  // The policy spec this controller actually runs: config.policy_spec when
  // set, else the legacy enums translated to registry names.
  const PolicySpec& policy_spec() const { return policy_spec_; }
  const BidStrategy& bid_strategy() const { return *bid_strategy_; }
  // Network state: each nested VM keeps one stable private address whose
  // NAT binding follows it from host to host (Fig. 4); client connections
  // survive any outage shorter than their timeout.
  const VirtualPrivateCloud& vpc() const { return vpc_; }
  const HostNetworkPlane& network() const { return network_; }
  ConnectionTracker& connections() { return connections_; }
  const ConnectionTracker& connections() const { return connections_; }

  struct CostReport {
    double native_cost = 0.0;   // spot + on-demand instance spend ($)
    double backup_cost = 0.0;   // backup server spend ($)
    double vm_hours = 0.0;      // nested-VM lifetime
    double avg_cost_per_vm_hour = 0.0;
  };
  CostReport ComputeCostReport() const;

  // What one customer experienced and owes at the resale price.
  struct CustomerReport {
    int64_t vms = 0;
    double vm_hours = 0.0;
    SimDuration downtime;
    double availability_pct = 100.0;
    double revenue = 0.0;  // billed hours x resale price (downtime unbilled)
  };
  CustomerReport ComputeCustomerReport(CustomerId customer) const;

  // The derivative cloud's books: customer revenue vs. platform spend.
  struct BusinessReport {
    double revenue = 0.0;
    double platform_cost = 0.0;  // native instances + backup servers
    double margin = 0.0;         // revenue - platform_cost
    double margin_fraction = 0.0;
  };
  BusinessReport ComputeBusinessReport() const;

  int64_t revocation_events() const { return evacuation_->revocation_events(); }
  int64_t repatriations() const { return repatriation_->repatriations(); }
  int64_t proactive_migrations() const {
    return repatriation_->proactive_migrations();
  }
  int64_t stateless_respawns() const {
    return evacuation_->stateless_respawns();
  }
  int64_t stagings() const { return evacuation_->stagings(); }
  // VMs whose state was unrecoverable after a platform failure (no backup).
  int64_t vms_lost() const { return evacuation_->vms_lost(); }

  // Human-readable snapshot of the controller's state -- the information the
  // paper's controller keeps in its database (Section 5): every nested VM
  // with its placement, address and backup assignment, every host with its
  // occupancy, and the headline counters.
  std::string DumpState() const;

  // Registers the fleet's telemetry gauges on `ts`: per-state VM counts
  // (fleet.vms.<state>) plus the host pool's fleet/index-shape series.
  // Samplers only read controller state; `ts` must outlive the controller's
  // last sample.
  void RegisterTelemetry(TimeSeriesRecorder& ts);

  // Structural invariants, checked by property tests after arbitrary
  // simulated histories: settled (running/degraded) VMs sit on live hosts
  // that list them, host capacity accounting is consistent, backup streams
  // exist exactly for spot-hosted VMs (when the mechanism needs them), and
  // every settled VM's private address routes to it. Returns true when all
  // hold; otherwise false with a description in `error`.
  bool ValidateInvariants(std::string* error) const;

 private:
  Simulator* sim_;
  NativeCloud* cloud_;
  MarketPlace* markets_;
  ControllerConfig config_;
  ActivityLog activity_log_;
  ControllerEventLog event_log_;
  MigrationEngine engine_;
  BackupPool backup_pool_;
  RevocationStormTracker storms_;
  VirtualPrivateCloud vpc_;
  HostNetworkPlane network_;
  ConnectionTracker connections_;

  IdGenerator<CustomerTag> customer_ids_;
  IdGenerator<NestedVmTag> vm_ids_;
  std::map<CustomerId, std::string> customers_;
  // Per-state fleet population, maintained by NestedVm::set_state through
  // BindStateCounters: RunningVmCount() is O(1) at any fleet size. Declared
  // before vms_ so it outlives the VMs that point into it; cross-checked
  // against a full scan by ValidateInvariants.
  std::array<int64_t, kNumNestedVmStates> vm_state_counts_{};
  // Fleet-scale VM storage: one arena record per VM (no unique_ptr nodes),
  // stable references for in-flight event lambdas, id-order iteration.
  FleetTable<NestedVmTag, NestedVm> vms_;

  // Resolved policy spec + the bidding strategy every component bids
  // through (declared before ctx_/components so it outlives them).
  PolicySpec policy_spec_;
  std::unique_ptr<BidStrategy> bid_strategy_;

  // Shared wiring + the five components (constructed, in this order, after
  // the context above is fully populated; see controller_context.h).
  ControllerContext ctx_;
  std::unique_ptr<HostPoolManager> pool_;
  std::unique_ptr<PlacementEngine> placement_;
  std::unique_ptr<EvacuationCoordinator> evacuation_;
  std::unique_ptr<MarketWatcher> market_watcher_;
  std::unique_ptr<RepatriationScheduler> repatriation_;
};

}  // namespace spotcheck

#endif  // SRC_CORE_CONTROLLER_H_

#include "src/core/host_pool.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/cloud/native_cloud.h"
#include "src/common/log.h"
#include "src/core/controller_config.h"
#include "src/core/evacuation.h"
#include "src/core/placement.h"
#include "src/core/repatriation.h"

namespace spotcheck {

const HostVm* HostPoolManager::GetHost(InstanceId instance) const {
  const auto it = hosts_.find(instance);
  return it == hosts_.end() ? nullptr : it->second.get();
}

HostVm* HostPoolManager::GetMutableHost(InstanceId instance) {
  const auto it = hosts_.find(instance);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::vector<const HostVm*> HostPoolManager::Hosts() const {
  std::vector<const HostVm*> result;
  result.reserve(hosts_.size());
  for (const auto& [id, host] : hosts_) {
    result.push_back(host.get());
  }
  return result;
}

HostVm* HostPoolManager::FindHostWithCapacity(const MarketKey& market,
                                              bool spot,
                                              const NestedVmSpec& spec) {
  const auto& index = spot ? spot_index_ : ondemand_index_;
  const auto bucket = index.find(market);
  if (bucket == index.end()) {
    return nullptr;
  }
  for (InstanceId instance : bucket->second) {
    HostVm& host = *hosts_.at(instance);
    if (!host.CanHost(spec)) {
      continue;
    }
    const Instance* native = ctx_->cloud->GetInstance(instance);
    if (native != nullptr && native->state == InstanceState::kRunning) {
      return &host;
    }
  }
  return nullptr;
}

std::vector<InstanceId> HostPoolManager::SpotHostsIn(
    const MarketKey& market) const {
  const auto bucket = spot_index_.find(market);
  if (bucket == spot_index_.end()) {
    return {};
  }
  return {bucket->second.begin(), bucket->second.end()};
}

void HostPoolManager::AcquireHost(MarketKey market, bool is_spot,
                                  Waiter first_waiter, bool hot_spare) {
  InstanceId instance;
  if (is_spot) {
    instance = ctx_->cloud->RequestSpotInstance(
        market, ctx_->config->bidding.BidFor(market.type),
        [this](InstanceId id, bool ok) { OnHostReady(id, ok); });
  } else {
    instance = ctx_->cloud->RequestOnDemandInstance(
        market, [this](InstanceId id, bool ok) { OnHostReady(id, ok); });
  }
  PendingHost& pending = pending_hosts_[instance];
  pending.market = market;
  pending.is_spot = is_spot;
  pending.is_hot_spare = hot_spare;
  if (ctx_->tracer != nullptr) {
    // Open until OnHostReady; adopts the ambient parent, so an acquisition
    // issued mid-evacuation hangs off that evacuation's root span.
    SpanTracer& tracer = *ctx_->tracer;
    pending.span =
        tracer.Begin(ctx_->Now(), "pool.acquire", "core",
                     tracer.Track("host/" + instance.ToString()));
    tracer.AttrStr(pending.span, "market", market.ToString());
    tracer.AttrNum(pending.span, "spot", is_spot ? 1 : 0);
    if (hot_spare) {
      tracer.AttrNum(pending.span, "hot_spare", 1);
    }
  }
  if (first_waiter.vm.valid()) {
    pending.waiting.push_back(first_waiter);
  }
  if (is_spot && !hot_spare) {
    pending_spot_index_[market].insert(instance);
  }
  if (hot_spare) {
    ++pending_hot_spares_;
  }
}

void HostPoolManager::QueueOrAcquireSpot(const MarketKey& market,
                                         Waiter waiter) {
  const int slots =
      NestedSlotsPerHost(market.type, ctx_->config->nested_type);
  const auto bucket = pending_spot_index_.find(market);
  if (bucket != pending_spot_index_.end()) {
    for (InstanceId instance : bucket->second) {
      PendingHost& pending = pending_hosts_.at(instance);
      if (static_cast<int>(pending.waiting.size()) < slots) {
        pending.waiting.push_back(waiter);
        return;
      }
    }
  }
  AcquireHost(market, /*is_spot=*/true, waiter);
}

void HostPoolManager::OnHostReady(InstanceId instance, bool ok) {
  const auto it = pending_hosts_.find(instance);
  if (it == pending_hosts_.end()) {
    return;
  }
  PendingHost pending = std::move(it->second);
  pending_hosts_.erase(it);
  if (pending.is_spot && !pending.is_hot_spare) {
    pending_spot_index_[pending.market].erase(instance);
  }
  if (pending.is_hot_spare) {
    --pending_hot_spares_;
  }
  TraceAttrNum(ctx_->tracer, pending.span, "ok", ok ? 1 : 0);
  TraceEnd(ctx_->tracer, pending.span, ctx_->Now());

  if (!ok) {
    // A spot request lost the race against a price move (or on-demand
    // capacity ran out): fall back to on-demand for the queued VMs and note
    // the pool for repatriation once prices recover.
    SPOTCHECK_LOG(kInfo) << "host launch failed in "
                         << pending.market.ToString()
                         << ", falling back to on-demand";
    for (const Waiter& waiter : pending.waiting) {
      if (ctx_->FindAliveVm(waiter.vm) == nullptr) {
        continue;
      }
      switch (waiter.intent) {
        case WaitIntent::kInitialPlacement:
          if (pending.is_spot) {
            AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                        waiter);
            if (ctx_->config->enable_repatriation) {
              ctx_->repatriation->EnqueueRepatriation(pending.market,
                                                      waiter.vm);
            }
          } else {
            // Even the on-demand market failed; retry (Section 4.3: some
            // type is always available somewhere -- here, retry until it is).
            AcquireHost(pending.market, /*is_spot=*/false, waiter);
          }
          break;
        case WaitIntent::kEvacuationDestination:
          // The evacuated VM's state is safe on the backup server; keep
          // retrying for a destination (downtime extends meanwhile).
          AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                      waiter);
          break;
        case WaitIntent::kPlannedMove:
          // The planned move's target pool spiked again; requeue for the
          // next price drop.
          ctx_->repatriation->OnPlannedMoveLaunchFailed(
              pending.market, pending.is_spot, waiter.vm);
          break;
      }
    }
    if (pending.is_hot_spare) {
      ReplenishHotSpares();
    }
    return;
  }

  auto host =
      std::make_unique<HostVm>(instance, pending.market, pending.is_spot);
  HostVm& host_ref = *host;
  hosts_[instance] = std::move(host);
  if (pending.is_hot_spare) {
    hot_spare_order_.push_back(instance);
    hot_spare_set_.insert(instance);
  } else {
    CapacityIndex(pending.market, pending.is_spot).insert(instance);
  }
  if (pending.is_spot && ctx_->market_watcher != nullptr) {
    ctx_->market_watcher->Subscribe(pending.market);
  }

  for (const Waiter& waiter : pending.waiting) {
    NestedVm* vm = ctx_->FindAliveVm(waiter.vm);
    if (vm == nullptr) {
      continue;
    }
    switch (waiter.intent) {
      case WaitIntent::kInitialPlacement:
        ctx_->placement->OnInitialPlacementHostReady(*vm, host_ref);
        break;
      case WaitIntent::kPlannedMove:
        ctx_->repatriation->OnPlannedMoveHostReady(*vm, host_ref,
                                                   pending.market,
                                                   pending.is_spot);
        break;
      case WaitIntent::kEvacuationDestination:
        ctx_->evacuation->OnDestinationHostReady(*vm, host_ref);
        break;
    }
  }
  MaybeReleaseHost(instance);  // All waiters may have died meanwhile.
}

void HostPoolManager::MaybeReleaseHost(InstanceId instance) {
  const auto it = hosts_.find(instance);
  if (it == hosts_.end() || !it->second->empty()) {
    return;
  }
  if (hot_spare_set_.contains(instance)) {
    return;  // spares stay up even when idle
  }
  const Instance* native = ctx_->cloud->GetInstance(instance);
  if (native != nullptr && native->state != InstanceState::kTerminated) {
    ctx_->cloud->TerminateInstance(instance);
  }
  CapacityIndex(it->second->market(), it->second->is_spot()).erase(instance);
  hosts_.erase(it);
}

void HostPoolManager::ReplenishHotSpares() {
  const int current =
      static_cast<int>(hot_spare_order_.size()) + pending_hot_spares_;
  for (int i = current; i < ctx_->config->hot_spares; ++i) {
    AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false, Waiter{},
                /*hot_spare=*/true);
  }
}

HostVm* HostPoolManager::PromoteHotSpare(InstanceId instance) {
  const auto it = hosts_.find(instance);
  if (it == hosts_.end()) {
    return nullptr;
  }
  hot_spare_set_.erase(instance);
  hot_spare_order_.erase(
      std::remove(hot_spare_order_.begin(), hot_spare_order_.end(), instance),
      hot_spare_order_.end());
  CapacityIndex(it->second->market(), it->second->is_spot()).insert(instance);
  return it->second.get();
}

std::string HostPoolManager::DumpHosts() const {
  std::string out = "-- hosts --\n";
  char line[256];
  for (const auto& [instance, host] : hosts_) {
    std::snprintf(line, sizeof(line),
                  "%-10s %-20s %-9s vms=%d used=%.0f/%.0fMB\n",
                  instance.ToString().c_str(), host->market().ToString().c_str(),
                  host->is_spot() ? "spot" : "on-demand", host->num_vms(),
                  host->used_mb(), host->capacity_mb());
    out += line;
  }
  return out;
}

bool HostPoolManager::ValidateInvariants(std::string* error) const {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  // Host capacity accounting: used memory equals the sum of resident specs,
  // never exceeds capacity, and no host retains a dead VM (a failed VM may
  // linger only while its evacuation record is still being finalized).
  for (const auto& [instance, host] : hosts_) {
    double used = 0.0;
    for (NestedVmId member : host->vms()) {
      const NestedVm* vm = ctx_->FindVm(member);
      if (vm == nullptr) {
        return fail(instance.ToString() + " lists unknown VM");
      }
      if (!vm->alive() && (ctx_->evacuation == nullptr ||
                           !ctx_->evacuation->IsEvacuating(member))) {
        return fail(instance.ToString() + " retains dead VM " +
                    member.ToString() + " (leaked capacity)");
      }
      used += vm->spec().memory_mb;
    }
    if (std::abs(used - host->used_mb()) > 1e-6) {
      return fail(instance.ToString() + " capacity accounting drifted");
    }
    if (host->used_mb() > host->capacity_mb() + 1e-6) {
      return fail(instance.ToString() + " is over capacity");
    }
    // Index consistency: every host is either a hot spare or indexed for
    // placement under its own market, never both.
    const auto& index = host->is_spot() ? spot_index_ : ondemand_index_;
    const auto bucket = index.find(host->market());
    const bool indexed =
        bucket != index.end() && bucket->second.contains(instance);
    if (indexed == hot_spare_set_.contains(instance)) {
      return fail(instance.ToString() +
                  (indexed ? " indexed while a hot spare"
                           : " missing from its capacity index"));
    }
  }
  // No index entry may outlive its host record.
  for (const auto* index : {&spot_index_, &ondemand_index_}) {
    for (const auto& [market, bucket] : *index) {
      for (InstanceId instance : bucket) {
        const auto it = hosts_.find(instance);
        if (it == hosts_.end() || !(it->second->market() == market)) {
          return fail("capacity index holds stale host " +
                      instance.ToString() + " for " + market.ToString());
        }
      }
    }
  }
  for (const auto& [market, bucket] : pending_spot_index_) {
    for (InstanceId instance : bucket) {
      if (!pending_hosts_.contains(instance)) {
        return fail("pending-spot index holds stale host " +
                    instance.ToString() + " for " + market.ToString());
      }
    }
  }
  if (hot_spare_set_.size() != hot_spare_order_.size()) {
    return fail("hot-spare set and order list drifted");
  }
  return true;
}

}  // namespace spotcheck

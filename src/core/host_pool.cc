#include "src/core/host_pool.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/cloud/native_cloud.h"
#include "src/common/log.h"
#include "src/core/controller_config.h"
#include "src/obs/profiler.h"
#include "src/obs/timeseries.h"
#include "src/core/evacuation.h"
#include "src/core/placement.h"
#include "src/core/repatriation.h"
#include "src/policy/strategy.h"

namespace spotcheck {

const HostVm* HostPoolManager::GetHost(InstanceId instance) const {
  return hosts_.Find(instance);
}

HostVm* HostPoolManager::GetMutableHost(InstanceId instance) {
  return hosts_.Find(instance);
}

std::vector<const HostVm*> HostPoolManager::Hosts() const {
  std::vector<const HostVm*> result;
  result.reserve(hosts_.size());
  hosts_.ForEach(
      [&](InstanceId, const HostVm& host) { result.push_back(&host); });
  return result;
}

double HostPoolManager::PlaceableThresholdMb() const {
  if (placeable_threshold_mb_ < 0.0) {
    placeable_threshold_mb_ =
        NestedVmSpec::ForType(ctx_->config->nested_type).memory_mb;
  }
  return placeable_threshold_mb_;
}

void HostPoolManager::RefreshPlaceable(const HostVm& host) {
  // The single hottest index site: every AddVm/RemoveVm on a pooled host
  // lands here via OnHostOccupancyChanged.
  ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolPlaceableIndex);
  std::set<InstanceId>& bucket =
      PlaceableIndex(host.market(), host.is_spot());
  const bool eligible = !hot_spare_set_.contains(host.instance()) &&
                        host.free_mb() >= PlaceableThresholdMb();
  if (eligible) {
    if (bucket.insert(host.instance()).second) {
      ProfileAdd(ctx_->profiler, ProfileStat::kIndexInserts);
    }
  } else if (bucket.erase(host.instance()) > 0) {
    ProfileAdd(ctx_->profiler, ProfileStat::kIndexErases);
  }
}

void HostPoolManager::OnHostOccupancyChanged(HostVm& host,
                                             double used_delta_mb) {
  total_used_mb_ += used_delta_mb;
  RefreshPlaceable(host);
}

int HostPoolManager::SpotSlots(const MarketKey& market) const {
  return NestedSlotsPerHost(market.type, ctx_->config->nested_type);
}

HostVm* HostPoolManager::FindHostWithCapacity(const MarketKey& market,
                                              bool spot,
                                              const NestedVmSpec& spec) {
  // The placeable sub-index is exact for specs of at least one standard
  // slot: every host that CanHost(spec) then has free_mb >= threshold and
  // so is in the subset, while the hosts the subset omits could not have
  // been selected anyway. Smaller bespoke specs fall back to the full
  // capacity index so sub-threshold headroom is not missed. Both walk in
  // id (= acquisition) order and re-check CanHost plus native state, so
  // the selection is identical to the whole-index scan.
  const bool standard = spec.memory_mb >= PlaceableThresholdMb();
  const auto& index =
      standard ? (spot ? placeable_spot_index_ : placeable_ondemand_index_)
               : (spot ? spot_index_ : ondemand_index_);
  const auto bucket = index.find(market);
  if (bucket == index.end()) {
    return nullptr;
  }
  for (InstanceId instance : bucket->second) {
    HostVm& host = hosts_.At(instance);
    if (!host.CanHost(spec)) {
      continue;
    }
    const Instance* native = ctx_->cloud->GetInstance(instance);
    if (native != nullptr && native->state == InstanceState::kRunning) {
      return &host;
    }
  }
  return nullptr;
}

std::vector<InstanceId> HostPoolManager::SpotHostsIn(
    const MarketKey& market) const {
  const auto bucket = spot_index_.find(market);
  if (bucket == spot_index_.end()) {
    return {};
  }
  return {bucket->second.begin(), bucket->second.end()};
}

void HostPoolManager::AcquireHost(MarketKey market, bool is_spot,
                                  Waiter first_waiter, bool hot_spare) {
  InstanceId instance;
  if (is_spot) {
    instance = ctx_->cloud->RequestSpotInstance(
        market, ctx_->bid->BidFor(market.type),
        [this](InstanceId id, bool ok) { OnHostReady(id, ok); });
  } else {
    instance = ctx_->cloud->RequestOnDemandInstance(
        market, [this](InstanceId id, bool ok) { OnHostReady(id, ok); });
  }
  PendingHost& pending = pending_hosts_[instance];
  pending.market = market;
  pending.is_spot = is_spot;
  pending.is_hot_spare = hot_spare;
  if (ctx_->tracer != nullptr) {
    // Open until OnHostReady; adopts the ambient parent, so an acquisition
    // issued mid-evacuation hangs off that evacuation's root span.
    SpanTracer& tracer = *ctx_->tracer;
    pending.span =
        tracer.Begin(ctx_->Now(), "pool.acquire", "core",
                     tracer.Track("host/" + instance.ToString()));
    tracer.AttrStr(pending.span, "market", market.ToString());
    tracer.AttrNum(pending.span, "spot", is_spot ? 1 : 0);
    if (hot_spare) {
      tracer.AttrNum(pending.span, "hot_spare", 1);
    }
  }
  if (first_waiter.vm.valid()) {
    pending.waiting.push_back(first_waiter);
    ++num_waiting_vms_;
  }
  if (is_spot && !hot_spare) {
    ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolPendingJoin);
    pending_spot_index_[market].insert(instance);
    ProfileAdd(ctx_->profiler, ProfileStat::kIndexInserts);
    if (static_cast<int>(pending.waiting.size()) < SpotSlots(market)) {
      joinable_spot_index_[market].insert(instance);
      ProfileAdd(ctx_->profiler, ProfileStat::kIndexInserts);
    }
  }
  if (hot_spare) {
    ++pending_hot_spares_;
  }
}

void HostPoolManager::QueueOrAcquireSpot(const MarketKey& market,
                                         Waiter waiter) {
  // The joinable subset holds exactly the pending spot hosts of `market`
  // that still have a free nested slot. Waiters never leave a pending host
  // before it resolves, so fullness is monotone and the subset's minimum
  // id is the host the old first-with-room scan over every pending
  // acquisition would have picked.
  const auto bucket = joinable_spot_index_.find(market);
  if (bucket != joinable_spot_index_.end() && !bucket->second.empty()) {
    ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolPendingJoin);
    const InstanceId instance = *bucket->second.begin();
    PendingHost& pending = pending_hosts_.at(instance);
    pending.waiting.push_back(waiter);
    ++num_waiting_vms_;
    if (static_cast<int>(pending.waiting.size()) >= SpotSlots(market)) {
      bucket->second.erase(bucket->second.begin());
      ProfileAdd(ctx_->profiler, ProfileStat::kIndexErases);
    }
    return;
  }
  AcquireHost(market, /*is_spot=*/true, waiter);
}

void HostPoolManager::OnHostReady(InstanceId instance, bool ok) {
  const auto it = pending_hosts_.find(instance);
  if (it == pending_hosts_.end()) {
    return;
  }
  PendingHost pending = std::move(it->second);
  pending_hosts_.erase(it);
  num_waiting_vms_ -= pending.waiting.size();
  if (pending.is_spot && !pending.is_hot_spare) {
    ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolPendingJoin);
    ProfileAdd(ctx_->profiler, ProfileStat::kIndexErases,
               static_cast<int64_t>(
                   pending_spot_index_[pending.market].erase(instance) +
                   joinable_spot_index_[pending.market].erase(instance)));
  }
  if (pending.is_hot_spare) {
    --pending_hot_spares_;
  }
  TraceAttrNum(ctx_->tracer, pending.span, "ok", ok ? 1 : 0);
  TraceEnd(ctx_->tracer, pending.span, ctx_->Now());

  if (!ok) {
    // A spot request lost the race against a price move (or on-demand
    // capacity ran out): fall back to on-demand for the queued VMs and note
    // the pool for repatriation once prices recover.
    SPOTCHECK_LOG(kInfo) << "host launch failed in "
                         << pending.market.ToString()
                         << ", falling back to on-demand";
    for (const Waiter& waiter : pending.waiting) {
      if (ctx_->FindAliveVm(waiter.vm) == nullptr) {
        continue;
      }
      switch (waiter.intent) {
        case WaitIntent::kInitialPlacement:
          if (pending.is_spot) {
            AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                        waiter);
            if (ctx_->config->enable_repatriation) {
              ctx_->repatriation->EnqueueRepatriation(pending.market,
                                                      waiter.vm);
            }
          } else {
            // Even the on-demand market failed; retry (Section 4.3: some
            // type is always available somewhere -- here, retry until it is).
            AcquireHost(pending.market, /*is_spot=*/false, waiter);
          }
          break;
        case WaitIntent::kEvacuationDestination:
          // The evacuated VM's state is safe on the backup server; keep
          // retrying for a destination (downtime extends meanwhile).
          AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false,
                      waiter);
          break;
        case WaitIntent::kPlannedMove:
          // The planned move's target pool spiked again; requeue for the
          // next price drop.
          ctx_->repatriation->OnPlannedMoveLaunchFailed(
              pending.market, pending.is_spot, waiter.vm);
          break;
      }
    }
    if (pending.is_hot_spare) {
      ReplenishHotSpares();
    }
    return;
  }

  HostVm& host_ref =
      hosts_.Emplace(instance, instance, pending.market, pending.is_spot);
  host_ref.set_occupancy_listener(this);
  total_capacity_mb_ += host_ref.capacity_mb();
  if (pending.is_hot_spare) {
    hot_spare_order_.push_back(instance);
    hot_spare_set_.insert(instance);
  } else {
    ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolCapacityIndex);
    CapacityIndex(pending.market, pending.is_spot).insert(instance);
    ProfileAdd(ctx_->profiler, ProfileStat::kIndexInserts);
    RefreshPlaceable(host_ref);
  }
  if (pending.is_spot && ctx_->market_watcher != nullptr) {
    ctx_->market_watcher->Subscribe(pending.market);
  }

  for (const Waiter& waiter : pending.waiting) {
    NestedVm* vm = ctx_->FindAliveVm(waiter.vm);
    if (vm == nullptr) {
      continue;
    }
    switch (waiter.intent) {
      case WaitIntent::kInitialPlacement:
        ctx_->placement->OnInitialPlacementHostReady(*vm, host_ref);
        break;
      case WaitIntent::kPlannedMove:
        ctx_->repatriation->OnPlannedMoveHostReady(*vm, host_ref,
                                                   pending.market,
                                                   pending.is_spot);
        break;
      case WaitIntent::kEvacuationDestination:
        ctx_->evacuation->OnDestinationHostReady(*vm, host_ref);
        break;
    }
  }
  MaybeReleaseHost(instance);  // All waiters may have died meanwhile.
}

void HostPoolManager::MaybeReleaseHost(InstanceId instance) {
  HostVm* host = hosts_.Find(instance);
  if (host == nullptr || !host->empty()) {
    return;
  }
  if (hot_spare_set_.contains(instance)) {
    return;  // spares stay up even when idle
  }
  const Instance* native = ctx_->cloud->GetInstance(instance);
  if (native != nullptr && native->state != InstanceState::kTerminated) {
    ctx_->cloud->TerminateInstance(instance);
  }
  {
    ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolCapacityIndex);
    ProfileAdd(
        ctx_->profiler, ProfileStat::kIndexErases,
        static_cast<int64_t>(
            CapacityIndex(host->market(), host->is_spot()).erase(instance) +
            PlaceableIndex(host->market(), host->is_spot()).erase(instance)));
  }
  total_capacity_mb_ -= host->capacity_mb();
  total_used_mb_ -= host->used_mb();
  hosts_.Erase(instance);
}

void HostPoolManager::ReplenishHotSpares() {
  const int current =
      static_cast<int>(hot_spare_order_.size()) + pending_hot_spares_;
  for (int i = current; i < ctx_->config->hot_spares; ++i) {
    AcquireHost(ctx_->FallbackOnDemandMarket(), /*is_spot=*/false, Waiter{},
                /*hot_spare=*/true);
  }
}

HostVm* HostPoolManager::PromoteHotSpare(InstanceId instance) {
  HostVm* host = hosts_.Find(instance);
  if (host == nullptr) {
    return nullptr;
  }
  hot_spare_set_.erase(instance);
  hot_spare_order_.erase(
      std::remove(hot_spare_order_.begin(), hot_spare_order_.end(), instance),
      hot_spare_order_.end());
  {
    ProfileScope scope(ctx_->profiler, ProfileCategory::kPoolCapacityIndex);
    CapacityIndex(host->market(), host->is_spot()).insert(instance);
    ProfileAdd(ctx_->profiler, ProfileStat::kIndexInserts);
  }
  RefreshPlaceable(*host);
  return host;
}

void HostPoolManager::RegisterTelemetry(TimeSeriesRecorder& ts) {
  ts.AddSeries("pool.hosts",
               [this] { return static_cast<double>(hosts_.size()); });
  ts.AddSeries("pool.pending_hosts",
               [this] { return static_cast<double>(pending_hosts_.size()); });
  ts.AddSeries("pool.capacity_mb", [this] { return total_capacity_mb_; });
  ts.AddSeries("pool.used_mb", [this] { return total_used_mb_; });
  ts.AddSeries("pool.waiting_vms",
               [this] { return static_cast<double>(num_waiting_vms_); });
  // Index entry totals: the fleet-scale suspects. Each sampler sums one
  // index family across markets (market count is small and fixed).
  const auto entries = [](const std::map<MarketKey, std::set<InstanceId>>& m) {
    size_t n = 0;
    for (const auto& [market, bucket] : m) {
      n += bucket.size();
    }
    return static_cast<double>(n);
  };
  ts.AddSeries("pool.index.capacity_entries", [this, entries] {
    return entries(spot_index_) + entries(ondemand_index_);
  });
  ts.AddSeries("pool.index.placeable_entries", [this, entries] {
    return entries(placeable_spot_index_) + entries(placeable_ondemand_index_);
  });
  ts.AddSeries("pool.index.pending_entries", [this, entries] {
    return entries(pending_spot_index_) + entries(joinable_spot_index_);
  });
}

std::string HostPoolManager::DumpHosts() const {
  std::string out = "-- hosts --\n";
  char line[256];
  hosts_.ForEach([&](InstanceId instance, const HostVm& host) {
    std::snprintf(line, sizeof(line),
                  "%-10s %-20s %-9s vms=%d used=%.0f/%.0fMB\n",
                  instance.ToString().c_str(), host.market().ToString().c_str(),
                  host.is_spot() ? "spot" : "on-demand", host.num_vms(),
                  host.used_mb(), host.capacity_mb());
    out += line;
  });
  return out;
}

bool HostPoolManager::ValidateInvariants(std::string* error) const {
  std::string failure;
  const auto fail = [&failure](std::string message) {
    if (failure.empty()) {
      failure = std::move(message);
    }
  };
  const double threshold = PlaceableThresholdMb();
  // Host capacity accounting: used memory equals the sum of resident specs,
  // never exceeds capacity, and no host retains a dead VM (a failed VM may
  // linger only while its evacuation record is still being finalized).
  // The same pass tallies the fleet aggregates for the drift checks below.
  double scanned_capacity = 0.0;
  double scanned_used = 0.0;
  hosts_.ForEach([&](InstanceId instance, const HostVm& host) {
    scanned_capacity += host.capacity_mb();
    scanned_used += host.used_mb();
    if (!failure.empty()) {
      return;
    }
    double used = 0.0;
    for (NestedVmId member : host.vms()) {
      const NestedVm* vm = ctx_->FindVm(member);
      if (vm == nullptr) {
        return fail(instance.ToString() + " lists unknown VM");
      }
      if (!vm->alive() && (ctx_->evacuation == nullptr ||
                           !ctx_->evacuation->IsEvacuating(member))) {
        return fail(instance.ToString() + " retains dead VM " +
                    member.ToString() + " (leaked capacity)");
      }
      used += vm->spec().memory_mb;
    }
    if (std::abs(used - host.used_mb()) > 1e-6) {
      return fail(instance.ToString() + " capacity accounting drifted");
    }
    if (host.used_mb() > host.capacity_mb() + 1e-6) {
      return fail(instance.ToString() + " is over capacity");
    }
    // Index consistency: every host is either a hot spare or indexed for
    // placement under its own market, never both.
    const auto& index = host.is_spot() ? spot_index_ : ondemand_index_;
    const auto bucket = index.find(host.market());
    const bool indexed =
        bucket != index.end() && bucket->second.contains(instance);
    if (indexed == hot_spare_set_.contains(instance)) {
      return fail(instance.ToString() +
                  (indexed ? " indexed while a hot spare"
                           : " missing from its capacity index"));
    }
    // The placeable sub-index holds exactly the indexed hosts with at
    // least one standard nested slot free.
    const auto& pindex =
        host.is_spot() ? placeable_spot_index_ : placeable_ondemand_index_;
    const auto pbucket = pindex.find(host.market());
    const bool placeable =
        pbucket != pindex.end() && pbucket->second.contains(instance);
    if (placeable != (indexed && host.free_mb() >= threshold)) {
      return fail(instance.ToString() +
                  (placeable ? " placeable without a free standard slot"
                             : " missing from the placeable sub-index"));
    }
  });
  if (failure.empty()) {
    // No index entry may outlive its host record.
    for (const auto* index : {&spot_index_, &ondemand_index_,
                              &placeable_spot_index_,
                              &placeable_ondemand_index_}) {
      for (const auto& [market, bucket] : *index) {
        for (InstanceId instance : bucket) {
          const HostVm* host = hosts_.Find(instance);
          if (host == nullptr || !(host->market() == market)) {
            fail("capacity index holds stale host " + instance.ToString() +
                 " for " + market.ToString());
          }
        }
      }
    }
    for (const auto& [market, bucket] : pending_spot_index_) {
      const int slots = SpotSlots(market);
      const auto jbucket = joinable_spot_index_.find(market);
      for (InstanceId instance : bucket) {
        const auto pit = pending_hosts_.find(instance);
        if (pit == pending_hosts_.end()) {
          fail("pending-spot index holds stale host " + instance.ToString() +
               " for " + market.ToString());
          continue;
        }
        // The joinable subset mirrors room: in iff a nested slot is free.
        const bool has_room =
            static_cast<int>(pit->second.waiting.size()) < slots;
        const bool joinable = jbucket != joinable_spot_index_.end() &&
                              jbucket->second.contains(instance);
        if (has_room != joinable) {
          fail(instance.ToString() +
               (joinable ? " joinable while full"
                         : " has room but is not joinable"));
        }
      }
    }
    for (const auto& [market, bucket] : joinable_spot_index_) {
      const auto pit = pending_spot_index_.find(market);
      for (InstanceId instance : bucket) {
        if (pit == pending_spot_index_.end() ||
            !pit->second.contains(instance)) {
          fail("joinable-spot index holds stale host " + instance.ToString() +
               " for " + market.ToString());
        }
      }
    }
    if (hot_spare_set_.size() != hot_spare_order_.size()) {
      fail("hot-spare set and order list drifted");
    }
    // O(1) aggregates vs. the full scans (relative tolerance: the sums are
    // accumulated in different orders).
    const auto drifted = [](double incremental, double scanned) {
      return std::abs(incremental - scanned) >
             1e-6 * std::max(1.0, std::abs(scanned));
    };
    if (drifted(total_capacity_mb_, scanned_capacity)) {
      fail("fleet capacity aggregate drifted from a full scan");
    }
    if (drifted(total_used_mb_, scanned_used)) {
      fail("fleet used-memory aggregate drifted from a full scan");
    }
    size_t waiting = 0;
    for (const auto& [instance, pending] : pending_hosts_) {
      waiting += pending.waiting.size();
    }
    if (waiting != num_waiting_vms_) {
      fail("waiter aggregate drifted from a full scan");
    }
  }
  if (!failure.empty()) {
    if (error != nullptr) {
      *error = std::move(failure);
    }
    return false;
  }
  return true;
}

}  // namespace spotcheck

// Parallel policy-evaluation grid runner.
//
// The paper's headline figures (10-12, Table 3) are grids of independent
// six-month simulations: one cell per (mapping policy, migration mechanism)
// pair. Cells share no mutable state -- each owns its Simulator, MarketPlace,
// controller, and RNG streams; the only cross-cell structure is the
// process-wide TraceCatalog, which memoizes immutable price traces -- so the
// grid is embarrassingly parallel and results are bit-identical to a serial
// run regardless of worker count or scheduling order.

#ifndef SRC_CORE_PARALLEL_EVALUATION_H_
#define SRC_CORE_PARALLEL_EVALUATION_H_

#include <vector>

#include "src/core/evaluation.h"

namespace spotcheck {

class SpanTracer;

// Resolves a worker count: `jobs` if positive, else the SPOTCHECK_JOBS
// environment variable if set to a positive integer, else
// std::thread::hardware_concurrency() (at least 1).
int ResolveEvaluationJobs(int jobs = 0);

struct GridRunOptions {
  // Worker count; 0 = SPOTCHECK_JOBS env, then hardware concurrency.
  int jobs = 0;
  // When non-null, the pool profiles ITSELF: each worker records one
  // wall-clock "grid.cell" span (category "grid", track "grid/worker-N",
  // microseconds since the grid started, tagged with the cell index and
  // report label) per cell it ran. This is the before/after evidence for
  // worker-scaling work -- gaps between spans are queue starvation, unequal
  // track lengths are imbalance. The tracer is accessed under an internal
  // mutex after each cell completes (SpanTracer itself is single-threaded)
  // and is purely observational: results are bit-identical with or without
  // it. Must outlive the call.
  SpanTracer* worker_tracer = nullptr;
};

// Runs one evaluation per config on a pool of ResolveEvaluationJobs(jobs)
// worker threads and returns the results in config order. With one worker
// (or one config) it runs inline on the calling thread. If a cell throws,
// the remaining cells still complete and the first exception is rethrown.
std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, int jobs = 0);
std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, const GridRunOptions& options);

}  // namespace spotcheck

#endif  // SRC_CORE_PARALLEL_EVALUATION_H_

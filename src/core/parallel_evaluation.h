// Parallel policy-evaluation grid runner.
//
// The paper's headline figures (10-12, Table 3) are grids of independent
// six-month simulations: one cell per (mapping policy, migration mechanism)
// pair. Cells share no mutable state -- each owns its Simulator, MarketPlace,
// controller, and RNG streams; the only cross-cell structure is the
// process-wide TraceCatalog, which memoizes immutable price traces -- so the
// grid is embarrassingly parallel and results are bit-identical to a serial
// run regardless of worker count or scheduling order.
//
// Scaling contract (DESIGN.md section 13): the pool itself must never
// serialize its workers. Shared traces are pre-warmed once on the calling
// thread before any worker spawns (no cold-start single-flight convoy),
// worker-profile spans are buffered per worker and merged after join (no
// tracer mutex on the cell path), and all per-worker state lives in
// cache-line-padded slots (no false sharing). Each run can emit a
// per-worker contention report so a regression names its bottleneck.

#ifndef SRC_CORE_PARALLEL_EVALUATION_H_
#define SRC_CORE_PARALLEL_EVALUATION_H_

#include <vector>

#include "src/core/evaluation.h"

namespace spotcheck {

class SpanTracer;
struct GridContentionReport;  // src/obs/grid_summary.h

// Resolves a worker count: `jobs` if positive, else the SPOTCHECK_JOBS
// environment variable if set to a positive integer, else
// std::thread::hardware_concurrency() (at least 1).
int ResolveEvaluationJobs(int jobs = 0);

// The pure resolution rule behind ResolveEvaluationJobs, parameterized on
// its environment so tests can cover every branch: `env` stands in for
// getenv("SPOTCHECK_JOBS") (null = unset) and `hardware` for
// hardware_concurrency(). hardware == 0 ("unknown", a value the standard
// explicitly allows) falls back to 1 worker -- serial, never oversubscribed.
int ResolveEvaluationJobsFor(int jobs, const char* env, unsigned hardware);

struct GridRunOptions {
  // Worker count; 0 = SPOTCHECK_JOBS env, then hardware concurrency. The
  // pool never spawns more threads than there are cells.
  int jobs = 0;
  // When non-null, the pool profiles ITSELF: each worker records one
  // wall-clock "grid.cell" span (category "grid", track "grid/worker-N"
  // tagged TraceClock::kWall, microseconds since the grid started, with the
  // cell index and report label) per cell it ran. This is the before/after
  // evidence for worker-scaling work -- gaps between spans are queue
  // starvation, unequal track lengths are imbalance. Spans are buffered in
  // each worker's padded slot and merged into the tracer once, after every
  // worker has joined (the tracer is never touched concurrently). Purely
  // observational: results are bit-identical with or without it. Must
  // outlive the call.
  SpanTracer* worker_tracer = nullptr;
  // Generate every trace the cells will need once, on the calling thread,
  // before spawning workers. Without this a cold multi-worker grid starts
  // with every worker blocked on the single-flight generation of the same
  // (market, horizon, seed) traces. Has no effect on results (catalog
  // traces are deterministic per key); only on who generates when.
  bool prewarm_traces = true;
  // When non-null, receives the per-worker contention breakdown (cells,
  // busy/report-build time, catalog hits/misses/lock-wait) plus the grid's
  // one-time costs. Must outlive the call.
  GridContentionReport* contention = nullptr;
};

// Runs one evaluation per config on a pool of min(ResolveEvaluationJobs(jobs),
// configs.size()) worker threads and returns the results in config order.
// With one worker (or one config) it runs inline on the calling thread. If a
// cell throws, the remaining cells still complete and the first exception is
// rethrown.
std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, int jobs = 0);
std::vector<EvaluationResult> RunPolicyEvaluationGrid(
    const std::vector<EvaluationConfig>& configs, const GridRunOptions& options);

}  // namespace spotcheck

#endif  // SRC_CORE_PARALLEL_EVALUATION_H_

// Configuration for the SpotCheck controller and its components.
//
// Split out of controller.h so the layered components (host_pool, placement,
// evacuation, repatriation) can depend on the configuration surface without
// pulling in the facade.

#ifndef SRC_CORE_CONTROLLER_CONFIG_H_
#define SRC_CORE_CONTROLLER_CONFIG_H_

#include <cstdint>
#include <optional>

#include "src/backup/backup_pool.h"
#include "src/core/bidding_policy.h"
#include "src/core/mapping_policy.h"
#include "src/market/instance_types.h"
#include "src/market/revocation_predictor.h"
#include "src/obs/metrics.h"
#include "src/policy/policy_spec.h"
#include "src/virt/migration_engine.h"
#include "src/workload/workload_model.h"

namespace spotcheck {

class EventCostProfiler;

struct ControllerConfig {
  MappingPolicyKind mapping = MappingPolicyKind::k1PM;
  MigrationMechanism mechanism = MigrationMechanism::kSpotCheckLazyRestore;
  BiddingPolicy bidding = BiddingPolicy::OnDemand();
  // Strategy-layer policy selection (DESIGN.md section 15). When set, it
  // overrides `mapping` and `bidding` wholesale: the controller instantiates
  // both strategies from this spec via the PolicyRegistry. When unset, the
  // legacy enums above are translated to the equivalent spec -- existing
  // configs behave bit-identically. Specs from user input should come
  // through PolicySpec::Parse so they are registry-validated.
  std::optional<PolicySpec> policy_spec;
  // The server type customers request (the paper's default: the smallest
  // HVM-capable type).
  InstanceType nested_type = InstanceType::kM3Medium;
  WorkloadProfile workload = TpcwProfile();
  AvailabilityZone zone{0};
  // Pools are spread across this many zones starting at `zone` (Section 4.2:
  // policies operate across types and availability zones within a region).
  int num_zones = 1;
  // Allocation dynamics: migrate back to spot when the price spike abates.
  bool enable_repatriation = true;
  // Proactive live migration off spot before revocation (requires k>1 bids).
  bool enable_proactive = false;
  // Predictive migration (Section 3.2): drain a pool with live migrations as
  // soon as its price level/velocity signals an imminent spike -- even
  // before the price crosses the on-demand level. False alarms cost a round
  // trip of live migrations; hits avoid the bounded-time downtime entirely.
  bool enable_predictive = false;
  PredictorConfig predictor;
  // Idle on-demand hosts kept ready to absorb revocation storms.
  int hot_spares = 0;
  // On a revocation, park evacuated VMs on under-utilized spot hosts in
  // other, currently-stable pools while the real destination launches
  // (Section 4.3's staging-server alternative to hot spares). Costs nothing
  // when idle, but doubles the number of migrations per revocation.
  bool use_staging = false;
  BackupPoolConfig backup;
  MigrationEngineConfig engine;
  // What SpotCheck charges its customers, as a fraction of the equivalent
  // on-demand price. The derivative cloud's margin is this revenue minus its
  // own spot/on-demand/backup spend; downtime is not billed.
  double resale_fraction_of_on_demand = 0.6;
  uint64_t seed = 7;
  // Whether the controller appends to its structured event timeline.
  // Observational only (reports/CSVs, never control flow); fleet-scale
  // benchmarks turn it off so a million placements do not accumulate an
  // unbounded event vector.
  bool collect_event_log = true;
  // Optional observability registry. Shared with the MigrationEngine and
  // BackupPool the controller owns; must outlive the controller. Purely
  // observational: simulation results are identical with or without it.
  MetricsRegistry* metrics = nullptr;
  // Optional span tracer, under the same contract: shared with the owned
  // MigrationEngine/BackupPool, must outlive the controller, and never
  // affects simulation results.
  SpanTracer* tracer = nullptr;
  // Optional event-cost profiler, same contract again: nullable, outlives
  // the controller, purely observational (wall-clock reads only). Records
  // per-market index churn in the host pool.
  EventCostProfiler* profiler = nullptr;
};

}  // namespace spotcheck

#endif  // SRC_CORE_CONTROLLER_CONFIG_H_

// Shared wiring for the controller's layered components.
//
// The SpotCheck controller is five cohesive components -- HostPoolManager,
// PlacementEngine, EvacuationCoordinator, MarketWatcher and
// RepatriationScheduler -- behind a thin SpotCheckController facade. They
// collaborate through this context instead of through each other's
// constructors, which keeps every component independently constructible
// (unit tests build just the subset they exercise) and keeps the facade in
// charge of ownership.
//
// Contract:
//   * The facade (or a test) owns everything the context points to and
//     guarantees it outlives every component.
//   * Platform handles (sim/cloud/markets/config) and the facade-owned
//     bookkeeping (logs, engine, backup pool, network planes, VM table) are
//     set before any component is constructed.
//   * Component pointers are wired immediately after each component is
//     constructed and never reseated. Components must not call each other
//     from their constructors.
//   * `metrics`, and in component tests any component pointer a code path
//     does not reach, may be null.

#ifndef SRC_CORE_CONTROLLER_CONTEXT_H_
#define SRC_CORE_CONTROLLER_CONTEXT_H_

#include "src/common/fleet_store.h"
#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"
#include "src/virt/nested_vm.h"

namespace spotcheck {

class Simulator;
class NativeCloud;
class MarketPlace;
struct ControllerConfig;
class EventCostProfiler;
class MetricsRegistry;
class SpanTracer;
class ActivityLog;
class ControllerEventLog;
class MigrationEngine;
class BackupPool;
class RevocationStormTracker;
class VirtualPrivateCloud;
class HostNetworkPlane;
class ConnectionTracker;
class HostPoolManager;
class PlacementEngine;
class EvacuationCoordinator;
class MarketWatcher;
class RepatriationScheduler;
class BidStrategy;

struct ControllerContext {
  // Platform handles (caller-owned).
  Simulator* sim = nullptr;
  NativeCloud* cloud = nullptr;
  MarketPlace* markets = nullptr;
  const ControllerConfig* config = nullptr;
  MetricsRegistry* metrics = nullptr;  // nullable
  SpanTracer* tracer = nullptr;        // nullable
  // Sampled event-cost profiler (nullable): index-churn hook sites in the
  // pool record per-market set traffic through it. Wall-clock reads only,
  // never sim state -- results are bit-identical with or without it.
  EventCostProfiler* profiler = nullptr;
  // The resolved bidding strategy (facade-owned, set before any component is
  // constructed): every bid the components place and every proactive-window
  // decision goes through it, never through config->bidding directly.
  BidStrategy* bid = nullptr;

  // Facade-owned bookkeeping shared by every component.
  ActivityLog* activity_log = nullptr;
  ControllerEventLog* event_log = nullptr;
  MigrationEngine* engine = nullptr;
  BackupPool* backup_pool = nullptr;
  RevocationStormTracker* storms = nullptr;
  VirtualPrivateCloud* vpc = nullptr;
  HostNetworkPlane* network = nullptr;
  ConnectionTracker* connections = nullptr;
  // Fleet-scale VM table: arena-stored records with stable references (the
  // components capture NestedVm& in event lambdas) and O(1) id lookups.
  FleetTable<NestedVmTag, NestedVm>* vms = nullptr;

  // The components, wired by the facade right after construction.
  HostPoolManager* pool = nullptr;
  PlacementEngine* placement = nullptr;
  EvacuationCoordinator* evacuation = nullptr;
  MarketWatcher* market_watcher = nullptr;
  RepatriationScheduler* repatriation = nullptr;

  SimTime Now() const;
  // Null when the VM is unknown (FindVm) or unknown/dead (FindAliveVm).
  NestedVm* FindVm(NestedVmId id) const;
  NestedVm* FindAliveVm(NestedVmId id) const;
  // First zone (from config.zone, spanning num_zones) the platform can still
  // launch into; falls back to the primary zone when all are down.
  AvailabilityZone PickAvailableZone() const;
  // The customers' market in the primary zone (event-log default).
  MarketKey DefaultMarket() const;
  // Where emergency on-demand capacity is requested: the customers' type in
  // the first available zone.
  MarketKey FallbackOnDemandMarket() const;
  // Market of `host` when its record exists, else DefaultMarket().
  MarketKey MarketOfOrDefault(InstanceId host) const;
};

}  // namespace spotcheck

#endif  // SRC_CORE_CONTROLLER_CONTEXT_H_

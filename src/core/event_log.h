// Structured controller event timeline.
//
// Operating a derivative cloud means explaining, after the fact, why a VM
// moved at 03:12 and what it cost. The controller appends one structured
// event per decision -- placements, warnings, drains, evacuations,
// repatriations, recoveries, losses -- queryable by VM or kind and
// exportable as CSV for offline analysis.

#ifndef SRC_CORE_EVENT_LOG_H_
#define SRC_CORE_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/market/instance_types.h"

namespace spotcheck {

enum class ControllerEventKind : uint8_t {
  kVmRequested,
  kVmPlaced,
  kRevocationWarning,
  kEvacuationStarted,
  kEvacuationCompleted,
  kProactiveDrain,
  kRepatriationStarted,
  kRepatriationCompleted,
  kStatelessRespawn,
  kCrashRecovery,
  kVmLost,
  kVmReleased,
};

std::string_view ControllerEventKindName(ControllerEventKind kind);

struct ControllerEvent {
  SimTime time;
  ControllerEventKind kind;
  NestedVmId vm;          // invalid when the event is host-scoped
  InstanceId host;        // invalid when not applicable
  MarketKey market;       // the pool involved
  std::string detail;     // free-form context ("dest=od", "downtime=23.1s")
};

class ControllerEventLog {
 public:
  void Record(SimTime time, ControllerEventKind kind, NestedVmId vm,
              InstanceId host, MarketKey market, std::string detail = {});

  const std::vector<ControllerEvent>& events() const { return events_; }
  int64_t CountOf(ControllerEventKind kind) const;
  std::vector<const ControllerEvent*> ForVm(NestedVmId vm) const;

  // The timeline is observational (reports and CSVs, never control flow);
  // fleet-scale runs disable it so a million placements do not accumulate
  // an unbounded event vector. Disabling drops future Records only.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // "time_s,kind,vm,host,market,detail" rows with a header.
  std::string ToCsv() const;

 private:
  bool enabled_ = true;
  std::vector<ControllerEvent> events_;
};

}  // namespace spotcheck

#endif  // SRC_CORE_EVENT_LOG_H_

// Statistics utilities used by market analytics, the evaluation harness, and
// tests: streaming moments (Welford), empirical CDFs / quantiles, fixed-bin
// histograms, and Pearson correlation.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace spotcheck {

// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void Add(double x);
  void Merge(const StreamingStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores all samples; answers quantile and CDF queries exactly. Suitable for
// the sample counts in this project (up to a few million doubles).
class EmpiricalDistribution {
 public:
  void Add(double x);
  void AddAll(std::span<const double> xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // q in [0, 1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double Min() const { return Quantile(0.0); }
  double Max() const { return Quantile(1.0); }
  double Mean() const;

  // Fraction of samples <= x.
  double CdfAt(double x) const;

  // Evenly spaced (x, F(x)) points for printing a CDF series.
  struct CdfPoint {
    double x;
    double cdf;
  };
  std::vector<CdfPoint> CdfSeries(size_t points) const;

  std::span<const double> samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  int64_t bin_count(size_t bin) const { return counts_[bin]; }
  size_t num_bins() const { return counts_.size(); }
  int64_t total() const { return total_; }
  double BinCenter(size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

// Pearson correlation coefficient of two equal-length series.
// Returns 0 when either series has zero variance or lengths mismatch.
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// Pairwise correlation matrix of `series`; result[i][j] in [-1, 1].
std::vector<std::vector<double>> CorrelationMatrix(
    const std::vector<std::vector<double>>& series);

}  // namespace spotcheck

#endif  // SRC_COMMON_STATS_H_

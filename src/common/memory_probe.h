// Process-memory probes shared by benchmarks and the telemetry recorder.
//
// Both readings are observational wall-side facts about the process -- they
// never feed simulation state -- and both degrade to 0 on platforms without
// /proc or getrusage, so callers can emit them unconditionally.

#ifndef SRC_COMMON_MEMORY_PROBE_H_
#define SRC_COMMON_MEMORY_PROBE_H_

#include <cstdint>

namespace spotcheck {

// Current resident set in bytes, from /proc/self/statm (0 where /proc is
// unavailable). Cheap enough to sample periodically: one small read of an
// always-hot pseudo-file.
int64_t CurrentRssBytes();

// Lifetime peak resident set in bytes, from getrusage (0 where unavailable).
int64_t PeakRssBytes();

}  // namespace spotcheck

#endif  // SRC_COMMON_MEMORY_PROBE_H_

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace spotcheck {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void EmpiricalDistribution::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalDistribution::AddAll(std::span<const double> xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalDistribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDistribution::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::CdfAt(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<EmpiricalDistribution::CdfPoint> EmpiricalDistribution::CdfSeries(
    size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1 > 0 ? points - 1 : 1);
    out.push_back({x, CdfAt(x)});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<int64_t>((x - lo_) / width);
  bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

double Histogram::BinCenter(size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(xs.size());
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::vector<double>> CorrelationMatrix(
    const std::vector<std::vector<double>>& series) {
  const size_t n = series.size();
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    m[i][i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      const double r = PearsonCorrelation(series[i], series[j]);
      m[i][j] = r;
      m[j][i] = r;
    }
  }
  return m;
}

}  // namespace spotcheck

#include "src/common/flags.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace spotcheck {

namespace {

[[noreturn]] void DieInvalidFlag(const std::string& name,
                                 const std::string& value,
                                 const char* expected) {
  std::fprintf(stderr, "error: invalid value for --%s: \"%s\" (expected %s)\n",
               name.c_str(), value.c_str(), expected);
  std::exit(2);
}

std::string AsciiLower(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

}  // namespace

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  Parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

void FlagParser::Parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (body.rfind("no-", 0) == 0) {
      flags_[body.substr(3)] = "false";
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      flags_[body] = args[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  std::string default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::move(default_value) : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  const char* text = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    DieInvalidFlag(name, it->second, "an integer");
  }
  if (errno == ERANGE) {
    DieInvalidFlag(name, it->second, "an integer in int64 range");
  }
  return parsed;
}

double FlagParser::GetDouble(const std::string& name, double default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  const char* text = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    DieInvalidFlag(name, it->second, "a number");
  }
  if (errno == ERANGE) {
    DieInvalidFlag(name, it->second, "a number in double range");
  }
  return parsed;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  const std::string value = AsciiLower(it->second);
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  DieInvalidFlag(name, it->second,
                 "a boolean: true/false, 1/0, yes/no, on/off");
}

std::vector<std::string> FlagParser::UnconsumedFlags() const {
  std::vector<std::string> unconsumed;
  for (const auto& [name, value] : flags_) {
    if (!consumed_.contains(name)) {
      unconsumed.push_back(name);
    }
  }
  return unconsumed;
}

void FlagParser::ExitIfUnknownFlags(const std::string& supported) const {
  const std::vector<std::string> unknown = UnconsumedFlags();
  if (unknown.empty()) {
    return;
  }
  for (const std::string& flag : unknown) {
    std::fprintf(stderr, "error: unknown flag --%s\n", flag.c_str());
  }
  if (!supported.empty()) {
    std::fprintf(stderr, "supported flags: %s\n", supported.c_str());
  }
  std::exit(2);
}

}  // namespace spotcheck

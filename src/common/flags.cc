#include "src/common/flags.h"

#include <cstdlib>

namespace spotcheck {

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  Parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

void FlagParser::Parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (body.rfind("no-", 0) == 0) {
      flags_[body.substr(3)] = "false";
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean.
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      flags_[body] = args[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  std::string default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::move(default_value) : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  consumed_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return default_value;
  }
  return !(it->second == "false" || it->second == "0" || it->second == "no");
}

std::vector<std::string> FlagParser::UnconsumedFlags() const {
  std::vector<std::string> unconsumed;
  for (const auto& [name, value] : flags_) {
    if (!consumed_.contains(name)) {
      unconsumed.push_back(name);
    }
  }
  return unconsumed;
}

}  // namespace spotcheck

// Strongly-typed integer identifiers.
//
// Every entity in the system (native instances, nested VMs, customers, pools,
// backup servers, EBS volumes, IP addresses, ...) is referred to by a typed
// 64-bit ID so that, e.g., an InstanceId can never be passed where a
// NestedVmId is expected. IDs are allocated monotonically by IdGenerator and
// are never reused within a simulation.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace spotcheck {

template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() = default;
  constexpr explicit TypedId(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }

  constexpr auto operator<=>(const TypedId&) const = default;

  std::string ToString() const {
    return std::string(Tag::kPrefix) + "-" + std::to_string(value_);
  }

 private:
  uint64_t value_ = 0;  // 0 is reserved as "invalid".
};

template <typename Tag>
class IdGenerator {
 public:
  TypedId<Tag> Next() { return TypedId<Tag>(++last_); }

 private:
  uint64_t last_ = 0;
};

struct InstanceTag { static constexpr const char* kPrefix = "i"; };
struct NestedVmTag { static constexpr const char* kPrefix = "nvm"; };
struct CustomerTag { static constexpr const char* kPrefix = "cust"; };
struct PoolTag { static constexpr const char* kPrefix = "pool"; };
struct BackupServerTag { static constexpr const char* kPrefix = "bak"; };
struct VolumeTag { static constexpr const char* kPrefix = "vol"; };
struct AddressTag { static constexpr const char* kPrefix = "ip"; };
struct InterfaceTag { static constexpr const char* kPrefix = "eni"; };
struct EventTag { static constexpr const char* kPrefix = "ev"; };
struct RequestTag { static constexpr const char* kPrefix = "req"; };

using InstanceId = TypedId<InstanceTag>;
using NestedVmId = TypedId<NestedVmTag>;
using CustomerId = TypedId<CustomerTag>;
using PoolId = TypedId<PoolTag>;
using BackupServerId = TypedId<BackupServerTag>;
using VolumeId = TypedId<VolumeTag>;
using AddressId = TypedId<AddressTag>;
using InterfaceId = TypedId<InterfaceTag>;
using EventId = TypedId<EventTag>;
using RequestId = TypedId<RequestTag>;

}  // namespace spotcheck

template <typename Tag>
struct std::hash<spotcheck::TypedId<Tag>> {
  size_t operator()(const spotcheck::TypedId<Tag>& id) const noexcept {
    return std::hash<uint64_t>()(id.value());
  }
};

#endif  // SRC_COMMON_IDS_H_

// Minimal command-line flag parsing for the example binaries and the
// simulator CLI. Supports --name=value, "--name value", boolean --name /
// --no-name, and positional arguments; typed getters fall back to defaults
// and remember which flags were consumed so callers can reject typos.

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace spotcheck {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);
  explicit FlagParser(const std::vector<std::string>& args);

  bool Has(const std::string& name) const { return flags_.contains(name); }

  std::string GetString(const std::string& name, std::string default_value) const;
  // Numeric getters require the whole value to parse: "--jobs=four" or
  // "--chaos-seed=12x3" print the flag name and value to stderr and exit 2
  // instead of silently running with 0 / 12.
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  // --name and --name=true|1|yes|on read as true; --no-name and
  // --name=false|0|no|off as false (case-insensitive). Any other token
  // ("--trace=flase") exits 2 rather than silently reading as true.
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags present on the command line that no getter ever consumed --
  // almost always a typo worth reporting.
  std::vector<std::string> UnconsumedFlags() const;

  // Typo guard for main()s: prints every unconsumed flag to stderr and exits
  // 2 when any exist. Call after the last Get*(); pass a short supported-flag
  // summary to include in the message.
  void ExitIfUnknownFlags(const std::string& supported = std::string()) const;

 private:
  void Parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> consumed_;
};

}  // namespace spotcheck

#endif  // SRC_COMMON_FLAGS_H_

#include "src/common/csv.h"

#include <fstream>
#include <sstream>

namespace spotcheck {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.emplace_back(Trim(line.substr(start)));
      break;
    }
    fields.emplace_back(Trim(line.substr(start, comma - start)));
    start = comma + 1;
  }
  return fields;
}

void CsvWriter::AddRow(const std::vector<std::string>& fields) {
  std::string row;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      row += ',';
    }
    row += fields[i];
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (const auto& row : rows_) {
    out += row;
    out += '\n';
  }
  return out;
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << ToString();
  return static_cast<bool>(f);
}

CsvReader CsvReader::FromString(std::string_view text, bool has_header) {
  CsvReader reader;
  std::istringstream in{std::string(text)};
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    auto fields = SplitCsvLine(line);
    if (first && has_header) {
      reader.header_ = std::move(fields);
    } else {
      reader.rows_.push_back(std::move(fields));
    }
    first = false;
  }
  return reader;
}

CsvReader CsvReader::FromFile(const std::string& path, bool has_header) {
  std::ifstream f(path);
  if (!f) {
    return CsvReader{};
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return FromString(buf.str(), has_header);
}

}  // namespace spotcheck

// Fleet-scale entity storage.
//
// Simulating 100k-1M concurrent nested VMs makes the per-entity node maps
// (std::map<Id, std::unique_ptr<T>>) the dominant cost: two heap
// allocations per entity, pointer-chasing tree walks on every lookup, and
// ~80 bytes of node/indirection overhead per record. FleetTable<Tag, T>
// replaces them with struct-of-arrays-style arena storage:
//
//   - records live in chunked blocks (placement-new, never moved), so
//     references handed out -- including `T&` captured by in-flight
//     simulator event lambdas -- stay valid for the record's lifetime;
//   - a dense id -> slot vector gives O(1) find/emplace/erase (TypedIds
//     are allocated monotonically from 1, so the vector is compact);
//   - erased slots go on a free list and are recycled by later emplaces;
//   - iteration visits live records in ascending id order, matching the
//     std::map iteration order the deterministic-replay contract pins.
//
// The table is deliberately NOT a drop-in std::map: there are no
// iterators (use ForEach), no copy/move (pointer stability is the point),
// and emplacing an id that is already live is a programmer error.

#ifndef SRC_COMMON_FLEET_STORE_H_
#define SRC_COMMON_FLEET_STORE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/ids.h"

namespace spotcheck {

template <typename Tag, typename T, size_t kBlockSlots = 1024>
class FleetTable {
 public:
  using Id = TypedId<Tag>;

  FleetTable() = default;
  FleetTable(const FleetTable&) = delete;
  FleetTable& operator=(const FleetTable&) = delete;
  ~FleetTable() { clear(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool Contains(Id id) const { return SlotOf(id) != kNoSlot; }

  T* Find(Id id) {
    const uint32_t slot = SlotOf(id);
    return slot == kNoSlot ? nullptr : Ptr(slot);
  }
  const T* Find(Id id) const {
    const uint32_t slot = SlotOf(id);
    return slot == kNoSlot ? nullptr : Ptr(slot);
  }

  // Precondition: Contains(id). The reference is stable until Erase(id).
  T& At(Id id) {
    T* value = Find(id);
    assert(value != nullptr && "FleetTable::At on a dead id");
    return *value;
  }
  const T& At(Id id) const {
    const T* value = Find(id);
    assert(value != nullptr && "FleetTable::At on a dead id");
    return *value;
  }

  // Precondition: !Contains(id) (TypedIds are never reissued, so callers
  // emplace each id at most once per lifetime). Returns a stable reference.
  template <typename... Args>
  T& Emplace(Id id, Args&&... args) {
    assert(id.valid() && "FleetTable::Emplace on the invalid id");
    assert(!Contains(id) && "FleetTable::Emplace on a live id");
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = slots_used_;
      if (slot / kBlockSlots >= blocks_.size()) {
        blocks_.push_back(std::make_unique<Block>());
      }
      ++slots_used_;
    }
    if (id.value() >= slot_of_.size()) {
      slot_of_.resize(id.value() + 1, kNoSlot);
    }
    T* value = new (RawPtr(slot)) T(std::forward<Args>(args)...);
    slot_of_[id.value()] = slot;
    ++size_;
    return *value;
  }

  // Returns false when the id was not live. O(1); the slot is recycled.
  bool Erase(Id id) {
    const uint32_t slot = SlotOf(id);
    if (slot == kNoSlot) {
      return false;
    }
    Ptr(slot)->~T();
    slot_of_[id.value()] = kNoSlot;
    free_.push_back(slot);
    --size_;
    return true;
  }

  void clear() {
    for (uint64_t value = 0; value < slot_of_.size(); ++value) {
      const uint32_t slot = slot_of_[value];
      if (slot != kNoSlot) {
        Ptr(slot)->~T();
        slot_of_[value] = kNoSlot;
      }
    }
    free_.clear();
    size_ = 0;
    slots_used_ = 0;
    blocks_.clear();
  }

  // Visits live records in ascending id order (the std::map order the
  // replay contract pins). `fn(Id, T&)`. The callback must not insert or
  // erase table entries.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint64_t value = 1; value < slot_of_.size(); ++value) {
      const uint32_t slot = slot_of_[value];
      if (slot != kNoSlot) {
        fn(Id(value), *Ptr(slot));
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t value = 1; value < slot_of_.size(); ++value) {
      const uint32_t slot = slot_of_[value];
      if (slot != kNoSlot) {
        fn(Id(value), *Ptr(slot));
      }
    }
  }

  // Structural memory footprint (blocks + index + free list), for the
  // fleet-scale bytes/VM accounting. Excludes memory owned by the records
  // themselves (e.g. strings or vectors inside T).
  size_t bytes_allocated() const {
    return blocks_.size() * sizeof(Block) +
           blocks_.capacity() * sizeof(blocks_[0]) +
           slot_of_.capacity() * sizeof(uint32_t) +
           free_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  struct Block {
    alignas(alignof(T)) unsigned char bytes[kBlockSlots * sizeof(T)];
  };

  uint32_t SlotOf(Id id) const {
    const uint64_t value = id.value();
    return value < slot_of_.size() ? slot_of_[value] : kNoSlot;
  }
  void* RawPtr(uint32_t slot) {
    return blocks_[slot / kBlockSlots]->bytes + (slot % kBlockSlots) * sizeof(T);
  }
  T* Ptr(uint32_t slot) {
    return std::launder(reinterpret_cast<T*>(
        blocks_[slot / kBlockSlots]->bytes + (slot % kBlockSlots) * sizeof(T)));
  }
  const T* Ptr(uint32_t slot) const {
    return std::launder(reinterpret_cast<const T*>(
        blocks_[slot / kBlockSlots]->bytes +
        (slot % kBlockSlots) * sizeof(T)));
  }

  std::vector<uint32_t> slot_of_;  // id.value() -> slot, kNoSlot when dead
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<uint32_t> free_;
  uint32_t slots_used_ = 0;  // high-water slot count across all blocks
  size_t size_ = 0;
};

}  // namespace spotcheck

#endif  // SRC_COMMON_FLEET_STORE_H_

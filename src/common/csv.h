// Minimal CSV reading/writing, used for spot-price trace import/export and
// for dumping benchmark series. Handles plain comma-separated values without
// quoting (the trace formats involved never need quoting).

#ifndef SRC_COMMON_CSV_H_
#define SRC_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

namespace spotcheck {

// Splits one CSV line into fields; leading/trailing whitespace per field is
// trimmed.
std::vector<std::string> SplitCsvLine(std::string_view line);

class CsvWriter {
 public:
  // Appends one row; fields are joined with commas.
  void AddRow(const std::vector<std::string>& fields);
  // Serializes all rows, '\n'-terminated.
  std::string ToString() const;
  // Writes to a file; returns false on I/O error.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> rows_;
};

class CsvReader {
 public:
  // Parses CSV text. If has_header, the first line is stored separately.
  static CsvReader FromString(std::string_view text, bool has_header);
  // Returns an empty reader (rows().empty()) if the file cannot be read.
  static CsvReader FromFile(const std::string& path, bool has_header);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spotcheck

#endif  // SRC_COMMON_CSV_H_

#include "src/common/rng.h"

#include <cmath>
#include <numbers>

namespace spotcheck {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

Rng Rng::Split(uint64_t label) const {
  // Mix the label into the original seed rather than the current state so the
  // child stream is stable regardless of this stream's consumption.
  uint64_t s = seed_ ^ (0xa0761d6478bd642fULL * (label + 1));
  return Rng(s);
}

uint64_t Rng::NextU64() {
  // xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

double Rng::Pareto(double x_m, double alpha) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace spotcheck

// Deterministic random number generation.
//
// Simulations must be reproducible run-to-run, so every stochastic component
// draws from its own Rng stream derived from a master seed. Rng wraps
// xoshiro256++ (seeded via splitmix64) and provides the distributions the
// simulator needs: uniform, normal, lognormal, exponential, Pareto, and
// Bernoulli. Streams can be Split() so that adding a new consumer does not
// perturb the draws seen by existing ones.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>

namespace spotcheck {

class Rng {
 public:
  // A default-constructed Rng uses a fixed, documented seed so that tests and
  // benchmarks are reproducible without further configuration.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  // Derives an independent child stream. The child's sequence is a function
  // of this stream's seed and the label only, not of how many numbers have
  // been drawn so far.
  Rng Split(uint64_t label) const;

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second deviate).
  double Normal(double mean = 0.0, double stddev = 1.0);
  // exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);
  // Mean 1/rate.
  double Exponential(double rate);
  // Pareto with scale x_m > 0 and shape alpha > 0; heavy-tailed price spikes.
  double Pareto(double x_m, double alpha);
  bool Bernoulli(double p);

 private:
  explicit Rng(const std::array<uint64_t, 4>& state) : state_(state) {}

  uint64_t seed_ = 0;
  std::array<uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace spotcheck

#endif  // SRC_COMMON_RNG_H_

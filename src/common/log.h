// Leveled logging with simulated-time prefixes.
//
// Components log through LOG(level) << ...; the sink is stderr by default and
// can be silenced (tests) or captured. When a simulation clock is registered,
// each line is prefixed with the current simulated time.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/common/time.h"

namespace spotcheck {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

class Logger {
 public:
  static Logger& Get();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // Supplies the current simulated time for prefixes; pass nullptr to clear.
  void set_time_source(std::function<SimTime()> source) {
    time_source_ = std::move(source);
  }

  // Redirects output (e.g. to a test buffer); pass nullptr to restore stderr.
  void set_sink(std::function<void(const std::string&)> sink) {
    sink_ = std::move(sink);
  }

  void Write(LogLevel level, const std::string& message);

 private:
  LogLevel min_level_ = LogLevel::kWarning;
  std::function<SimTime()> time_source_;
  std::function<void(const std::string&)> sink_;
};

// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Lets the macro below turn a LogMessage chain into a void expression (the
// `&` binds after every `<<`).
struct LogVoidify {
  void operator&(LogMessage&) {}   // after a << chain
  void operator&(LogMessage&&) {}  // bare, argument-less line
};

}  // namespace spotcheck

// Short-circuits BEFORE evaluating the streamed arguments: a filtered-out
// line costs one level comparison, not string formatting (Write() applies the
// same min_level filter, so nothing observable changes). The ternary form is
// safe in unbraced if/else bodies where an `if`-based macro would dangle.
#define SPOTCHECK_LOG(level)                                               \
  (::spotcheck::LogLevel::level < ::spotcheck::Logger::Get().min_level()) \
      ? (void)0                                                            \
      : ::spotcheck::LogVoidify() &                                        \
            ::spotcheck::LogMessage(::spotcheck::LogLevel::level)

#endif  // SRC_COMMON_LOG_H_

// Simulated time primitives.
//
// All simulation components express time as a SimTime (absolute instant) or a
// SimDuration (signed interval). Both are thin strong types over a count of
// microseconds, which is fine-grained enough for the millisecond-scale
// migration downtimes the paper measures and coarse enough that a six-month
// simulated horizon (~1.6e13 us) fits comfortably in 63 bits.

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace spotcheck {

// A signed interval of simulated time, counted in microseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration Micros(int64_t us) { return SimDuration(us); }
  static constexpr SimDuration Millis(int64_t ms) { return SimDuration(ms * 1000); }
  static constexpr SimDuration Seconds(double s) {
    return SimDuration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimDuration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr SimDuration Hours(double h) { return Seconds(h * 3600.0); }
  static constexpr SimDuration Days(double d) { return Hours(d * 24.0); }
  static constexpr SimDuration Zero() { return SimDuration(0); }
  static constexpr SimDuration Max() {
    return SimDuration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double minutes() const { return seconds() / 60.0; }
  constexpr double hours() const { return seconds() / 3600.0; }
  constexpr double days() const { return hours() / 24.0; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(us_ + o.us_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(us_ - o.us_); }
  constexpr SimDuration operator-() const { return SimDuration(-us_); }
  constexpr SimDuration operator*(double k) const {
    return SimDuration(static_cast<int64_t>(static_cast<double>(us_) * k));
  }
  constexpr SimDuration operator/(double k) const {
    return SimDuration(static_cast<int64_t>(static_cast<double>(us_) / k));
  }
  constexpr double operator/(SimDuration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    us_ -= o.us_;
    return *this;
  }

 private:
  constexpr explicit SimDuration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

// An absolute instant of simulated time. Simulations start at SimTime() == 0.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Max() {
    return SimTime(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double hours() const { return seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime(us_ + d.micros()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(us_ - d.micros()); }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::Micros(us_ - o.us_);
  }
  SimTime& operator+=(SimDuration d) {
    us_ += d.micros();
    return *this;
  }

 private:
  constexpr explicit SimTime(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

// Renders a time/duration as "[Dd ]HH:MM:SS.mmm" for logs and reports.
std::string FormatDuration(SimDuration d);
inline std::string FormatTime(SimTime t) {
  return FormatDuration(t - SimTime());
}

}  // namespace spotcheck

#endif  // SRC_COMMON_TIME_H_

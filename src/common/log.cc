#include "src/common/log.h"

#include <cinttypes>
#include <cstdio>

namespace spotcheck {

std::string FormatDuration(SimDuration d) {
  int64_t us = d.micros();
  const bool negative = us < 0;
  if (negative) {
    us = -us;
  }
  const int64_t ms = (us / 1000) % 1000;
  int64_t total_seconds = us / 1'000'000;
  const int64_t secs = total_seconds % 60;
  const int64_t mins = (total_seconds / 60) % 60;
  const int64_t hours = (total_seconds / 3600) % 24;
  const int64_t days = total_seconds / 86400;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                  negative ? "-" : "", days, hours, mins, secs, ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                  negative ? "-" : "", hours, mins, secs, ms);
  }
  return buf;
}

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < min_level_) {
    return;
  }
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::string line;
  if (time_source_) {
    line += "[" + FormatTime(time_source_()) + "] ";
  }
  line += "[";
  line += kNames[static_cast<int>(level)];
  line += "] ";
  line += message;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace spotcheck

#include "src/common/memory_probe.h"

#include <cstdio>

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace spotcheck {

int64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) {
    return 0;
  }
  long total_pages = 0;
  long resident_pages = 0;
  const int fields = std::fscanf(statm, "%ld %ld", &total_pages,
                                 &resident_pages);
  std::fclose(statm);
  if (fields != 2) {
    return 0;
  }
  return static_cast<int64_t>(resident_pages) * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

int64_t PeakRssBytes() {
#if defined(__linux__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

}  // namespace spotcheck

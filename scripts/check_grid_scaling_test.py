#!/usr/bin/env python3
"""Unit tests for scripts/check_grid_scaling.py (the CI grid-scaling gate).

Covers the parse/compare path end to end via subprocess, including the exact
failure mode that slipped through the old inline gate: a 0.93x measurement
from a 4-core machine must FAIL, and a sub-4-core measurement must SKIP
loudly (exit 0 with a SKIPPED marker), never silently.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_grid_scaling.py")


def bench_json(one_ns, four_ns, cores=4):
    doc = {
        "_context": {"hardware_concurrency": cores},
        "BM_ParallelEvaluationGrid/1/real_time": {
            "ns_per_op": one_ns,
            "iterations": 10,
        },
        "BM_ParallelEvaluationGrid/4/real_time": {
            "ns_per_op": four_ns,
            "iterations": 10,
        },
    }
    return json.dumps(doc)


def run_gate(contents, *args):
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        f.write(contents)
        path = f.name
    try:
        return subprocess.run(
            [sys.executable, SCRIPT, path, *args],
            capture_output=True,
            text=True,
        )
    finally:
        os.unlink(path)


class GateTest(unittest.TestCase):
    def test_passes_on_good_speedup(self):
        # 3x speedup on 4 cores clears the default 2.5x bar.
        proc = run_gate(bench_json(3_000_000, 1_000_000))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("PASSED", proc.stdout)

    def test_fails_on_the_pre_fix_numbers(self):
        # The measurement the old gate waved through: Grid/4 SLOWER than
        # Grid/1 (8.62 ms vs 8.01 ms, 0.93x) on a 4-core machine.
        proc = run_gate(bench_json(8_008_653, 8_619_119, cores=4))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("0.93x", proc.stderr)
        self.assertIn("FAILED", proc.stderr)

    def test_fails_just_below_threshold(self):
        proc = run_gate(bench_json(2_490_000, 1_000_000),
                        "--min-speedup=2.5")
        self.assertEqual(proc.returncode, 1)

    def test_passes_at_exact_threshold(self):
        proc = run_gate(bench_json(2_500_000, 1_000_000),
                        "--min-speedup=2.5")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_skips_loudly_below_four_cores(self):
        # A bad ratio measured on 2 cores is not a regression -- but the
        # skip must be printed, never silent, and must name the distinct
        # cause (an under-provisioned measurement machine).
        proc = run_gate(bench_json(8_008_653, 8_619_119, cores=2))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("SKIPPED", proc.stdout)
        self.assertIn("UNDER-PROVISIONED", proc.stdout)

    def test_self_marked_unreliable_reports_distinctly(self):
        # bench_grid_scaling marks its JSON _context.unreliable when the
        # machine had fewer cores than the sweep width (the committed 1-core
        # 0.29x artifact). The gate must report that distinctly, not judge
        # the numbers -- even when hardware_concurrency itself is >= 4.
        doc = json.loads(bench_json(8_008_653, 8_619_119, cores=8))
        doc["_context"]["unreliable"] = True
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("UNDER-PROVISIONED", proc.stdout)
        self.assertIn("unreliable", proc.stdout)

    def test_require_forbids_self_marked_unreliable(self):
        doc = json.loads(bench_json(3_000_000, 1_000_000, cores=8))
        doc["_context"]["unreliable"] = True
        proc = run_gate(json.dumps(doc), "--require")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unreliable", proc.stderr)

    def test_require_forbids_the_skip(self):
        proc = run_gate(bench_json(8_008_653, 8_619_119, cores=2),
                        "--require")
        self.assertEqual(proc.returncode, 1)

    def test_cores_override_beats_json_context(self):
        proc = run_gate(bench_json(8_008_653, 8_619_119, cores=2),
                        "--cores=4")
        self.assertEqual(proc.returncode, 1)

    def test_missing_grid_key_is_a_parse_error(self):
        doc = {"_context": {"hardware_concurrency": 4}}
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("ERROR", proc.stderr)

    def test_missing_ns_per_op_is_a_parse_error(self):
        doc = json.loads(bench_json(1, 1))
        del doc["BM_ParallelEvaluationGrid/4/real_time"]["ns_per_op"]
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)

    def test_non_positive_timing_is_a_parse_error(self):
        proc = run_gate(bench_json(1_000_000, 0))
        self.assertEqual(proc.returncode, 2)

    def test_malformed_json_is_a_parse_error(self):
        proc = run_gate("{not json")
        self.assertEqual(proc.returncode, 2)

    def test_missing_file_is_a_parse_error(self):
        proc = subprocess.run(
            [sys.executable, SCRIPT, "/nonexistent/BENCH.json"],
            capture_output=True,
            text=True,
        )
        self.assertEqual(proc.returncode, 2)

    def test_old_format_json_without_context_still_judged(self):
        # Pre-PR7 BENCH_micro.json had no _context; the gate falls back to
        # this machine's cores (forced with --cores here) with a warning.
        doc = json.loads(bench_json(3_000_000, 1_000_000))
        del doc["_context"]
        proc = run_gate(json.dumps(doc), "--cores=4")
        self.assertEqual(proc.returncode, 0, proc.stderr)


if __name__ == "__main__":
    unittest.main()

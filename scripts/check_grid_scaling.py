#!/usr/bin/env python3
"""CI perf gate: the parallel grid must actually scale.

Reads a BENCH_micro.json produced by bench_micro_perf and enforces
    BM_ParallelEvaluationGrid/4 >= MIN_SPEEDUP x BM_ParallelEvaluationGrid/1
(real time). Exit codes:

    0  gate passed, or was SKIPPED because the measuring machine has fewer
       than 4 cores (printed loudly; use --require to forbid skipping)
    1  gate FAILED: the measured speedup is below the threshold
    2  the input could not be judged at all (missing file, malformed JSON,
       missing benchmark keys, non-positive timings) -- never a soft pass

The previous inline-CI version of this check had two silent failure modes
this script exists to kill: it keyed the skip on os.cpu_count() of the
machine *running the gate* (GitHub's 2-core runners skipped it forever,
letting a 0.93x regression through), and any JSON/key error crashed the
step in a way that was indistinguishable from a config typo. Core count now
comes from the benchmark JSON's own "_context.hardware_concurrency" (the
machine that MEASURED), overridable with --cores for tests; every parse
problem is a distinct, loud exit 2.
"""

import argparse
import json
import sys

GRID_ONE = "BM_ParallelEvaluationGrid/1/real_time"
GRID_FOUR = "BM_ParallelEvaluationGrid/4/real_time"
PARSE_ERROR = 2


def fail_parse(message):
    print(f"check_grid_scaling: ERROR: {message}", file=sys.stderr)
    raise SystemExit(PARSE_ERROR)


def load_bench(path):
    try:
        with open(path, encoding="utf-8") as f:
            bench = json.load(f)
    except OSError as e:
        fail_parse(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail_parse(f"{path} is not valid JSON: {e}")
    if not isinstance(bench, dict):
        fail_parse(f"{path}: top-level JSON value must be an object")
    return bench


def ns_per_op(bench, key, path):
    entry = bench.get(key)
    if entry is None:
        fail_parse(
            f"{path} has no '{key}' entry -- did the grid benchmark run?"
        )
    if not isinstance(entry, dict) or "ns_per_op" not in entry:
        fail_parse(f"{path}: '{key}' has no ns_per_op field")
    value = entry["ns_per_op"]
    if not isinstance(value, (int, float)) or value <= 0:
        fail_parse(f"{path}: '{key}' ns_per_op is not a positive number")
    return float(value)


def self_marked_unreliable(bench):
    """True when the producing bench marked its own numbers meaningless.

    bench_grid_scaling writes "_context.unreliable": true when the measuring
    machine had fewer hardware threads than the widest sweep point (e.g. a
    1-core box sweeping to 8 jobs). Such a file must never be judged as a
    pass OR a fail -- it is an under-provisioned measurement.
    """
    context = bench.get("_context")
    return isinstance(context, dict) and context.get("unreliable") is True


def measured_cores(bench, override):
    if override is not None:
        return override
    context = bench.get("_context")
    if isinstance(context, dict):
        cores = context.get("hardware_concurrency")
        if isinstance(cores, int) and cores > 0:
            return cores
    # Old-format JSON without context: fall back to this machine, loudly.
    print(
        "check_grid_scaling: WARNING: no _context.hardware_concurrency in "
        "the benchmark JSON; falling back to this machine's core count",
        file=sys.stderr,
    )
    import os

    return os.cpu_count() or 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_micro.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help="required Grid/4 over Grid/1 speedup (default: 2.5)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="override the measuring machine's core count (tests)",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail instead of skipping when cores < 4",
    )
    args = parser.parse_args(argv)

    bench = load_bench(args.bench_json)
    one_ns = ns_per_op(bench, GRID_ONE, args.bench_json)
    four_ns = ns_per_op(bench, GRID_FOUR, args.bench_json)
    speedup = one_ns / four_ns
    cores = measured_cores(bench, args.cores)

    print(
        f"check_grid_scaling: Grid/4 vs Grid/1 speedup {speedup:.2f}x "
        f"(need >= {args.min_speedup:.2f}x) on a {cores}-core measurement"
    )
    if self_marked_unreliable(bench):
        if args.require:
            print(
                "check_grid_scaling: FAILED: --require set but the "
                "benchmark JSON is self-marked _context.unreliable "
                "(under-provisioned measurement machine)",
                file=sys.stderr,
            )
            return 1
        print(
            "check_grid_scaling: UNDER-PROVISIONED: SKIPPED: the benchmark "
            "JSON is self-marked _context.unreliable -- the measuring "
            "machine had fewer cores than the sweep width, so its speedups "
            "are meaningless. Re-measure on a bigger machine."
        )
        return 0
    if cores < 4:
        if args.require:
            print(
                f"check_grid_scaling: FAILED: --require set but the "
                f"measurement machine has only {cores} cores",
                file=sys.stderr,
            )
            return 1
        print(
            f"check_grid_scaling: UNDER-PROVISIONED: SKIPPED: measurement "
            f"machine has {cores} cores (< 4); the ratio is not meaningful "
            f"there. Run the gate against a >=4-core measurement to "
            f"enforce it."
        )
        return 0
    if speedup < args.min_speedup:
        print(
            f"check_grid_scaling: FAILED: parallel grid regression: "
            f"{speedup:.2f}x < {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    print("check_grid_scaling: PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())

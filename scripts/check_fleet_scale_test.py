#!/usr/bin/env python3
"""Unit tests for scripts/check_fleet_scale.py (the CI fleet-scale gate).

Covers the parse/judge path end to end via subprocess: the bytes/VM budget
and events/s floor at the 10k tier, the flat-memory growth check against
the 100k tier, the smoke-run case (100k absent skips growth, never the
budget), and every malformed-input mode as a distinct exit 2.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_fleet_scale.py")


def tier(num_vms, bytes_per_vm, events_per_second, invariants_ok=True):
    return {
        "num_vms": num_vms,
        "running_vms": num_vms,
        "bytes_per_vm": bytes_per_vm,
        "events_per_second": events_per_second,
        "invariants_ok": invariants_ok,
    }


def bench_json(base_bytes=2000.0, base_events=100000.0, scale_bytes=2050.0,
               include_scale=True):
    doc = {
        "_context": {"hardware_concurrency": 4},
        "tiers/10000": tier(10000, base_bytes, base_events),
    }
    if include_scale:
        doc["tiers/100000"] = tier(100000, scale_bytes, base_events)
    return doc


def run_gate(contents, *args):
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as f:
        f.write(contents)
        path = f.name
    try:
        return subprocess.run(
            [sys.executable, SCRIPT, path, *args],
            capture_output=True,
            text=True,
        )
    finally:
        os.unlink(path)


class GateTest(unittest.TestCase):
    def test_passes_on_flat_memory_and_good_throughput(self):
        proc = run_gate(json.dumps(bench_json()))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("PASSED", proc.stdout)

    def test_fails_over_the_bytes_budget(self):
        proc = run_gate(json.dumps(bench_json(base_bytes=9000.0)))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("budget", proc.stderr)

    def test_fails_below_the_events_floor(self):
        proc = run_gate(json.dumps(bench_json(base_events=500.0)))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("floor", proc.stderr)

    def test_fails_when_bytes_per_vm_grows_with_fleet_size(self):
        # 2000 -> 2500 bytes/VM from 10k to 100k is a 1.25x growth: per-VM
        # memory is no longer flat, exactly what the SoA refactor bought.
        proc = run_gate(json.dumps(bench_json(scale_bytes=2500.0)))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("no longer flat", proc.stderr)

    def test_growth_just_inside_the_allowance_passes(self):
        proc = run_gate(json.dumps(bench_json(scale_bytes=2199.0)))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_smoke_run_without_100k_tier_skips_growth_only(self):
        proc = run_gate(json.dumps(bench_json(include_scale=False)))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("growth check", proc.stdout)
        self.assertIn("skipped", proc.stdout)

    def test_smoke_run_still_enforces_the_budget(self):
        proc = run_gate(
            json.dumps(bench_json(base_bytes=9000.0, include_scale=False))
        )
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_failed_invariants_fail_the_gate(self):
        doc = bench_json()
        doc["tiers/10000"]["invariants_ok"] = False
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("invariants", proc.stderr)

    def test_failed_invariants_at_100k_fail_the_gate(self):
        doc = bench_json()
        doc["tiers/100000"]["invariants_ok"] = False
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_thresholds_are_flag_adjustable(self):
        proc = run_gate(
            json.dumps(bench_json(base_bytes=9000.0)),
            "--max-bytes-per-vm=10000",
        )
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_profiled_bench_surfaces_top_hotspot_categories(self):
        doc = bench_json()
        doc["tiers/100000"]["profile"] = {
            "sample_interval": 64,
            "categories": {
                "dispatch_callback": {"est_total_ns": 9e9},
                "pool_placeable_index": {"est_total_ns": 5e9},
                "ladder_merge": {"est_total_ns": 1e9},
                "calendar_wrap": {"est_total_ns": 1e8},
            },
            "counters": {},
        }
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("hotspots at 100000 VMs", proc.stdout)
        self.assertIn("dispatch_callback", proc.stdout)
        self.assertIn("pool_placeable_index", proc.stdout)
        self.assertNotIn("calendar_wrap", proc.stdout)

    def test_unprofiled_bench_passes_without_hotspots(self):
        proc = run_gate(json.dumps(bench_json()))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("hotspots", proc.stdout)

    def test_missing_10k_tier_is_a_parse_error(self):
        proc = run_gate(json.dumps({"_context": {}}))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("ERROR", proc.stderr)

    def test_missing_bytes_field_is_a_parse_error(self):
        doc = bench_json()
        del doc["tiers/10000"]["bytes_per_vm"]
        proc = run_gate(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)

    def test_non_positive_events_is_a_parse_error(self):
        proc = run_gate(json.dumps(bench_json(base_events=0)))
        self.assertEqual(proc.returncode, 2)

    def test_malformed_json_is_a_parse_error(self):
        proc = run_gate("{not json")
        self.assertEqual(proc.returncode, 2)

    def test_missing_file_is_a_parse_error(self):
        proc = subprocess.run(
            [sys.executable, SCRIPT, "/nonexistent/BENCH.json"],
            capture_output=True,
            text=True,
        )
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()

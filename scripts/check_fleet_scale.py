#!/usr/bin/env python3
"""CI memory/throughput gate for fleet-scale VM storage.

Reads a BENCH_fleet_scale.json produced by bench_fleet_scale and enforces,
on the 10k-VM tier (always present, even in the CI smoke run):

    * bytes/VM      <= --max-bytes-per-vm   (per-VM memory budget)
    * events/s      >= --min-events-per-sec (throughput floor)
    * invariants_ok is true                 (the controller validated)

and, when the 100k tier is present (full runs), that its bytes/VM stays
within --max-growth of the 10k tier's: per-VM cost must be flat in fleet
size, or the storage layer has re-grown a per-VM overhead.

When the bench recorded event-cost profiles (the "profile" section each
tier now carries), the gate also prints the top-3 hotspot categories by
estimated total time at the highest profiled tier -- informational only
(scripts/profile_fleet.py does the cross-tier slope analysis).

Exit codes:

    0  gate passed
    1  gate FAILED: a budget or floor was breached
    2  the input could not be judged at all (missing file, malformed JSON,
       missing tiers, non-positive numbers) -- never a soft pass

The throughput floor is deliberately conservative: it exists to catch a
storage change that makes event dispatch accidentally quadratic (an order
of magnitude), not a few percent of noise on a busy runner.
"""

import argparse
import json
import sys

PARSE_ERROR = 2
BASE_TIER = "tiers/10000"
SCALE_TIER = "tiers/100000"


def fail_parse(message):
    print(f"check_fleet_scale: ERROR: {message}", file=sys.stderr)
    raise SystemExit(PARSE_ERROR)


def load_bench(path):
    try:
        with open(path, encoding="utf-8") as f:
            bench = json.load(f)
    except OSError as e:
        fail_parse(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail_parse(f"{path} is not valid JSON: {e}")
    if not isinstance(bench, dict):
        fail_parse(f"{path}: top-level JSON value must be an object")
    return bench


def tier(bench, key, path):
    entry = bench.get(key)
    if entry is None:
        fail_parse(f"{path} has no '{key}' entry -- did bench_fleet_scale run?")
    if not isinstance(entry, dict):
        fail_parse(f"{path}: '{key}' is not an object")
    return entry


def positive_number(entry, key, field, path):
    value = entry.get(field)
    if not isinstance(value, (int, float)) or value <= 0:
        fail_parse(f"{path}: '{key}' {field} is not a positive number")
    return float(value)


def print_hotspots(bench):
    """Top-3 profile categories at the highest profiled tier (informational).

    Tolerant of absent/null/malformed profiles: older bench files predate
    the profiler and must still pass the gate unchanged.
    """
    best_vms, best_profile = 0, None
    for key, entry in bench.items():
        if not key.startswith("tiers/") or not isinstance(entry, dict):
            continue
        profile = entry.get("profile")
        num_vms = entry.get("num_vms")
        if (
            isinstance(profile, dict)
            and isinstance(profile.get("categories"), dict)
            and isinstance(num_vms, (int, float))
            and num_vms > best_vms
        ):
            best_vms, best_profile = int(num_vms), profile
    if best_profile is None:
        return
    ranked = sorted(
        (
            (float(stats.get("est_total_ns", 0)), name)
            for name, stats in best_profile["categories"].items()
            if isinstance(stats, dict)
            and isinstance(stats.get("est_total_ns"), (int, float))
        ),
        reverse=True,
    )
    total = sum(ns for ns, _ in ranked)
    if total <= 0:
        return
    top = ", ".join(
        f"{name} ({ns / total * 100.0:.0f}%, {ns / 1e6:.0f}ms)"
        for ns, name in ranked[:3]
    )
    print(f"check_fleet_scale: hotspots at {best_vms} VMs: {top}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_fleet_scale.json")
    parser.add_argument(
        "--max-bytes-per-vm",
        type=float,
        default=8192.0,
        help="per-VM resident-memory budget at 10k VMs (default: 8192)",
    )
    parser.add_argument(
        "--min-events-per-sec",
        type=float,
        default=20000.0,
        help="events/s floor at 10k VMs (default: 20000)",
    )
    parser.add_argument(
        "--max-growth",
        type=float,
        default=1.10,
        help="allowed bytes/VM ratio of 100k over 10k (default: 1.10)",
    )
    args = parser.parse_args(argv)

    bench = load_bench(args.bench_json)
    base = tier(bench, BASE_TIER, args.bench_json)
    base_bytes = positive_number(base, BASE_TIER, "bytes_per_vm",
                                 args.bench_json)
    base_events = positive_number(base, BASE_TIER, "events_per_second",
                                  args.bench_json)

    failed = False
    print(
        f"check_fleet_scale: 10k tier: {base_bytes:.1f} bytes/VM "
        f"(budget {args.max_bytes_per_vm:.0f}), {base_events:.0f} events/s "
        f"(floor {args.min_events_per_sec:.0f})"
    )
    if base.get("invariants_ok") is not True:
        print(
            "check_fleet_scale: FAILED: the 10k tier's controller "
            "invariants did not validate",
            file=sys.stderr,
        )
        failed = True
    if base_bytes > args.max_bytes_per_vm:
        print(
            f"check_fleet_scale: FAILED: {base_bytes:.1f} bytes/VM over the "
            f"{args.max_bytes_per_vm:.0f} budget",
            file=sys.stderr,
        )
        failed = True
    if base_events < args.min_events_per_sec:
        print(
            f"check_fleet_scale: FAILED: {base_events:.0f} events/s below "
            f"the {args.min_events_per_sec:.0f} floor",
            file=sys.stderr,
        )
        failed = True

    scale = bench.get(SCALE_TIER)
    if scale is None:
        print(
            "check_fleet_scale: 100k tier absent (smoke run); growth check "
            "skipped"
        )
    else:
        if not isinstance(scale, dict):
            fail_parse(f"{args.bench_json}: '{SCALE_TIER}' is not an object")
        scale_bytes = positive_number(scale, SCALE_TIER, "bytes_per_vm",
                                      args.bench_json)
        growth = scale_bytes / base_bytes
        print(
            f"check_fleet_scale: 100k tier: {scale_bytes:.1f} bytes/VM, "
            f"{growth:.2f}x the 10k tier (allowed {args.max_growth:.2f}x)"
        )
        if scale.get("invariants_ok") is not True:
            print(
                "check_fleet_scale: FAILED: the 100k tier's controller "
                "invariants did not validate",
                file=sys.stderr,
            )
            failed = True
        if growth > args.max_growth:
            print(
                f"check_fleet_scale: FAILED: bytes/VM grew {growth:.2f}x "
                f"from 10k to 100k VMs (allowed {args.max_growth:.2f}x) -- "
                f"per-VM memory is no longer flat in fleet size",
                file=sys.stderr,
            )
            failed = True

    print_hotspots(bench)

    if failed:
        return 1
    print("check_fleet_scale: PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())

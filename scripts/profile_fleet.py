#!/usr/bin/env python3
"""Tier-diff analyzer for the fleet-scale event-cost profiles.

Reads a BENCH_fleet_scale.json produced by bench_fleet_scale (every tier
carries a "profile" section: the EventCostProfiler's per-category costs and
structural counters) and answers ROADMAP item 1's question -- *which
subsystem goes super-linear* as the fleet grows from 1k to 1M VMs.

For every profile category it fits a log-log least-squares slope of cost
against fleet size, across all profiled tiers:

    * total_slope -- slope of est_total_ns vs num_vms. 1.0 means the
      category's total cost scales linearly with the fleet (more VMs,
      proportionally more work); anything meaningfully above 1.0 is
      super-linear and will eventually own the run.
    * mean_slope  -- slope of mean_ns (per-occurrence cost) vs num_vms.
      0.0 means each occurrence costs the same at every scale; a positive
      mean_slope says the *data structures behind one occurrence* grow with
      the fleet (the O(log n)-that-became-O(n) signature).

Structural counters get the same total-count fit, separating "more
occurrences" from "costlier occurrences".

The verdict names the category with the steepest total_slope among those
that carry at least --min-share of the profiled time at the largest tier
(a 3x slope on 0.01% of the time is noise, not a cliff).

Exit codes:

    0  analysis printed (whether or not anything is super-linear)
    2  the input could not be judged at all: missing/malformed JSON, no
       "profile" sections, or fewer than two profiled tiers to diff
"""

import argparse
import json
import math
import sys

PARSE_ERROR = 2


def fail_parse(message):
    print(f"profile_fleet: ERROR: {message}", file=sys.stderr)
    raise SystemExit(PARSE_ERROR)


def load_bench(path):
    try:
        with open(path, encoding="utf-8") as f:
            bench = json.load(f)
    except OSError as e:
        fail_parse(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail_parse(f"{path} is not valid JSON: {e}")
    if not isinstance(bench, dict):
        fail_parse(f"{path}: top-level JSON value must be an object")
    return bench


def profiled_tiers(bench, path):
    """Returns [(num_vms, profile_dict)] ascending; >= 2 entries or exit 2."""
    tiers = []
    for key, entry in bench.items():
        if not key.startswith("tiers/"):
            continue
        if not isinstance(entry, dict):
            fail_parse(f"{path}: '{key}' is not an object")
        profile = entry.get("profile")
        if profile is None:
            continue
        if not isinstance(profile, dict) or not isinstance(
            profile.get("categories"), dict
        ):
            fail_parse(f"{path}: '{key}' profile section is malformed")
        num_vms = entry.get("num_vms")
        if not isinstance(num_vms, (int, float)) or num_vms <= 0:
            fail_parse(f"{path}: '{key}' num_vms is not a positive number")
        tiers.append((int(num_vms), profile))
    if len(tiers) < 2:
        fail_parse(
            f"{path} has {len(tiers)} profiled tier(s); need at least two "
            "to fit a slope (run bench_fleet_scale with >= two tiers)"
        )
    tiers.sort(key=lambda t: t[0])
    return tiers


def fit_loglog_slope(points):
    """Least-squares slope of log(y) on log(x); None with < 2 usable points."""
    logs = [
        (math.log(x), math.log(y)) for x, y in points if x > 0 and y > 0
    ]
    if len(logs) < 2:
        return None
    n = len(logs)
    mean_x = sum(lx for lx, _ in logs) / n
    mean_y = sum(ly for _, ly in logs) / n
    var_x = sum((lx - mean_x) ** 2 for lx, _ in logs)
    if var_x == 0.0:
        return None
    cov = sum((lx - mean_x) * (ly - mean_y) for lx, ly in logs)
    return cov / var_x


def number(value):
    return float(value) if isinstance(value, (int, float)) else 0.0


def category_rows(tiers):
    """Per-category: est_total_ns / mean_ns per tier, fitted slopes, shares."""
    names = []
    for _, profile in tiers:
        for name in profile["categories"]:
            if name not in names:
                names.append(name)
    top_vms, top_profile = tiers[-1]
    top_total = sum(
        number(stats.get("est_total_ns"))
        for stats in top_profile["categories"].values()
        if isinstance(stats, dict)
    )
    rows = []
    for name in names:
        totals, means = [], []
        for num_vms, profile in tiers:
            stats = profile["categories"].get(name)
            if not isinstance(stats, dict):
                continue
            totals.append((num_vms, number(stats.get("est_total_ns"))))
            means.append((num_vms, number(stats.get("mean_ns"))))
        top_stats = top_profile["categories"].get(name)
        top_est = (
            number(top_stats.get("est_total_ns"))
            if isinstance(top_stats, dict)
            else 0.0
        )
        rows.append(
            {
                "name": name,
                "total_slope": fit_loglog_slope(totals),
                "mean_slope": fit_loglog_slope(means),
                "top_est_total_ns": top_est,
                "share": top_est / top_total if top_total > 0 else 0.0,
            }
        )
    return rows, top_vms


def counter_rows(tiers):
    names = []
    for _, profile in tiers:
        for name in profile.get("counters", {}):
            if name not in names:
                names.append(name)
    rows = []
    for name in names:
        points = [
            (num_vms, number(profile.get("counters", {}).get(name)))
            for num_vms, profile in tiers
        ]
        rows.append(
            {
                "name": name,
                "slope": fit_loglog_slope(points),
                "top_count": points[-1][1],
            }
        )
    return rows


def fmt_slope(slope):
    return f"{slope:.2f}" if slope is not None else "   -"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_fleet_scale.json")
    parser.add_argument(
        "--min-share",
        type=float,
        default=0.01,
        help="minimum share of profiled time at the largest tier for a "
        "category to be eligible for the verdict (default: 0.01)",
    )
    parser.add_argument(
        "--super-linear-threshold",
        type=float,
        default=1.15,
        help="total_slope above which a category is called super-linear "
        "(default: 1.15; 1.0 is perfectly linear in fleet size)",
    )
    args = parser.parse_args(argv)

    bench = load_bench(args.bench_json)
    tiers = profiled_tiers(bench, args.bench_json)
    sizes = ", ".join(str(num_vms) for num_vms, _ in tiers)
    print(f"profile_fleet: {len(tiers)} profiled tiers: {sizes}")

    rows, top_vms = category_rows(tiers)
    rows.sort(key=lambda r: r["top_est_total_ns"], reverse=True)
    print(f"{'category':<24} {'share@' + str(top_vms):>12} "
          f"{'total_slope':>12} {'mean_slope':>11}")
    for row in rows:
        print(
            f"{row['name']:<24} {row['share'] * 100:>11.1f}% "
            f"{fmt_slope(row['total_slope']):>12} "
            f"{fmt_slope(row['mean_slope']):>11}"
        )

    counters = counter_rows(tiers)
    counters.sort(key=lambda r: r["top_count"], reverse=True)
    print(f"\n{'counter':<24} {'count@' + str(top_vms):>16} {'slope':>8}")
    for row in counters:
        print(
            f"{row['name']:<24} {row['top_count']:>16.0f} "
            f"{fmt_slope(row['slope']):>8}"
        )

    eligible = [
        r
        for r in rows
        if r["total_slope"] is not None and r["share"] >= args.min_share
    ]
    if not eligible:
        print(
            "\nprofile_fleet: no category carries enough profiled time to "
            "judge (every share below "
            f"{args.min_share * 100:.1f}%)"
        )
        return 0
    worst = max(eligible, key=lambda r: r["total_slope"])
    mean = fmt_slope(worst["mean_slope"])
    if worst["total_slope"] > args.super_linear_threshold:
        print(
            f"\nprofile_fleet: super-linear subsystem: {worst['name']} "
            f"(est_total_ns ~ N^{worst['total_slope']:.2f}, per-occurrence "
            f"cost ~ N^{mean}, {worst['share'] * 100:.1f}% of profiled time "
            f"at {top_vms} VMs)"
        )
    else:
        print(
            f"\nprofile_fleet: no super-linear subsystem (steepest: "
            f"{worst['name']} at N^{worst['total_slope']:.2f}, threshold "
            f"N^{args.super_linear_threshold:.2f})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

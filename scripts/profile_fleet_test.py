#!/usr/bin/env python3
"""Unit tests for scripts/profile_fleet.py (the tier-diff profile analyzer).

Covers the analysis path end to end via subprocess: the log-log slope fit
over synthetic tiers, the super-linear verdict (and its absence on linear
profiles), the --min-share eligibility cut, and every unjudgeable-input
mode as a distinct exit 2.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "profile_fleet.py")


def category(count, mean_ns):
    total = int(count * mean_ns)
    return {
        "count": count,
        "timed": max(1, count // 64),
        "total_ns": total,
        "max_ns": int(mean_ns * 4),
        "mean_ns": mean_ns,
        "est_total_ns": total,
    }


def profile(categories, counters=None):
    return {
        "sample_interval": 64,
        "categories": categories,
        "counters": counters or {},
    }


def tier(num_vms, prof):
    return {
        "num_vms": num_vms,
        "events_per_second": 100000.0,
        "invariants_ok": True,
        "profile": prof,
    }


def superlinear_bench():
    # dispatch scales linearly (count ~ N, flat mean); the placeable index
    # goes quadratic (count ~ N, mean ~ N): total_slope ~ 2.
    doc = {"_context": {}}
    for n in (1000, 10000, 100000):
        doc[f"tiers/{n}"] = tier(
            n,
            profile(
                {
                    "dispatch_callback": category(count=n * 10, mean_ns=200.0),
                    "pool_placeable_index": category(
                        count=n * 2, mean_ns=50.0 * (n / 1000.0)
                    ),
                },
                counters={"index_inserts": n * 3},
            ),
        )
    return doc


def linear_bench():
    doc = {"_context": {}}
    for n in (1000, 10000, 100000):
        doc[f"tiers/{n}"] = tier(
            n,
            profile(
                {
                    "dispatch_callback": category(count=n * 10, mean_ns=200.0),
                    "pool_placeable_index": category(count=n * 2, mean_ns=50.0),
                }
            ),
        )
    return doc


def run_analyzer(contents, *args):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        f.write(contents)
        path = f.name
    try:
        return subprocess.run(
            [sys.executable, SCRIPT, path, *args],
            capture_output=True,
            text=True,
        )
    finally:
        os.unlink(path)


class AnalyzerTest(unittest.TestCase):
    def test_names_the_superlinear_subsystem(self):
        proc = run_analyzer(json.dumps(superlinear_bench()))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("super-linear subsystem: pool_placeable_index",
                      proc.stdout)

    def test_linear_profile_reports_no_superlinear_subsystem(self):
        proc = run_analyzer(json.dumps(linear_bench()))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("no super-linear subsystem", proc.stdout)

    def test_prints_the_per_category_slope_table(self):
        proc = run_analyzer(json.dumps(superlinear_bench()))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("total_slope", proc.stdout)
        self.assertIn("dispatch_callback", proc.stdout)
        self.assertIn("index_inserts", proc.stdout)

    def test_min_share_cut_excludes_trace_amounts(self):
        # The quadratic category carries ~0.003% of the time at the top
        # tier; with the default 1% cut it cannot win the verdict.
        doc = {"_context": {}}
        for n in (1000, 10000, 100000):
            doc[f"tiers/{n}"] = tier(
                n,
                profile(
                    {
                        "dispatch_callback": category(
                            count=n * 1000, mean_ns=200.0
                        ),
                        "pool_placeable_index": category(
                            count=2, mean_ns=1.0 * (n / 1000.0)
                        ),
                    }
                ),
            )
        proc = run_analyzer(json.dumps(doc))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("super-linear subsystem: pool_placeable_index",
                         proc.stdout)

    def test_threshold_is_flag_adjustable(self):
        proc = run_analyzer(
            json.dumps(linear_bench()), "--super-linear-threshold=0.5"
        )
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("super-linear subsystem:", proc.stdout)

    def test_single_profiled_tier_is_a_parse_error(self):
        doc = {"tiers/10000": tier(10000, profile({}))}
        proc = run_analyzer(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("ERROR", proc.stderr)

    def test_null_profiles_are_skipped_and_too_few_is_a_parse_error(self):
        doc = superlinear_bench()
        doc["tiers/10000"]["profile"] = None
        doc["tiers/100000"]["profile"] = None
        proc = run_analyzer(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)

    def test_malformed_profile_section_is_a_parse_error(self):
        doc = superlinear_bench()
        doc["tiers/10000"]["profile"] = {"not": "a profile"}
        proc = run_analyzer(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)

    def test_malformed_json_is_a_parse_error(self):
        proc = run_analyzer("{not json")
        self.assertEqual(proc.returncode, 2)

    def test_missing_file_is_a_parse_error(self):
        proc = subprocess.run(
            [sys.executable, SCRIPT, "/nonexistent/BENCH.json"],
            capture_output=True,
            text=True,
        )
        self.assertEqual(proc.returncode, 2)

    def test_non_positive_num_vms_is_a_parse_error(self):
        doc = superlinear_bench()
        doc["tiers/10000"]["num_vms"] = 0
        proc = run_analyzer(json.dumps(doc))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()

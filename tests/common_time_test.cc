#include "src/common/time.h"

#include <gtest/gtest.h>

namespace spotcheck {
namespace {

TEST(SimDurationTest, ConstructorsAgree) {
  EXPECT_EQ(SimDuration::Seconds(1).micros(), 1'000'000);
  EXPECT_EQ(SimDuration::Millis(1).micros(), 1'000);
  EXPECT_EQ(SimDuration::Minutes(1), SimDuration::Seconds(60));
  EXPECT_EQ(SimDuration::Hours(1), SimDuration::Minutes(60));
  EXPECT_EQ(SimDuration::Days(1), SimDuration::Hours(24));
}

TEST(SimDurationTest, Arithmetic) {
  const SimDuration a = SimDuration::Seconds(10);
  const SimDuration b = SimDuration::Seconds(4);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
  EXPECT_EQ((-b).seconds(), -4.0);
  EXPECT_EQ((a * 2.5).seconds(), 25.0);
  EXPECT_EQ((a / 2.0).seconds(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimDurationTest, CompoundAssignment) {
  SimDuration d = SimDuration::Seconds(1);
  d += SimDuration::Seconds(2);
  EXPECT_EQ(d.seconds(), 3.0);
  d -= SimDuration::Seconds(4);
  EXPECT_EQ(d.seconds(), -1.0);
}

TEST(SimDurationTest, Comparisons) {
  EXPECT_LT(SimDuration::Seconds(1), SimDuration::Seconds(2));
  EXPECT_GT(SimDuration::Hours(1), SimDuration::Minutes(59));
  EXPECT_EQ(SimDuration::Zero(), SimDuration::Micros(0));
}

TEST(SimTimeTest, OffsetArithmetic) {
  const SimTime t0;
  const SimTime t1 = t0 + SimDuration::Hours(2);
  EXPECT_EQ((t1 - t0), SimDuration::Hours(2));
  EXPECT_EQ(t1 - SimDuration::Hours(2), t0);
  SimTime t = t0;
  t += SimDuration::Seconds(5);
  EXPECT_EQ(t.seconds(), 5.0);
}

TEST(SimTimeTest, UnitAccessors) {
  const SimTime t = SimTime::FromSeconds(7200);
  EXPECT_DOUBLE_EQ(t.hours(), 2.0);
  EXPECT_EQ(t.micros(), 7'200'000'000);
}

TEST(FormatDurationTest, FormatsHmsAndDays) {
  EXPECT_EQ(FormatDuration(SimDuration::Seconds(3723.5)), "01:02:03.500");
  EXPECT_EQ(FormatDuration(SimDuration::Days(2) + SimDuration::Seconds(3)),
            "2d 00:00:03.000");
  EXPECT_EQ(FormatDuration(SimDuration::Zero()), "00:00:00.000");
  EXPECT_EQ(FormatDuration(-SimDuration::Seconds(1)), "-00:00:01.000");
}

}  // namespace
}  // namespace spotcheck

#include "src/core/parallel_evaluation.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "src/market/trace_catalog.h"
#include "src/obs/grid_summary.h"
#include "src/obs/trace.h"

namespace spotcheck {
namespace {

std::vector<EvaluationConfig> SmallGrid() {
  std::vector<EvaluationConfig> configs;
  for (MappingPolicyKind policy :
       {MappingPolicyKind::k1PM, MappingPolicyKind::k4PED}) {
    for (MigrationMechanism mechanism :
         {MigrationMechanism::kSpotCheckFullRestore,
          MigrationMechanism::kSpotCheckLazyRestore}) {
      EvaluationConfig config;
      config.policy = policy;
      config.mechanism = mechanism;
      config.num_vms = 12;
      config.horizon = SimDuration::Days(45);
      config.seed = 5;
      configs.push_back(config);
    }
  }
  return configs;
}

// Everything a cell's simulation computes must match bit-for-bit between the
// serial and parallel paths. The TraceCatalog hit/miss diagnostics are the
// deliberate exception: they depend on which cell asks for a trace first,
// which is scheduling order under concurrency.
void ExpectIdenticalResults(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.avg_cost_per_vm_hour, b.avg_cost_per_vm_hour);
  EXPECT_EQ(a.unavailability_pct, b.unavailability_pct);
  EXPECT_EQ(a.degradation_pct, b.degradation_pct);
  EXPECT_EQ(a.storms.quarter, b.storms.quarter);
  EXPECT_EQ(a.storms.half, b.storms.half);
  EXPECT_EQ(a.storms.three_quarters, b.storms.three_quarters);
  EXPECT_EQ(a.storms.all, b.storms.all);
  EXPECT_EQ(a.revocation_events, b.revocation_events);
  EXPECT_EQ(a.evacuations, b.evacuations);
  EXPECT_EQ(a.repatriations, b.repatriations);
  EXPECT_EQ(a.failed_migrations, b.failed_migrations);
  EXPECT_EQ(a.stagings, b.stagings);
  EXPECT_EQ(a.stateless_respawns, b.stateless_respawns);
  EXPECT_EQ(a.num_backup_servers, b.num_backup_servers);
  EXPECT_EQ(a.native_cost, b.native_cost);
  EXPECT_EQ(a.backup_cost, b.backup_cost);
  EXPECT_EQ(a.vm_hours, b.vm_hours);
}

TEST(ParallelEvaluationTest, ParallelGridIsBitIdenticalToSerial) {
  const std::vector<EvaluationConfig> configs = SmallGrid();

  TraceCatalog::Global().Clear();
  const std::vector<EvaluationResult> serial =
      RunPolicyEvaluationGrid(configs, /*jobs=*/1);
  // Clear between runs so the parallel pass also starts cold: shared cached
  // traces must not be what makes the results agree.
  TraceCatalog::Global().Clear();
  const std::vector<EvaluationResult> parallel =
      RunPolicyEvaluationGrid(configs, /*jobs=*/4);

  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    ExpectIdenticalResults(serial[i], parallel[i]);
  }
}

TEST(ParallelEvaluationTest, WarmCacheDoesNotChangeResults) {
  const std::vector<EvaluationConfig> configs = SmallGrid();
  TraceCatalog::Global().Clear();
  const std::vector<EvaluationResult> cold =
      RunPolicyEvaluationGrid(configs, /*jobs=*/2);
  const std::vector<EvaluationResult> warm =
      RunPolicyEvaluationGrid(configs, /*jobs=*/2);
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    ExpectIdenticalResults(cold[i], warm[i]);
    // Warm cells found every trace already generated.
    EXPECT_EQ(warm[i].trace_cache_misses, 0);
    EXPECT_GT(warm[i].trace_cache_hits, 0);
  }
}

TEST(ParallelEvaluationTest, SingleCellGridMatchesDirectCall) {
  EvaluationConfig config = SmallGrid()[0];
  const EvaluationResult direct = RunPolicyEvaluation(config);
  const std::vector<EvaluationResult> grid =
      RunPolicyEvaluationGrid({config}, /*jobs=*/4);
  ASSERT_EQ(grid.size(), 1u);
  ExpectIdenticalResults(direct, grid[0]);
}

TEST(ParallelEvaluationTest, ResolveJobsPrefersExplicitThenEnv) {
  EXPECT_EQ(ResolveEvaluationJobs(3), 3);

  ASSERT_EQ(setenv("SPOTCHECK_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveEvaluationJobs(0), 5);
  EXPECT_EQ(ResolveEvaluationJobs(2), 2);  // explicit wins over env

  ASSERT_EQ(setenv("SPOTCHECK_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(ResolveEvaluationJobs(0), 1);  // falls back to hardware

  ASSERT_EQ(unsetenv("SPOTCHECK_JOBS"), 0);
  EXPECT_GE(ResolveEvaluationJobs(0), 1);
}

TEST(ParallelEvaluationTest, ResolveJobsForCoversEveryFallback) {
  // Explicit beats env beats hardware.
  EXPECT_EQ(ResolveEvaluationJobsFor(3, "5", 8), 3);
  EXPECT_EQ(ResolveEvaluationJobsFor(0, "5", 8), 5);
  EXPECT_EQ(ResolveEvaluationJobsFor(0, nullptr, 8), 8);
  // hardware_concurrency() == 0 means "unknown": run serial, never guess.
  EXPECT_EQ(ResolveEvaluationJobsFor(0, nullptr, 0), 1);
  EXPECT_EQ(ResolveEvaluationJobsFor(0, "junk", 0), 1);
  // Unparsable or non-positive env values fall through to hardware.
  EXPECT_EQ(ResolveEvaluationJobsFor(0, "junk", 4), 4);
  EXPECT_EQ(ResolveEvaluationJobsFor(0, "0", 4), 4);
  EXPECT_EQ(ResolveEvaluationJobsFor(0, "-2", 4), 4);
  EXPECT_EQ(ResolveEvaluationJobsFor(0, "", 4), 4);
}

TEST(ParallelEvaluationTest, NeverSpawnsMoreWorkersThanCells) {
  const std::vector<EvaluationConfig> configs = SmallGrid();  // 4 cells

  GridContentionReport contention;
  GridRunOptions options;
  options.jobs = 16;  // far more than cells
  options.contention = &contention;
  const std::vector<EvaluationResult> results =
      RunPolicyEvaluationGrid(configs, options);
  ASSERT_EQ(results.size(), configs.size());
  // The pool is capped at one worker per cell; idle threads are never
  // spawned just to satisfy --jobs.
  EXPECT_EQ(contention.workers.size(), configs.size());

  // A single-cell grid runs inline on the calling thread.
  GridContentionReport single;
  options.contention = &single;
  RunPolicyEvaluationGrid({configs[0]}, options);
  ASSERT_EQ(single.workers.size(), 1u);
  EXPECT_EQ(single.workers[0].cells, 1);
}

TEST(ParallelEvaluationTest, PrewarmEliminatesWorkerCatalogMisses) {
  const std::vector<EvaluationConfig> configs = SmallGrid();

  TraceCatalog::Global().Clear();
  GridContentionReport contention;
  GridRunOptions options;
  options.jobs = 2;
  options.contention = &contention;
  const std::vector<EvaluationResult> results =
      RunPolicyEvaluationGrid(configs, options);

  // The cold catalog was populated by the pre-warm pass, on the calling
  // thread, before any worker spawned...
  EXPECT_GT(contention.prewarm_traces, 0);
  EXPECT_GE(contention.prewarm_ns, 0);
  // ...so no cell ever waited on single-flight trace generation.
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(results[i].trace_cache_misses, 0);
    EXPECT_GT(results[i].trace_cache_hits, 0);
  }
  const int64_t worker_misses = std::accumulate(
      contention.workers.begin(), contention.workers.end(), int64_t{0},
      [](int64_t sum, const GridWorkerProfile& w) {
        return sum + w.catalog_misses;
      });
  EXPECT_EQ(worker_misses, 0);
}

TEST(ParallelEvaluationTest, PrewarmCanBeDisabled) {
  const std::vector<EvaluationConfig> configs = SmallGrid();
  TraceCatalog::Global().Clear();
  GridContentionReport contention;
  GridRunOptions options;
  options.jobs = 2;
  options.prewarm_traces = false;
  options.contention = &contention;
  const std::vector<EvaluationResult> results =
      RunPolicyEvaluationGrid(configs, options);
  EXPECT_EQ(contention.prewarm_traces, 0);
  EXPECT_EQ(contention.prewarm_ns, 0);
  // Some worker had to generate the traces itself.
  int64_t worker_misses = 0;
  for (const GridWorkerProfile& w : contention.workers) {
    worker_misses += w.catalog_misses;
  }
  EXPECT_GT(worker_misses, 0);
  ASSERT_EQ(results.size(), configs.size());
}

TEST(ParallelEvaluationTest, ContentionReportAccountsForEveryCell) {
  const std::vector<EvaluationConfig> configs = SmallGrid();
  GridContentionReport contention;
  GridRunOptions options;
  options.jobs = 2;
  options.contention = &contention;
  RunPolicyEvaluationGrid(configs, options);

  ASSERT_EQ(contention.workers.size(), 2u);
  int64_t total_cells = 0;
  for (size_t w = 0; w < contention.workers.size(); ++w) {
    const GridWorkerProfile& profile = contention.workers[w];
    EXPECT_EQ(profile.worker, static_cast<int>(w));
    total_cells += profile.cells;
    if (profile.cells > 0) {
      EXPECT_GT(profile.busy_ns, 0);
      EXPECT_GT(profile.report_build_ns, 0);
      EXPECT_LE(profile.report_build_ns, profile.busy_ns);
    }
  }
  EXPECT_EQ(total_cells, static_cast<int64_t>(configs.size()));
  EXPECT_GT(contention.total_ns, 0);
}

TEST(ParallelEvaluationTest, WorkerTracerRecordsOneWallSpanPerCell) {
  const std::vector<EvaluationConfig> configs = SmallGrid();
  SpanTracer tracer;
  GridRunOptions options;
  options.jobs = 2;
  options.worker_tracer = &tracer;
  GridContentionReport contention;
  options.contention = &contention;
  RunPolicyEvaluationGrid(configs, options);

  ASSERT_EQ(tracer.spans().size(), configs.size());
  for (const TraceSpan& span : tracer.spans()) {
    EXPECT_EQ(span.name, "grid.cell");
    // Worker-profile spans live on wall-clock tracks: their timebase is
    // microseconds since the grid started, not simulated time, and must
    // never be mixed into sim-time analysis.
    EXPECT_EQ(tracer.TrackClockDomain(span.track), TraceClock::kWall);
  }
  // The merge happened (post-join, single-threaded) and was accounted.
  EXPECT_GE(contention.tracer_merge_ns, 0);
}

}  // namespace
}  // namespace spotcheck
